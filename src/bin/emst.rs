//! `emst` — unified command-line front end for the library.
//!
//! ```text
//! emst gen   --n 1000 [--seed S] [--out points.txt]
//! emst run   --algo <ghs|ghs-mod|eopt|nnt|nnt-x|nnt-id|bfs>
//!            (--n 1000 [--seed S] | --in points.txt)
//!            [--radius R] [--tree out.txt] [--verbose]
//! emst mst   (--n 1000 [--seed S] | --in points.txt) [--tree out.txt]
//! emst stats (--n 1000 [--seed S] | --in points.txt) [--radius R]
//! ```
//!
//! `run` executes a distributed algorithm over the radio simulator and
//! prints its energy / message / round statistics plus tree quality
//! against the exact MST; `stats` reports connectivity and giant-component
//! structure at a radius (defaults to the §VII connectivity radius).

use energy_mst::core::{EoptConfig, GhsVariant, RankScheme};
use energy_mst::geom::{
    load_points, paper_phase1_radius, paper_phase2_radius, save_points, trial_rng, uniform_points,
    Point,
};
use energy_mst::graph::{euclidean_mst, SpanningTree};
use energy_mst::percolation::giant_stats;
use energy_mst::radio::RunStats;
use energy_mst::{CsvSink, JsonlSink, MetricsSink, Protocol, Sim, TeeSink, TraceSink};
use std::collections::HashMap;
use std::io::BufWriter;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  emst gen   --n N [--seed S] [--out FILE]\n  emst run   --algo ghs|ghs-mod|eopt|nnt|nnt-x|nnt-id|bfs (--n N [--seed S] | --in FILE) [--radius R] [--tree FILE] [--trace FILE[.csv]] [--metrics] [--verbose]\n  emst mst   (--n N [--seed S] | --in FILE) [--tree FILE]\n  emst stats (--n N [--seed S] | --in FILE) [--radius R]"
    );
    exit(2)
}

/// A file-backed event log: JSONL by default, CSV for `.csv` paths.
enum FileSink {
    Jsonl(JsonlSink<BufWriter<std::fs::File>>),
    Csv(CsvSink<BufWriter<std::fs::File>>),
}

impl FileSink {
    fn create(path: &str) -> std::io::Result<Self> {
        if path.ends_with(".csv") {
            Ok(FileSink::Csv(CsvSink::create(path)?))
        } else {
            Ok(FileSink::Jsonl(JsonlSink::create(path)?))
        }
    }

    fn as_sink(&mut self) -> &mut dyn TraceSink {
        match self {
            FileSink::Jsonl(s) => s,
            FileSink::Csv(s) => s,
        }
    }

    fn finish(self) -> std::io::Result<()> {
        match self {
            FileSink::Jsonl(s) => s.finish().map(drop),
            FileSink::Csv(s) => s.finish().map(drop),
        }
    }
}

fn print_metrics(metrics: &MetricsSink) {
    use energy_mst::analysis::{kind_table, phase_table, summary_line};
    println!("--- metrics ---");
    println!("{}", summary_line(metrics));
    println!("\nper message kind:\n{}", kind_table(metrics).render());
    let phases = phase_table(metrics);
    if !phases.is_empty() {
        println!("per phase:\n{}", phases.render());
    }
    if !metrics.merges().is_empty() {
        println!("fragment merges: {}", metrics.merges().len());
    }
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if !a.starts_with("--") {
            eprintln!("unexpected argument {a}");
            usage();
        }
        let key = a.trim_start_matches("--").to_string();
        if key == "verbose" || key == "metrics" {
            flags.insert(key, "true".into());
            i += 1;
        } else {
            if i + 1 >= args.len() {
                eprintln!("flag --{key} needs a value");
                usage();
            }
            flags.insert(key, args[i + 1].clone());
            i += 2;
        }
    }
    flags
}

fn points_from(flags: &HashMap<String, String>) -> Vec<Point> {
    if let Some(path) = flags.get("in") {
        match load_points(path) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                exit(1)
            }
        }
    } else if let Some(n) = flags.get("n") {
        let n: usize = n.parse().unwrap_or_else(|_| {
            eprintln!("--n must be an integer");
            usage()
        });
        let seed: u64 = flags
            .get("seed")
            .map(|s| s.parse().expect("--seed must be an integer"))
            .unwrap_or(1);
        uniform_points(n, &mut trial_rng(seed, 0))
    } else {
        eprintln!("need --n or --in");
        usage()
    }
}

fn maybe_save_tree(flags: &HashMap<String, String>, tree: &SpanningTree) {
    if let Some(path) = flags.get("tree") {
        let mut out = String::new();
        out.push_str("# u v weight\n");
        for e in tree.edges() {
            out.push_str(&format!("{} {} {}\n", e.u, e.v, e.w));
        }
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        }
        println!("tree written to {path}");
    }
}

fn print_stats(label: &str, stats: &RunStats, tree: &SpanningTree, points: &[Point]) {
    println!("algorithm:     {label}");
    println!("energy (tx):   {:.6}", stats.energy);
    if stats.rx_energy > 0.0 || stats.idle_energy > 0.0 {
        println!("energy (rx):   {:.6}", stats.rx_energy);
        println!("energy (idle): {:.6}", stats.idle_energy);
        println!("energy (full): {:.6}", stats.full_energy());
    }
    println!("messages:      {}", stats.messages);
    println!("rounds:        {}", stats.rounds);
    println!("tree edges:    {}", tree.edges().len());
    println!("tree Σ|e|:     {:.6}", tree.cost(1.0));
    println!("tree Σ|e|²:    {:.6}", tree.cost(2.0));
    if points.len() >= 2 && tree.is_valid() {
        let mst = euclidean_mst(points);
        println!(
            "vs exact MST:  Σ|e| x{:.4}, Σ|e|² x{:.4}{}",
            tree.cost(1.0) / mst.cost(1.0),
            tree.cost(2.0) / mst.cost(2.0),
            if tree.same_edges(&mst) {
                " (exact)"
            } else {
                ""
            }
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => usage(),
    };
    let flags = parse_flags(rest);
    match cmd {
        "gen" => {
            let pts = points_from(&flags);
            match flags.get("out") {
                Some(path) => {
                    save_points(path, &pts).unwrap_or_else(|e| {
                        eprintln!("cannot write {path}: {e}");
                        exit(1)
                    });
                    println!("{} points written to {path}", pts.len());
                }
                None => {
                    let mut buf = Vec::new();
                    energy_mst::geom::write_points(&mut buf, &pts).unwrap();
                    print!("{}", String::from_utf8(buf).unwrap());
                }
            }
        }
        "run" => {
            let pts = points_from(&flags);
            let n = pts.len();
            let radius: f64 = flags
                .get("radius")
                .map(|r| r.parse().expect("--radius must be a float"))
                .unwrap_or_else(|| paper_phase2_radius(n.max(2)));
            let algo = flags.get("algo").map(String::as_str).unwrap_or_else(|| {
                eprintln!("run needs --algo");
                usage()
            });
            let (label, protocol, needs_radius) = match algo {
                "ghs" => ("GHS (original)", Protocol::Ghs(GhsVariant::Original), true),
                "ghs-mod" => ("GHS (modified)", Protocol::Ghs(GhsVariant::Modified), true),
                "eopt" => ("EOPT", Protocol::Eopt(EoptConfig::default()), false),
                "nnt" => (
                    "Co-NNT (diagonal rank)",
                    Protocol::Nnt(RankScheme::Diagonal),
                    false,
                ),
                "nnt-x" => ("NNT (x-rank)", Protocol::Nnt(RankScheme::XOrder), false),
                "nnt-id" => (
                    "NNT (id-rank, no coordinates)",
                    Protocol::Nnt(RankScheme::NodeId),
                    false,
                ),
                "bfs" => ("BFS flooding tree", Protocol::Bfs { root: 0 }, true),
                other => {
                    eprintln!("unknown algorithm {other}");
                    usage()
                }
            };
            let mut metrics = flags.contains_key("metrics").then(MetricsSink::new);
            let mut file = flags.get("trace").map(|path| {
                FileSink::create(path).unwrap_or_else(|e| {
                    eprintln!("cannot create {path}: {e}");
                    exit(1)
                })
            });
            let run = |sink: Option<&mut dyn TraceSink>| {
                let mut sim = Sim::new(&pts);
                if needs_radius {
                    sim = sim.radius(radius);
                }
                if let Some(s) = sink {
                    sim = sim.sink(s);
                }
                sim.run(protocol)
            };
            let out = match (&mut metrics, &mut file) {
                (None, None) => run(None),
                (Some(m), None) => run(Some(m)),
                (None, Some(f)) => run(Some(f.as_sink())),
                (Some(m), Some(f)) => {
                    let mut tee = TeeSink::new(m, f.as_sink());
                    run(Some(&mut tee))
                }
            };
            print_stats(label, &out.stats, &out.tree, &pts);
            if flags.contains_key("verbose") {
                println!("--- per-kind ledger ---\n{}", out.stats.ledger);
            }
            if let Some(m) = &metrics {
                print_metrics(m);
            }
            if let Some(f) = file {
                match f.finish() {
                    Ok(()) => println!("trace written to {}", flags["trace"]),
                    Err(e) => {
                        eprintln!("trace write failed: {e}");
                        exit(1);
                    }
                }
            }
            maybe_save_tree(&flags, &out.tree);
        }
        "mst" => {
            let pts = points_from(&flags);
            let tree = euclidean_mst(&pts);
            println!("exact Euclidean MST: {} edges", tree.edges().len());
            println!("Σ|e|:  {:.6}", tree.cost(1.0));
            println!("Σ|e|²: {:.6}", tree.cost(2.0));
            maybe_save_tree(&flags, &tree);
        }
        "stats" => {
            let pts = points_from(&flags);
            let n = pts.len().max(2);
            let radius: f64 = flags
                .get("radius")
                .map(|r| r.parse().expect("--radius must be a float"))
                .unwrap_or_else(|| paper_phase2_radius(n));
            let g = energy_mst::graph::Graph::geometric(&pts, radius);
            let comps = energy_mst::graph::Components::of(&g);
            println!("n = {}, radius = {radius:.5}", pts.len());
            println!("edges: {}, avg degree {:.2}", g.m(), g.avg_degree());
            println!(
                "components: {} (largest {}, {:.1}%)",
                comps.count(),
                comps.largest_size(),
                100.0 * comps.giant_fraction()
            );
            let r1 = paper_phase1_radius(n);
            let s = giant_stats(&pts, r1);
            println!(
                "at the percolation radius r1 = {r1:.5}: giant {:.1}%, {} components, largest small component {}",
                100.0 * s.giant_fraction(),
                s.components,
                s.second_component_nodes
            );
        }
        _ => usage(),
    }
}
