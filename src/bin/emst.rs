//! `emst` — unified command-line front end for the library.
//!
//! ```text
//! emst gen   --n 1000 [--seed S] [--out points.txt]
//! emst run   --algo <ghs|ghs-mod|eopt|nnt|nnt-x|nnt-id|bfs>
//!            (--n 1000 [--seed S] | --in points.txt)
//!            [--radius R] [--tree out.txt] [--verbose]
//! emst mst   (--n 1000 [--seed S] | --in points.txt) [--tree out.txt]
//! emst stats (--n 1000 [--seed S] | --in points.txt) [--radius R]
//! ```
//!
//! `run` executes a distributed algorithm over the radio simulator and
//! prints its energy / message / round statistics plus tree quality
//! against the exact MST; `stats` reports connectivity and giant-component
//! structure at a radius (defaults to the §VII connectivity radius).

use energy_mst::core::{
    run_bfs_tree, run_eopt, run_ghs, run_nnt_with, GhsVariant, RankScheme,
};
use energy_mst::geom::{
    load_points, paper_phase1_radius, paper_phase2_radius, save_points, trial_rng,
    uniform_points, Point,
};
use energy_mst::graph::{euclidean_mst, SpanningTree};
use energy_mst::percolation::giant_stats;
use energy_mst::radio::RunStats;
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  emst gen   --n N [--seed S] [--out FILE]\n  emst run   --algo ghs|ghs-mod|eopt|nnt|nnt-x|nnt-id|bfs (--n N [--seed S] | --in FILE) [--radius R] [--tree FILE] [--verbose]\n  emst mst   (--n N [--seed S] | --in FILE) [--tree FILE]\n  emst stats (--n N [--seed S] | --in FILE) [--radius R]"
    );
    exit(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if !a.starts_with("--") {
            eprintln!("unexpected argument {a}");
            usage();
        }
        let key = a.trim_start_matches("--").to_string();
        if key == "verbose" {
            flags.insert(key, "true".into());
            i += 1;
        } else {
            if i + 1 >= args.len() {
                eprintln!("flag --{key} needs a value");
                usage();
            }
            flags.insert(key, args[i + 1].clone());
            i += 2;
        }
    }
    flags
}

fn points_from(flags: &HashMap<String, String>) -> Vec<Point> {
    if let Some(path) = flags.get("in") {
        match load_points(path) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                exit(1)
            }
        }
    } else if let Some(n) = flags.get("n") {
        let n: usize = n.parse().unwrap_or_else(|_| {
            eprintln!("--n must be an integer");
            usage()
        });
        let seed: u64 = flags
            .get("seed")
            .map(|s| s.parse().expect("--seed must be an integer"))
            .unwrap_or(1);
        uniform_points(n, &mut trial_rng(seed, 0))
    } else {
        eprintln!("need --n or --in");
        usage()
    }
}

fn maybe_save_tree(flags: &HashMap<String, String>, tree: &SpanningTree) {
    if let Some(path) = flags.get("tree") {
        let mut out = String::new();
        out.push_str("# u v weight\n");
        for e in tree.edges() {
            out.push_str(&format!("{} {} {}\n", e.u, e.v, e.w));
        }
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        }
        println!("tree written to {path}");
    }
}

fn print_stats(label: &str, stats: &RunStats, tree: &SpanningTree, points: &[Point]) {
    println!("algorithm:     {label}");
    println!("energy (tx):   {:.6}", stats.energy);
    if stats.rx_energy > 0.0 || stats.idle_energy > 0.0 {
        println!("energy (rx):   {:.6}", stats.rx_energy);
        println!("energy (idle): {:.6}", stats.idle_energy);
        println!("energy (full): {:.6}", stats.full_energy());
    }
    println!("messages:      {}", stats.messages);
    println!("rounds:        {}", stats.rounds);
    println!("tree edges:    {}", tree.edges().len());
    println!("tree Σ|e|:     {:.6}", tree.cost(1.0));
    println!("tree Σ|e|²:    {:.6}", tree.cost(2.0));
    if points.len() >= 2 && tree.is_valid() {
        let mst = euclidean_mst(points);
        println!(
            "vs exact MST:  Σ|e| x{:.4}, Σ|e|² x{:.4}{}",
            tree.cost(1.0) / mst.cost(1.0),
            tree.cost(2.0) / mst.cost(2.0),
            if tree.same_edges(&mst) { " (exact)" } else { "" }
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => usage(),
    };
    let flags = parse_flags(rest);
    match cmd {
        "gen" => {
            let pts = points_from(&flags);
            match flags.get("out") {
                Some(path) => {
                    save_points(path, &pts).unwrap_or_else(|e| {
                        eprintln!("cannot write {path}: {e}");
                        exit(1)
                    });
                    println!("{} points written to {path}", pts.len());
                }
                None => {
                    let mut buf = Vec::new();
                    energy_mst::geom::write_points(&mut buf, &pts).unwrap();
                    print!("{}", String::from_utf8(buf).unwrap());
                }
            }
        }
        "run" => {
            let pts = points_from(&flags);
            let n = pts.len();
            let radius: f64 = flags
                .get("radius")
                .map(|r| r.parse().expect("--radius must be a float"))
                .unwrap_or_else(|| paper_phase2_radius(n.max(2)));
            let algo = flags.get("algo").map(String::as_str).unwrap_or_else(|| {
                eprintln!("run needs --algo");
                usage()
            });
            let (label, tree, stats) = match algo {
                "ghs" => {
                    let o = run_ghs(&pts, radius, GhsVariant::Original);
                    ("GHS (original)", o.tree, o.stats)
                }
                "ghs-mod" => {
                    let o = run_ghs(&pts, radius, GhsVariant::Modified);
                    ("GHS (modified)", o.tree, o.stats)
                }
                "eopt" => {
                    let o = run_eopt(&pts);
                    ("EOPT", o.tree, o.stats)
                }
                "nnt" => {
                    let o = run_nnt_with(&pts, RankScheme::Diagonal);
                    ("Co-NNT (diagonal rank)", o.tree, o.stats)
                }
                "nnt-x" => {
                    let o = run_nnt_with(&pts, RankScheme::XOrder);
                    ("NNT (x-rank)", o.tree, o.stats)
                }
                "nnt-id" => {
                    let o = run_nnt_with(&pts, RankScheme::NodeId);
                    ("NNT (id-rank, no coordinates)", o.tree, o.stats)
                }
                "bfs" => {
                    let o = run_bfs_tree(&pts, radius, 0);
                    ("BFS flooding tree", o.tree, o.stats)
                }
                other => {
                    eprintln!("unknown algorithm {other}");
                    usage()
                }
            };
            print_stats(label, &stats, &tree, &pts);
            if flags.contains_key("verbose") {
                println!("--- per-kind ledger ---\n{}", stats.ledger);
            }
            maybe_save_tree(&flags, &tree);
        }
        "mst" => {
            let pts = points_from(&flags);
            let tree = euclidean_mst(&pts);
            println!("exact Euclidean MST: {} edges", tree.edges().len());
            println!("Σ|e|:  {:.6}", tree.cost(1.0));
            println!("Σ|e|²: {:.6}", tree.cost(2.0));
            maybe_save_tree(&flags, &tree);
        }
        "stats" => {
            let pts = points_from(&flags);
            let n = pts.len().max(2);
            let radius: f64 = flags
                .get("radius")
                .map(|r| r.parse().expect("--radius must be a float"))
                .unwrap_or_else(|| paper_phase2_radius(n));
            let g = energy_mst::graph::Graph::geometric(&pts, radius);
            let comps = energy_mst::graph::Components::of(&g);
            println!("n = {}, radius = {radius:.5}", pts.len());
            println!("edges: {}, avg degree {:.2}", g.m(), g.avg_degree());
            println!(
                "components: {} (largest {}, {:.1}%)",
                comps.count(),
                comps.largest_size(),
                100.0 * comps.giant_fraction()
            );
            let r1 = paper_phase1_radius(n);
            let s = giant_stats(&pts, r1);
            println!(
                "at the percolation radius r1 = {r1:.5}: giant {:.1}%, {} components, largest small component {}",
                100.0 * s.giant_fraction(),
                s.components,
                s.second_component_nodes
            );
        }
        _ => usage(),
    }
}
