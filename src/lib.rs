//! # energy-mst — facade crate
//!
//! Re-exports the whole workspace: a Rust reproduction of *Energy-Optimal
//! Distributed Algorithms for Minimum Spanning Trees* (Choi, Khan, Kumar,
//! Pandurangan; SPAA'08 / IEEE JSAC'09). See the README for a tour and
//! DESIGN.md for the system inventory.

pub use emst_analysis as analysis;
pub use emst_core as core;
pub use emst_geom as geom;
pub use emst_graph as graph;
pub use emst_percolation as percolation;
pub use emst_radio as radio;

// The unified run API and its observability surface, re-exported at the
// top level: `energy_mst::Sim::new(&pts).sink(&mut metrics).run(..)`.
pub use emst_core::{
    maintain, ChurnEvent, ChurnTimeline, Detail, EpochReport, Instance, MaintainReport,
    MaintainStrategy, Protocol, RepairPolicy, RepairStats, RunError, RunOutcome, RunOutput, Sim,
};
pub use emst_radio::{
    CsvSink, FaultKind, FaultPlan, FaultStats, JsonlSink, Membership, MetricsSink, NullSink,
    StageMark, TeeSink, TraceEvent, TraceSink,
};
