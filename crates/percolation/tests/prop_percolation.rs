//! Property-based tests for the percolation machinery: cluster labelling
//! against a brute-force flood fill, and partition invariants of the
//! small-region decomposition.

use emst_geom::Point;
use emst_percolation::{small_regions, Adjacency, CellClusters, CellGrid};
use proptest::prelude::*;

fn arb_mask() -> impl Strategy<Value = (Vec<bool>, usize)> {
    (2usize..14).prop_flat_map(|side| {
        proptest::collection::vec(any::<bool>(), side * side).prop_map(move |mask| (mask, side))
    })
}

/// Brute-force flood-fill labelling for cross-checking.
fn brute_clusters(mask: &[bool], side: usize, adj: Adjacency) -> Vec<usize> {
    let offsets: Vec<(isize, isize)> = match adj {
        Adjacency::Four => vec![(1, 0), (-1, 0), (0, 1), (0, -1)],
        Adjacency::Eight => (-1..=1)
            .flat_map(|dx| (-1..=1).map(move |dy| (dx, dy)))
            .filter(|&(dx, dy)| dx != 0 || dy != 0)
            .collect(),
    };
    let mut label = vec![usize::MAX; mask.len()];
    let mut next = 0usize;
    for start in 0..mask.len() {
        if !mask[start] || label[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        label[start] = next;
        while let Some(c) = stack.pop() {
            let (cx, cy) = ((c % side) as isize, (c / side) as isize);
            for &(dx, dy) in &offsets {
                let (nx, ny) = (cx + dx, cy + dy);
                if nx < 0 || ny < 0 || nx as usize >= side || ny as usize >= side {
                    continue;
                }
                let nc = ny as usize * side + nx as usize;
                if mask[nc] && label[nc] == usize::MAX {
                    label[nc] = next;
                    stack.push(nc);
                }
            }
        }
        next += 1;
    }
    label
}

proptest! {
    /// Cluster labelling matches flood fill for both adjacencies (labels
    /// up to renaming: compare the induced partitions).
    #[test]
    fn labelling_matches_flood_fill((mask, side) in arb_mask()) {
        for adj in [Adjacency::Four, Adjacency::Eight] {
            let ours = CellClusters::label(&mask, side, adj);
            let brute = brute_clusters(&mask, side, adj);
            for a in 0..mask.len() {
                for b in (a + 1)..mask.len() {
                    if mask[a] && mask[b] {
                        prop_assert_eq!(
                            ours.label[a] == ours.label[b],
                            brute[a] == brute[b],
                            "{:?}: cells {} vs {}", adj, a, b
                        );
                    }
                }
            }
            prop_assert_eq!(
                ours.count(),
                brute.iter().filter(|&&l| l != usize::MAX)
                    .collect::<std::collections::HashSet<_>>().len()
            );
        }
    }

    /// Cluster sizes sum to the number of masked cells; the largest label
    /// really is the largest.
    #[test]
    fn cluster_sizes_partition_mask((mask, side) in arb_mask()) {
        let c = CellClusters::label(&mask, side, Adjacency::Eight);
        let masked = mask.iter().filter(|&&b| b).count();
        prop_assert_eq!(c.sizes.iter().sum::<usize>(), masked);
        if let Some(l) = c.largest() {
            prop_assert_eq!(c.sizes[l], c.largest_size());
            prop_assert!(c.sizes.iter().all(|&s| s <= c.largest_size()));
        } else {
            prop_assert_eq!(masked, 0);
        }
    }

    /// Small regions partition exactly the cells outside the giant good
    /// cluster, and their node counts sum to the nodes outside it.
    #[test]
    fn small_regions_partition_complement(
        pts in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y)| Point::new(x, y)),
            1..120,
        ),
        cell in 0.08f64..0.4,
        threshold in 1usize..4,
    ) {
        let grid = CellGrid::new(&pts, cell);
        let good = grid.good_mask(threshold);
        let clusters = CellClusters::label(&good, grid.side(), Adjacency::Eight);
        let regions = small_regions(&grid, &good, &clusters, Adjacency::Eight);
        // Cell partition: complement of the giant cluster.
        let giant_cells = clusters.largest_size();
        prop_assert_eq!(
            regions.cells.iter().sum::<usize>(),
            grid.num_cells() - giant_cells
        );
        // Node partition: everything not inside the giant cluster's cells.
        let giant_label = clusters.largest();
        let nodes_in_giant: usize = (0..grid.num_cells())
            .filter(|&c| giant_label.is_some() && clusters.label[c] == giant_label.unwrap())
            .map(|c| grid.members_of(c).len())
            .sum();
        prop_assert_eq!(
            regions.nodes.iter().sum::<usize>(),
            pts.len() - nodes_in_giant
        );
        // Descending order by nodes.
        for w in regions.nodes.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }
}
