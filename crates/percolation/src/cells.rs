//! The site-percolation cell grid of Theorem 5.2.
//!
//! The proof subdivides the unit square into cells of side `r/2` so that
//! any two nodes in neighbouring cells are within distance `r` (under the
//! paper's L∞ simplification, which includes diagonal neighbours). A cell
//! is **good** when it holds at least `c/8` nodes, half of the expected
//! `c/4` where `r = √(c/n)`; above the site-percolation threshold the good
//! cells form a unique giant cluster whose complement splits into small
//! regions.

use emst_geom::Point;

/// Occupancy grid over the unit square with square cells of side
/// `cell_side`.
#[derive(Debug, Clone)]
pub struct CellGrid {
    side: usize,
    cell_side: f64,
    /// Node count per cell, row-major (`cy * side + cx`).
    counts: Vec<u32>,
    /// Node indices per cell, row-major, CSR-style.
    starts: Vec<u32>,
    members: Vec<u32>,
}

impl CellGrid {
    /// Builds the grid; points outside the unit square are clamped into
    /// boundary cells.
    pub fn new(points: &[Point], cell_side: f64) -> Self {
        assert!(
            cell_side.is_finite() && cell_side > 0.0,
            "cell side must be positive, got {cell_side}"
        );
        let side = ((1.0 / cell_side).ceil() as usize).max(1);
        let ncells = side * side;
        let idx = |p: &Point| {
            let cx = ((p.x / cell_side) as usize).min(side - 1);
            let cy = ((p.y / cell_side) as usize).min(side - 1);
            cy * side + cx
        };
        let mut counts = vec![0u32; ncells];
        for p in points {
            counts[idx(p)] += 1;
        }
        let mut starts = vec![0u32; ncells + 1];
        for c in 0..ncells {
            starts[c + 1] = starts[c] + counts[c];
        }
        let mut cursor = starts.clone();
        let mut members = vec![0u32; points.len()];
        for (i, p) in points.iter().enumerate() {
            let c = idx(p);
            members[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        CellGrid {
            side,
            cell_side,
            counts,
            starts,
            members,
        }
    }

    /// The Theorem 5.2 grid for transmission radius `r`: cell side `r/2`.
    pub fn for_radius(points: &[Point], r: f64) -> Self {
        CellGrid::new(points, r / 2.0)
    }

    /// Cells per side.
    #[inline]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Cell side length.
    #[inline]
    pub fn cell_side(&self) -> f64 {
        self.cell_side
    }

    /// Total number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.side * self.side
    }

    /// Node count in cell `(cx, cy)`.
    #[inline]
    pub fn count(&self, cx: usize, cy: usize) -> usize {
        self.counts[cy * self.side + cx] as usize
    }

    /// Node indices inside cell index `c` (row-major).
    #[inline]
    pub fn members_of(&self, c: usize) -> &[u32] {
        &self.members[self.starts[c] as usize..self.starts[c + 1] as usize]
    }

    /// Good-cell mask at occupancy threshold `min_count` (row-major).
    pub fn good_mask(&self, min_count: usize) -> Vec<bool> {
        self.counts
            .iter()
            .map(|&c| c as usize >= min_count)
            .collect()
    }

    /// The paper's goodness threshold for radius `r = √(c/n)`:
    /// `c/8 = n·r²/8` nodes, at least 1.
    pub fn paper_threshold(n: usize, r: f64) -> usize {
        ((n as f64 * r * r) / 8.0).ceil().max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_geom::{trial_rng, uniform_points};

    #[test]
    fn counts_partition_all_points() {
        let pts = uniform_points(500, &mut trial_rng(401, 0));
        let g = CellGrid::new(&pts, 0.13);
        let total: usize = (0..g.side())
            .flat_map(|cy| (0..g.side()).map(move |cx| (cx, cy)))
            .map(|(cx, cy)| g.count(cx, cy))
            .sum();
        assert_eq!(total, 500);
        let member_total: usize = (0..g.num_cells()).map(|c| g.members_of(c).len()).sum();
        assert_eq!(member_total, 500);
    }

    #[test]
    fn members_live_in_their_cell() {
        let pts = uniform_points(300, &mut trial_rng(402, 0));
        let g = CellGrid::new(&pts, 0.1);
        for c in 0..g.num_cells() {
            let (cx, cy) = (c % g.side(), c / g.side());
            for &i in g.members_of(c) {
                let p = &pts[i as usize];
                let x0 = cx as f64 * 0.1;
                let y0 = cy as f64 * 0.1;
                // Clamped boundary points allowed at the upper edge.
                assert!(p.x >= x0 - 1e-12 && (p.x <= x0 + 0.1 + 1e-12 || cx == g.side() - 1));
                assert!(p.y >= y0 - 1e-12 && (p.y <= y0 + 0.1 + 1e-12 || cy == g.side() - 1));
            }
        }
    }

    #[test]
    fn for_radius_halves_cell_side() {
        let pts = uniform_points(10, &mut trial_rng(403, 0));
        let g = CellGrid::for_radius(&pts, 0.2);
        assert!((g.cell_side() - 0.1).abs() < 1e-15);
        assert_eq!(g.side(), 10);
    }

    #[test]
    fn good_mask_thresholds() {
        let pts = vec![
            Point::new(0.05, 0.05),
            Point::new(0.06, 0.06),
            Point::new(0.95, 0.95),
        ];
        let g = CellGrid::new(&pts, 0.1);
        let mask = g.good_mask(2);
        assert!(mask[0]); // two points in cell (0,0)
        assert!(!mask[g.num_cells() - 1]); // one point in the last cell
        let all = g.good_mask(1);
        assert_eq!(all.iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn paper_threshold_formula() {
        // r = √(c/n) with c = 1.96, n = 400 → c/8 = 0.245 → ceil = 1.
        assert_eq!(CellGrid::paper_threshold(400, (1.96f64 / 400.0).sqrt()), 1);
        // c = 16 → threshold 2.
        assert_eq!(CellGrid::paper_threshold(400, (16.0f64 / 400.0).sqrt()), 2);
        // Never below 1.
        assert_eq!(CellGrid::paper_threshold(10, 1e-6), 1);
    }
}
