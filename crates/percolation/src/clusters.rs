//! Cluster labelling on the cell grid: the giant cluster of good cells and
//! the small regions of its complement (Theorem 5.2's geometry).

use crate::cells::CellGrid;
use emst_graph::UnionFind;

/// Cell adjacency used for clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adjacency {
    /// 4-neighbourhood (edge-sharing cells).
    Four,
    /// 8-neighbourhood (edge- or corner-sharing). This matches the paper's
    /// L∞ distance simplification: with cell side `r/2`, any two nodes in
    /// 8-adjacent cells are within L∞ distance `r`.
    Eight,
}

/// Labelled clusters over a boolean cell mask.
#[derive(Debug, Clone)]
pub struct CellClusters {
    side: usize,
    /// Cluster label per cell (`usize::MAX` for cells outside the mask).
    pub label: Vec<usize>,
    /// Cells per cluster.
    pub sizes: Vec<usize>,
}

impl CellClusters {
    /// Labels the connected clusters of `true` cells in `mask` (row-major,
    /// `side × side`) under the given adjacency.
    pub fn label(mask: &[bool], side: usize, adj: Adjacency) -> Self {
        assert_eq!(mask.len(), side * side, "mask/grid size mismatch");
        let mut uf = UnionFind::new(mask.len());
        let offsets: &[(isize, isize)] = match adj {
            Adjacency::Four => &[(1, 0), (0, 1)],
            Adjacency::Eight => &[(1, 0), (0, 1), (1, 1), (1, -1)],
        };
        for cy in 0..side {
            for cx in 0..side {
                let c = cy * side + cx;
                if !mask[c] {
                    continue;
                }
                for &(dx, dy) in offsets {
                    let (nx, ny) = (cx as isize + dx, cy as isize + dy);
                    if nx < 0 || ny < 0 || nx as usize >= side || ny as usize >= side {
                        continue;
                    }
                    let nc = ny as usize * side + nx as usize;
                    if mask[nc] {
                        uf.union(c, nc);
                    }
                }
            }
        }
        // Dense labels over masked cells only.
        let mut label = vec![usize::MAX; mask.len()];
        let mut sizes = Vec::new();
        let mut label_of_root = std::collections::HashMap::new();
        for c in 0..mask.len() {
            if !mask[c] {
                continue;
            }
            let r = uf.find(c);
            let l = *label_of_root.entry(r).or_insert_with(|| {
                sizes.push(0);
                sizes.len() - 1
            });
            label[c] = l;
            sizes[l] += 1;
        }
        CellClusters { side, label, sizes }
    }

    /// Number of clusters.
    #[inline]
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Label of the largest cluster, or `None` when the mask is empty.
    pub fn largest(&self) -> Option<usize> {
        (0..self.sizes.len()).max_by_key(|&l| self.sizes[l])
    }

    /// Size (in cells) of the largest cluster.
    pub fn largest_size(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Cells per side of the underlying grid.
    #[inline]
    pub fn side(&self) -> usize {
        self.side
    }
}

/// Statistics of the small regions — the maximal connected clusters of the
/// complement of the giant good-cell cluster (grey cells in Fig. 1(b)).
#[derive(Debug, Clone, Default)]
pub struct SmallRegions {
    /// Cell counts of each region, descending.
    pub cells: Vec<usize>,
    /// Node counts of each region, descending.
    pub nodes: Vec<usize>,
}

impl SmallRegions {
    /// Number of regions.
    pub fn count(&self) -> usize {
        self.cells.len()
    }

    /// Largest region node count (0 when no regions exist).
    pub fn max_nodes(&self) -> usize {
        self.nodes.first().copied().unwrap_or(0)
    }

    /// Largest region cell count.
    pub fn max_cells(&self) -> usize {
        self.cells.first().copied().unwrap_or(0)
    }
}

/// Extracts the small regions: complement of the largest good-cell cluster,
/// clustered under the same adjacency, with per-region node counts from
/// `grid`.
pub fn small_regions(
    grid: &CellGrid,
    good: &[bool],
    clusters: &CellClusters,
    adj: Adjacency,
) -> SmallRegions {
    let giant = clusters.largest();
    // Complement mask: every cell not in the giant cluster.
    let mask: Vec<bool> = (0..good.len())
        .map(|c| match giant {
            Some(g) => clusters.label[c] != g,
            None => true,
        })
        .collect();
    let comp = CellClusters::label(&mask, clusters.side(), adj);
    let mut cells = vec![0usize; comp.count()];
    let mut nodes = vec![0usize; comp.count()];
    for c in 0..mask.len() {
        let l = comp.label[c];
        if l != usize::MAX {
            cells[l] += 1;
            nodes[l] += grid.members_of(c).len();
        }
    }
    let mut pairs: Vec<(usize, usize)> = cells.into_iter().zip(nodes).collect();
    pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(b.0.cmp(&a.0)));
    SmallRegions {
        cells: pairs.iter().map(|p| p.0).collect(),
        nodes: pairs.iter().map(|p| p.1).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_geom::Point;

    fn mask_from(rows: &[&str]) -> (Vec<bool>, usize) {
        let side = rows.len();
        let mut mask = vec![false; side * side];
        for (cy, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), side);
            for (cx, ch) in row.chars().enumerate() {
                mask[cy * side + cx] = ch == '#';
            }
        }
        (mask, side)
    }

    #[test]
    fn four_adjacency_clusters() {
        // A vertical chain is one 4-cluster…
        let (mask, side) = mask_from(&["##.", ".#.", ".##"]);
        let c = CellClusters::label(&mask, side, Adjacency::Four);
        assert_eq!(c.count(), 1);
        assert_eq!(c.largest_size(), 5);
        // …but separated pairs are not.
        let (mask, side) = mask_from(&["##.", "...", ".##"]);
        let c = CellClusters::label(&mask, side, Adjacency::Four);
        assert_eq!(c.count(), 2);
        assert_eq!(c.largest_size(), 2);
    }

    #[test]
    fn eight_adjacency_joins_diagonals() {
        let (mask, side) = mask_from(&["#..", ".#.", "..#"]);
        let four = CellClusters::label(&mask, side, Adjacency::Four);
        assert_eq!(four.count(), 3);
        let eight = CellClusters::label(&mask, side, Adjacency::Eight);
        assert_eq!(eight.count(), 1);
        assert_eq!(eight.largest_size(), 3);
    }

    #[test]
    fn empty_mask_has_no_clusters() {
        let (mask, side) = mask_from(&["...", "...", "..."]);
        let c = CellClusters::label(&mask, side, Adjacency::Eight);
        assert_eq!(c.count(), 0);
        assert_eq!(c.largest(), None);
        assert_eq!(c.largest_size(), 0);
    }

    #[test]
    fn labels_cover_exactly_masked_cells() {
        let (mask, side) = mask_from(&["##..", "..##", "#..#", "####"]);
        let c = CellClusters::label(&mask, side, Adjacency::Eight);
        for (i, (&m, &l)) in mask.iter().zip(&c.label).enumerate() {
            assert_eq!(m, l != usize::MAX, "cell {i}");
        }
        assert_eq!(
            c.sizes.iter().sum::<usize>(),
            mask.iter().filter(|&&b| b).count()
        );
    }

    #[test]
    fn small_regions_of_simple_grid() {
        // 4×4 grid; nodes only on the left half → left cells good, right
        // cells form the complement region.
        let mut pts = Vec::new();
        for cy in 0..4 {
            for cx in 0..2 {
                // two nodes per left cell
                pts.push(Point::new(cx as f64 * 0.25 + 0.1, cy as f64 * 0.25 + 0.1));
                pts.push(Point::new(cx as f64 * 0.25 + 0.12, cy as f64 * 0.25 + 0.12));
            }
        }
        // one stray node in the far right column
        pts.push(Point::new(0.9, 0.9));
        let grid = CellGrid::new(&pts, 0.25);
        assert_eq!(grid.side(), 4);
        let good = grid.good_mask(2);
        let clusters = CellClusters::label(&good, 4, Adjacency::Eight);
        assert_eq!(clusters.count(), 1);
        assert_eq!(clusters.largest_size(), 8);
        let regions = small_regions(&grid, &good, &clusters, Adjacency::Eight);
        assert_eq!(regions.count(), 1); // the whole right half
        assert_eq!(regions.max_cells(), 8);
        assert_eq!(regions.max_nodes(), 1); // just the stray node
    }

    #[test]
    fn full_mask_leaves_no_small_regions() {
        let (mask, side) = mask_from(&["##", "##"]);
        let pts = vec![Point::new(0.1, 0.1)];
        let grid = CellGrid::new(&pts, 0.5);
        let clusters = CellClusters::label(&mask, side, Adjacency::Eight);
        let regions = small_regions(&grid, &mask, &clusters, Adjacency::Eight);
        assert_eq!(regions.count(), 0);
        assert_eq!(regions.max_nodes(), 0);
    }
}
