//! End-to-end Theorem 5.2 measurement: given a point set and the
//! percolation radius, report both the *cell-level* structure (good cells,
//! giant cluster, small regions) and the *graph-level* structure (actual
//! connected components of `G(points, r)`), so experiments can verify the
//! theorem's claims directly:
//!
//! 1. a unique giant component with `Θ(n)` nodes exists;
//! 2. every non-giant component is trapped inside a small region;
//! 3. no small region holds more than `β·log² n` nodes.

use crate::cells::CellGrid;
use crate::clusters::{small_regions, Adjacency, CellClusters, SmallRegions};
use emst_geom::Point;
use emst_graph::{Components, Graph};

/// Joint cell- and graph-level giant-component statistics.
#[derive(Debug, Clone)]
pub struct GiantStats {
    /// Number of nodes.
    pub n: usize,
    /// Transmission radius analysed.
    pub radius: f64,
    /// Good-cell occupancy threshold used.
    pub threshold: usize,
    /// Total cells in the `r/2` grid.
    pub num_cells: usize,
    /// Cells meeting the occupancy threshold.
    pub good_cells: usize,
    /// Cells in the largest good cluster.
    pub giant_cluster_cells: usize,
    /// Small-region decomposition of the complement.
    pub regions: SmallRegions,
    /// Nodes in the largest connected component of `G(points, r)`.
    pub giant_component_nodes: usize,
    /// Number of connected components of `G(points, r)`.
    pub components: usize,
    /// Nodes in the largest *non-giant* component.
    pub second_component_nodes: usize,
}

impl GiantStats {
    /// Giant component size as a fraction of `n`.
    pub fn giant_fraction(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.giant_component_nodes as f64 / self.n as f64
        }
    }

    /// The empirical `β̂ = max-region-nodes / ln² n` — Theorem 5.2 predicts
    /// this stays bounded by a constant as `n` grows.
    pub fn beta_hat(&self) -> f64 {
        let l = (self.n.max(3) as f64).ln();
        self.regions.max_nodes() as f64 / (l * l)
    }

    /// Theorem 5.2's qualitative claim at threshold `beta`: a giant holding
    /// at least `min_fraction` of the nodes, with every small region below
    /// `beta·ln² n` nodes.
    pub fn theorem_holds(&self, min_fraction: f64, beta: f64) -> bool {
        let l = (self.n.max(3) as f64).ln();
        self.giant_fraction() >= min_fraction && (self.regions.max_nodes() as f64) <= beta * l * l
    }
}

/// Measures Theorem 5.2's structure at radius `r` with the paper's
/// thresholds (good = `n·r²/8` nodes, 8-adjacency).
///
/// ```
/// use emst_geom::{paper_phase1_radius, trial_rng, uniform_points};
/// let n = 1500;
/// let pts = uniform_points(n, &mut trial_rng(3, 0));
/// let s = emst_percolation::giant_stats(&pts, paper_phase1_radius(n));
/// assert!(s.giant_fraction() > 0.5);   // a giant component exists…
/// assert!(s.components > 1);           // …but the graph is not connected
/// ```
pub fn giant_stats(points: &[Point], r: f64) -> GiantStats {
    giant_stats_with(points, r, Adjacency::Eight)
}

/// Measurement with an explicit cell adjacency (4 vs 8) for ablation.
pub fn giant_stats_with(points: &[Point], r: f64, adj: Adjacency) -> GiantStats {
    let n = points.len();
    let grid = CellGrid::for_radius(points, r);
    let threshold = CellGrid::paper_threshold(n, r);
    let good = grid.good_mask(threshold);
    let clusters = CellClusters::label(&good, grid.side(), adj);
    let regions = small_regions(&grid, &good, &clusters, adj);

    let g = Graph::geometric(points, r);
    let comps = Components::of(&g);
    let mut sizes = comps.sizes.clone();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    GiantStats {
        n,
        radius: r,
        threshold,
        num_cells: grid.num_cells(),
        good_cells: good.iter().filter(|&&b| b).count(),
        giant_cluster_cells: clusters.largest_size(),
        regions,
        giant_component_nodes: sizes.first().copied().unwrap_or(0),
        components: comps.count(),
        second_component_nodes: sizes.get(1).copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_geom::{paper_phase1_radius, trial_rng, uniform_points};

    #[test]
    fn giant_emerges_at_paper_radius() {
        let n = 3000;
        let pts = uniform_points(n, &mut trial_rng(501, 0));
        let s = giant_stats(&pts, paper_phase1_radius(n));
        assert!(
            s.giant_fraction() > 0.25,
            "giant fraction {} too small at c1 = 1.96",
            s.giant_fraction()
        );
        assert!(s.components > 1, "phase-1 radius should leave small parts");
        // Small components stay polylog-sized.
        let l = (n as f64).ln();
        assert!(
            (s.second_component_nodes as f64) < 3.0 * l * l,
            "second component {} vs ln²n {}",
            s.second_component_nodes,
            l * l
        );
    }

    #[test]
    fn no_giant_below_threshold() {
        let n = 3000;
        let pts = uniform_points(n, &mut trial_rng(502, 0));
        // c1 = 0.09 is deep in the subcritical phase.
        let r = (0.09f64 / n as f64).sqrt();
        let s = giant_stats(&pts, r);
        assert!(
            s.giant_fraction() < 0.05,
            "unexpected giant {} below threshold",
            s.giant_fraction()
        );
    }

    #[test]
    fn everything_connected_at_large_radius() {
        let pts = uniform_points(400, &mut trial_rng(503, 0));
        let s = giant_stats(&pts, 1.5);
        assert_eq!(s.components, 1);
        assert_eq!(s.giant_component_nodes, 400);
        assert_eq!(s.giant_fraction(), 1.0);
        assert_eq!(s.second_component_nodes, 0);
    }

    #[test]
    fn beta_hat_is_finite_and_small_in_supercritical_cells() {
        // At the paper's c₁ = 1.96 the *cell-level* reduction is
        // subcritical (mean c/4 ≈ 0.5 nodes per cell, good-cell density
        // below the 8-neighbour site threshold ≈ 0.407) even though the
        // *graph-level* giant already exists — Theorem 5.2 is proved "for
        // sufficiently large c". Use c = 16 (mean 4 per cell, good density
        // ≈ 0.91) where the cell machinery is supercritical.
        let n = 2000;
        let pts = uniform_points(n, &mut trial_rng(504, 0));
        let s = giant_stats(&pts, (16.0 / n as f64).sqrt());
        assert!(s.beta_hat().is_finite());
        assert!(s.beta_hat() < 10.0, "beta_hat = {}", s.beta_hat());
        assert!(s.giant_cluster_cells > s.num_cells / 2);
    }

    #[test]
    fn theorem_holds_predicate() {
        let n = 2000;
        let pts = uniform_points(n, &mut trial_rng(505, 0));
        let s = giant_stats(&pts, (16.0 / n as f64).sqrt());
        assert!(s.theorem_holds(0.2, 10.0));
        assert!(!s.theorem_holds(1.1, 10.0)); // unsatisfiable fraction
    }

    #[test]
    fn cell_and_graph_views_are_consistent() {
        // The cell view uses the paper's L∞ simplification, so it is only a
        // constant-factor proxy for the Euclidean graph view: when a giant
        // cell cluster spans a constant fraction of the grid, the graph
        // giant must also hold a constant fraction of the nodes.
        let n = 2500;
        let pts = uniform_points(n, &mut trial_rng(506, 0));
        let s = giant_stats(&pts, (16.0 / n as f64).sqrt());
        let cell_fraction = s.giant_cluster_cells as f64 / s.num_cells as f64;
        assert!(cell_fraction > 0.2, "cell giant fraction {cell_fraction}");
        assert!(
            s.giant_fraction() > 0.25 * cell_fraction,
            "graph giant {} vs cell fraction {}",
            s.giant_fraction(),
            cell_fraction
        );
    }
}
