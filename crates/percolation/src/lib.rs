//! # emst-percolation — site-percolation analysis of random geometric graphs
//!
//! Machinery for validating Theorem 5.2 of the paper empirically: at the
//! percolation radius `r = √(c₁/n)` the random geometric graph has, whp,
//!
//! * a unique **giant component** with `Θ(n)` nodes, and
//! * all other components trapped in **small regions** — maximal clusters
//!   of non-good cells — each holding at most `β·log² n` nodes.
//!
//! The proof's reduction is implemented literally: subdivide the unit
//! square into cells of side `r/2` ([`CellGrid`]), mark cells holding at
//! least `c/8` nodes as *good*, cluster good cells ([`CellClusters`]), and
//! decompose the complement of the largest cluster into small regions
//! ([`clusters::small_regions`]). [`giant_stats`] joins this cell-level
//! view with the actual component structure of `G(points, r)`.

pub mod cells;
pub mod clusters;
pub mod stats;

pub use cells::CellGrid;
pub use clusters::{small_regions, Adjacency, CellClusters, SmallRegions};
pub use stats::{giant_stats, giant_stats_with, GiantStats};
