//! Distributed leader election — the problem the paper's lower bound is
//! really about.
//!
//! Section IV derives the `Ω(log n)` energy bound from Korach, Moran and
//! Zaks' message lower bound for *leader election / spanning tree
//! construction*, the two being classically equivalent. Two elections are
//! implemented over the radio model:
//!
//! * [`run_election_flood`] — the folklore max-id flood: every node
//!   repeatedly broadcasts the largest id it has heard whenever that value
//!   improves. Simple, `O(diameter)` time, but a node may re-announce up
//!   to `O(log n)` times in expectation (each improvement halves the
//!   candidates that could beat it), so the energy is `Θ(log² n)`-ish at
//!   the connectivity radius — the same class as plain GHS.
//! * [`run_election_tree`] — election along a BFS spanning tree: build
//!   the flooding tree ([`crate::bfs_tree`]), convergecast the maximum id
//!   to the root, and broadcast the winner back down. Exactly
//!   `n + 2(n−1)` messages and `Θ(log n)` energy — matching the Theorem
//!   4.1 lower bound, and a concrete witness that the spanning-tree ↔
//!   election equivalence preserves energy optimality.

use emst_graph::SpanningTree;
use emst_radio::{Ctx, Delivery, NodeProtocol, RadioNet, RunStats, SyncEngine};

/// Outcome of a leader election.
#[derive(Debug, Clone)]
pub struct ElectionOutcome {
    /// The elected leader (the maximum id of the root component).
    pub leader: usize,
    /// Whether every node agreed on that leader.
    pub agreed: bool,
    /// Energy/messages/rounds.
    pub stats: RunStats,
}

/// Max-id flooding node.
#[derive(Debug)]
struct FloodElect {
    radius: f64,
    best: usize,
    announced: Option<usize>,
}

impl NodeProtocol for FloodElect {
    type Msg = usize;

    fn on_round(&mut self, inbox: &[Delivery<usize>], ctx: &mut Ctx<'_, usize>) {
        for d in inbox {
            self.best = self.best.max(d.msg);
        }
        if self.announced != Some(self.best) {
            self.announced = Some(self.best);
            ctx.broadcast(self.radius, "elect/flood", self.best);
        }
    }

    fn done(&self) -> bool {
        self.announced == Some(self.best)
    }
}

/// Leader election by max-id flooding at `radius`.
pub fn run_election_flood(points: &[emst_geom::Point], radius: f64) -> ElectionOutcome {
    let n = points.len();
    if n == 0 {
        return ElectionOutcome {
            leader: 0,
            agreed: true,
            stats: RunStats::default(),
        };
    }
    let mut net = RadioNet::new(points, radius);
    net.cache_topology(radius);
    let nodes: Vec<FloodElect> = (0..n)
        .map(|i| FloodElect {
            radius,
            best: i,
            announced: None,
        })
        .collect();
    let mut eng = SyncEngine::new(net, nodes);
    eng.run(4 * n as u64 + 16).expect("flood election quiesces");
    let (net, nodes) = eng.into_parts();
    let leader = nodes.iter().map(|e| e.best).max().unwrap_or(0);
    let agreed = nodes.iter().all(|e| e.best == leader);
    ElectionOutcome {
        leader,
        agreed,
        stats: RunStats::capture(&net),
    }
}

/// Leader election along a BFS spanning tree: one flood to build the tree
/// (`n` broadcasts), a convergecast of the maximum id (`n−1` unicasts),
/// and a winner broadcast down the tree (`n−1` unicasts).
pub fn run_election_tree(points: &[emst_geom::Point], radius: f64) -> ElectionOutcome {
    let n = points.len();
    if n == 0 {
        return ElectionOutcome {
            leader: 0,
            agreed: true,
            stats: RunStats::default(),
        };
    }
    let bfs = crate::bfs_tree::run_bfs_inner(
        points,
        radius,
        0,
        emst_radio::EnergyConfig::paper(),
        None,
        None,
        None,
    )
    .unwrap_or_else(|(e, _)| panic!("{e}"));
    let mut stats = bfs.stats.clone();
    // Orchestrated convergecast + downcast along the tree, charged per
    // hop on a fresh net handle and absorbed into the stats.
    let mut net = RadioNet::new(points, radius);
    let tree: &SpanningTree = &bfs.tree;
    let adj = tree.adjacency();
    // Orientation: parent via BFS from the root.
    let mut parent = vec![usize::MAX; n];
    parent[0] = 0;
    let mut order = vec![0usize];
    let mut qi = 0;
    while qi < order.len() {
        let u = order[qi];
        qi += 1;
        for &v in &adj[u] {
            if parent[v] == usize::MAX {
                parent[v] = u;
                order.push(v);
            }
        }
    }
    // Convergecast (leaf → root): each non-root reports its subtree max.
    let mut submax: Vec<usize> = (0..n).collect();
    for &u in order.iter().rev() {
        if parent[u] != u && parent[u] != usize::MAX {
            net.unicast(u, parent[u], "elect/convergecast");
            let p = parent[u];
            submax[p] = submax[p].max(submax[u]);
        }
    }
    let leader = submax[0];
    // Winner broadcast (root → leaves).
    for &u in &order {
        if parent[u] != u && parent[u] != usize::MAX {
            net.unicast(parent[u], u, "elect/winner");
        }
    }
    net.advance_rounds(2 * tree.depth_from(0) as u64);
    stats.absorb(&RunStats::capture(&net));
    // Agreement holds for every node the tree reaches.
    let agreed = bfs.reached == n;
    ElectionOutcome {
        leader,
        agreed,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_geom::{paper_phase2_radius, trial_rng, uniform_points, Point};

    #[test]
    fn flood_elects_global_max() {
        let n = 300;
        let pts = uniform_points(n, &mut trial_rng(1001, 0));
        let out = run_election_flood(&pts, paper_phase2_radius(n));
        assert_eq!(out.leader, n - 1);
        assert!(out.agreed);
        assert!(out.stats.messages >= n as u64);
    }

    #[test]
    fn tree_elects_global_max_with_exact_message_count() {
        let n = 300;
        let pts = uniform_points(n, &mut trial_rng(1002, 0));
        let out = run_election_tree(&pts, paper_phase2_radius(n));
        assert_eq!(out.leader, n - 1);
        assert!(out.agreed);
        // n tree broadcasts + (n−1) up + (n−1) down.
        assert_eq!(out.stats.messages, (n + 2 * (n - 1)) as u64);
    }

    #[test]
    fn tree_election_is_cheaper_than_flooding() {
        let n = 800;
        let pts = uniform_points(n, &mut trial_rng(1003, 0));
        let r = paper_phase2_radius(n);
        let flood = run_election_flood(&pts, r);
        let tree = run_election_tree(&pts, r);
        assert_eq!(flood.leader, tree.leader);
        assert!(
            tree.stats.energy < flood.stats.energy,
            "tree {} vs flood {}",
            tree.stats.energy,
            flood.stats.energy
        );
    }

    #[test]
    fn disconnected_instance_elects_component_leader() {
        let pts = vec![
            Point::new(0.1, 0.1),
            Point::new(0.12, 0.1),
            Point::new(0.9, 0.9),
        ];
        let out = run_election_flood(&pts, 0.1);
        // Node 2 never hears 0/1 and stays its own leader.
        assert!(!out.agreed);
        assert_eq!(out.leader, 2);
        let tree = run_election_tree(&pts, 0.1);
        assert!(!tree.agreed);
        assert_eq!(tree.leader, 1, "root component max id");
    }

    #[test]
    fn single_node_elects_itself() {
        let pts = vec![Point::new(0.5, 0.5)];
        let out = run_election_flood(&pts, 0.2);
        assert_eq!(out.leader, 0);
        assert!(out.agreed);
    }
}
