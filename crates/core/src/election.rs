//! Distributed leader election — the problem the paper's lower bound is
//! really about.
//!
//! Section IV derives the `Ω(log n)` energy bound from Korach, Moran and
//! Zaks' message lower bound for *leader election / spanning tree
//! construction*, the two being classically equivalent. Two elections are
//! implemented over the radio model:
//!
//! * [`Protocol::ElectionFlood`](crate::Protocol::ElectionFlood) — the
//!   folklore max-id flood: every node repeatedly broadcasts the largest
//!   id it has heard whenever that value improves. Simple, `O(diameter)`
//!   time, but a node may re-announce up to `O(log n)` times in
//!   expectation (each improvement halves the candidates that could beat
//!   it), so the energy is `Θ(log² n)`-ish at the connectivity radius —
//!   the same class as plain GHS.
//! * [`Protocol::ElectionTree`](crate::Protocol::ElectionTree) — election
//!   along a BFS spanning tree: build the flooding tree
//!   ([`crate::bfs_tree`]), convergecast the maximum id to the root, and
//!   broadcast the winner back down. Exactly `n + 2(n−1)` messages and
//!   `Θ(log n)` energy — matching the Theorem 4.1 lower bound, and a
//!   concrete witness that the spanning-tree ↔ election equivalence
//!   preserves energy optimality.
//!
//! Both run through the shared [`crate::ExecEnv`], so they honour the
//! configured energy model, fault plan, contention layer and trace sink
//! like every other protocol (historically they silently ignored all
//! four).

use crate::sim::RunError;
use emst_graph::SpanningTree;
use emst_radio::{Ctx, Delivery, NodeProtocol};

/// Max-id flooding node.
#[derive(Debug)]
struct FloodElect {
    radius: f64,
    best: usize,
    announced: Option<usize>,
}

impl NodeProtocol for FloodElect {
    type Msg = usize;

    fn on_round(&mut self, inbox: &[Delivery<usize>], ctx: &mut Ctx<'_, usize>) {
        for d in inbox {
            self.best = self.best.max(d.msg);
        }
        if self.announced != Some(self.best) {
            self.announced = Some(self.best);
            ctx.broadcast(self.radius, "elect/flood", self.best);
        }
    }

    fn done(&self) -> bool {
        self.announced == Some(self.best)
    }
}

/// Result of a leader election (leader/agreement read-outs plus the tree
/// the election ran over: empty forest for the flood, the BFS tree for the
/// tree election; stats live on the [`crate::ExecEnv`]).
pub(crate) struct ElectionRun {
    pub tree: SpanningTree,
    pub leader: usize,
    pub agreed: bool,
}

/// Leader election by max-id flooding at `radius`, as a single reactive
/// stage against the shared execution environment.
pub(crate) fn drive_flood(
    env: &mut crate::ExecEnv<'_>,
    radius: f64,
) -> Result<ElectionRun, RunError> {
    let n = env.n();
    env.cache_topology(radius);
    let nodes: Vec<FloodElect> = (0..n)
        .map(|i| FloodElect {
            radius,
            best: i,
            announced: None,
        })
        .collect();
    // Logical round budget; under faults each re-announcement wave can be
    // stretched by the retry budget.
    let mut budget = 4 * n as u64 + 16;
    if env.faulted() {
        budget += n as u64 * env.retry_slack() + 8;
    }
    // A flood starved by losses still yields a (possibly disagreeing)
    // per-node view: tolerate the round-limit overrun under faults.
    let nodes = env.run_nodes_tolerant("elect", "flood", nodes, budget)?;
    let leader = nodes.iter().map(|e| e.best).max().unwrap_or(0);
    let agreed = nodes.iter().all(|e| e.best == leader);
    Ok(ElectionRun {
        tree: SpanningTree::new(n, Vec::new()),
        leader,
        agreed,
    })
}

/// Leader election along a BFS spanning tree: one flood to build the tree
/// (`n` broadcasts), a convergecast of the maximum id (`n−1` unicasts),
/// and a winner broadcast down the tree (`n−1` unicasts) — both tree legs
/// as one orchestrated stage on the same shared network.
pub(crate) fn drive_tree(
    env: &mut crate::ExecEnv<'_>,
    radius: f64,
) -> Result<ElectionRun, RunError> {
    let n = env.n();
    let bfs = crate::bfs_tree::drive(env, radius, 0)?;
    let tree = bfs.tree;
    let adj = tree.adjacency();
    // Orientation: parent via BFS from the root.
    let mut parent = vec![usize::MAX; n];
    parent[0] = 0;
    let mut order = vec![0usize];
    let mut qi = 0;
    while qi < order.len() {
        let u = order[qi];
        qi += 1;
        for &v in &adj[u] {
            if parent[v] == usize::MAX {
                parent[v] = u;
                order.push(v);
            }
        }
    }
    let mut submax: Vec<usize> = (0..n).collect();
    let leader = env.stage("elect", "convergecast", |net| {
        // Convergecast (leaf → root): each non-root reports its subtree
        // max.
        for &u in order.iter().rev() {
            if parent[u] != u && parent[u] != usize::MAX {
                net.unicast(u, parent[u], "elect/convergecast");
                let p = parent[u];
                submax[p] = submax[p].max(submax[u]);
            }
        }
        let leader = submax[0];
        // Winner broadcast (root → leaves).
        for &u in &order {
            if parent[u] != u && parent[u] != usize::MAX {
                net.unicast(parent[u], u, "elect/winner");
            }
        }
        net.advance_rounds(2 * tree.depth_from(0) as u64);
        leader
    });
    // Agreement holds for every node the tree reaches.
    let agreed = bfs.reached == n;
    Ok(ElectionRun {
        tree,
        leader,
        agreed,
    })
}

#[cfg(test)]
mod tests {
    use crate::{ElectionDetail, Protocol, RunOutput, Sim};
    use emst_geom::{paper_phase2_radius, trial_rng, uniform_points, Point};
    use emst_radio::FaultPlan;

    fn flood(pts: &[Point], r: f64) -> RunOutput {
        Sim::new(pts).radius(r).run(Protocol::ElectionFlood)
    }

    fn tree(pts: &[Point], r: f64) -> RunOutput {
        Sim::new(pts).radius(r).run(Protocol::ElectionTree)
    }

    fn election(out: &RunOutput) -> &ElectionDetail {
        out.detail.as_election().expect("election run")
    }

    #[test]
    fn flood_elects_global_max() {
        let n = 300;
        let pts = uniform_points(n, &mut trial_rng(1001, 0));
        let out = flood(&pts, paper_phase2_radius(n));
        assert_eq!(election(&out).leader, n - 1);
        assert!(election(&out).agreed);
        assert!(out.stats.messages >= n as u64);
    }

    #[test]
    fn tree_elects_global_max_with_exact_message_count() {
        let n = 300;
        let pts = uniform_points(n, &mut trial_rng(1002, 0));
        let out = tree(&pts, paper_phase2_radius(n));
        assert_eq!(election(&out).leader, n - 1);
        assert!(election(&out).agreed);
        // n tree broadcasts + (n−1) up + (n−1) down.
        assert_eq!(out.stats.messages, (n + 2 * (n - 1)) as u64);
        // The tree the election ran over is the BFS tree itself.
        assert_eq!(out.tree.edges().len(), n - 1);
    }

    #[test]
    fn tree_election_is_cheaper_than_flooding() {
        let n = 800;
        let pts = uniform_points(n, &mut trial_rng(1003, 0));
        let r = paper_phase2_radius(n);
        let f = flood(&pts, r);
        let t = tree(&pts, r);
        assert_eq!(election(&f).leader, election(&t).leader);
        assert!(
            t.stats.energy < f.stats.energy,
            "tree {} vs flood {}",
            t.stats.energy,
            f.stats.energy
        );
    }

    #[test]
    fn disconnected_instance_elects_component_leader() {
        let pts = vec![
            Point::new(0.1, 0.1),
            Point::new(0.12, 0.1),
            Point::new(0.9, 0.9),
        ];
        let out = flood(&pts, 0.1);
        // Node 2 never hears 0/1 and stays its own leader.
        assert!(!election(&out).agreed);
        assert_eq!(election(&out).leader, 2);
        let t = tree(&pts, 0.1);
        assert!(!election(&t).agreed);
        assert_eq!(election(&t).leader, 1, "root component max id");
    }

    #[test]
    fn single_node_elects_itself() {
        let pts = vec![Point::new(0.5, 0.5)];
        let out = flood(&pts, 0.2);
        assert_eq!(election(&out).leader, 0);
        assert!(election(&out).agreed);
    }

    #[test]
    fn lossy_fault_plan_changes_election_stats() {
        // Regression: elections used to build a bare `RadioNet::new` that
        // silently ignored the configured fault plan (and energy model).
        // Through the shared env a lossy plan must visibly perturb the run.
        let n = 200;
        let pts = uniform_points(n, &mut trial_rng(1005, 0));
        let r = paper_phase2_radius(n);
        let clean = flood(&pts, r);
        let plan = FaultPlan::none().drop_probability(0.2).seed(11).retries(2);
        let outcome = Sim::new(&pts)
            .radius(r)
            .with_faults(plan)
            .try_run(Protocol::ElectionFlood);
        let faults = outcome.faults();
        assert!(faults.drops > 0, "lossy plan must actually drop messages");
        let out = outcome
            .output()
            .expect("lossy flood still yields per-node views")
            .clone();
        assert!(
            out.stats.messages != clean.stats.messages
                || out.stats.energy != clean.stats.energy
                || out.stats.rounds != clean.stats.rounds,
            "fault plan left no trace on election stats"
        );
    }
}
