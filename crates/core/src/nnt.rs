//! Co-NNT — the coordinate-aware nearest-neighbour-tree algorithm (§VI):
//! `O(1)` expected energy, `O(n)` expected messages, constant-factor
//! approximation to the MST.
//!
//! Every node `u` knows its own coordinates and connects to the *nearest
//! node of higher rank*, where `rank(u) < rank(v)` iff
//! `xᵤ+yᵤ < xᵥ+yᵥ` (ties by `y`) — the diagonal ranking introduced by this
//! paper. To find that node, `u` transmits a *request* carrying its
//! coordinates at doubling-area radii `rᵢ = √(2ⁱ/n)`, `i = 1, …,
//! ⌈lg(n·Lᵤ²)⌉`, where `Lᵤ` is the *potential distance* — the distance to
//! the farthest point of `u`'s potential region `Rᵤ` (the part of the unit
//! square with higher rank). Any higher-ranked receiver unicasts a *reply*;
//! `u` picks the nearest replier and sends a *connect*.
//!
//! The resulting edge set is acyclic (edges strictly increase rank) and
//! spans all nodes except the globally highest-ranked one — a spanning
//! tree. Theorem 6.1 shows `E[Σ|e|²] ≤ 4`, hence the constant
//! approximation.
//!
//! The x-ranking of Khan et al. \[15\] (`rank` by `x`, ties by `y`) is also
//! implemented for the A3 ablation: it achieves the same expected bounds
//! but its worst nodes must probe `Θ(1)` distances, which is why §VI calls
//! it unsuitable for the unit-disk regime — observable here as a much
//! larger maximum edge length.
//!
//! This protocol runs on the reactive discrete-event engine: each probe
//! phase occupies three synchronous rounds (request broadcast → replies →
//! connect).

use crate::sim::RunError;
use emst_geom::{diag_rank_less, nnt_probe_phases, nnt_probe_radius, x_rank_less, Point};
use emst_graph::{Edge, SpanningTree};
use emst_radio::{Ctx, Delivery, NodeProtocol};

/// Which total order on nodes to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankScheme {
    /// This paper's ranking: by `x + y`, ties by `y` (§VI).
    Diagonal,
    /// Khan et al. \[15\]: by `x`, ties by `y` (ablation baseline).
    XOrder,
    /// Coordinate-free ranking by node id — the NNT of Khan–Pandurangan
    /// \[14\]/\[15\] that needs no location information but only guarantees an
    /// `O(log n)` approximation (§III, Related Work). Included as the
    /// related-work comparator: its nearest higher-ranked node can be
    /// anywhere in the square.
    NodeId,
}

impl RankScheme {
    /// Strict rank order on `(id, position)` pairs.
    #[inline]
    pub fn less(&self, u: (usize, &Point), v: (usize, &Point)) -> bool {
        match self {
            RankScheme::Diagonal => diag_rank_less(u.1, v.1),
            RankScheme::XOrder => x_rank_less(u.1, v.1),
            RankScheme::NodeId => u.0 < v.0,
        }
    }

    /// The potential distance `Lᵤ`: distance from `u` to the farthest point
    /// of its potential region. The region is a convex polygon (half-plane
    /// ∩ unit square), so the farthest point is one of its vertices.
    pub fn potential_distance(&self, u: &Point) -> f64 {
        let candidates: Vec<Point> = match self {
            RankScheme::Diagonal => {
                let s = u.x + u.y;
                if s <= 1.0 {
                    vec![
                        Point::new(s, 0.0),
                        Point::new(1.0, 0.0),
                        Point::new(1.0, 1.0),
                        Point::new(0.0, 1.0),
                        Point::new(0.0, s),
                    ]
                } else {
                    vec![
                        Point::new(1.0, s - 1.0),
                        Point::new(1.0, 1.0),
                        Point::new(s - 1.0, 1.0),
                    ]
                }
            }
            RankScheme::XOrder => vec![
                Point::new(u.x, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(u.x, 1.0),
            ],
            // Without coordinates the higher-id node can sit anywhere.
            RankScheme::NodeId => vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(0.0, 1.0),
                Point::new(1.0, 1.0),
            ],
        };
        candidates.iter().map(|c| u.dist(c)).fold(0.0, f64::max)
    }

    /// The potential area `Aᵤ`: area of the potential region (the part of
    /// the unit square holding higher-ranked positions). For the id rank
    /// the region is position-independent (the whole square).
    pub fn potential_area(&self, u: &Point) -> f64 {
        match self {
            RankScheme::Diagonal => {
                let s = u.x + u.y;
                if s <= 1.0 {
                    // Complement of the lower-left triangle below x+y = s.
                    1.0 - s * s / 2.0
                } else {
                    // Upper-right triangle above x+y = s.
                    let t = 2.0 - s;
                    t * t / 2.0
                }
            }
            RankScheme::XOrder => 1.0 - u.x,
            RankScheme::NodeId => 1.0,
        }
    }

    /// The potential angle `αᵤ = 2·Aᵤ/Lᵤ²` (§VI): the angle of a pie slice
    /// of radius `Lᵤ` whose area equals the potential area. Lemma 6.1
    /// proves `αᵤ ≥ 1/2` for the diagonal ranking — the key to the `O(1)`
    /// energy bound. Returns +∞ for the degenerate top-ranked corner
    /// (`Lᵤ = 0`).
    pub fn potential_angle(&self, u: &Point) -> f64 {
        let l = self.potential_distance(u);
        if l <= 0.0 {
            return f64::INFINITY;
        }
        2.0 * self.potential_area(u) / (l * l)
    }
}

/// Protocol messages. Requests carry the sender's coordinates
/// (`O(log n)` bits at fixed precision), which lets receivers compare
/// ranks and aim their reply power exactly.
#[derive(Debug, Clone)]
pub enum NntMsg {
    /// "Is anyone of higher rank in range?" with the sender's position.
    Request(Point),
    /// "I am; here I am." (Distance is measured physically on receipt.)
    Reply,
    /// "You are my parent."
    Connect,
}

/// Per-node Co-NNT state machine.
#[derive(Debug)]
pub struct NntNode {
    scheme: RankScheme,
    /// Probe phases this node may use (from its potential distance).
    max_phases: u32,
    /// Next probe phase (1-based).
    phase: u32,
    /// Chosen parent and distance, once connected.
    parent: Option<(usize, f64)>,
    /// Number of probe phases actually transmitted.
    phases_used: u32,
    /// Replies received in the current phase.
    best_reply: Option<(usize, f64)>,
    exhausted: bool,
}

impl NntNode {
    fn new(scheme: RankScheme, max_phases: u32) -> Self {
        NntNode {
            scheme,
            max_phases,
            phase: 1,
            parent: None,
            phases_used: 0,
            best_reply: None,
            exhausted: false,
        }
    }

    /// The chosen parent, if any.
    pub fn parent(&self) -> Option<(usize, f64)> {
        self.parent
    }

    /// Probe phases transmitted by this node.
    pub fn phases_used(&self) -> u32 {
        self.phases_used
    }
}

impl NodeProtocol for NntNode {
    type Msg = NntMsg;

    fn on_round(&mut self, inbox: &[Delivery<NntMsg>], ctx: &mut Ctx<'_, NntMsg>) {
        let me = ctx.pos();
        // Serve requests regardless of own progress: higher-ranked nodes
        // must answer even after they have connected.
        for d in inbox {
            match &d.msg {
                NntMsg::Request(sender_pos) => {
                    if self.scheme.less((d.from, sender_pos), (ctx.me(), &me)) {
                        ctx.unicast(d.from, "nnt/reply", NntMsg::Reply);
                    }
                }
                NntMsg::Reply => {
                    let better = match self.best_reply {
                        None => true,
                        Some((_, bd)) => d.dist < bd,
                    };
                    if better {
                        self.best_reply = Some((d.from, d.dist));
                    }
                }
                NntMsg::Connect => { /* parent side: nothing to do */ }
            }
        }
        if self.parent.is_some() || self.exhausted {
            return;
        }
        // Phase i spans rounds 3(i−1) (request), +1 (replies), +2 (connect).
        let round = ctx.round();
        let phase_round = round % 3;
        let current = (round / 3 + 1) as u32;
        match phase_round {
            0 if current == self.phase => {
                if self.phase > self.max_phases {
                    self.exhausted = true;
                    return;
                }
                let r = nnt_probe_radius(self.phase, ctx.n().max(2));
                self.best_reply = None;
                self.phases_used += 1;
                ctx.broadcast(r, "nnt/request", NntMsg::Request(me));
            }
            2 if current == self.phase => {
                if let Some((p, d)) = self.best_reply.take() {
                    ctx.unicast(p, "nnt/connect", NntMsg::Connect);
                    self.parent = Some((p, d));
                } else {
                    self.phase += 1;
                    if self.phase > self.max_phases {
                        self.exhausted = true;
                    }
                }
            }
            _ => {}
        }
    }

    fn done(&self) -> bool {
        self.parent.is_some() || self.exhausted
    }
}

/// Result of the Co-NNT probe ladder (tree + read-outs; stats live on the
/// [`crate::ExecEnv`]).
pub(crate) struct NntRun {
    pub tree: SpanningTree,
    pub unconnected: usize,
    pub max_phases_used: u32,
}

/// Co-NNT as a single reactive stage against the shared execution
/// environment. The env's network is sized for the common early probe
/// radius; larger probes still resolve correctly (they scan more cells).
pub(crate) fn drive(env: &mut crate::ExecEnv<'_>, scheme: RankScheme) -> Result<NntRun, RunError> {
    let n = env.n();
    let nodes: Vec<NntNode> = env
        .net()
        .points()
        .iter()
        .map(|p| {
            let l = scheme.potential_distance(p);
            NntNode::new(scheme, nnt_probe_phases(l, n.max(2)))
        })
        .collect();
    let worst = nodes.iter().map(|nd| nd.max_phases).max().unwrap_or(1);
    // Logical (MAC-agnostic) round budget; retransmissions stretch each
    // 3-round probe phase by up to the retry budget.
    let mut budget = 3 * worst as u64 + 6;
    if env.faulted() {
        budget += 3 * worst as u64 * env.retry_slack() + 9;
    }
    // Under faults a round-limit overrun means some probe schedule was
    // starved by losses: the tolerant runner reports the partial tree as a
    // degraded outcome rather than aborting the trial.
    let nodes = env.run_nodes_tolerant("nnt", "probe", nodes, budget)?;
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    let mut unconnected = 0usize;
    let mut max_phases_used = 0u32;
    for (u, node) in nodes.iter().enumerate() {
        max_phases_used = max_phases_used.max(node.phases_used());
        match node.parent() {
            Some((p, d)) => edges.push(Edge::new(u, p, d)),
            None => unconnected += 1,
        }
    }
    Ok(NntRun {
        tree: SpanningTree::new(n, edges),
        unconnected,
        max_phases_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Protocol, RunOutput, Sim};
    use emst_geom::{trial_rng, uniform_points};

    fn run_nnt(pts: &[Point]) -> RunOutput {
        Sim::new(pts).run(Protocol::Nnt(RankScheme::Diagonal))
    }

    fn run_nnt_with(pts: &[Point], scheme: RankScheme) -> RunOutput {
        Sim::new(pts).run(Protocol::Nnt(scheme))
    }

    fn unconnected(out: &RunOutput) -> usize {
        out.detail.as_nnt().expect("NNT run").unconnected
    }

    #[test]
    fn potential_distance_known_points() {
        let s = RankScheme::Diagonal;
        // Origin: whole square is the potential region; farthest is (1,1).
        assert!((s.potential_distance(&Point::new(0.0, 0.0)) - 2f64.sqrt()).abs() < 1e-12);
        // (1,0): region is the upper triangle; farthest is (0,1).
        assert!((s.potential_distance(&Point::new(1.0, 0.0)) - 2f64.sqrt()).abs() < 1e-12);
        // (1,1): top rank; region degenerates to a point.
        assert!(s.potential_distance(&Point::new(1.0, 1.0)) < 1e-12);
        let x = RankScheme::XOrder;
        // x-rank from (0, 0.5): farthest is a right corner.
        let expect = Point::new(0.0, 0.5).dist(&Point::new(1.0, 1.0));
        assert!((x.potential_distance(&Point::new(0.0, 0.5)) - expect).abs() < 1e-12);
    }

    #[test]
    fn potential_area_known_points() {
        let d = RankScheme::Diagonal;
        // Origin: whole square has higher rank.
        assert!((d.potential_area(&Point::new(0.0, 0.0)) - 1.0).abs() < 1e-12);
        // Centre of the diagonal: half the square minus nothing → s = 1,
        // area = 1 − 1/2 = 1/2.
        assert!((d.potential_area(&Point::new(0.5, 0.5)) - 0.5).abs() < 1e-12);
        // Top corner: nothing above.
        assert!(d.potential_area(&Point::new(1.0, 1.0)) < 1e-12);
        let x = RankScheme::XOrder;
        assert!((x.potential_area(&Point::new(0.25, 0.9)) - 0.75).abs() < 1e-12);
        assert!((RankScheme::NodeId.potential_area(&Point::new(0.3, 0.3)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lemma_6_1_potential_angle_at_least_half() {
        // αᵤ ≥ 1/2 radian for every node under the diagonal ranking.
        let pts = uniform_points(2000, &mut trial_rng(313, 0));
        let d = RankScheme::Diagonal;
        for p in &pts {
            let a = d.potential_angle(p);
            assert!(a >= 0.5 - 1e-9, "alpha = {a} at {p}");
        }
        // Boundary cases from the proof's Figure 2.
        assert!(d.potential_angle(&Point::new(1.0, 0.0)) >= 0.5 - 1e-9);
        assert!(d.potential_angle(&Point::new(0.0, 0.0)) >= 0.5 - 1e-9);
    }

    #[test]
    fn lemma_6_2_expected_squared_parent_distance_bound() {
        // E[dᵤ²] ≤ 2/(n·αᵤ): check the empirical parent distances of a
        // Co-NNT run against the per-node bound, averaged (the bound is in
        // expectation over placements, so compare sums with slack).
        let n = 1500;
        let pts = uniform_points(n, &mut trial_rng(314, 0));
        let out = run_nnt(&pts);
        let d = RankScheme::Diagonal;
        let mut sum_sq = 0.0;
        let mut sum_bound = 0.0;
        for e in out.tree.edges() {
            let (u, v) = e.endpoints();
            let child = if emst_geom::diag_rank_less(&pts[u], &pts[v]) {
                u
            } else {
                v
            };
            sum_sq += e.w * e.w;
            sum_bound += 2.0 / (n as f64 * d.potential_angle(&pts[child]));
        }
        assert!(
            sum_sq <= sum_bound * 1.5,
            "Σ d² = {sum_sq} exceeds Lemma 6.2 budget {sum_bound}"
        );
        // Theorem 6.1: the absolute bound E[Σ|e|²] ≤ 4.
        assert!(sum_sq <= 4.0, "Theorem 6.1 bound violated: {sum_sq}");
    }

    #[test]
    fn potential_distance_covers_nearest_higher_rank() {
        // The nearest higher-ranked node always lies within Lᵤ.
        let pts = uniform_points(300, &mut trial_rng(301, 0));
        for scheme in [RankScheme::Diagonal, RankScheme::XOrder, RankScheme::NodeId] {
            for u in 0..pts.len() {
                let lu = scheme.potential_distance(&pts[u]);
                let nearest = (0..pts.len())
                    .filter(|&v| v != u && scheme.less((u, &pts[u]), (v, &pts[v])))
                    .map(|v| pts[u].dist(&pts[v]))
                    .fold(f64::INFINITY, f64::min);
                if nearest.is_finite() {
                    assert!(
                        nearest <= lu + 1e-12,
                        "{scheme:?}: node {u} nearest {nearest} > Lu {lu}"
                    );
                }
            }
        }
    }

    #[test]
    fn nnt_builds_valid_spanning_tree() {
        for seed in 0..5 {
            let pts = uniform_points(200, &mut trial_rng(302, seed));
            let out = run_nnt(&pts);
            assert!(
                out.tree.is_valid(),
                "seed {seed}: {:?}",
                out.tree.validate()
            );
            assert_eq!(unconnected(&out), 1, "only the top-ranked node is free");
        }
    }

    #[test]
    fn nnt_connects_to_nearest_higher_ranked_node() {
        let pts = uniform_points(150, &mut trial_rng(303, 0));
        let out = run_nnt(&pts);
        // Reconstruct parents from edges.
        let mut parent = vec![usize::MAX; pts.len()];
        for e in out.tree.edges() {
            let (u, v) = e.endpoints();
            // The lower-ranked endpoint is the child.
            if diag_rank_less(&pts[u], &pts[v]) {
                parent[u] = v;
            } else {
                parent[v] = u;
            }
        }
        for u in 0..pts.len() {
            let brute = (0..pts.len())
                .filter(|&v| v != u && diag_rank_less(&pts[u], &pts[v]))
                .min_by(|&a, &b| pts[u].dist(&pts[a]).total_cmp(&pts[u].dist(&pts[b])));
            match brute {
                Some(b) => assert_eq!(parent[u], b, "node {u}: got parent {} want {b}", parent[u]),
                None => assert_eq!(parent[u], usize::MAX, "top node must be root"),
            }
        }
    }

    #[test]
    fn xorder_scheme_also_spans() {
        let pts = uniform_points(200, &mut trial_rng(304, 0));
        let out = run_nnt_with(&pts, RankScheme::XOrder);
        assert!(out.tree.is_valid());
        assert_eq!(unconnected(&out), 1);
    }

    #[test]
    fn nnt_message_count_is_linear() {
        // Expected O(n) messages (Theorem 6.2); assert a generous linear
        // bound that a quadratic regression would break immediately.
        let n = 1000;
        let pts = uniform_points(n, &mut trial_rng(305, 0));
        let out = run_nnt(&pts);
        assert!(
            out.stats.messages < 40 * n as u64,
            "messages {} not O(n)",
            out.stats.messages
        );
    }

    #[test]
    fn nnt_energy_is_constant_scale() {
        // Theorem 6.2: E[energy] = O(1). Check it does not grow with n.
        let e_small = run_nnt(&uniform_points(200, &mut trial_rng(306, 0)))
            .stats
            .energy;
        let e_large = run_nnt(&uniform_points(3200, &mut trial_rng(306, 1)))
            .stats
            .energy;
        assert!(
            e_large < e_small * 4.0 + 10.0,
            "energy grew from {e_small} to {e_large}"
        );
    }

    #[test]
    fn nnt_quality_is_constant_factor_of_mst() {
        let pts = uniform_points(500, &mut trial_rng(307, 0));
        let out = run_nnt(&pts);
        let mst = emst_graph::euclidean_mst(&pts);
        let ratio1 = out.tree.cost(1.0) / mst.cost(1.0);
        let ratio2 = out.tree.cost(2.0) / mst.cost(2.0);
        assert!((1.0 - 1e-9..2.5).contains(&ratio1), "length ratio {ratio1}");
        assert!((1.0 - 1e-9..4.0).contains(&ratio2), "energy ratio {ratio2}");
    }

    #[test]
    fn tiny_instances() {
        assert!(run_nnt(&[]).tree.is_valid());
        let one = run_nnt(&[Point::new(0.3, 0.3)]);
        assert!(one.tree.is_valid());
        assert_eq!(unconnected(&one), 1);
        let two = run_nnt(&[Point::new(0.2, 0.2), Point::new(0.8, 0.8)]);
        assert!(two.tree.is_valid());
        assert_eq!(two.tree.edges().len(), 1);
    }

    #[test]
    fn node_id_scheme_spans_and_roots_at_max_id() {
        let pts = uniform_points(150, &mut trial_rng(309, 0));
        let out = run_nnt_with(&pts, RankScheme::NodeId);
        assert!(out.tree.is_valid(), "{:?}", out.tree.validate());
        assert_eq!(unconnected(&out), 1);
        // Every edge connects a node to the true nearest higher-id node.
        let mut parent = vec![usize::MAX; pts.len()];
        for e in out.tree.edges() {
            let (u, v) = e.endpoints();
            // endpoints are normalised u < v, and ranks are ids: v is the
            // parent of u only if v is u's choice; but u < v always, so the
            // child is the lower id exactly when the edge came from u.
            parent[u] = v;
        }
        for u in 0..pts.len() - 1 {
            let brute = ((u + 1)..pts.len())
                .min_by(|&a, &b| pts[u].dist(&pts[a]).total_cmp(&pts[u].dist(&pts[b])))
                .unwrap();
            assert_eq!(parent[u], brute, "node {u}");
        }
        assert_eq!(parent[pts.len() - 1], usize::MAX);
    }

    #[test]
    fn node_id_scheme_is_worse_approximation_than_diagonal() {
        // [15]'s id-rank NNT is an O(log n) approximation; the diagonal
        // rank is O(1). At moderate n the id-rank cost must already be
        // visibly worse.
        let pts = uniform_points(800, &mut trial_rng(310, 0));
        let diag = run_nnt_with(&pts, RankScheme::Diagonal);
        let byid = run_nnt_with(&pts, RankScheme::NodeId);
        let mst = emst_graph::euclidean_mst(&pts);
        let r_diag = diag.tree.cost(1.0) / mst.cost(1.0);
        let r_id = byid.tree.cost(1.0) / mst.cost(1.0);
        assert!(
            r_id > r_diag * 1.25,
            "id-rank ratio {r_id} should clearly exceed diagonal {r_diag}"
        );
    }

    #[test]
    fn nnt_under_contention_builds_the_same_tree_at_higher_cost() {
        use emst_radio::ContentionConfig;
        let pts = uniform_points(200, &mut trial_rng(311, 0));
        let clean = run_nnt(&pts);
        let contended = Sim::new(&pts)
            .contention(ContentionConfig::default())
            .run(Protocol::Nnt(RankScheme::Diagonal));
        // Contention delays but never loses messages, and the protocol is
        // schedule-driven by logical rounds, so the tree is identical.
        assert!(contended.tree.same_edges(&clean.tree));
        // Retries cost extra energy (collisions among simultaneous
        // requests/replies are common) and many more clock rounds.
        assert!(contended.stats.energy > clean.stats.energy);
        assert!(contended.stats.rounds > clean.stats.rounds);
        // Constant-factor energy overhead, as §VIII claims for RBN.
        assert!(
            contended.stats.energy < 40.0 * clean.stats.energy,
            "energy blow-up {} vs {}",
            contended.stats.energy,
            clean.stats.energy
        );
    }

    #[test]
    fn extended_energy_model_shifts_the_balance() {
        use emst_radio::EnergyConfig;
        let pts = uniform_points(300, &mut trial_rng(312, 0));
        let cfg = EnergyConfig::extended(emst_geom::PathLoss::paper(), 1e-4, 0.0);
        let out = Sim::new(&pts)
            .energy(cfg)
            .run(Protocol::Nnt(RankScheme::Diagonal));
        assert!(out.stats.rx_energy > 0.0);
        assert!(out.stats.full_energy() > out.stats.energy);
        // The tree itself is untouched by accounting changes.
        let clean = run_nnt(&pts);
        assert!(out.tree.same_edges(&clean.tree));
        assert_eq!(out.stats.messages, clean.stats.messages);
    }

    #[test]
    fn diag_max_edge_shorter_than_xorder_max_edge() {
        // §VI's motivation for the new ranking: with the x-rank some nodes
        // must reach far; the diagonal rank keeps every hop short. Compare
        // the max edge averaged over seeds.
        let mut d_sum = 0.0;
        let mut x_sum = 0.0;
        for seed in 0..5 {
            let pts = uniform_points(400, &mut trial_rng(308, seed));
            d_sum += run_nnt_with(&pts, RankScheme::Diagonal).tree.max_edge_len();
            x_sum += run_nnt_with(&pts, RankScheme::XOrder).tree.max_edge_len();
        }
        assert!(
            d_sum < x_sum,
            "diagonal max edges {d_sum} should beat x-rank {x_sum}"
        );
    }
}
