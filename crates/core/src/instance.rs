//! Reusable simulation instances: one point set, many runs.
//!
//! A benchmark sweep runs dozens of trials against the *same* `(seed, n,
//! radius)` instance, and every [`Sim::new`](crate::Sim::new) run used to
//! rebuild the same bucket grid, CSR topology and `(dist, id)`-sorted
//! rows from scratch — at `n = 10⁵` those rebuilds cost more than the
//! protocol itself and were the dominant superlinear term in the scale
//! curve. An [`Instance`] owns the points and memoises the topology
//! builds behind shared handles, so
//! [`Sim::from_instance`](crate::Sim::from_instance) runs start with the
//! adjacency (and its lazily-built sorted view) already warm.
//!
//! **Determinism.** An installed topology is byte-for-byte the build the
//! run would have produced itself: same grid cell size (the run's
//! operating radius), same visit order, same row bits. Ledgers, traces
//! and stage marks are therefore bit-identical between
//! `Sim::new(points)` and `Sim::from_instance(&inst)` runs — the
//! instance only moves the build out of the timed run and shares it.

use emst_geom::{mix_seed, trial_rng, uniform_points, BucketGrid, Point};
use emst_radio::Topology;
use std::sync::{Arc, Mutex};

/// A point set plus memoised topology builds, shared across runs.
///
/// Cheap to share by reference; the topology cache is internally
/// synchronised, so parallel sweep workers can run trials off one
/// instance.
pub struct Instance {
    points: Vec<Point>,
    /// Memoised builds keyed by `(grid radius, row radius)` — exact f64
    /// bits, since every caller derives radii through the same
    /// expressions. A run needs at most two entries (EOPT's two radii).
    topos: Mutex<Vec<(u64, u64, Arc<Topology>)>>,
}

impl Instance {
    /// Wraps an existing point set.
    pub fn new(points: Vec<Point>) -> Self {
        Instance {
            points,
            topos: Mutex::new(Vec::new()),
        }
    }

    /// The seeded `(seed, n, trial)` instance — the same point stream as
    /// the bench runner's generator (SplitMix64-mixed so distinct
    /// `(seed, n)` pairs never alias).
    pub fn generate(seed: u64, n: usize, trial: u64) -> Self {
        Self::new(uniform_points(
            n,
            &mut trial_rng(mix_seed(seed, n as u64), trial),
        ))
    }

    /// The instance's points.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.points.len()
    }

    /// Appends a point (a node joining the universe) and returns its id.
    /// Every memoised topology build is invalidated: the cached rows
    /// cover the old point set, and a stale adjacency handed to a run
    /// would silently hide the new node from every neighbourhood query.
    pub fn push_point(&mut self, p: Point) -> usize {
        self.points.push(p);
        self.invalidate();
        self.points.len() - 1
    }

    /// Overwrites the position of node `u` (a node moving), invalidating
    /// the memoised topology builds.
    pub fn update_point(&mut self, u: usize, p: Point) {
        self.points[u] = p;
        self.invalidate();
    }

    /// Drops every memoised topology build. Called by the mutating
    /// methods above; also available to callers that mutate positions in
    /// bulk through other means.
    pub fn invalidate(&mut self) {
        self.topos
            .get_mut()
            .expect("instance cache poisoned")
            .clear();
    }

    /// Shared topology at `radius`, built on first request (grid cell
    /// size = `radius`, matching a run whose operating radius is
    /// `radius`).
    pub fn topology(&self, radius: f64) -> Arc<Topology> {
        self.topology_with_grid(radius, radius)
    }

    /// Shared topology with rows at `radius` over a bucket grid sized for
    /// `grid_radius` — the exact build a run operating at `grid_radius`
    /// performs when it caches the adjacency at `radius`. Rows are in
    /// grid visit order, so the grid cell size is part of the cache key:
    /// EOPT's step-1 rows (radius `r1` on an `r2`-sized grid) differ in
    /// *order* from a standalone `r1` build, and order is
    /// determinism-bearing.
    pub fn topology_with_grid(&self, grid_radius: f64, radius: f64) -> Arc<Topology> {
        let key = (grid_radius.to_bits(), radius.to_bits());
        let mut cache = self.topos.lock().expect("instance cache poisoned");
        if let Some((_, _, t)) = cache.iter().find(|(g, r, _)| (*g, *r) == key) {
            return t.clone();
        }
        let grid = BucketGrid::for_radius(&self.points, grid_radius);
        let t = Arc::new(Topology::build(&grid, radius));
        cache.push((key.0, key.1, t.clone()));
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_matches_the_runner_stream() {
        let inst = Instance::generate(0xBEEF, 64, 3);
        let direct = uniform_points(64, &mut trial_rng(mix_seed(0xBEEF, 64), 3));
        assert_eq!(inst.points(), &direct[..]);
        assert_eq!(inst.n(), 64);
    }

    #[test]
    fn topology_is_memoised_per_key() {
        let inst = Instance::generate(0xBEEF, 50, 0);
        let a = inst.topology(0.3);
        let b = inst.topology(0.3);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one build");
        let c = inst.topology_with_grid(0.3, 0.2);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.radius(), 0.2);
    }

    #[test]
    fn growth_invalidates_the_topology_cache() {
        let mut inst = Instance::generate(0xBEEF, 40, 0);
        let before = inst.topology(0.3);
        let id = inst.push_point(Point { x: 0.5, y: 0.5 });
        assert_eq!(id, 40);
        assert_eq!(inst.n(), 41);
        let after = inst.topology(0.3);
        assert!(
            !Arc::ptr_eq(&before, &after),
            "growth must rebuild the adjacency"
        );
        assert_eq!(after.n(), 41);
        // Moves invalidate too: the same key rebuilds once more.
        inst.update_point(0, Point { x: 0.25, y: 0.25 });
        let moved = inst.topology(0.3);
        assert!(!Arc::ptr_eq(&after, &moved));
        assert_eq!(moved.n(), 41);
    }

    #[test]
    fn build_matches_a_run_local_build() {
        let inst = Instance::generate(7, 80, 0);
        let grid = BucketGrid::for_radius(inst.points(), 0.4);
        let direct = Topology::build(&grid, 0.25);
        assert_eq!(*inst.topology_with_grid(0.4, 0.25), direct);
    }
}
