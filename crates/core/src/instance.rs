//! Reusable simulation instances: one point set, many runs.
//!
//! A benchmark sweep runs dozens of trials against the *same* `(seed, n,
//! radius)` instance, and every [`Sim::new`](crate::Sim::new) run used to
//! rebuild the same bucket grid, CSR topology and `(dist, id)`-sorted
//! rows from scratch — at `n = 10⁵` those rebuilds cost more than the
//! protocol itself and were the dominant superlinear term in the scale
//! curve. An [`Instance`] owns the points and memoises the topology
//! builds behind shared handles, so
//! [`Sim::from_instance`](crate::Sim::from_instance) runs start with the
//! adjacency (and its lazily-built sorted view) already warm.
//!
//! **Determinism.** An installed topology is byte-for-byte the build the
//! run would have produced itself: same grid cell size (the run's
//! operating radius), same visit order, same row bits. Ledgers, traces
//! and stage marks are therefore bit-identical between
//! `Sim::new(points)` and `Sim::from_instance(&inst)` runs — the
//! instance only moves the build out of the timed run and shares it.

use emst_geom::{mix_seed, trial_rng, uniform_points, BucketGrid, Point};
use emst_radio::Topology;
use std::sync::{Arc, Mutex};

/// Capacity of the per-instance topology cache. A run needs at most two
/// entries (EOPT's two radii); four leaves headroom for a caller mixing
/// protocols over one instance before LRU eviction kicks in.
const TOPOLOGY_CACHE_CAPACITY: usize = 4;

/// Counters of one bounded cache: how often it answered from memory, how
/// often it had to build, and how many entries the bound pushed out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered by an existing entry.
    pub hits: u64,
    /// Requests that had to build (and insert) a fresh entry.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Entries currently held.
    pub len: usize,
    /// The capacity bound.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of requests served from memory (0 when nothing was
    /// requested yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The bounded, most-recently-used-first store behind [`Instance`]'s
/// topology memoisation. Entries are keyed by `(grid radius, row radius)`
/// bits and kept in recency order: a hit moves its entry to the front, an
/// insert beyond capacity evicts the back (the least recently used key).
#[derive(Default)]
struct TopoCache {
    entries: Vec<(u64, u64, Arc<Topology>)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A point set plus memoised topology builds, shared across runs.
///
/// Cheap to share by reference; the topology cache is internally
/// synchronised, so parallel sweep workers can run trials off one
/// instance. The cache is *bounded* (`TOPOLOGY_CACHE_CAPACITY` entries,
/// LRU eviction): a long-lived process sweeping many radii over one
/// instance holds a fixed number of adjacency builds, not one per radius
/// it ever touched.
pub struct Instance {
    points: Vec<Point>,
    /// Bounded memoised builds keyed by `(grid radius, row radius)` —
    /// exact f64 bits, since every caller derives radii through the same
    /// expressions.
    topos: Mutex<TopoCache>,
}

impl Instance {
    /// Wraps an existing point set.
    pub fn new(points: Vec<Point>) -> Self {
        Instance {
            points,
            topos: Mutex::new(TopoCache::default()),
        }
    }

    /// The seeded `(seed, n, trial)` instance — the same point stream as
    /// the bench runner's generator (SplitMix64-mixed so distinct
    /// `(seed, n)` pairs never alias).
    pub fn generate(seed: u64, n: usize, trial: u64) -> Self {
        Self::new(uniform_points(
            n,
            &mut trial_rng(mix_seed(seed, n as u64), trial),
        ))
    }

    /// The instance's points.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.points.len()
    }

    /// Appends a point (a node joining the universe) and returns its id.
    /// Every memoised topology build is invalidated: the cached rows
    /// cover the old point set, and a stale adjacency handed to a run
    /// would silently hide the new node from every neighbourhood query.
    pub fn push_point(&mut self, p: Point) -> usize {
        self.points.push(p);
        self.invalidate();
        self.points.len() - 1
    }

    /// Overwrites the position of node `u` (a node moving), invalidating
    /// the memoised topology builds.
    pub fn update_point(&mut self, u: usize, p: Point) {
        self.points[u] = p;
        self.invalidate();
    }

    /// Drops every memoised topology build. Called by the mutating
    /// methods above; also available to callers that mutate positions in
    /// bulk through other means. Counters survive invalidation — they
    /// describe the cache's lifetime, not its current contents.
    pub fn invalidate(&mut self) {
        self.topos
            .get_mut()
            .expect("instance cache poisoned")
            .entries
            .clear();
    }

    /// Shared topology at `radius`, built on first request (grid cell
    /// size = `radius`, matching a run whose operating radius is
    /// `radius`).
    pub fn topology(&self, radius: f64) -> Arc<Topology> {
        self.topology_with_grid(radius, radius)
    }

    /// Shared topology with rows at `radius` over a bucket grid sized for
    /// `grid_radius` — the exact build a run operating at `grid_radius`
    /// performs when it caches the adjacency at `radius`. Rows are in
    /// grid visit order, so the grid cell size is part of the cache key:
    /// EOPT's step-1 rows (radius `r1` on an `r2`-sized grid) differ in
    /// *order* from a standalone `r1` build, and order is
    /// determinism-bearing.
    ///
    /// The build happens under the cache lock, so concurrent first
    /// requests for one key perform exactly one build and everyone gets
    /// the same [`Arc`].
    pub fn topology_with_grid(&self, grid_radius: f64, radius: f64) -> Arc<Topology> {
        let key = (grid_radius.to_bits(), radius.to_bits());
        let mut cache = self.topos.lock().expect("instance cache poisoned");
        if let Some(at) = cache
            .entries
            .iter()
            .position(|(g, r, _)| (*g, *r) == (key.0, key.1))
        {
            cache.hits += 1;
            // Refresh recency: the hit entry moves to the front.
            let entry = cache.entries.remove(at);
            let t = entry.2.clone();
            cache.entries.insert(0, entry);
            return t;
        }
        cache.misses += 1;
        let grid = BucketGrid::for_radius(&self.points, grid_radius);
        let t = Arc::new(Topology::build(&grid, radius));
        cache.entries.insert(0, (key.0, key.1, t.clone()));
        if cache.entries.len() > TOPOLOGY_CACHE_CAPACITY {
            cache.entries.pop();
            cache.evictions += 1;
        }
        t
    }

    /// Lifetime hit/miss/eviction counters of this instance's topology
    /// cache.
    pub fn topology_cache_stats(&self) -> CacheStats {
        let cache = self.topos.lock().expect("instance cache poisoned");
        CacheStats {
            hits: cache.hits,
            misses: cache.misses,
            evictions: cache.evictions,
            len: cache.entries.len(),
            capacity: TOPOLOGY_CACHE_CAPACITY,
        }
    }
}

/// Key of one cached instance: the full seed of its point stream plus the
/// radius family it serves. See [`InstanceCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstanceKey {
    /// Base seed of the point stream.
    pub seed: u64,
    /// Number of nodes.
    pub n: usize,
    /// Trial index within the `(seed, n)` stream.
    pub trial: u64,
    /// Bits of the operating radius the caller runs at (`to_bits`, so
    /// bitwise-equal radii share an entry and nothing else does).
    pub radius_bits: u64,
}

impl InstanceKey {
    /// Builds the key for a `(seed, n, trial)` instance served at
    /// `radius`.
    pub fn new(seed: u64, n: usize, trial: u64, radius: f64) -> Self {
        InstanceKey {
            seed,
            n,
            trial,
            radius_bits: radius.to_bits(),
        }
    }
}

/// A bounded, LRU-evicting store of generated [`Instance`]s keyed by
/// `(seed, n, trial, radius)` — the hot-parameter cache behind the trial
/// service.
///
/// Replaces the pattern of regenerating points and topology per request:
/// a hit hands back the shared [`Arc<Instance>`] whose memoised topology
/// is already warm, so repeated requests for one parameter point pay only
/// the protocol run. Generation happens under the cache lock — N
/// concurrent first requests for one key perform exactly one generation
/// (and, via [`Instance`]'s own lock, one topology build), so the hit
/// counter reads `N − 1`.
pub struct InstanceCache {
    capacity: usize,
    inner: Mutex<InstanceCacheInner>,
}

#[derive(Default)]
struct InstanceCacheInner {
    /// Most-recently-used first.
    entries: Vec<(InstanceKey, Arc<Instance>)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl InstanceCache {
    /// Creates a cache bounded to `capacity` entries (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        InstanceCache {
            capacity: capacity.max(1),
            inner: Mutex::new(InstanceCacheInner::default()),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The shared instance for `key`, generating (and possibly evicting
    /// the least recently used entry) on first request. Returns the
    /// instance and whether it was served from memory.
    pub fn get_or_generate(&self, key: InstanceKey) -> (Arc<Instance>, bool) {
        let mut inner = self.inner.lock().expect("instance cache poisoned");
        if let Some(at) = inner.entries.iter().position(|(k, _)| *k == key) {
            inner.hits += 1;
            let entry = inner.entries.remove(at);
            let inst = entry.1.clone();
            inner.entries.insert(0, entry);
            return (inst, true);
        }
        inner.misses += 1;
        let inst = Arc::new(Instance::generate(key.seed, key.n, key.trial));
        inner.entries.insert(0, (key, inst.clone()));
        if inner.entries.len() > self.capacity {
            inner.entries.pop();
            inner.evictions += 1;
        }
        (inst, false)
    }

    /// Lifetime hit/miss/eviction counters plus current occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("instance cache poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_matches_the_runner_stream() {
        let inst = Instance::generate(0xBEEF, 64, 3);
        let direct = uniform_points(64, &mut trial_rng(mix_seed(0xBEEF, 64), 3));
        assert_eq!(inst.points(), &direct[..]);
        assert_eq!(inst.n(), 64);
    }

    #[test]
    fn topology_is_memoised_per_key() {
        let inst = Instance::generate(0xBEEF, 50, 0);
        let a = inst.topology(0.3);
        let b = inst.topology(0.3);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one build");
        let c = inst.topology_with_grid(0.3, 0.2);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.radius(), 0.2);
    }

    #[test]
    fn growth_invalidates_the_topology_cache() {
        let mut inst = Instance::generate(0xBEEF, 40, 0);
        let before = inst.topology(0.3);
        let id = inst.push_point(Point { x: 0.5, y: 0.5 });
        assert_eq!(id, 40);
        assert_eq!(inst.n(), 41);
        let after = inst.topology(0.3);
        assert!(
            !Arc::ptr_eq(&before, &after),
            "growth must rebuild the adjacency"
        );
        assert_eq!(after.n(), 41);
        // Moves invalidate too: the same key rebuilds once more.
        inst.update_point(0, Point { x: 0.25, y: 0.25 });
        let moved = inst.topology(0.3);
        assert!(!Arc::ptr_eq(&after, &moved));
        assert_eq!(moved.n(), 41);
    }

    #[test]
    fn build_matches_a_run_local_build() {
        let inst = Instance::generate(7, 80, 0);
        let grid = BucketGrid::for_radius(inst.points(), 0.4);
        let direct = Topology::build(&grid, 0.25);
        assert_eq!(*inst.topology_with_grid(0.4, 0.25), direct);
    }

    #[test]
    fn topology_cache_is_bounded_and_lru() {
        let inst = Instance::generate(11, 30, 0);
        // Fill to capacity, oldest first.
        for i in 0..TOPOLOGY_CACHE_CAPACITY {
            let _ = inst.topology(0.1 + 0.05 * i as f64);
        }
        // Touch the oldest entry so it is no longer the eviction victim.
        let refreshed = inst.topology(0.1);
        let s = inst.topology_cache_stats();
        assert_eq!(s.misses, TOPOLOGY_CACHE_CAPACITY as u64);
        assert_eq!(s.hits, 1);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.len, TOPOLOGY_CACHE_CAPACITY);
        // One more key evicts the LRU entry (0.15), not the refreshed one.
        let _ = inst.topology(0.9);
        let s = inst.topology_cache_stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, TOPOLOGY_CACHE_CAPACITY);
        assert!(
            Arc::ptr_eq(&refreshed, &inst.topology(0.1)),
            "refreshed entry must survive the eviction"
        );
        let rebuilt = inst.topology(0.15);
        assert_eq!(rebuilt.radius(), 0.15);
        let s = inst.topology_cache_stats();
        assert_eq!(s.evictions, 2, "re-requesting the victim rebuilds it");
        assert!((s.hit_rate() - s.hits as f64 / (s.hits + s.misses) as f64).abs() < 1e-15);
    }

    #[test]
    fn instance_cache_shares_hits_and_evicts_lru() {
        let cache = InstanceCache::new(2);
        assert_eq!(cache.capacity(), 2);
        let k1 = InstanceKey::new(1, 40, 0, 0.3);
        let k2 = InstanceKey::new(2, 40, 0, 0.3);
        let k3 = InstanceKey::new(1, 40, 0, 0.4); // same points, new radius family
        let (a, hit) = cache.get_or_generate(k1);
        assert!(!hit);
        let (b, hit) = cache.get_or_generate(k1);
        assert!(hit, "second request for one key must be a hit");
        assert!(Arc::ptr_eq(&a, &b), "hits share one instance");
        let (_, hit) = cache.get_or_generate(k2);
        assert!(!hit);
        // Recency is now [k2, k1]; inserting k3 evicts k1, the LRU key.
        let (_, hit) = cache.get_or_generate(k3);
        assert!(!hit);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.len), (1, 3, 1, 2));
        let (c, hit) = cache.get_or_generate(k1);
        assert!(!hit, "evicted key must regenerate");
        assert!(!Arc::ptr_eq(&a, &c));
        // Identical content regardless of cache history.
        assert_eq!(a.points(), c.points());
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn instance_cache_concurrent_same_key_builds_once() {
        let cache = std::sync::Arc::new(InstanceCache::new(4));
        let key = InstanceKey::new(77, 60, 0, 0.25);
        let n_threads = 8;
        std::thread::scope(|scope| {
            for _ in 0..n_threads {
                let cache = cache.clone();
                scope.spawn(move || {
                    let (inst, _) = cache.get_or_generate(key);
                    let _ = inst.topology(0.25);
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.misses, 1, "one generation for N concurrent requests");
        assert_eq!(s.hits, n_threads - 1, "hit counter reads N - 1");
        // And the instance underneath performed exactly one topology build.
        let (inst, _) = cache.get_or_generate(key);
        assert_eq!(inst.topology_cache_stats().misses, 1);
    }
}
