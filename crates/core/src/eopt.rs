//! EOPT — the paper's energy-optimal two-step distributed MST algorithm
//! (§V).
//!
//! **Step 1.** Every node limits its radius to `r₁ = √(c₁/n)` (percolation
//! regime) and runs modified GHS. By Theorem 5.2 the surviving fragments
//! are, whp, one giant fragment of `Θ(n)` nodes plus small fragments of at
//! most `β·log² n` nodes trapped in small regions. Sending a message costs
//! only `O(1/n)` here, so the `O(n log n)` messages of this step cost
//! `O(log n)` energy in total.
//!
//! **Step 2.** Each fragment computes its size by broadcast/convergecast;
//! fragments above the `β·log² n` threshold declare themselves giant and
//! become *passive* (they only accept connections and keep their fragment
//! id, so their members never announce). All nodes raise their radius to
//! `r₂ = √(c₂·log n/n)` (connectivity regime, Theorem 5.1) and modified
//! GHS resumes on the remaining small fragments — only `O(log log n)`
//! phases whp, because each small region holds `O(log² n)` fragments.
//!
//! The output is the **exact** MST of `G(points, r₂)` — every added edge is
//! a fragment MOE, and the step-1 radius restriction is harmless because a
//! fragment strictly contained in its `G(r₁)`-component has its *global*
//! MOE within distance `r₁` (the cut property at work; see DESIGN.md).
//!
//! Robustness beyond the paper: if more than one fragment crosses the giant
//! threshold (possible at small `n` or an aggressive threshold), two
//! passive fragments could stall without merging. The implementation then
//! runs a *recovery pass* — one more modified-GHS round with passivity
//! cleared — and reports it in the outcome so experiments can count how
//! often the theorem's "unique giant" prediction failed.

use crate::ghs::{GhsEngine, GhsVariant, EOPT1_KINDS, EOPT2_KINDS, EOPT2_RECOVERY_KINDS};
use emst_geom::{paper_phase1_radius, paper_phase2_radius, Point};
use emst_graph::SpanningTree;
use emst_radio::{RadioNet, RunStats};

/// EOPT parameters. `Default` reproduces §VII: `r₁ = 1.4·√(1/n)`,
/// `r₂ = 1.6·√(ln n/n)`, giant threshold `β·ln² n` with `β = 1`.
#[derive(Debug, Clone, Copy)]
pub struct EoptConfig {
    /// Step-1 radius multiplier `m₁` in `r₁ = m₁·√(1/n)`.
    pub phase1_multiplier: f64,
    /// Step-2 radius multiplier `m₂` in `r₂ = m₂·√(ln n/n)`.
    pub phase2_multiplier: f64,
    /// Giant threshold coefficient `β`: a fragment is giant when its size
    /// exceeds `β·ln² n`.
    pub beta: f64,
}

impl Default for EoptConfig {
    fn default() -> Self {
        EoptConfig {
            phase1_multiplier: emst_geom::PAPER_PHASE1_MULTIPLIER,
            phase2_multiplier: emst_geom::PAPER_PHASE2_MULTIPLIER,
            beta: 1.0,
        }
    }
}

impl EoptConfig {
    /// Step-1 radius for `n` nodes.
    pub fn radius1(&self, n: usize) -> f64 {
        paper_phase1_radius(n) * (self.phase1_multiplier / emst_geom::PAPER_PHASE1_MULTIPLIER)
    }

    /// Step-2 radius for `n` nodes.
    pub fn radius2(&self, n: usize) -> f64 {
        paper_phase2_radius(n) * (self.phase2_multiplier / emst_geom::PAPER_PHASE2_MULTIPLIER)
    }

    /// Giant-size threshold for `n` nodes: `β·ln² n` (natural log; the
    /// asymptotic statement is base-independent).
    pub fn giant_threshold(&self, n: usize) -> f64 {
        let l = (n.max(2) as f64).ln();
        self.beta * l * l
    }
}

/// Outcome of an EOPT run.
#[derive(Debug, Clone)]
pub struct EoptOutcome {
    /// The constructed tree — the exact MST of `G(points, r₂)` when that
    /// graph is connected.
    pub tree: SpanningTree,
    /// Aggregate energy/messages/rounds (per-step attribution lives in the
    /// ledger under the `eopt1/`, `eopt2/` prefixes).
    pub stats: RunStats,
    /// GHS phases executed in step 1.
    pub phases_step1: usize,
    /// GHS phases executed in step 2 (excluding any recovery pass).
    pub phases_step2: usize,
    /// Fragments remaining after step 1.
    pub fragments_after_step1: usize,
    /// Size of the largest fragment after step 1.
    pub largest_fragment: usize,
    /// Number of fragments that crossed the giant threshold.
    pub giants_declared: usize,
    /// Whether the beyond-paper recovery pass had to run.
    pub recovery_used: bool,
    /// Fragments remaining at the end (1 iff `G(points, r₂)` is connected).
    pub fragment_count: usize,
}

/// Runs EOPT with the §VII parameters.
#[deprecated(note = "use `emst_core::Sim` with `Protocol::Eopt(EoptConfig::default())`")]
pub fn run_eopt(points: &[Point]) -> EoptOutcome {
    run_eopt_inner(
        points,
        &EoptConfig::default(),
        emst_radio::EnergyConfig::paper(),
        None,
        None,
    )
}

/// Runs EOPT with explicit parameters.
#[deprecated(note = "use `emst_core::Sim` with `Protocol::Eopt(cfg)`")]
pub fn run_eopt_with(points: &[Point], cfg: &EoptConfig) -> EoptOutcome {
    run_eopt_inner(points, cfg, emst_radio::EnergyConfig::paper(), None, None)
}

/// [`run_eopt_with`] under an explicit energy configuration (extended
/// rx/idle model of §VIII).
#[deprecated(note = "use `emst_core::Sim` with `.energy(..)` and `Protocol::Eopt(cfg)`")]
pub fn run_eopt_configured(
    points: &[Point],
    cfg: &EoptConfig,
    energy: emst_radio::EnergyConfig,
) -> EoptOutcome {
    run_eopt_inner(points, cfg, energy, None, None)
}

/// Shared implementation behind [`crate::Sim`] and the deprecated
/// wrappers.
pub(crate) fn run_eopt_inner<'p>(
    points: &'p [Point],
    cfg: &EoptConfig,
    energy: emst_radio::EnergyConfig,
    faults: Option<&emst_radio::FaultPlan>,
    sink: Option<&'p mut dyn emst_radio::TraceSink>,
) -> EoptOutcome {
    let n = points.len();
    // `ln 1 = 0` would degenerate the connectivity radius; clamp the size
    // used for radii so single-node instances still get positive power.
    let r1 = cfg.radius1(n.max(2));
    let r2 = cfg.radius2(n.max(2)).max(r1);
    let mut net = RadioNet::with_config(points, r2.max(r1), energy);
    if let Some(plan) = faults {
        net.set_faults(plan.clone());
    }
    if let Some(sink) = sink {
        net.set_sink(sink);
    }

    let (tree, outcome_parts) = {
        let mut eng = GhsEngine::new(&mut net, GhsVariant::Modified);

        // Step 1: percolation-regime GHS.
        eng.discover(r1, &EOPT1_KINDS);
        let phases_step1 = eng.run_phases(&EOPT1_KINDS);
        let fragments_after_step1 = eng.fragment_count();
        let largest_fragment = eng.fragment_sizes().first().copied().unwrap_or(0);

        // Step 2 preamble: size computation and giant declaration.
        let rows = eng.classify_passive_by_size(cfg.giant_threshold(n.max(2)), &EOPT1_KINDS);
        let giants_declared = rows.iter().filter(|r| r.2).count();

        // Step 2: connectivity-regime GHS with passive giant(s). The hello
        // broadcast doubles as the fresh id announcement at the new radius.
        eng.discover(r2, &EOPT2_KINDS);
        let phases_step2 = eng.run_phases(&EOPT2_KINDS);

        // Recovery (beyond the paper): multiple passive giants can stall.
        // Its kinds live under `eopt2/recover/` so the recovery cost is
        // separable while still counting toward the `eopt2/` step total.
        let mut recovery_used = false;
        if eng.fragment_count() > 1 && giants_declared > 1 {
            recovery_used = true;
            eng.clear_passive();
            eng.run_phases(&EOPT2_RECOVERY_KINDS);
        }
        let fragment_count = eng.fragment_count();
        (
            eng.tree(),
            (
                phases_step1,
                phases_step2,
                fragments_after_step1,
                largest_fragment,
                giants_declared,
                recovery_used,
                fragment_count,
            ),
        )
    };
    let (
        phases_step1,
        phases_step2,
        fragments_after_step1,
        largest_fragment,
        giants_declared,
        recovery_used,
        fragment_count,
    ) = outcome_parts;
    EoptOutcome {
        tree,
        stats: RunStats::capture(&net),
        phases_step1,
        phases_step2,
        fragments_after_step1,
        largest_fragment,
        giants_declared,
        recovery_used,
        fragment_count,
    }
}

#[cfg(test)]
#[allow(deprecated)] // unit tests deliberately exercise the legacy wrappers
mod tests {
    use super::*;
    use emst_geom::{trial_rng, uniform_points};
    use emst_graph::{kruskal_forest, Graph};

    #[test]
    fn eopt_builds_exact_mst_of_connectivity_graph() {
        for seed in 0..4 {
            let pts = uniform_points(300, &mut trial_rng(201, seed));
            let out = run_eopt(&pts);
            let cfg = EoptConfig::default();
            let g = Graph::geometric(&pts, cfg.radius2(300));
            let reference = SpanningTree::new(300, kruskal_forest(&g));
            assert!(
                out.tree.same_edges(&reference),
                "seed {seed}: EOPT differs from Kruskal"
            );
        }
    }

    #[test]
    fn eopt_matches_euclidean_mst_when_connected() {
        let pts = uniform_points(400, &mut trial_rng(202, 0));
        let out = run_eopt(&pts);
        if out.fragment_count == 1 {
            let emst = emst_graph::euclidean_mst(&pts);
            assert!(out.tree.same_edges(&emst), "EOPT must be the exact MST");
        }
    }

    #[test]
    fn step1_leaves_giant_and_small_fragments() {
        let pts = uniform_points(2000, &mut trial_rng(203, 0));
        let out = run_eopt(&pts);
        // At c₁ = 1.96 the giant holds a constant fraction of nodes.
        assert!(
            out.largest_fragment > 2000 / 10,
            "giant too small: {}",
            out.largest_fragment
        );
        assert!(out.fragments_after_step1 > 1);
        assert!(out.giants_declared >= 1);
    }

    #[test]
    fn eopt_uses_less_energy_than_ghs() {
        let pts = uniform_points(1500, &mut trial_rng(204, 0));
        let out = run_eopt(&pts);
        let ghs = crate::ghs::run_ghs(
            &pts,
            EoptConfig::default().radius2(1500),
            GhsVariant::Original,
        );
        assert!(
            out.stats.energy < ghs.stats.energy,
            "EOPT {} vs GHS {}",
            out.stats.energy,
            ghs.stats.energy
        );
    }

    #[test]
    fn energy_attribution_covers_both_steps() {
        let pts = uniform_points(500, &mut trial_rng(205, 0));
        let out = run_eopt(&pts);
        let e1 = out.stats.ledger.energy_with_prefix("eopt1/");
        let e2 = out.stats.ledger.energy_with_prefix("eopt2/");
        assert!(e1 > 0.0 && e2 > 0.0);
        assert!((e1 + e2 - out.stats.energy).abs() < 1e-9);
        // Step-1 messages are cheap: mean energy per message far below the
        // step-2 mean (r₁² ≪ r₂²).
        let m1 = out.stats.ledger.messages_with_prefix("eopt1/") as f64;
        let m2 = out.stats.ledger.messages_with_prefix("eopt2/") as f64;
        assert!(e1 / m1 < e2 / m2);
    }

    #[test]
    fn tiny_instances() {
        for n in [1usize, 2, 3, 5] {
            let pts = uniform_points(n, &mut trial_rng(206, n as u64));
            let out = run_eopt(&pts);
            // At tiny n the graph may be disconnected; the tree must still
            // be a valid forest (edge count n − fragments).
            assert_eq!(out.tree.edges().len(), n - out.fragment_count, "n = {n}");
        }
    }

    #[test]
    fn config_radii_scale_correctly() {
        let cfg = EoptConfig {
            phase1_multiplier: 2.8,
            phase2_multiplier: 3.2,
            beta: 2.0,
        };
        let n = 100;
        assert!((cfg.radius1(n) - 2.8 * (1.0 / 100.0f64).sqrt()).abs() < 1e-12);
        assert!((cfg.radius2(n) - 3.2 * ((100.0f64).ln() / 100.0).sqrt()).abs() < 1e-12);
        let l = (100f64).ln();
        assert!((cfg.giant_threshold(n) - 2.0 * l * l).abs() < 1e-12);
    }
}
