//! EOPT — the paper's energy-optimal two-step distributed MST algorithm
//! (§V).
//!
//! **Step 1.** Every node limits its radius to `r₁ = √(c₁/n)` (percolation
//! regime) and runs modified GHS. By Theorem 5.2 the surviving fragments
//! are, whp, one giant fragment of `Θ(n)` nodes plus small fragments of at
//! most `β·log² n` nodes trapped in small regions. Sending a message costs
//! only `O(1/n)` here, so the `O(n log n)` messages of this step cost
//! `O(log n)` energy in total.
//!
//! **Step 2.** Each fragment computes its size by broadcast/convergecast;
//! fragments above the `β·log² n` threshold declare themselves giant and
//! become *passive* (they only accept connections and keep their fragment
//! id, so their members never announce). All nodes raise their radius to
//! `r₂ = √(c₂·log n/n)` (connectivity regime, Theorem 5.1) and modified
//! GHS resumes on the remaining small fragments — only `O(log log n)`
//! phases whp, because each small region holds `O(log² n)` fragments.
//!
//! The output is the **exact** MST of `G(points, r₂)` — every added edge is
//! a fragment MOE, and the step-1 radius restriction is harmless because a
//! fragment strictly contained in its `G(r₁)`-component has its *global*
//! MOE within distance `r₁` (the cut property at work; see DESIGN.md).
//!
//! Robustness beyond the paper: if more than one fragment crosses the giant
//! threshold (possible at small `n` or an aggressive threshold), two
//! passive fragments could stall without merging. The implementation then
//! runs a *recovery pass* — one more modified-GHS round with passivity
//! cleared — and reports it in the outcome so experiments can count how
//! often the theorem's "unique giant" prediction failed.

use crate::ghs::{GhsEngine, GhsKinds, GhsVariant};
use crate::sim::EoptDetail;
use emst_geom::{paper_phase1_radius, paper_phase2_radius};
use emst_graph::SpanningTree;

/// EOPT parameters. `Default` reproduces §VII: `r₁ = 1.4·√(1/n)`,
/// `r₂ = 1.6·√(ln n/n)`, giant threshold `β·ln² n` with `β = 1`.
#[derive(Debug, Clone, Copy)]
pub struct EoptConfig {
    /// Step-1 radius multiplier `m₁` in `r₁ = m₁·√(1/n)`.
    pub phase1_multiplier: f64,
    /// Step-2 radius multiplier `m₂` in `r₂ = m₂·√(ln n/n)`.
    pub phase2_multiplier: f64,
    /// Giant threshold coefficient `β`: a fragment is giant when its size
    /// exceeds `β·ln² n`.
    pub beta: f64,
}

impl Default for EoptConfig {
    fn default() -> Self {
        EoptConfig {
            phase1_multiplier: emst_geom::PAPER_PHASE1_MULTIPLIER,
            phase2_multiplier: emst_geom::PAPER_PHASE2_MULTIPLIER,
            beta: 1.0,
        }
    }
}

impl EoptConfig {
    /// Step-1 radius for `n` nodes.
    pub fn radius1(&self, n: usize) -> f64 {
        paper_phase1_radius(n) * (self.phase1_multiplier / emst_geom::PAPER_PHASE1_MULTIPLIER)
    }

    /// Step-2 radius for `n` nodes.
    pub fn radius2(&self, n: usize) -> f64 {
        paper_phase2_radius(n) * (self.phase2_multiplier / emst_geom::PAPER_PHASE2_MULTIPLIER)
    }

    /// Giant-size threshold for `n` nodes: `β·ln² n` (natural log; the
    /// asymptotic statement is base-independent).
    pub fn giant_threshold(&self, n: usize) -> f64 {
        let l = (n.max(2) as f64).ln();
        self.beta * l * l
    }
}

/// Result of the EOPT stage composition (tree + the [`EoptDetail`]
/// read-outs; stats and stage marks live on the [`crate::ExecEnv`]).
pub(crate) struct EoptRun {
    pub tree: SpanningTree,
    pub detail: EoptDetail,
}

/// EOPT as its §V two-step stage composition against the shared execution
/// environment: percolation-regime GHS (`eopt1/*` stages), size
/// classification, connectivity-regime GHS with passive giants
/// (`eopt2/*`), and the beyond-paper recovery pass when multiple giants
/// stalled (`eopt2/recover`). Per-step energy/message attribution in the
/// returned detail comes from the stage deltas, not from ledger prefix
/// matching.
pub(crate) fn drive(env: &mut crate::ExecEnv<'_>, cfg: &EoptConfig) -> EoptRun {
    let n = env.n();
    // `ln 1 = 0` would degenerate the connectivity radius; clamp the size
    // used for radii so single-node instances still get positive power.
    let r1 = cfg.radius1(n.max(2));
    let r2 = cfg.radius2(n.max(2)).max(r1);
    let k1 = GhsKinds::for_scope("eopt1");
    let k2 = GhsKinds::for_scope("eopt2");
    let marks_from = env.stage_marks().len();
    let mut eng = GhsEngine::new(env.net(), GhsVariant::Modified);
    eng.set_shards(env.shards());

    // Step 1: percolation-regime GHS.
    env.stage(k1.scope, "discover", |net| eng.discover(net, r1, k1));
    let phases_step1 = env.stage(k1.scope, "phases", |net| eng.run_phases(net, k1));
    let fragments_after_step1 = eng.fragment_count();
    let largest_fragment = eng.fragment_sizes().first().copied().unwrap_or(0);

    // Step 2 preamble: size computation and giant declaration.
    let rows = env.stage(k1.scope, "size", |net| {
        eng.classify_passive_by_size(net, cfg.giant_threshold(n.max(2)), k1)
    });
    let giants_declared = rows.iter().filter(|r| r.2).count();

    // Step 2: connectivity-regime GHS with passive giant(s). The hello
    // broadcast doubles as the fresh id announcement at the new radius.
    env.stage(k2.scope, "discover", |net| eng.discover(net, r2, k2));
    let phases_step2 = env.stage(k2.scope, "phases", |net| eng.run_phases(net, k2));

    // Recovery (beyond the paper): multiple passive giants can stall.
    // Its kinds live under `eopt2/recover/` so the recovery cost is
    // separable while still counting toward the `eopt2/` step total.
    let mut recovery_used = false;
    if eng.fragment_count() > 1 && giants_declared > 1 {
        recovery_used = true;
        eng.clear_passive();
        let kr = GhsKinds::for_scope("eopt2/recover");
        env.stage(kr.scope, "phases", |net| eng.run_phases(net, kr));
    }

    // Per-step attribution from the stage deltas this drive recorded:
    // everything under the `eopt1` scope is step 1, the rest (`eopt2`,
    // `eopt2/recover`) is step 2.
    let (mut energy_step1, mut messages_step1) = (0.0f64, 0u64);
    let (mut energy_step2, mut messages_step2) = (0.0f64, 0u64);
    for mark in &env.stage_marks()[marks_from..] {
        if mark.scope == "eopt1" {
            energy_step1 += mark.energy;
            messages_step1 += mark.messages;
        } else {
            energy_step2 += mark.energy;
            messages_step2 += mark.messages;
        }
    }

    EoptRun {
        tree: eng.tree(),
        detail: EoptDetail {
            phases_step1,
            phases_step2,
            fragments_after_step1,
            largest_fragment,
            giants_declared,
            recovery_used,
            energy_step1,
            energy_step2,
            messages_step1,
            messages_step2,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Protocol, RunOutput, Sim};
    use emst_geom::{trial_rng, uniform_points, Point};
    use emst_graph::{kruskal_forest, Graph};

    fn run(pts: &[Point]) -> RunOutput {
        Sim::new(pts).run(Protocol::Eopt(EoptConfig::default()))
    }

    fn eopt_of(out: &RunOutput) -> &EoptDetail {
        out.detail.as_eopt().expect("EOPT run")
    }

    #[test]
    fn eopt_builds_exact_mst_of_connectivity_graph() {
        for seed in 0..4 {
            let pts = uniform_points(300, &mut trial_rng(201, seed));
            let out = run(&pts);
            let cfg = EoptConfig::default();
            let g = Graph::geometric(&pts, cfg.radius2(300));
            let reference = SpanningTree::new(300, kruskal_forest(&g));
            assert!(
                out.tree.same_edges(&reference),
                "seed {seed}: EOPT differs from Kruskal"
            );
        }
    }

    #[test]
    fn eopt_matches_euclidean_mst_when_connected() {
        let pts = uniform_points(400, &mut trial_rng(202, 0));
        let out = run(&pts);
        if out.fragments == 1 {
            let emst = emst_graph::euclidean_mst(&pts);
            assert!(out.tree.same_edges(&emst), "EOPT must be the exact MST");
        }
    }

    #[test]
    fn step1_leaves_giant_and_small_fragments() {
        let pts = uniform_points(2000, &mut trial_rng(203, 0));
        let out = run(&pts);
        let d = eopt_of(&out);
        // At c₁ = 1.96 the giant holds a constant fraction of nodes.
        assert!(
            d.largest_fragment > 2000 / 10,
            "giant too small: {}",
            d.largest_fragment
        );
        assert!(d.fragments_after_step1 > 1);
        assert!(d.giants_declared >= 1);
    }

    #[test]
    fn eopt_uses_less_energy_than_ghs() {
        let pts = uniform_points(1500, &mut trial_rng(204, 0));
        let out = run(&pts);
        let ghs = Sim::new(&pts)
            .radius(EoptConfig::default().radius2(1500))
            .run(Protocol::Ghs(GhsVariant::Original));
        assert!(
            out.stats.energy < ghs.stats.energy,
            "EOPT {} vs GHS {}",
            out.stats.energy,
            ghs.stats.energy
        );
    }

    #[test]
    fn energy_attribution_covers_both_steps() {
        let pts = uniform_points(500, &mut trial_rng(205, 0));
        let out = run(&pts);
        let e1 = out.stats.ledger.energy_with_prefix("eopt1/");
        let e2 = out.stats.ledger.energy_with_prefix("eopt2/");
        assert!(e1 > 0.0 && e2 > 0.0);
        assert!((e1 + e2 - out.stats.energy).abs() < 1e-9);
        // Step-1 messages are cheap: mean energy per message far below the
        // step-2 mean (r₁² ≪ r₂²).
        let m1 = out.stats.ledger.messages_with_prefix("eopt1/") as f64;
        let m2 = out.stats.ledger.messages_with_prefix("eopt2/") as f64;
        assert!(e1 / m1 < e2 / m2);
    }

    #[test]
    fn stage_attribution_matches_ledger_prefixes() {
        let pts = uniform_points(400, &mut trial_rng(207, 0));
        let out = run(&pts);
        let d = eopt_of(&out);
        // The per-step fields derive from stage deltas; the ledger derives
        // from per-message kind accounting. They must agree exactly.
        let e1 = out.stats.ledger.energy_with_prefix("eopt1/");
        let e2 = out.stats.ledger.energy_with_prefix("eopt2/");
        assert!((d.energy_step1 - e1).abs() < 1e-9);
        assert!((d.energy_step2 - e2).abs() < 1e-9);
        assert_eq!(
            d.messages_step1,
            out.stats.ledger.messages_with_prefix("eopt1/")
        );
        assert_eq!(
            d.messages_step2,
            out.stats.ledger.messages_with_prefix("eopt2/")
        );
        assert_eq!(d.messages_step1 + d.messages_step2, out.stats.messages);
    }

    #[test]
    fn tiny_instances() {
        for n in [1usize, 2, 3, 5] {
            let pts = uniform_points(n, &mut trial_rng(206, n as u64));
            let out = run(&pts);
            // At tiny n the graph may be disconnected; the tree must still
            // be a valid forest (edge count n − fragments).
            assert_eq!(out.tree.edges().len(), n - out.fragments, "n = {n}");
        }
    }

    #[test]
    fn config_radii_scale_correctly() {
        let cfg = EoptConfig {
            phase1_multiplier: 2.8,
            phase2_multiplier: 3.2,
            beta: 2.0,
        };
        let n = 100;
        assert!((cfg.radius1(n) - 2.8 * (1.0 / 100.0f64).sqrt()).abs() < 1e-12);
        assert!((cfg.radius2(n) - 3.2 * ((100.0f64).ln() / 100.0).sqrt()).abs() < 1e-12);
        let l = (100f64).ln();
        assert!((cfg.giant_threshold(n) - 2.0 * l * l).abs() < 1e-12);
    }
}
