//! `Sim` — the unified protocol-run API.
//!
//! Every distributed algorithm in this crate (GHS, EOPT, Co-NNT, BFS
//! flood) used to ship its own family of `run_*` entrypoints whose
//! signatures drifted apart as knobs accumulated (energy model,
//! contention layer, now trace sinks). `Sim` replaces them with one
//! builder:
//!
//! ```
//! use emst_core::{Protocol, Sim};
//! use emst_geom::{trial_rng, uniform_points};
//! use emst_radio::MetricsSink;
//!
//! let pts = uniform_points(120, &mut trial_rng(1, 0));
//! let mut metrics = MetricsSink::new();
//! let out = Sim::new(&pts)
//!     .sink(&mut metrics)
//!     .run(Protocol::Eopt(Default::default()));
//! assert!(out.tree.is_valid());
//! // The metrics ledger reproduces the run total exactly (same
//! // accumulation order), not merely within a tolerance.
//! assert_eq!(metrics.total_energy(), out.stats.energy);
//! assert_eq!(metrics.total_messages(), out.stats.messages);
//! ```
//!
//! The four protocols keep their protocol-specific read-outs in
//! [`Detail`]; everything any experiment compares across protocols
//! (tree, stats, surviving fragment count) lives directly on
//! [`RunOutput`].

use crate::eopt::EoptConfig;
use crate::exec::ExecEnv;
use crate::ghs::GhsVariant;
use crate::nnt::RankScheme;
use crate::repair::{RepairPolicy, RepairStats};
use emst_geom::{nnt_probe_radius, Point};
use emst_graph::SpanningTree;
use emst_radio::{
    ContentionConfig, EnergyConfig, EngineError, FaultPlan, FaultStats, Membership, RunStats,
    StageMark, TraceSink,
};

/// Why a protocol run aborted instead of producing a (possibly partial)
/// forest. Carried by [`RunOutcome::Failed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// The slotted-ALOHA layer hit its per-round slot cap with
    /// transmissions still undelivered (§VIII livelock guard).
    ContentionOverflow {
        /// Transmissions whose receiver set was still non-empty.
        unresolved: usize,
        /// The slot cap that was hit.
        slots: u32,
    },
    /// The protocol failed to quiesce within its round budget on a run
    /// where that indicates a logic error (clean reactive runs only;
    /// faulty runs tolerate starvation as a degraded partial result).
    RoundLimit {
        /// The budget that ran out.
        max_rounds: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::ContentionOverflow { unresolved, slots } => write!(
                f,
                "contention livelock: {unresolved} transmissions unresolved after {slots} slots"
            ),
            RunError::RoundLimit { max_rounds } => {
                write!(f, "protocol did not quiesce within {max_rounds} rounds")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<EngineError> for RunError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Contention(c) => RunError::ContentionOverflow {
                unresolved: c.unresolved,
                slots: c.slots,
            },
            EngineError::RoundLimit(r) => RunError::RoundLimit {
                max_rounds: r.max_rounds,
            },
        }
    }
}

/// A malformed [`Sim`] configuration, detected before anything executes.
///
/// [`Sim::run`]/[`Sim::try_run`] keep their historical panic behaviour on
/// these — inside one experiment binary a bad configuration is a
/// programming error and the backtrace is the feature. Long-lived callers
/// (the trial service) use [`Sim::try_run_checked`], which returns them
/// as values instead: a malformed request must never take the process
/// down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A radius-bound protocol (GHS, BFS, the elections) ran without
    /// [`Sim::radius`].
    MissingRadius {
        /// The protocol variant that needed the radius.
        protocol: &'static str,
    },
    /// [`Protocol::Bfs`]'s root is outside the point set.
    RootOutOfRange {
        /// The requested root.
        root: usize,
        /// Number of nodes.
        n: usize,
    },
    /// The contention layer was combined with an orchestrated protocol
    /// (GHS/EOPT), whose schedules assume the collision-free RBN model.
    ContentionWithOrchestrated {
        /// Which orchestrated protocol was requested.
        protocol: &'static str,
    },
    /// The contention layer was combined with fault injection; fault
    /// injection composes with the collision-free engine only.
    ContentionWithFaults,
    /// An effective fault plan was combined with an effective membership
    /// — two owners of per-round liveness.
    FaultsWithMembership,
    /// Awake tracking (or a low-awake protocol, which installs a
    /// schedule) was combined with an effective fault plan — a
    /// [`FaultPlan`] already owns adversarial sleep windows, so the two
    /// would be dual owners of per-round wakefulness.
    AwakeWithFaults,
    /// The energy configuration carries a negative or non-finite cost
    /// (`rx` or `idle_per_round`). Formerly an `assert!` inside
    /// `EnergyConfig::extended`; surfaced as a value so a service can
    /// answer 422 instead of tripping a panic guard.
    NegativeEnergy {
        /// Which field was malformed (`"rx"` or `"idle_per_round"`).
        field: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::MissingRadius { protocol } => {
                write!(f, "{protocol} requires Sim::radius")
            }
            ConfigError::RootOutOfRange { root, n } => {
                write!(f, "root out of range: {root} with n = {n}")
            }
            ConfigError::ContentionWithOrchestrated { protocol } => write!(
                f,
                "{protocol} is orchestrated over the collision-free RBN model; \
                 the contention layer applies to reactive protocols only"
            ),
            ConfigError::ContentionWithFaults => {
                write!(
                    f,
                    "fault injection composes with the collision-free engine only"
                )
            }
            ConfigError::FaultsWithMembership => write!(
                f,
                "fault injection and an effective membership are mutually exclusive"
            ),
            ConfigError::AwakeWithFaults => write!(
                f,
                "fault injection and an awake schedule are mutually exclusive"
            ),
            ConfigError::NegativeEnergy { field } => {
                write!(f, "energy config: {field} must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which algorithm to run. Radius semantics differ by protocol:
/// GHS and BFS operate at the radius set with [`Sim::radius`]; EOPT and
/// Co-NNT derive their own radii (`r₁`/`r₂`, probe ladder) from `n`.
#[derive(Debug, Clone, Copy)]
pub enum Protocol {
    /// GHS (original or modified) at the configured radius.
    Ghs(GhsVariant),
    /// The paper's two-step energy-optimal algorithm (§V).
    Eopt(EoptConfig),
    /// Coordinate-aware nearest-neighbour tree (§VI).
    Nnt(RankScheme),
    /// Flooding BFS tree rooted at `root`, at the configured radius.
    Bfs {
        /// The flood origin.
        root: usize,
    },
    /// Leader election by max-id flooding at the configured radius (§IV).
    ElectionFlood,
    /// Leader election along a BFS spanning tree at the configured radius:
    /// flood, convergecast the maximum id, broadcast the winner back down
    /// (`3n − 2` messages).
    ElectionTree,
}

/// Protocol-specific read-outs of a [`Sim::run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Detail {
    /// GHS extras.
    Ghs(GhsDetail),
    /// EOPT extras.
    Eopt(EoptDetail),
    /// Co-NNT extras.
    Nnt(NntDetail),
    /// BFS extras.
    Bfs(BfsDetail),
    /// Leader-election extras.
    Election(ElectionDetail),
}

/// GHS-specific outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhsDetail {
    /// Borůvka phases executed.
    pub phases: usize,
}

/// EOPT-specific outputs. The per-step energy/message attribution is
/// derived from the stage-runtime deltas (everything recorded under the
/// `eopt1` stage scope is step 1; `eopt2` and `eopt2/recover` are step 2),
/// not from ledger prefix matching.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EoptDetail {
    /// GHS phases executed in step 1.
    pub phases_step1: usize,
    /// GHS phases executed in step 2 (excluding any recovery pass).
    pub phases_step2: usize,
    /// Fragments remaining after step 1.
    pub fragments_after_step1: usize,
    /// Size of the largest fragment after step 1.
    pub largest_fragment: usize,
    /// Fragments that crossed the giant threshold.
    pub giants_declared: usize,
    /// Whether the beyond-paper recovery pass had to run.
    pub recovery_used: bool,
    /// Energy spent by the percolation-regime step (discover + phases +
    /// size classification).
    pub energy_step1: f64,
    /// Energy spent by the connectivity-regime step (including recovery).
    pub energy_step2: f64,
    /// Messages sent by step 1.
    pub messages_step1: u64,
    /// Messages sent by step 2 (including recovery).
    pub messages_step2: u64,
}

/// Co-NNT-specific outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NntDetail {
    /// Nodes that exhausted all probe phases without connecting.
    pub unconnected: usize,
    /// Maximum probe phases used by any node.
    pub max_phases_used: u32,
}

/// BFS-specific outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsDetail {
    /// Nodes reached from the root (including the root).
    pub reached: usize,
}

/// Leader-election outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElectionDetail {
    /// The elected leader (the maximum id of the root component).
    pub leader: usize,
    /// Whether every node agreed on that leader.
    pub agreed: bool,
}

impl Detail {
    /// The GHS read-out, if this was a GHS run.
    pub fn as_ghs(&self) -> Option<&GhsDetail> {
        match self {
            Detail::Ghs(d) => Some(d),
            _ => None,
        }
    }

    /// The EOPT read-out, if this was an EOPT run.
    pub fn as_eopt(&self) -> Option<&EoptDetail> {
        match self {
            Detail::Eopt(d) => Some(d),
            _ => None,
        }
    }

    /// The Co-NNT read-out, if this was a Co-NNT run.
    pub fn as_nnt(&self) -> Option<&NntDetail> {
        match self {
            Detail::Nnt(d) => Some(d),
            _ => None,
        }
    }

    /// The BFS read-out, if this was a BFS run.
    pub fn as_bfs(&self) -> Option<&BfsDetail> {
        match self {
            Detail::Bfs(d) => Some(d),
            _ => None,
        }
    }

    /// The election read-out, if this was a leader-election run.
    pub fn as_election(&self) -> Option<&ElectionDetail> {
        match self {
            Detail::Election(d) => Some(d),
            _ => None,
        }
    }
}

/// Uniform result of any protocol run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The constructed forest (a spanning tree iff `fragments == 1`).
    pub tree: SpanningTree,
    /// Aggregate energy/messages/rounds plus the per-kind ledger.
    pub stats: RunStats,
    /// Connected components of the output forest (`n − |edges|`); `1`
    /// means the tree spans.
    pub fragments: usize,
    /// Per-stage resource deltas in execution order (one [`StageMark`]
    /// per protocol stage); they telescope to `stats` exactly.
    pub stages: Vec<StageMark>,
    /// Protocol-specific extras.
    pub detail: Detail,
}

impl RunOutput {
    /// Awake-round read-outs (total + max-per-node), present when the
    /// run tracked an awake schedule ([`Sim::awake`] or a low-awake
    /// protocol).
    pub fn awake(&self) -> Option<emst_radio::AwakeStats> {
        self.stats.awake
    }

    fn build(tree: SpanningTree, stats: RunStats, stages: Vec<StageMark>, detail: Detail) -> Self {
        let fragments = tree.n().saturating_sub(tree.edges().len());
        RunOutput {
            tree,
            stats,
            fragments,
            stages,
            detail,
        }
    }
}

/// Result of a fallible protocol run ([`Sim::try_run`]).
///
/// Without a fault plan every run is [`RunOutcome::Complete`] (or panics
/// on a genuine logic error, exactly as before). With faults injected the
/// protocol may still finish a spanning forest (`Complete`), finish with
/// visible damage — lost messages that left the forest fragmented or
/// exhausted a retry budget (`Degraded`) — or abort with a typed error
/// (`Failed`). With [`Sim::repair`] enabled, a would-be-degraded tree
/// build whose recovery pass reconnects every surviving node lands one
/// rung higher, at `Repaired`.
///
/// The variants form a quality lattice: `Complete` > `Repaired` >
/// `Degraded` > `Failed`.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The run finished and the fault layer left no mark on the result.
    Complete(RunOutput),
    /// The run degraded, but the repair stage reconnected the forest: it
    /// spans every node still alive when repair started. All repair
    /// traffic is charged to `output` (ledger, stats, `repair/*` stages).
    Repaired {
        /// The recovered result.
        output: RunOutput,
        /// What the repair stage did to get there.
        repair: RepairStats,
    },
    /// The run finished, but faults were visible: at least one message
    /// timed out, or drops left the forest with more than one fragment
    /// (and any attempted repair could not fix it).
    Degraded {
        /// The (possibly partial) result.
        output: RunOutput,
        /// Drop/retry/timeout counters for the whole run.
        faults: FaultStats,
    },
    /// The run aborted; no forest was produced.
    Failed {
        /// Why it aborted.
        error: RunError,
        /// Fault counters observed up to the failure.
        faults: FaultStats,
    },
}

impl RunOutcome {
    /// The produced output, if the run finished (complete, repaired or
    /// degraded).
    pub fn output(&self) -> Option<&RunOutput> {
        match self {
            RunOutcome::Complete(o)
            | RunOutcome::Repaired { output: o, .. }
            | RunOutcome::Degraded { output: o, .. } => Some(o),
            RunOutcome::Failed { .. } => None,
        }
    }

    /// Consumes the outcome, yielding the output if the run finished.
    pub fn into_output(self) -> Option<RunOutput> {
        match self {
            RunOutcome::Complete(o)
            | RunOutcome::Repaired { output: o, .. }
            | RunOutcome::Degraded { output: o, .. } => Some(o),
            RunOutcome::Failed { .. } => None,
        }
    }

    /// Fault counters for the run (zero for a clean [`Complete`]). For a
    /// repaired run these cover the whole run, original stages and repair
    /// stages alike.
    ///
    /// [`Complete`]: RunOutcome::Complete
    pub fn faults(&self) -> FaultStats {
        match self {
            RunOutcome::Complete(o) | RunOutcome::Repaired { output: o, .. } => o.stats.faults,
            RunOutcome::Degraded { faults, .. } | RunOutcome::Failed { faults, .. } => *faults,
        }
    }

    /// Whether the run finished with no visible fault damage.
    pub fn is_complete(&self) -> bool {
        matches!(self, RunOutcome::Complete(_))
    }

    /// Whether the recovery runtime upgraded this run.
    pub fn is_repaired(&self) -> bool {
        matches!(self, RunOutcome::Repaired { .. })
    }

    /// The repair read-outs, if the recovery runtime upgraded this run.
    pub fn repair(&self) -> Option<&RepairStats> {
        match self {
            RunOutcome::Repaired { repair, .. } => Some(repair),
            _ => None,
        }
    }

    /// The abort reason, if the run failed.
    pub fn error(&self) -> Option<RunError> {
        match self {
            RunOutcome::Failed { error, .. } => Some(*error),
            _ => None,
        }
    }
}

/// Builder for a single protocol run over a fixed point set.
///
/// Defaults: paper energy model (`rx = idle = 0`), no contention layer,
/// no trace sink. `radius` is mandatory for [`Protocol::Ghs`] and
/// [`Protocol::Bfs`] and ignored by the protocols that derive their own
/// radii ([`Protocol::Eopt`], [`Protocol::Nnt`]).
pub struct Sim<'a> {
    points: &'a [Point],
    /// Shared-build source for repeated runs (see [`Sim::from_instance`]).
    instance: Option<&'a crate::Instance>,
    radius: Option<f64>,
    energy: EnergyConfig,
    contention: Option<ContentionConfig>,
    faults: Option<FaultPlan>,
    members: Option<Membership>,
    repair: Option<RepairPolicy>,
    /// Whether to track awake rounds (see [`Sim::awake`]).
    awake: bool,
    /// Worker-thread count for shardable stages (see [`Sim::shards`]).
    shards: usize,
    sink: Option<&'a mut dyn TraceSink>,
}

impl<'a> Sim<'a> {
    /// Starts a run description over `points`.
    pub fn new(points: &'a [Point]) -> Self {
        Sim {
            points,
            instance: None,
            radius: None,
            energy: EnergyConfig::paper(),
            contention: None,
            faults: None,
            members: None,
            repair: None,
            awake: false,
            shards: 1,
            sink: None,
        }
    }

    /// Starts a run description over a reusable [`crate::Instance`]: the
    /// instance's memoised topology builds (bucket grid, CSR adjacency,
    /// sorted rows) are installed on the run's network, so repeated runs
    /// over one instance skip the per-run rebuild entirely. Results are
    /// bit-identical to [`Sim::new`] over the same points — the instance
    /// performs the exact build the run would have, just once.
    pub fn from_instance(instance: &'a crate::Instance) -> Self {
        let mut sim = Sim::new(instance.points());
        sim.instance = Some(instance);
        sim
    }

    /// Sets the worker-thread count for stages that partition per-round
    /// node work across threads (the GHS MOE search). Purely a wall-clock
    /// knob: shard results are reduced in canonical order, so ledgers,
    /// traces and stage marks are bit-identical for any value (pinned by
    /// `tests/shard_identity.rs`). Clamped to at least 1.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the operating radius (required for GHS and BFS).
    pub fn radius(mut self, r: f64) -> Self {
        assert!(r.is_finite() && r > 0.0, "radius must be positive");
        self.radius = Some(r);
        self
    }

    /// Sets the energy accounting model (default: [`EnergyConfig::paper`]).
    pub fn energy(mut self, cfg: EnergyConfig) -> Self {
        self.energy = cfg;
        self
    }

    /// Enables the slotted-ALOHA contention layer (§VIII). Only the
    /// reactive protocols (Co-NNT, BFS, the elections) model contention;
    /// [`Sim::run`] panics if this is combined with GHS or EOPT, whose
    /// orchestrated schedules assume the paper's collision-free RBN
    /// abstraction.
    pub fn contention(mut self, cfg: ContentionConfig) -> Self {
        self.contention = Some(cfg);
        self
    }

    /// Injects a deterministic fault schedule (link drops, node crashes,
    /// sleep windows) into the run. A no-op plan ([`FaultPlan::is_noop`])
    /// is elided entirely, keeping the clean path bit-identical to a run
    /// that never called this. Mutually exclusive with
    /// [`Sim::contention`]: fault injection composes with the
    /// collision-free engine only.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = if plan.is_noop() { None } else { Some(plan) };
        self
    }

    /// Restricts the run to a live set: only live ids transmit, receive
    /// or idle-charge, and the protocol engines build their state over
    /// live ids (dead ids degrade to zero-cost singleton fragments). An
    /// all-live membership is elided entirely — exactly like a no-op
    /// [`FaultPlan`] — so static runs stay bit-identical to runs that
    /// never called this. Mutually exclusive with [`Sim::with_faults`]
    /// when both are effective (two owners of per-round liveness).
    pub fn members(mut self, members: Membership) -> Self {
        self.members = if members.is_all_live() {
            None
        } else {
            Some(members)
        };
        self
    }

    /// Enables awake-round tracking: the run installs an all-awake
    /// [`emst_radio::AwakeSchedule`] and reports awake node-rounds
    /// (total + max-per-node) on [`RunStats::awake`] with per-stage
    /// attribution on every [`StageMark`]. Charges and traces stay
    /// bit-identical to an untracked run except for the purely additive
    /// awake read-outs (pinned by `tests/awake_layer.rs`); `false` (the
    /// default) is fully elided — no schedule exists and every awake
    /// read-out is `None`. Low-awake protocols
    /// ([`GhsVariant::LowAwake`]) install the schedule themselves, so
    /// this knob is only needed to measure always-awake protocols.
    /// Mutually exclusive with [`Sim::with_faults`] (a fault plan
    /// already owns adversarial sleep windows).
    pub fn awake(mut self, track: bool) -> Self {
        self.awake = track;
        self
    }

    /// Enables the recovery runtime for the tree builders (GHS, EOPT):
    /// a fault-injected run that would classify `Degraded` with its
    /// surviving nodes split across fragments gets a repair stage —
    /// salvaged forest, targeted modified-GHS reconnection, escalating
    /// retry budgets per `policy` — and on success lands at
    /// [`RunOutcome::Repaired`]. Ignored by the reactive protocols and
    /// the elections (they build no salvageable forest), and fully
    /// elided on clean runs: without visible fault damage the run stays
    /// bit-identical to one that never called this.
    pub fn repair(mut self, policy: RepairPolicy) -> Self {
        self.repair = Some(policy);
        self
    }

    /// Attaches a trace sink that receives every structured event of the
    /// run (round boundaries, per-message energy, phase transitions,
    /// fragment merges). Untraced runs pay no observation cost.
    pub fn sink(mut self, sink: &'a mut dyn TraceSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Executes `protocol` and returns the uniform [`RunOutput`].
    ///
    /// Degraded fault-injected runs still return their (possibly
    /// partial) output; use [`Sim::try_run`] to distinguish them.
    ///
    /// # Panics
    ///
    /// If GHS/BFS run without a radius, if BFS's root is out of range,
    /// if a contention layer is combined with an orchestrated protocol
    /// (GHS/EOPT) or with fault injection, or if the run aborts with a
    /// [`RunError`].
    pub fn run(self, protocol: Protocol) -> RunOutput {
        match self.run_checked(protocol) {
            Ok(o) => o,
            Err(error) => panic!("{error}"),
        }
    }

    /// Executes `protocol`, returning the output or the typed abort
    /// reason instead of panicking. This is the entrypoint for parallel
    /// fan-out workers (bench sweeps), where one aborted trial must
    /// surface as a row-level error, not tear down the whole sweep.
    ///
    /// # Panics
    ///
    /// Only on configuration errors, like [`Sim::try_run`] — never on
    /// what happens during the run.
    pub fn run_checked(self, protocol: Protocol) -> Result<RunOutput, RunError> {
        match self.try_run(protocol) {
            RunOutcome::Complete(o)
            | RunOutcome::Repaired { output: o, .. }
            | RunOutcome::Degraded { output: o, .. } => Ok(o),
            RunOutcome::Failed { error, .. } => Err(error),
        }
    }

    /// Validates the configuration against `protocol` and computes the
    /// run-wide operating radius the shared network is built at.
    fn validate(&self, protocol: Protocol) -> Result<f64, ConfigError> {
        if let Err(field) = self.energy.check() {
            return Err(ConfigError::NegativeEnergy { field });
        }
        if self.contention.is_some() && self.faults.is_some() {
            return Err(ConfigError::ContentionWithFaults);
        }
        // `with_faults` elides no-op plans and `members` elides all-live
        // memberships, so `Some` means *effective* on both sides — the
        // same conflict `RadioNet::set_members` asserts, surfaced as a
        // value before any network exists.
        if self.faults.is_some() && self.members.is_some() {
            return Err(ConfigError::FaultsWithMembership);
        }
        // Awake tracking is requested explicitly or implied by a
        // low-awake protocol (which installs its own schedule); either
        // way it cannot meet a fault plan's adversarial sleep windows.
        let awake = self.awake || matches!(protocol, Protocol::Ghs(GhsVariant::LowAwake));
        if awake && self.faults.is_some() {
            return Err(ConfigError::AwakeWithFaults);
        }
        let n = self.points.len();
        match protocol {
            Protocol::Ghs(_) => {
                if self.contention.is_some() {
                    return Err(ConfigError::ContentionWithOrchestrated { protocol: "GHS" });
                }
                self.radius.ok_or(ConfigError::MissingRadius {
                    protocol: "Protocol::Ghs",
                })
            }
            Protocol::Eopt(cfg) => {
                if self.contention.is_some() {
                    return Err(ConfigError::ContentionWithOrchestrated { protocol: "EOPT" });
                }
                Ok(cfg.radius2(n.max(2)).max(cfg.radius1(n.max(2))))
            }
            // Grid sized for the common early probe radius; larger probes
            // still resolve correctly (they scan more cells).
            Protocol::Nnt(_) => Ok(nnt_probe_radius(2, n.max(2))),
            Protocol::Bfs { root } => {
                if root >= n.max(1) {
                    return Err(ConfigError::RootOutOfRange { root, n });
                }
                self.radius.ok_or(ConfigError::MissingRadius {
                    protocol: "Protocol::Bfs",
                })
            }
            Protocol::ElectionFlood => self.radius.ok_or(ConfigError::MissingRadius {
                protocol: "Protocol::ElectionFlood",
            }),
            Protocol::ElectionTree => self.radius.ok_or(ConfigError::MissingRadius {
                protocol: "Protocol::ElectionTree",
            }),
        }
    }

    /// Executes `protocol`, classifying the result instead of panicking
    /// on fault-induced damage: see [`RunOutcome`].
    ///
    /// # Panics
    ///
    /// Only on configuration errors (missing radius, out-of-range root,
    /// contention combined with GHS/EOPT or with fault injection, faults
    /// combined with a membership) — never on what happens during the
    /// run. Use [`Sim::try_run_checked`] to get those as values too.
    pub fn try_run(self, protocol: Protocol) -> RunOutcome {
        match self.try_run_checked(protocol) {
            Ok(outcome) => outcome,
            Err(e) => panic!("{e}"),
        }
    }

    /// Validates the configuration for `protocol` without running it —
    /// the same checks [`Sim::try_run_checked`] performs up front. Lets a
    /// server reject a bad configuration before committing to a streamed
    /// response.
    pub fn check(&self, protocol: Protocol) -> Result<(), ConfigError> {
        self.validate(protocol).map(|_| ())
    }

    /// Fully checked execution: configuration errors come back as
    /// [`ConfigError`] values and run-time damage is classified by the
    /// [`RunOutcome`] lattice, so this entrypoint never panics on any
    /// request content — the contract a long-lived server needs.
    pub fn try_run_checked(self, protocol: Protocol) -> Result<RunOutcome, ConfigError> {
        let max_radius = self.validate(protocol)?;
        let Sim {
            points,
            instance,
            radius: _,
            energy,
            contention,
            faults,
            members,
            repair,
            awake,
            shards,
            sink,
        } = self;
        let n = points.len();
        // The reactive protocols historically short-circuited empty
        // instances before touching the network; preserve that.
        if n == 0 {
            let detail = match protocol {
                Protocol::Nnt(_) => Some(Detail::Nnt(NntDetail {
                    unconnected: 0,
                    max_phases_used: 0,
                })),
                Protocol::Bfs { .. } => Some(Detail::Bfs(BfsDetail { reached: 0 })),
                Protocol::ElectionFlood | Protocol::ElectionTree => {
                    Some(Detail::Election(ElectionDetail {
                        leader: 0,
                        agreed: true,
                    }))
                }
                Protocol::Ghs(_) | Protocol::Eopt(_) => None,
            };
            if let Some(detail) = detail {
                return Ok(RunOutcome::Complete(RunOutput::build(
                    SpanningTree::new(0, Vec::new()),
                    RunStats::default(),
                    Vec::new(),
                    detail,
                )));
            }
        }
        let mut env = ExecEnv::new(
            points,
            max_radius,
            energy,
            faults.as_ref(),
            contention,
            sink,
        );
        env.set_shards(shards);
        if let Some(members) = members {
            env.set_members(members);
        }
        // The low-awake variant measures itself by definition; plain
        // protocols report awake rounds only when asked.
        if awake || matches!(protocol, Protocol::Ghs(GhsVariant::LowAwake)) {
            env.track_awake();
        }
        if let Some(inst) = instance {
            // Prewarm every radius the run will cache. The network's grid
            // is sized for `max_radius`, and topology rows are in grid
            // visit order, so builds at a smaller radius (EOPT step 1)
            // must come off the same-sized grid to stay bit-identical.
            if let Protocol::Eopt(cfg) = &protocol {
                env.install_topology(inst.topology_with_grid(max_radius, cfg.radius1(n.max(2))));
            }
            env.install_topology(inst.topology(max_radius));
        }
        let result: Result<(SpanningTree, Detail), RunError> = match protocol {
            Protocol::Ghs(variant) => {
                let out = crate::ghs::drive(&mut env, max_radius, variant);
                Ok((out.tree, Detail::Ghs(GhsDetail { phases: out.phases })))
            }
            Protocol::Eopt(cfg) => {
                let out = crate::eopt::drive(&mut env, &cfg);
                Ok((out.tree, Detail::Eopt(out.detail)))
            }
            Protocol::Nnt(scheme) => crate::nnt::drive(&mut env, scheme).map(|out| {
                (
                    out.tree,
                    Detail::Nnt(NntDetail {
                        unconnected: out.unconnected,
                        max_phases_used: out.max_phases_used,
                    }),
                )
            }),
            Protocol::Bfs { root } => {
                crate::bfs_tree::drive(&mut env, max_radius, root).map(|out| {
                    (
                        out.tree,
                        Detail::Bfs(BfsDetail {
                            reached: out.reached,
                        }),
                    )
                })
            }
            Protocol::ElectionFlood => {
                crate::election::drive_flood(&mut env, max_radius).map(|out| {
                    (
                        out.tree,
                        Detail::Election(ElectionDetail {
                            leader: out.leader,
                            agreed: out.agreed,
                        }),
                    )
                })
            }
            Protocol::ElectionTree => {
                crate::election::drive_tree(&mut env, max_radius).map(|out| {
                    (
                        out.tree,
                        Detail::Election(ElectionDetail {
                            leader: out.leader,
                            agreed: out.agreed,
                        }),
                    )
                })
            }
        };
        let (mut tree, detail) = match result {
            Ok(parts) => parts,
            Err(error) => {
                return Ok(RunOutcome::Failed {
                    error,
                    faults: env.net().fault_stats(),
                })
            }
        };
        let faulted = env.faulted();
        // Recovery runtime: before the environment is torn down, a
        // would-be-degraded tree build whose survivors sit in more than
        // one fragment gets the repair stage. Clean runs never enter
        // this block, so enabling repair leaves them bit-identical.
        let mut repaired: Option<(RepairStats, bool)> = None;
        if faulted && matches!(protocol, Protocol::Ghs(_) | Protocol::Eopt(_)) {
            if let Some(policy) = &repair {
                let fs = env.net().fault_stats();
                let fragments = tree.n().saturating_sub(tree.edges().len());
                let would_degrade = fs.timeouts > 0 || (fragments > 1 && fs.drops > 0);
                if would_degrade && crate::repair::needs_repair(&env, &tree) {
                    debug_assert!(tree.validate_forest().is_ok());
                    let (fixed, stats, success) =
                        crate::repair::run_repair(&mut env, max_radius, &tree, policy);
                    tree = fixed;
                    repaired = Some((stats, success));
                }
            }
        }
        let (stats, stages) = env.finish();
        let output = RunOutput::build(tree, stats, stages, detail);
        let fs = output.stats.faults;
        if let Some((repair, success)) = repaired {
            // The repair stage only runs on runs that already classified
            // as degraded; success upgrades them, failure leaves the
            // (still improved) partial forest where it was.
            return Ok(if success {
                RunOutcome::Repaired { output, repair }
            } else {
                RunOutcome::Degraded { output, faults: fs }
            });
        }
        // Damage is visible when a message was abandoned outright, or when
        // drops coincide with structural damage: a fragmented forest for
        // the tree builders (lost links can sever fragments a clean run
        // would have merged), disagreement for the elections (the flood
        // builds no tree, so fragment count says nothing there).
        let structural = match &output.detail {
            Detail::Election(d) => !d.agreed,
            _ => output.fragments > 1,
        };
        let degraded = faulted && (fs.timeouts > 0 || (structural && fs.drops > 0));
        Ok(if degraded {
            RunOutcome::Degraded { output, faults: fs }
        } else {
            RunOutcome::Complete(output)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_geom::{paper_phase2_radius, trial_rng, uniform_points};
    use emst_radio::MetricsSink;

    const ALL_PROTOCOLS: [Protocol; 7] = [
        Protocol::Ghs(GhsVariant::Original),
        Protocol::Ghs(GhsVariant::Modified),
        Protocol::Eopt(EoptConfig {
            phase1_multiplier: emst_geom::PAPER_PHASE1_MULTIPLIER,
            phase2_multiplier: emst_geom::PAPER_PHASE2_MULTIPLIER,
            beta: 1.0,
        }),
        Protocol::Nnt(RankScheme::Diagonal),
        Protocol::Bfs { root: 0 },
        Protocol::ElectionFlood,
        Protocol::ElectionTree,
    ];

    #[test]
    fn repeated_runs_are_bit_identical() {
        let pts = uniform_points(200, &mut trial_rng(901, 0));
        let r = paper_phase2_radius(200);
        for p in ALL_PROTOCOLS {
            let a = Sim::new(&pts).radius(r).run(p);
            let b = Sim::new(&pts).radius(r).run(p);
            assert!(a.tree.same_edges(&b.tree), "{p:?}");
            assert_eq!(a.stats.energy, b.stats.energy, "{p:?}");
            assert_eq!(a.stats.messages, b.stats.messages, "{p:?}");
            assert_eq!(a.stats.rounds, b.stats.rounds, "{p:?}");
            assert_eq!(a.stages, b.stages, "{p:?}");
        }
    }

    #[test]
    fn stage_marks_telescope_to_run_totals() {
        let pts = uniform_points(180, &mut trial_rng(907, 0));
        let r = paper_phase2_radius(180);
        for p in ALL_PROTOCOLS {
            let out = Sim::new(&pts).radius(r).run(p);
            assert!(!out.stages.is_empty(), "{p:?}: no stages recorded");
            let msgs: u64 = out.stages.iter().map(|s| s.messages).sum();
            let rounds: u64 = out.stages.iter().map(|s| s.rounds).sum();
            let energy: f64 = out.stages.iter().map(|s| s.energy).sum();
            assert_eq!(msgs, out.stats.messages, "{p:?}");
            assert_eq!(rounds, out.stats.rounds, "{p:?}");
            assert!((energy - out.stats.energy).abs() < 1e-9, "{p:?}");
            for (i, s) in out.stages.iter().enumerate() {
                assert_eq!(s.index, i as u64, "{p:?}");
            }
        }
    }

    #[test]
    fn fragments_counts_components() {
        let pts = uniform_points(300, &mut trial_rng(902, 0));
        let out = Sim::new(&pts).run(Protocol::Eopt(EoptConfig::default()));
        assert_eq!(out.fragments, 300 - out.tree.edges().len());
        let detail = out.detail.as_eopt().unwrap();
        assert!(detail.phases_step1 > 0);
    }

    #[test]
    fn sink_observes_every_protocol() {
        let pts = uniform_points(150, &mut trial_rng(903, 0));
        let r = paper_phase2_radius(150);
        for p in ALL_PROTOCOLS {
            let mut m = MetricsSink::new();
            let out = Sim::new(&pts).radius(r).sink(&mut m).run(p);
            assert_eq!(m.total_energy(), out.stats.energy, "{p:?}");
            assert_eq!(m.total_messages(), out.stats.messages, "{p:?}");
            assert_eq!(m.rounds(), out.stats.rounds, "{p:?}");
        }
    }

    #[test]
    fn contended_reactive_runs_trace_retries() {
        use emst_radio::ContentionConfig;
        let pts = uniform_points(100, &mut trial_rng(904, 0));
        let mut m = MetricsSink::new();
        let out = Sim::new(&pts)
            .contention(ContentionConfig::default())
            .sink(&mut m)
            .run(Protocol::Nnt(RankScheme::Diagonal));
        // Contended deliveries go through charge_attempt; the sink must
        // still reproduce the ledger exactly.
        assert_eq!(m.total_energy(), out.stats.energy);
        assert_eq!(m.total_messages(), out.stats.messages);
    }

    #[test]
    fn config_conflicts_surface_as_typed_errors() {
        use emst_radio::{ContentionConfig, FaultPlan, Membership};
        let pts = uniform_points(30, &mut trial_rng(908, 0));
        // Effective faults + effective membership: the conflict that used
        // to fire the `RadioNet::set_members` assert mid-run.
        let mut members = Membership::all_live(30);
        members.leave(3);
        let err = Sim::new(&pts)
            .radius(0.4)
            .with_faults(FaultPlan::none().drop_probability(0.1))
            .members(members.clone())
            .try_run_checked(Protocol::Ghs(GhsVariant::Modified))
            .unwrap_err();
        assert_eq!(err, ConfigError::FaultsWithMembership);
        assert!(err.to_string().contains("mutually exclusive"));

        // A *no-op* plan is elided by the builder, so the same request
        // without effective faults is not a conflict.
        assert!(Sim::new(&pts)
            .radius(0.4)
            .with_faults(FaultPlan::none())
            .members(members)
            .try_run_checked(Protocol::Ghs(GhsVariant::Modified))
            .is_ok());

        let err = Sim::new(&pts)
            .try_run_checked(Protocol::Ghs(GhsVariant::Modified))
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::MissingRadius {
                protocol: "Protocol::Ghs"
            }
        );

        let err = Sim::new(&pts)
            .radius(0.4)
            .contention(ContentionConfig::default())
            .try_run_checked(Protocol::Ghs(GhsVariant::Modified))
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::ContentionWithOrchestrated { protocol: "GHS" }
        );

        let err = Sim::new(&pts)
            .contention(ContentionConfig::default())
            .with_faults(FaultPlan::none().drop_probability(0.1))
            .try_run_checked(Protocol::Nnt(RankScheme::Diagonal))
            .unwrap_err();
        assert_eq!(err, ConfigError::ContentionWithFaults);

        let err = Sim::new(&pts)
            .radius(0.4)
            .try_run_checked(Protocol::Bfs { root: 30 })
            .unwrap_err();
        assert_eq!(err, ConfigError::RootOutOfRange { root: 30, n: 30 });
    }

    #[test]
    #[should_panic(expected = "requires Sim::radius")]
    fn ghs_without_radius_panics() {
        let pts = uniform_points(10, &mut trial_rng(905, 0));
        let _ = Sim::new(&pts).run(Protocol::Ghs(GhsVariant::Modified));
    }

    #[test]
    #[should_panic(expected = "contention layer applies to reactive protocols only")]
    fn contended_ghs_panics() {
        use emst_radio::ContentionConfig;
        let pts = uniform_points(10, &mut trial_rng(906, 0));
        let _ = Sim::new(&pts)
            .radius(0.5)
            .contention(ContentionConfig::default())
            .run(Protocol::Ghs(GhsVariant::Modified));
    }
}
