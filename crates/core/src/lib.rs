//! # emst-core — the paper's distributed MST algorithms
//!
//! Reproduction of the algorithmic contributions of *Energy-Optimal
//! Distributed Algorithms for Minimum Spanning Trees* (Choi, Khan, Kumar,
//! Pandurangan; SPAA'08 / IEEE JSAC'09), over the `emst-radio` simulator:
//!
//! * [`discovery`] — the initial hello broadcast through which nodes learn
//!   neighbour distances (§II denies them a-priori edge weights);
//! * [`ghs`] — synchronous GHS in the **original** (test/accept/reject)
//!   and **modified** (§V-A neighbour-cache) variants; the original at the
//!   connectivity radius is the paper's `Θ(log² n)`-energy baseline;
//! * [`eopt`] — the **two-step energy-optimal algorithm** of §V:
//!   percolation-radius GHS, giant detection, connectivity-radius GHS with
//!   a passive giant; `O(log n)` expected energy, exact MST output;
//! * [`nnt`] — **Co-NNT** (§VI): the coordinate-aware nearest-neighbour
//!   tree with `O(1)` expected energy and constant MST approximation,
//!   under both the diagonal rank (this paper) and the x-rank of \[15\].
//!
//! Every run goes through the unified [`Sim`] builder, which hands the
//! protocol's stage sequence to the shared execution environment
//! ([`ExecEnv`]) and returns its tree plus a [`emst_radio::RunStats`]
//! with exact per-message-kind energy attribution and per-stage
//! [`emst_radio::StageMark`] deltas; attach a [`emst_radio::TraceSink`]
//! via [`Sim::sink`] for per-round, per-phase, per-stage and per-node
//! observability.

pub mod bfs_tree;
pub mod discovery;
pub mod election;
pub mod eopt;
pub mod exec;
pub mod ghs;
pub mod instance;
pub mod maintain;
pub mod nnt;
pub mod repair;
pub mod sim;

pub use bfs_tree::BfsNode;
pub use discovery::{discover, discover_reactive, HelloProtocol, Neighbor, NeighborTable};
pub use eopt::EoptConfig;
pub use exec::ExecEnv;
pub use ghs::{GhsEngine, GhsKinds, GhsVariant};
pub use instance::{CacheStats, Instance, InstanceCache, InstanceKey};
pub use maintain::{
    maintain, ChurnEvent, ChurnTimeline, EpochReport, MaintainReport, MaintainSession,
    MaintainStrategy, SessionLedger,
};
pub use nnt::{NntMsg, NntNode, RankScheme};
pub use repair::{RepairPolicy, RepairStats};
pub use sim::{
    BfsDetail, ConfigError, Detail, ElectionDetail, EoptDetail, GhsDetail, NntDetail, Protocol,
    RunError, RunOutcome, RunOutput, Sim,
};
