//! # emst-core — the paper's distributed MST algorithms
//!
//! Reproduction of the algorithmic contributions of *Energy-Optimal
//! Distributed Algorithms for Minimum Spanning Trees* (Choi, Khan, Kumar,
//! Pandurangan; SPAA'08 / IEEE JSAC'09), over the `emst-radio` simulator:
//!
//! * [`discovery`] — the initial hello broadcast through which nodes learn
//!   neighbour distances (§II denies them a-priori edge weights);
//! * [`ghs`] — synchronous GHS in the **original** (test/accept/reject)
//!   and **modified** (§V-A neighbour-cache) variants; the original at the
//!   connectivity radius is the paper's `Θ(log² n)`-energy baseline;
//! * [`eopt`] — the **two-step energy-optimal algorithm** of §V:
//!   percolation-radius GHS, giant detection, connectivity-radius GHS with
//!   a passive giant; `O(log n)` expected energy, exact MST output;
//! * [`nnt`] — **Co-NNT** (§VI): the coordinate-aware nearest-neighbour
//!   tree with `O(1)` expected energy and constant MST approximation,
//!   under both the diagonal rank (this paper) and the x-rank of \[15\].
//!
//! Every run returns its tree plus a [`emst_radio::RunStats`] with exact
//! per-message-kind energy attribution.

pub mod bfs_tree;
pub mod discovery;
pub mod election;
pub mod eopt;
pub mod ghs;
pub mod nnt;

pub use bfs_tree::{run_bfs_configured, run_bfs_tree, BfsNode, BfsOutcome};
pub use election::{run_election_flood, run_election_tree, ElectionOutcome};
pub use discovery::{discover, discover_reactive, HelloProtocol, Neighbor, NeighborTable};
pub use eopt::{run_eopt, run_eopt_configured, run_eopt_with, EoptConfig, EoptOutcome};
pub use ghs::{run_ghs, run_ghs_configured, GhsEngine, GhsKinds, GhsOutcome, GhsVariant, EOPT1_KINDS, EOPT2_KINDS, GHS_KINDS};
pub use nnt::{run_nnt, run_nnt_configured, run_nnt_with, NntMsg, NntNode, NntOutcome, RankScheme};
