//! # emst-core — the paper's distributed MST algorithms
//!
//! Reproduction of the algorithmic contributions of *Energy-Optimal
//! Distributed Algorithms for Minimum Spanning Trees* (Choi, Khan, Kumar,
//! Pandurangan; SPAA'08 / IEEE JSAC'09), over the `emst-radio` simulator:
//!
//! * [`discovery`] — the initial hello broadcast through which nodes learn
//!   neighbour distances (§II denies them a-priori edge weights);
//! * [`ghs`] — synchronous GHS in the **original** (test/accept/reject)
//!   and **modified** (§V-A neighbour-cache) variants; the original at the
//!   connectivity radius is the paper's `Θ(log² n)`-energy baseline;
//! * [`eopt`] — the **two-step energy-optimal algorithm** of §V:
//!   percolation-radius GHS, giant detection, connectivity-radius GHS with
//!   a passive giant; `O(log n)` expected energy, exact MST output;
//! * [`nnt`] — **Co-NNT** (§VI): the coordinate-aware nearest-neighbour
//!   tree with `O(1)` expected energy and constant MST approximation,
//!   under both the diagonal rank (this paper) and the x-rank of \[15\].
//!
//! Every run goes through the unified [`Sim`] builder (or a deprecated
//! `run_*` wrapper) and returns its tree plus a [`emst_radio::RunStats`]
//! with exact per-message-kind energy attribution; attach a
//! [`emst_radio::TraceSink`] via [`Sim::sink`] for per-round, per-phase
//! and per-node observability.

pub mod bfs_tree;
pub mod discovery;
pub mod election;
pub mod eopt;
pub mod ghs;
pub mod nnt;
pub mod sim;

pub use bfs_tree::{BfsNode, BfsOutcome};
pub use discovery::{discover, discover_reactive, HelloProtocol, Neighbor, NeighborTable};
pub use election::{run_election_flood, run_election_tree, ElectionOutcome};
pub use eopt::{EoptConfig, EoptOutcome};
pub use ghs::{
    GhsEngine, GhsKinds, GhsOutcome, GhsVariant, EOPT1_KINDS, EOPT2_KINDS, EOPT2_RECOVERY_KINDS,
    GHS_KINDS,
};
pub use nnt::{NntMsg, NntNode, NntOutcome, RankScheme};
pub use sim::{
    BfsDetail, Detail, EoptDetail, GhsDetail, NntDetail, Protocol, RunError, RunOutcome, RunOutput,
    Sim,
};

// Deprecated pre-`Sim` entrypoints, re-exported for compatibility.
#[allow(deprecated)]
pub use bfs_tree::{run_bfs_configured, run_bfs_tree};
#[allow(deprecated)]
pub use eopt::{run_eopt, run_eopt_configured, run_eopt_with};
#[allow(deprecated)]
pub use ghs::{run_ghs, run_ghs_configured};
#[allow(deprecated)]
pub use nnt::{run_nnt, run_nnt_configured, run_nnt_with};
