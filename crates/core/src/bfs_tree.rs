//! Flooding BFS spanning tree — the cheapest *any*-spanning-tree
//! construction, and the natural witness that Theorem 4.1's `Ω(log n)`
//! lower bound is tight for plain (non-minimum) spanning trees.
//!
//! Protocol: a designated root broadcasts a token at the operating radius;
//! every node adopts the first heard sender as its parent (lowest id on
//! ties, deterministically) and re-broadcasts once. Exactly `n` local
//! broadcasts at radius `r` → energy `n·a·r^α = Θ(log n)` at the
//! connectivity radius — matching the lower bound — and `O(diameter)`
//! rounds, the fastest possible.
//!
//! The price is *quality*: tree edges have typical length `Θ(r)` instead
//! of the MST's `Θ(1/√n)`, so the BFS tree's `Σ d²` cost exceeds the MST's
//! by a `Θ(log n)` factor. The `tree_quality` ablation measures exactly
//! that trade-off (energy-to-build vs cost-to-use) across GHS / EOPT /
//! Co-NNT / BFS.
//!
//! Implemented as a reactive protocol on the discrete-event engine.

use crate::sim::RunError;
use emst_graph::{Edge, SpanningTree};
use emst_radio::{Ctx, Delivery, NodeProtocol};

/// Per-node flooding state.
#[derive(Debug)]
pub struct BfsNode {
    radius: f64,
    is_root: bool,
    /// `(parent, distance)` once joined.
    parent: Option<(usize, f64)>,
    announced: bool,
}

impl BfsNode {
    fn new(radius: f64, is_root: bool) -> Self {
        BfsNode {
            radius,
            is_root,
            parent: None,
            announced: false,
        }
    }

    /// The adopted parent edge, if any.
    pub fn parent(&self) -> Option<(usize, f64)> {
        self.parent
    }
}

impl NodeProtocol for BfsNode {
    type Msg = ();

    fn on_round(&mut self, inbox: &[Delivery<()>], ctx: &mut Ctx<'_, ()>) {
        if self.parent.is_none() && !self.is_root {
            // Adopt the first heard sender; inbox is sorted by sender id,
            // so ties resolve to the lowest id deterministically.
            if let Some(d) = inbox.first() {
                self.parent = Some((d.from, d.dist));
            }
        }
        let joined = self.is_root || self.parent.is_some();
        if joined && !self.announced {
            self.announced = true;
            ctx.broadcast(self.radius, "bfs/flood", ());
        }
    }

    fn done(&self) -> bool {
        // Announced, or still waiting for a token that may never arrive
        // (disconnected instances must quiesce too); a node that adopts a
        // parent broadcasts within the same round, so the middle state is
        // never observed at the quiescence check.
        self.announced || (!self.is_root && self.parent.is_none())
    }
}

/// Result of a flooding BFS-tree construction (tree + read-outs; stats
/// live on the [`crate::ExecEnv`]). The tree spans iff `G(points, radius)`
/// is connected — otherwise it spans the root's component and
/// `reached < n`.
pub(crate) struct BfsRun {
    pub tree: SpanningTree,
    pub reached: usize,
}

/// The flood as a single reactive stage against the shared execution
/// environment. Also the first leg of the tree election
/// ([`crate::election`]).
pub(crate) fn drive(
    env: &mut crate::ExecEnv<'_>,
    radius: f64,
    root: usize,
) -> Result<BfsRun, RunError> {
    let n = env.n();
    assert!(root < n.max(1), "root out of range");
    // Every broadcast in the flood happens at the operating radius: serve
    // them all from one cached adjacency.
    env.cache_topology(radius);
    let nodes: Vec<BfsNode> = (0..n).map(|i| BfsNode::new(radius, i == root)).collect();
    // Logical (MAC-agnostic) round budget; under faults each of the up to
    // `n` flood hops can be stretched by the retry budget.
    let mut budget = 2 * n as u64 + 8;
    if env.faulted() {
        budget += n as u64 * env.retry_slack() + 8;
    }
    // A starved flood under faults is a partial tree, not an abort: the
    // tolerant runner forgives the round-limit overrun.
    let nodes = env.run_nodes_tolerant("bfs", "flood", nodes, budget)?;
    let mut edges = Vec::new();
    let mut reached = 1usize; // the root
    for (u, node) in nodes.iter().enumerate() {
        if let Some((p, d)) = node.parent() {
            edges.push(Edge::new(u, p, d));
            reached += 1;
        }
    }
    Ok(BfsRun {
        tree: SpanningTree::new(n, edges),
        reached,
    })
}

#[cfg(test)]
mod tests {
    use crate::{Protocol, RunOutput, Sim};
    use emst_geom::{paper_phase2_radius, trial_rng, uniform_points, Point};

    fn run_bfs_tree(pts: &[Point], radius: f64, root: usize) -> RunOutput {
        Sim::new(pts).radius(radius).run(Protocol::Bfs { root })
    }

    fn reached(out: &RunOutput) -> usize {
        out.detail.as_bfs().expect("BFS run").reached
    }

    #[test]
    fn bfs_tree_spans_connected_instance() {
        let n = 400;
        let pts = uniform_points(n, &mut trial_rng(701, 0));
        let out = run_bfs_tree(&pts, paper_phase2_radius(n), 0);
        assert_eq!(reached(&out), n);
        assert!(out.tree.is_valid(), "{:?}", out.tree.validate());
    }

    #[test]
    fn energy_is_exactly_n_broadcasts() {
        let n = 300;
        let pts = uniform_points(n, &mut trial_rng(702, 0));
        let r = paper_phase2_radius(n);
        let out = run_bfs_tree(&pts, r, 0);
        assert_eq!(reached(&out), n, "instance must be connected for this test");
        assert_eq!(out.stats.messages, n as u64);
        assert!((out.stats.energy - n as f64 * r * r).abs() < 1e-9);
    }

    #[test]
    fn parents_are_closer_to_root_in_hops() {
        // BFS property: following parents always terminates at the root.
        let n = 250;
        let pts = uniform_points(n, &mut trial_rng(703, 0));
        let out = run_bfs_tree(&pts, paper_phase2_radius(n), 7);
        let mut parent = vec![usize::MAX; n];
        for e in out.tree.edges() {
            let (a, b) = e.endpoints();
            // child is the endpoint that records this parent edge; recover
            // orientation by walking: exactly one of a,b has the other as
            // parent — rebuild from node states is gone, so just check the
            // tree is connected to the root via BFS.
            parent[a] = b; // placeholder; connectivity checked below
        }
        let _ = parent;
        // Root reachability via undirected adjacency:
        let adj = out.tree.adjacency();
        let mut seen = vec![false; n];
        seen[7] = true;
        let mut q = std::collections::VecDeque::from([7usize]);
        while let Some(u) = q.pop_front() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    q.push_back(v);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn disconnected_instance_reaches_only_root_component() {
        let pts = vec![
            Point::new(0.1, 0.1),
            Point::new(0.15, 0.1),
            Point::new(0.9, 0.9),
        ];
        let out = run_bfs_tree(&pts, 0.1, 0);
        assert_eq!(reached(&out), 2);
        assert_eq!(out.tree.edges().len(), 1);
    }

    #[test]
    fn bfs_tree_is_fast_but_low_quality() {
        let n = 600;
        let pts = uniform_points(n, &mut trial_rng(704, 0));
        let r = paper_phase2_radius(n);
        let bfs = run_bfs_tree(&pts, r, 0);
        let mst = emst_graph::euclidean_mst(&pts);
        // Much faster than GHS-family (O(diameter) rounds ≈ O(1/r))…
        assert!(bfs.stats.rounds < 200);
        // …and within the Θ(log n) energy class…
        assert!(bfs.stats.energy < 30.0);
        // …but the tree costs Θ(log n)× more than the MST to use.
        let ratio = bfs.tree.cost(2.0) / mst.cost(2.0);
        assert!(ratio > 3.0, "BFS Σd² ratio {ratio} suspiciously good");
    }

    #[test]
    fn single_node() {
        let pts = vec![Point::new(0.5, 0.5)];
        let out = run_bfs_tree(&pts, 0.3, 0);
        assert_eq!(reached(&out), 1);
        assert!(out.tree.is_valid());
    }
}
