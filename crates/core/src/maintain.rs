//! Long-lived churn maintenance: keep a minimum spanning forest correct
//! across epochs of joins, crashes, sleeps, wakes and moves — without
//! rebuilding it from scratch.
//!
//! The paper's target deployments (energy-constrained radio networks)
//! live for months. The one-shot pipeline — generate points, run GHS,
//! read the tree — models a single construction; this module models the
//! rest of the deployment's life. A [`ChurnTimeline`] lists membership
//! events per *epoch* (one maintenance step), and [`maintain`] drives
//! the forest through them under one of two strategies:
//!
//! * [`MaintainStrategy::Recompute`] — the naive baseline: every epoch
//!   with events re-runs restricted modified GHS from singletons over
//!   the current live set (full hello round + full phase cascade).
//! * [`MaintainStrategy::Incremental`] — localized repair. Departures
//!   first: surviving tree edges are *seeded* into a fresh engine with
//!   zero radio traffic (survivors still hold their neighbour tables
//!   and §V-A caches from the previous epoch; a departed neighbour is
//!   detected by lease expiry — silence is free), the largest surviving
//!   fragment is marked passive (the trunk neither searches nor
//!   initiates), and only the orphaned fragments run modified-GHS
//!   phases to reattach. Arrivals second: each joiner pays one hello
//!   broadcast, hears one reply per live neighbour, and the incident
//!   edges are folded into the forest by a cycle-property fix-up
//!   (connect exchanges for adopted edges, one teardown message per
//!   evicted tree edge).
//!
//! ## Correctness
//!
//! Both strategies produce the *exact* minimum spanning forest of the
//! live unit-disk graph each epoch (pinned by proptest against
//! Kruskal):
//!
//! * **Departures.** Every surviving tree edge is in the MSF of the
//!   reduced live graph (removing vertices removes cycles, never adds
//!   them — the cycle property can only relax), so seeding them is
//!   sound; every edge the reconnection phases add is the proposing
//!   fragment's true minimum outgoing edge, so the cut property makes
//!   the completion exact. The passive trunk cannot block completion:
//!   edges are symmetric, so any trunk-adjacent orphan proposes the
//!   shared edge itself.
//! * **Arrivals.** `MSF(E_old ∪ E_A) = MSF(MSF(E_old) ∪ E_A)` when
//!   `E_A` carries every edge incident to an arrival (including
//!   arrival–arrival edges) — the standard sparsification identity. The
//!   driver runs that Kruskal over `forest ∪ E_A` and charges the
//!   protocol messages the fix-up would cost.
//!
//! Both strategies share tie-breaking with [`emst_graph::kruskal_forest`]
//! (ascending `(w, u, v)` on normalized endpoints), so forests agree
//! edge-for-edge, not merely in weight.
//!
//! ## Accounting
//!
//! Every epoch runs against a fresh [`MetricsSink`]-backed
//! [`ExecEnv`], and each [`EpochReport`] records whether the sink
//! reproduced the epoch's ledger *bitwise* (`ledger_conserved`) — the
//! chaos harness turns any mismatch into a violation. The headline
//! metric is [`MaintainReport::energy_per_maintained_round`].

use crate::exec::ExecEnv;
use crate::ghs::{GhsEngine, GhsKinds, GhsVariant};
use crate::repair::survivor_fragments;
use emst_geom::Point;
use emst_graph::{Edge, SpanningTree, UnionFind};
use emst_radio::{EnergyConfig, Membership, MetricsSink, RunStats};

/// Message kind for dismantling an evicted tree edge (one unicast per
/// eviction, charged under the `maintain` scope like every other
/// maintenance message).
const TEARDOWN: &str = "maintain/teardown";

/// One membership/lifecycle event inside an epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnEvent {
    /// A brand-new node joins at this position; its id is the next free
    /// slot of the id universe at the moment the event applies.
    Join(Point),
    /// Node `u` crashes (permanent departure; the id stays reserved).
    Crash(usize),
    /// Node `u` powers down (departure; may [`ChurnEvent::Wake`] later).
    Sleep(usize),
    /// Sleeping node `u` rejoins with its stable id and position.
    Wake(usize),
    /// Node `u` moves to a new position: a departure from the old
    /// position and an arrival at the new one, in the same epoch.
    Move(usize, Point),
}

/// A deterministic churn schedule: one list of events per maintenance
/// epoch. Built with chainable setters, and serializable back to the
/// exact builder expression via [`ChurnTimeline::to_source`] (the chaos
/// harness prints that as the repro for any violation).
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnTimeline {
    epochs: Vec<Vec<ChurnEvent>>,
}

impl ChurnTimeline {
    /// A timeline with `epochs` empty epochs.
    pub fn new(epochs: usize) -> Self {
        ChurnTimeline {
            epochs: vec![Vec::new(); epochs],
        }
    }

    fn push(mut self, epoch: usize, ev: ChurnEvent) -> Self {
        assert!(
            epoch < self.epochs.len(),
            "epoch {epoch} out of range (timeline has {})",
            self.epochs.len()
        );
        self.epochs[epoch].push(ev);
        self
    }

    /// Adds a [`ChurnEvent::Join`] at `(x, y)` to `epoch`.
    pub fn join(self, epoch: usize, x: f64, y: f64) -> Self {
        self.push(epoch, ChurnEvent::Join(Point { x, y }))
    }

    /// Adds a [`ChurnEvent::Crash`] of node `u` to `epoch`.
    pub fn crash(self, epoch: usize, u: usize) -> Self {
        self.push(epoch, ChurnEvent::Crash(u))
    }

    /// Adds a [`ChurnEvent::Sleep`] of node `u` to `epoch`.
    pub fn sleep(self, epoch: usize, u: usize) -> Self {
        self.push(epoch, ChurnEvent::Sleep(u))
    }

    /// Adds a [`ChurnEvent::Wake`] of node `u` to `epoch`.
    pub fn wake(self, epoch: usize, u: usize) -> Self {
        self.push(epoch, ChurnEvent::Wake(u))
    }

    /// Adds a [`ChurnEvent::Move`] of node `u` to `(x, y)` in `epoch`.
    pub fn move_to(self, epoch: usize, u: usize, x: f64, y: f64) -> Self {
        self.push(epoch, ChurnEvent::Move(u, Point { x, y }))
    }

    /// The per-epoch event lists.
    pub fn epochs(&self) -> &[Vec<ChurnEvent>] {
        &self.epochs
    }

    /// Number of epochs (including empty ones).
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Whether the timeline has no epochs.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Whether no epoch carries any event — a no-op timeline, under
    /// which [`maintain`] is the bootstrap run and nothing else.
    pub fn is_noop(&self) -> bool {
        self.epochs.iter().all(|e| e.is_empty())
    }

    /// Total event count across all epochs.
    pub fn event_count(&self) -> usize {
        self.epochs.iter().map(|e| e.len()).sum()
    }

    /// The Rust builder expression reconstructing this exact timeline —
    /// the repro string the chaos harness prints next to a violation.
    /// `{:?}` on `f64` prints the shortest digits that round-trip, so
    /// rebuilding from the printed source reproduces positions bitwise
    /// (the same contract `FaultPlan::to_source` pins).
    pub fn to_source(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("ChurnTimeline::new({})", self.epochs.len());
        for (e, events) in self.epochs.iter().enumerate() {
            for ev in events {
                let _ = match *ev {
                    ChurnEvent::Join(p) => write!(s, ".join({e}, {:?}, {:?})", p.x, p.y),
                    ChurnEvent::Crash(u) => write!(s, ".crash({e}, {u})"),
                    ChurnEvent::Sleep(u) => write!(s, ".sleep({e}, {u})"),
                    ChurnEvent::Wake(u) => write!(s, ".wake({e}, {u})"),
                    ChurnEvent::Move(u, p) => {
                        write!(s, ".move_to({e}, {u}, {:?}, {:?})", p.x, p.y)
                    }
                };
            }
        }
        s
    }
}

/// How [`maintain`] reacts to an epoch's membership changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintainStrategy {
    /// Localized repair: zero-cost cache restore + seeded reconnection
    /// for departures, per-arrival hello/connect traffic for joins.
    Incremental,
    /// From-scratch restricted GHS over the live set every epoch with
    /// events — the baseline incremental maintenance is measured
    /// against.
    Recompute,
}

/// Per-epoch read-out of one maintenance step.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// The membership epoch this step advanced to (monotone from 1).
    pub epoch: u64,
    /// Live nodes after the step.
    pub live: usize,
    /// Ids that arrived this epoch (joins, wakes, move-ins).
    pub arrivals: usize,
    /// Ids that departed this epoch (crashes, sleeps, move-outs).
    pub departures: usize,
    /// Radiated energy spent by this epoch's maintenance traffic.
    pub energy: f64,
    /// Messages sent by this epoch's maintenance traffic.
    pub messages: u64,
    /// Synchronous rounds consumed by this epoch.
    pub rounds: u64,
    /// Forest edges added this epoch.
    pub edges_added: usize,
    /// Forest edges removed this epoch (dead-incident + evicted).
    pub edges_removed: usize,
    /// Forest components over the live set after the step.
    pub fragments: usize,
    /// Whether the trace sink reproduced this epoch's ledger bitwise
    /// (energy) and exactly (messages) — the conservation invariant.
    pub ledger_conserved: bool,
    /// Whether the forest is acyclic with every endpoint live.
    pub forest_valid: bool,
}

/// Result of a full [`maintain`] run: the bootstrap construction, one
/// [`EpochReport`] per timeline epoch, and the final state.
#[derive(Debug, Clone)]
pub struct MaintainReport {
    /// The strategy that produced this report.
    pub strategy: MaintainStrategy,
    /// Operating radius of every construction and repair pass.
    pub radius: f64,
    /// Energy of the initial full construction (identical across
    /// strategies — both bootstrap with clean modified GHS).
    pub bootstrap_energy: f64,
    /// Messages of the initial full construction.
    pub bootstrap_messages: u64,
    /// Rounds of the initial full construction.
    pub bootstrap_rounds: u64,
    /// Whether the bootstrap ledger was reproduced bitwise by its sink.
    pub bootstrap_conserved: bool,
    /// One report per timeline epoch, in order.
    pub epochs: Vec<EpochReport>,
    /// Final positions (grown by joins, overwritten by moves).
    pub points: Vec<Point>,
    /// Final membership (epoch counter = timeline length).
    pub members: Membership,
    /// The maintained forest over the final id universe.
    pub forest: Vec<Edge>,
}

impl MaintainReport {
    /// The maintained forest as a [`SpanningTree`] over the final
    /// universe (dead ids are isolated vertices).
    pub fn tree(&self) -> SpanningTree {
        SpanningTree::new(self.points.len(), self.forest.clone())
    }

    /// Total maintenance energy across all epochs (bootstrap excluded).
    pub fn maintenance_energy(&self) -> f64 {
        self.epochs.iter().map(|e| e.energy).sum()
    }

    /// Total maintenance messages across all epochs.
    pub fn maintenance_messages(&self) -> u64 {
        self.epochs.iter().map(|e| e.messages).sum()
    }

    /// Total maintained rounds across all epochs.
    pub fn maintenance_rounds(&self) -> u64 {
        self.epochs.iter().map(|e| e.rounds).sum()
    }

    /// The headline metric: maintenance energy per maintained round
    /// (0 when no epoch consumed any round).
    pub fn energy_per_maintained_round(&self) -> f64 {
        let rounds = self.maintenance_rounds();
        if rounds == 0 {
            0.0
        } else {
            self.maintenance_energy() / rounds as f64
        }
    }
}

/// Runs `f` against a fresh metrics-sinked environment restricted to
/// `members`, returning its output, the run stats and whether the sink
/// reproduced the ledger bitwise (energy) and exactly (messages).
fn run_step<R>(
    points: &[Point],
    radius: f64,
    members: &Membership,
    f: impl FnOnce(&mut ExecEnv<'_>) -> R,
) -> (R, RunStats, bool) {
    let mut sink = MetricsSink::new();
    let mut env = ExecEnv::new(
        points,
        radius,
        EnergyConfig::paper(),
        None,
        None,
        Some(&mut sink),
    );
    env.set_members(members.clone());
    let out = f(&mut env);
    let (stats, _marks) = env.finish();
    let conserved = sink.total_energy().to_bits() == stats.energy.to_bits()
        && sink.total_messages() == stats.messages;
    (out, stats, conserved)
}

/// Sorts candidate edges by the global `(w, u, v)` tie-break (the
/// Kruskal order) and drops duplicate `(u, v)` pairs.
fn sort_dedup(edges: &mut Vec<Edge>) {
    edges.sort_unstable_by(|a, b| a.w.total_cmp(&b.w).then(a.u.cmp(&b.u)).then(a.v.cmp(&b.v)));
    edges.dedup_by(|a, b| a.u == b.u && a.v == b.v);
}

/// A cumulative accounting snapshot of a maintenance session: bootstrap
/// plus every advanced epoch, with energy carried as exact bits so two
/// snapshots compare bitwise, never approximately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionLedger {
    /// Membership epoch the session has advanced to.
    pub epoch: u64,
    /// Bit pattern of the cumulative radiated energy (bootstrap +
    /// maintenance, summed in epoch order).
    pub energy_bits: u64,
    /// Cumulative messages.
    pub messages: u64,
    /// Cumulative synchronous rounds.
    pub rounds: u64,
    /// Whether every step so far conserved its ledger bitwise.
    pub conserved: bool,
}

/// A *standing* churn-maintenance session: the persistent state
/// [`maintain`] threads through its epoch loop, split out so a caller
/// (the service's `/session` endpoints, a REPL, a long-horizon drift
/// study) can advance epochs incrementally instead of replaying a whole
/// timeline per request.
///
/// [`maintain`] itself is a thin replay wrapper over this type — one
/// `bootstrap` plus one [`MaintainSession::advance`] per timeline epoch
/// — so a session advanced epoch-by-epoch is *bitwise identical* to a
/// replayed timeline by construction, not by parallel maintenance of
/// two code paths.
#[derive(Debug, Clone)]
pub struct MaintainSession {
    strategy: MaintainStrategy,
    radius: f64,
    points: Vec<Point>,
    members: Membership,
    forest: Vec<Edge>,
    kinds: &'static GhsKinds,
    bootstrap_energy: f64,
    bootstrap_messages: u64,
    bootstrap_rounds: u64,
    bootstrap_conserved: bool,
    total_energy: f64,
    total_messages: u64,
    total_rounds: u64,
    conserved: bool,
}

impl MaintainSession {
    /// Runs the bootstrap construction (clean modified GHS over the
    /// all-live initial points — bit-identical to a plain
    /// [`crate::Sim`] run; the all-live membership is elided) and
    /// returns the session poised at epoch 0.
    pub fn bootstrap(initial_points: &[Point], radius: f64, strategy: MaintainStrategy) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "maintenance radius must be positive"
        );
        let points: Vec<Point> = initial_points.to_vec();
        let members = Membership::all_live(points.len());
        let kinds = GhsKinds::for_scope("maintain");
        let (forest, boot_stats, boot_conserved) = run_step(&points, radius, &members, |env| {
            crate::ghs::drive(env, radius, GhsVariant::Modified)
                .tree
                .edges()
                .to_vec()
        });
        MaintainSession {
            strategy,
            radius,
            points,
            members,
            forest,
            kinds,
            bootstrap_energy: boot_stats.energy,
            bootstrap_messages: boot_stats.messages,
            bootstrap_rounds: boot_stats.rounds,
            bootstrap_conserved: boot_conserved,
            total_energy: boot_stats.energy,
            total_messages: boot_stats.messages,
            total_rounds: boot_stats.rounds,
            conserved: boot_conserved,
        }
    }

    /// The strategy every [`MaintainSession::advance`] applies.
    pub fn strategy(&self) -> MaintainStrategy {
        self.strategy
    }

    /// The operating radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The current id universe size (grown by joins). Ids at or beyond
    /// this bound may only enter via [`ChurnEvent::Join`].
    pub fn universe(&self) -> usize {
        self.points.len()
    }

    /// Current positions (grown by joins, overwritten by moves).
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Current membership (epoch counter = number of advances so far).
    pub fn members(&self) -> &Membership {
        &self.members
    }

    /// The maintained forest over the current id universe.
    pub fn forest(&self) -> &[Edge] {
        &self.forest
    }

    /// The maintained forest as a [`SpanningTree`] over the current
    /// universe (dead ids are isolated vertices).
    pub fn tree(&self) -> SpanningTree {
        SpanningTree::new(self.points.len(), self.forest.clone())
    }

    /// Bootstrap stats as `(energy, messages, rounds, conserved)`.
    pub fn bootstrap_stats(&self) -> (f64, u64, u64, bool) {
        (
            self.bootstrap_energy,
            self.bootstrap_messages,
            self.bootstrap_rounds,
            self.bootstrap_conserved,
        )
    }

    /// The cumulative ledger snapshot. Pure read-out: calling this any
    /// number of times between advances returns the same bits — the
    /// reclaim-conservation pin the service layer enforces (ledger at
    /// reclaim == ledger at last advance, bitwise).
    pub fn ledger(&self) -> SessionLedger {
        SessionLedger {
            epoch: self.members.epoch(),
            energy_bits: self.total_energy.to_bits(),
            messages: self.total_messages,
            rounds: self.total_rounds,
            conserved: self.conserved,
        }
    }

    /// Advances the session one epoch, applying `events` and repairing
    /// the forest under the session's strategy. This is the exact body
    /// of [`maintain`]'s epoch loop.
    pub fn advance(&mut self, events: &[ChurnEvent]) -> EpochReport {
        let MaintainSession {
            strategy,
            radius,
            points,
            members,
            forest,
            kinds,
            ..
        } = self;
        let (strategy, radius, kinds) = (*strategy, *radius, *kinds);
        members.advance_epoch();
        // Classify the epoch's events. Position updates (joins, moves)
        // apply immediately: a mover is dead during the departure
        // sub-step, so its slot's position is not read until it
        // re-arrives at the new coordinates.
        let mut departures: Vec<usize> = Vec::new();
        let mut arrivals: Vec<usize> = Vec::new();
        for ev in events {
            match *ev {
                ChurnEvent::Join(p) => {
                    points.push(p);
                    arrivals.push(points.len() - 1);
                }
                ChurnEvent::Crash(u) | ChurnEvent::Sleep(u) => {
                    if members.is_live(u) {
                        departures.push(u);
                    }
                }
                ChurnEvent::Wake(u) => {
                    assert!(u < points.len(), "wake of unknown id {u}");
                    if !members.is_live(u) {
                        arrivals.push(u);
                    }
                }
                ChurnEvent::Move(u, p) => {
                    assert!(u < points.len(), "move of unknown id {u}");
                    points[u] = p;
                    if members.is_live(u) {
                        departures.push(u);
                    }
                    arrivals.push(u);
                }
            }
        }
        departures.sort_unstable();
        departures.dedup();
        arrivals.sort_unstable();
        arrivals.dedup();

        let mut energy = 0.0f64;
        let mut messages = 0u64;
        let mut rounds = 0u64;
        let mut conserved = true;
        let mut edges_added = 0usize;
        let mut edges_removed = 0usize;

        // Departures apply first under both strategies: dead-incident
        // tree edges leave the forest (surviving edges stay in the MSF
        // of the reduced graph by the cycle property).
        for &d in &departures {
            members.leave(d);
        }
        let kept = forest.len();
        forest.retain(|e| members.is_live(e.u as usize) && members.is_live(e.v as usize));
        edges_removed += kept - forest.len();

        match strategy {
            MaintainStrategy::Incremental => {
                // Sub-step (a): reconnect the orphans cut off by the
                // departures. Skipped when no tree edge was lost — a
                // departure that owned no tree edge was graph-isolated,
                // so the forest is already the MSF of the reduced live
                // set. (`edges_removed > 0` implies a live→dead
                // transition this epoch, so the membership is not
                // all-live and the engine runs in restricted mode.)
                if edges_removed > 0 {
                    let seeded: Vec<(usize, usize, f64)> = forest
                        .iter()
                        .map(|e| (e.u as usize, e.v as usize, e.w))
                        .collect();
                    let (new_forest, stats, ok) = run_step(points, radius, members, |env| {
                        let mut eng = GhsEngine::new(env.net(), GhsVariant::Modified);
                        eng.seed_forest(&seeded);
                        if let Some((f, size)) = eng.largest_fragment() {
                            if size > 1 {
                                eng.mark_passive(f);
                            }
                        }
                        env.stage(kinds.scope, "restore", |net| {
                            eng.restore_neighbor_caches(net, radius)
                        });
                        env.stage(kinds.scope, "reconnect", |net| eng.run_phases(net, kinds));
                        eng.tree().edges().to_vec()
                    });
                    edges_added += new_forest.len() - forest.len();
                    *forest = new_forest;
                    energy += stats.energy;
                    messages += stats.messages;
                    rounds += stats.rounds;
                    conserved &= ok;
                }
                // Sub-step (b): fold the arrivals in. Each joiner pays
                // one hello broadcast, hears one reply per live
                // neighbour, and the driver runs the sparsification
                // Kruskal over `forest ∪ E_A` — charging a connect
                // exchange per adopted arrival edge and one teardown
                // message per evicted tree edge.
                if !arrivals.is_empty() {
                    for &a in &arrivals {
                        members.admit(a);
                    }
                    let m = members.clone();
                    let old_forest = std::mem::take(forest);
                    let arrivals_ref = &arrivals;
                    let old_ref = &old_forest;
                    let ((adopted, evicted), stats, ok) =
                        run_step(points, radius, members, |env| {
                            env.stage(kinds.scope, "arrivals", |net| {
                                net.cache_topology(radius);
                                let topo = net.topology_handle().expect("cached above");
                                for &a in arrivals_ref {
                                    net.local_broadcast_silent(a, radius, kinds.hello);
                                }
                                for &a in arrivals_ref {
                                    for (v, _) in topo.neighbors_live(a, &m) {
                                        net.unicast(v, a, kinds.hello);
                                    }
                                }
                                let mut cand = old_ref.clone();
                                for &a in arrivals_ref {
                                    for (v, d) in topo.neighbors_live(a, &m) {
                                        cand.push(Edge::new(a, v, d));
                                    }
                                }
                                sort_dedup(&mut cand);
                                let mut uf = UnionFind::new(net.n());
                                let mut adopted: Vec<Edge> = Vec::new();
                                for e in &cand {
                                    if uf.union(e.u as usize, e.v as usize) {
                                        adopted.push(*e);
                                    }
                                }
                                let is_arrival = |u: usize| arrivals_ref.binary_search(&u).is_ok();
                                for e in &adopted {
                                    if is_arrival(e.u as usize) || is_arrival(e.v as usize) {
                                        net.exchange(e.u as usize, e.v as usize, kinds.connect);
                                    }
                                }
                                let mut kept: Vec<(u32, u32)> =
                                    adopted.iter().map(|e| (e.u, e.v)).collect();
                                kept.sort_unstable();
                                let mut evicted = 0usize;
                                for e in old_ref {
                                    if kept.binary_search(&(e.u, e.v)).is_err() {
                                        net.unicast(e.u as usize, e.v as usize, TEARDOWN);
                                        evicted += 1;
                                    }
                                }
                                // hello, reply, connect, teardown slots.
                                net.advance_rounds(4);
                                (adopted, evicted)
                            })
                        });
                    edges_removed += evicted;
                    edges_added += adopted.len() - (old_forest.len() - evicted);
                    *forest = adopted;
                    energy += stats.energy;
                    messages += stats.messages;
                    rounds += stats.rounds;
                    conserved &= ok;
                }
            }
            MaintainStrategy::Recompute => {
                for &a in &arrivals {
                    members.admit(a);
                }
                if !departures.is_empty() || !arrivals.is_empty() {
                    let (new_forest, stats, ok) = run_step(points, radius, members, |env| {
                        let mut eng = GhsEngine::new(env.net(), GhsVariant::Modified);
                        env.stage(kinds.scope, "discover", |net| {
                            eng.discover(net, radius, kinds)
                        });
                        env.stage(kinds.scope, "phases", |net| eng.run_phases(net, kinds));
                        eng.tree().edges().to_vec()
                    });
                    // Diff against the departure-reduced forest so
                    // added/removed counts mean the same thing under
                    // both strategies.
                    let mut old: Vec<(u32, u32)> = forest.iter().map(|e| (e.u, e.v)).collect();
                    old.sort_unstable();
                    let mut shared = 0usize;
                    for e in &new_forest {
                        if old.binary_search(&(e.u, e.v)).is_ok() {
                            shared += 1;
                        }
                    }
                    edges_added += new_forest.len() - shared;
                    edges_removed += forest.len() - shared;
                    *forest = new_forest;
                    energy += stats.energy;
                    messages += stats.messages;
                    rounds += stats.rounds;
                    conserved &= ok;
                }
            }
        }

        let n_now = points.len();
        let alive: Vec<bool> = (0..n_now).map(|u| members.is_live(u)).collect();
        let tree = SpanningTree::new(n_now, forest.clone());
        let forest_valid = tree.validate_forest().is_ok()
            && forest
                .iter()
                .all(|e| alive[e.u as usize] && alive[e.v as usize]);
        let report = EpochReport {
            epoch: members.epoch(),
            live: members.live_count(),
            arrivals: arrivals.len(),
            departures: departures.len(),
            energy,
            messages,
            rounds,
            edges_added,
            edges_removed,
            fragments: survivor_fragments(n_now, &tree, &alive),
            ledger_conserved: conserved,
            forest_valid,
        };
        self.total_energy += energy;
        self.total_messages += messages;
        self.total_rounds += rounds;
        self.conserved &= conserved;
        report
    }
}

/// Drives the forest through `timeline` at `radius` under `strategy`.
///
/// A pure replay over [`MaintainSession`]: one
/// [`MaintainSession::bootstrap`] (identical for both strategies, and
/// bit-identical to a plain [`crate::Sim`] run — the all-live
/// membership is elided) plus one [`MaintainSession::advance`] per
/// timeline epoch. A standing session advanced with the same events in
/// the same order therefore reproduces this report's ledgers bitwise.
/// See the module docs for the per-epoch mechanics and the correctness
/// argument.
pub fn maintain(
    initial_points: &[Point],
    radius: f64,
    timeline: &ChurnTimeline,
    strategy: MaintainStrategy,
) -> MaintainReport {
    let mut session = MaintainSession::bootstrap(initial_points, radius, strategy);
    let epochs: Vec<EpochReport> = timeline
        .epochs()
        .iter()
        .map(|events| session.advance(events))
        .collect();
    let (bootstrap_energy, bootstrap_messages, bootstrap_rounds, bootstrap_conserved) =
        session.bootstrap_stats();
    let MaintainSession {
        points,
        members,
        forest,
        ..
    } = session;
    MaintainReport {
        strategy,
        radius,
        bootstrap_energy,
        bootstrap_messages,
        bootstrap_rounds,
        bootstrap_conserved,
        epochs,
        points,
        members,
        forest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Protocol, Sim};
    use emst_geom::{paper_phase2_radius, trial_rng, uniform_points};
    use emst_graph::{kruskal_forest, Graph};

    /// MSF of the live unit-disk subgraph, computed by Kruskal — the
    /// ground truth every maintained forest must match edge-for-edge.
    fn live_kruskal(points: &[Point], radius: f64, members: &Membership) -> SpanningTree {
        let n = points.len();
        let mut edges = Vec::new();
        for u in 0..n {
            if !members.is_live(u) {
                continue;
            }
            for v in (u + 1)..n {
                if !members.is_live(v) {
                    continue;
                }
                let d = points[u].dist(&points[v]);
                if d <= radius {
                    edges.push(Edge::new(u, v, d));
                }
            }
        }
        let g = Graph::from_edges(n, edges);
        SpanningTree::new(n, kruskal_forest(&g))
    }

    #[test]
    fn noop_timeline_is_exactly_the_bootstrap_run() {
        let pts = uniform_points(150, &mut trial_rng(0xC0FFEE, 0));
        let r = paper_phase2_radius(150);
        let plain = Sim::new(&pts)
            .radius(r)
            .run(Protocol::Ghs(GhsVariant::Modified));
        for strategy in [MaintainStrategy::Incremental, MaintainStrategy::Recompute] {
            let rep = maintain(&pts, r, &ChurnTimeline::new(3), strategy);
            assert!(rep.bootstrap_conserved);
            assert_eq!(rep.bootstrap_energy.to_bits(), plain.stats.energy.to_bits());
            assert_eq!(rep.bootstrap_messages, plain.stats.messages);
            assert!(rep.tree().same_edges(&plain.tree));
            assert_eq!(rep.epochs.len(), 3);
            for e in &rep.epochs {
                assert_eq!(e.energy, 0.0);
                assert_eq!(e.messages, 0);
                assert!(e.ledger_conserved && e.forest_valid);
            }
            assert_eq!(rep.members.epoch(), 3);
        }
    }

    #[test]
    fn incremental_matches_recompute_and_kruskal_under_mixed_churn() {
        let pts = uniform_points(120, &mut trial_rng(0xC0FFEF, 0));
        let r = paper_phase2_radius(120);
        let tl = ChurnTimeline::new(4)
            .crash(0, 7)
            .crash(0, 55)
            .sleep(1, 12)
            .join(1, 0.41, 0.43)
            .move_to(2, 30, 0.6, 0.6)
            .wake(3, 12)
            .crash(3, 99);
        let inc = maintain(&pts, r, &tl, MaintainStrategy::Incremental);
        let rec = maintain(&pts, r, &tl, MaintainStrategy::Recompute);
        assert_eq!(inc.members, rec.members);
        assert_eq!(inc.points, rec.points);
        assert!(inc.tree().same_edges(&rec.tree()), "strategies disagree");
        let truth = live_kruskal(&inc.points, r, &inc.members);
        assert!(inc.tree().same_edges(&truth), "incremental is not the MSF");
        for rep in [&inc, &rec] {
            for e in &rep.epochs {
                assert!(e.ledger_conserved, "epoch {} leaked energy", e.epoch);
                assert!(e.forest_valid, "epoch {} broke the forest", e.epoch);
            }
        }
        // Epochs are monotone and complete.
        let seen: Vec<u64> = inc.epochs.iter().map(|e| e.epoch).collect();
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }

    #[test]
    fn departure_only_epoch_repairs_locally() {
        let pts = uniform_points(100, &mut trial_rng(0xC0FF10, 0));
        let r = paper_phase2_radius(100);
        let tl = ChurnTimeline::new(1).crash(0, 50);
        let inc = maintain(&pts, r, &tl, MaintainStrategy::Incremental);
        let truth = live_kruskal(&inc.points, r, &inc.members);
        assert!(inc.tree().same_edges(&truth));
        let rec = maintain(&pts, r, &tl, MaintainStrategy::Recompute);
        assert!(
            inc.epochs[0].messages < rec.epochs[0].messages,
            "incremental ({}) should send fewer messages than recompute ({})",
            inc.epochs[0].messages,
            rec.epochs[0].messages
        );
    }

    #[test]
    fn timeline_source_round_trips() {
        let tl = ChurnTimeline::new(3)
            .join(0, 0.125, 0.75)
            .crash(0, 4)
            .sleep(1, 2)
            .wake(2, 2)
            .move_to(2, 1, 0.3333333333333333, 0.1);
        let src = tl.to_source();
        assert_eq!(
            src,
            "ChurnTimeline::new(3).join(0, 0.125, 0.75).crash(0, 4).sleep(1, 2)\
             .wake(2, 2).move_to(2, 1, 0.3333333333333333, 0.1)"
        );
        // Rebuilding through the printed builder calls reproduces the
        // timeline exactly (the chaos harness relies on this).
        let rebuilt = ChurnTimeline::new(3)
            .join(0, 0.125, 0.75)
            .crash(0, 4)
            .sleep(1, 2)
            .wake(2, 2)
            .move_to(2, 1, 0.3333333333333333, 0.1);
        assert_eq!(tl, rebuilt);
        assert_eq!(tl.event_count(), 5);
        assert!(!tl.is_noop());
        assert!(ChurnTimeline::new(2).is_noop());
    }

    #[test]
    #[should_panic(expected = "epoch 5 out of range")]
    fn out_of_range_epoch_panics() {
        let _ = ChurnTimeline::new(2).crash(5, 0);
    }
}
