//! The stage runtime: one execution environment for every protocol.
//!
//! Before this module existed, each protocol driver hand-built its own
//! `RadioNet`, re-implemented the `Some(cfg) ⇒ contended / None ⇒
//! collision-free` engine dance, threaded `Option<&FaultPlan>` and
//! `Option<&mut dyn TraceSink>` through its own signature, and captured
//! `RunStats` its own way — six near-identical pipelines that drifted
//! (discovery and election silently ignored the energy model, faults and
//! contention entirely). [`ExecEnv`] is now the single owner of run-wide
//! state, and protocols are compositions of *stages* executed against it:
//!
//! * [`ExecEnv::stage`] runs one orchestrated step (a GHS discover pass, a
//!   phase loop, a convergecast) against the shared network;
//! * [`ExecEnv::run_nodes`] runs one reactive step (a [`NodeProtocol`]
//!   fleet: NNT probe ladder, BFS flood, election flood) under whichever
//!   MAC layer the run is configured with.
//!
//! Around every stage the runtime snapshots the network counters and
//! publishes the difference as a [`StageMark`]: per-stage
//! energy/messages/rounds/fault deltas flow to the attached
//! [`TraceSink`] as `stage` events and accumulate
//! on the env for [`RunOutput::stages`](crate::RunOutput). Stage marks are
//! pure telemetry — they never touch the ledger or the clock, so a run's
//! messages, rounds, phases and merges are bit-identical to the
//! pre-stage-runtime implementation (pinned by `tests/golden_fixtures.rs`).

use crate::sim::RunError;
use emst_geom::Point;
use emst_radio::{
    ContentionConfig, EnergyConfig, EngineError, FaultPlan, Membership, NodeProtocol, RadioNet,
    RunStats, StageMark, StatSnapshot, SyncEngine, TraceSink,
};

/// The single owner of run-wide state: points, the radio network (with
/// energy model, fault plan, trace sink and topology cache), the optional
/// contention layer, and the per-stage delta log.
///
/// Constructed once per [`Sim::try_run`](crate::Sim::try_run); protocol
/// drivers only ever see `&mut ExecEnv` and express themselves as stage
/// sequences.
pub struct ExecEnv<'a> {
    /// `Option` so reactive stages can hand the network to a
    /// [`SyncEngine`] by value and take it back via `into_parts`.
    net: Option<RadioNet<'a>>,
    contention: Option<ContentionConfig>,
    faulted: bool,
    /// Retry slack for round budgets: `max_retries + 1` under an active
    /// fault plan, `0` otherwise.
    retry_slack: u64,
    /// Worker-thread count for stages that shard per-round node work
    /// (see [`ExecEnv::set_shards`]).
    shards: usize,
    stages: Vec<StageMark>,
}

impl<'a> ExecEnv<'a> {
    /// Builds the environment: network at `max_radius` under `energy`,
    /// optional fault plan (no-op plans are elided — the clean path stays
    /// bit-identical), optional contention layer, optional trace sink.
    ///
    /// # Panics
    ///
    /// If `contention` and an effective (non-no-op) fault plan are both
    /// present: fault injection composes with the collision-free engine
    /// only.
    pub fn new(
        points: &'a [Point],
        max_radius: f64,
        energy: EnergyConfig,
        faults: Option<&FaultPlan>,
        contention: Option<ContentionConfig>,
        sink: Option<&'a mut dyn TraceSink>,
    ) -> Self {
        let mut net = RadioNet::with_config(points, max_radius, energy);
        if let Some(plan) = faults {
            net.set_faults(plan.clone());
        }
        let faulted = net.faults().is_some();
        assert!(
            !(contention.is_some() && faulted),
            "fault injection composes with the collision-free engine only"
        );
        let retry_slack = if faulted {
            net.faults()
                .map(|p| p.max_retries() as u64 + 1)
                .unwrap_or(0)
        } else {
            0
        };
        if let Some(sink) = sink {
            net.set_sink(sink);
        }
        ExecEnv {
            net: Some(net),
            contention,
            faulted,
            retry_slack,
            shards: 1,
            stages: Vec::new(),
        }
    }

    /// Sets the worker-thread count for stages that partition per-round
    /// node work (the GHS MOE search). Sharding changes wall-clock only:
    /// nodes are assigned to shards by a fixed mapping and per-shard
    /// results are reduced in canonical sequential order, so ledgers,
    /// traces and stage marks stay bit-identical to `shards = 1`
    /// (pinned by `tests/shard_identity.rs`). Values are clamped to at
    /// least 1.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// Worker-thread count for shardable stages (1 = sequential).
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.net().n()
    }

    /// Whether an effective fault plan is active.
    #[inline]
    pub fn faulted(&self) -> bool {
        self.faulted
    }

    /// Whether the slotted-ALOHA contention layer is active.
    #[inline]
    pub fn contended(&self) -> bool {
        self.contention.is_some()
    }

    /// Retry slack for round budgets (`max_retries + 1` when faulted,
    /// `0` otherwise) — the factor by which loss-retries can stretch a
    /// reactive protocol's schedule.
    #[inline]
    pub fn retry_slack(&self) -> u64 {
        self.retry_slack
    }

    /// Read access to the shared network.
    pub fn net(&self) -> &RadioNet<'a> {
        self.net.as_ref().expect("network is held by a stage")
    }

    /// The active fault plan, cloned (repair escalation rebuilds it with a
    /// grown retry budget between attempts).
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.net().faults().cloned()
    }

    /// Replaces the run's fault plan mid-run — the repair stage's
    /// escalation knob. The plan's coin stream is still keyed on
    /// `(seed, round, src, dst)`, so swapping in a plan that differs only
    /// in its retry budget leaves every already-drawn coin unchanged and
    /// future coins deterministic. Installing a no-op plan on a faulted
    /// run is rejected (it would silently change classification).
    pub fn escalate_faults(&mut self, plan: FaultPlan) {
        assert!(
            !plan.is_noop(),
            "escalate_faults: an effective plan cannot be escalated to a no-op"
        );
        let net = self.net.as_mut().expect("network is held by a stage");
        net.set_faults(plan);
        self.faulted = true;
        self.retry_slack = net
            .faults()
            .map(|p| p.max_retries() as u64 + 1)
            .unwrap_or(0);
    }

    /// Installs the run's live set. All-live memberships are elided
    /// exactly like no-op fault plans (the clean path stays
    /// bit-identical); an effective membership restricts delivery,
    /// reception charges and idle accounting to live ids, and stages
    /// constructed after this call (e.g. a [`crate::GhsEngine`]) mirror
    /// it. See [`RadioNet::set_members`].
    ///
    /// # Panics
    ///
    /// If an effective membership meets an effective fault plan — the
    /// two layers would be dual owners of per-round liveness.
    pub fn set_members(&mut self, members: Membership) {
        self.net
            .as_mut()
            .expect("network is held by a stage")
            .set_members(members);
    }

    /// The installed live set (`None` when every node participates).
    pub fn members(&self) -> Option<&Membership> {
        self.net().members()
    }

    /// Enables awake-round tracking by installing an all-awake
    /// [`emst_radio::AwakeSchedule`] over the run's nodes (idempotent).
    /// Charges stay bit-identical — only the awake read-outs on
    /// [`RunStats`]/[`StageMark`] flip from `None` to `Some`. Low-awake
    /// protocols then carve sleep windows into the installed schedule
    /// via [`RadioNet::sleep_node`](emst_radio::RadioNet::sleep_node).
    ///
    /// # Panics
    ///
    /// If an effective fault plan is active — a fault plan already owns
    /// adversarial sleep windows (see
    /// [`RadioNet::set_awake`](emst_radio::RadioNet::set_awake)).
    pub fn track_awake(&mut self) {
        let net = self.net.as_mut().expect("network is held by a stage");
        if net.awake_schedule().is_none() {
            let n = net.n();
            net.set_awake(emst_radio::AwakeSchedule::new(n));
        }
    }

    /// Whether awake-round tracking is enabled.
    #[inline]
    pub fn awake_tracked(&self) -> bool {
        self.net().awake_schedule().is_some()
    }

    /// Registers a pre-built shared topology (the instance-reuse fast
    /// path): stages that cache the adjacency at its radius reuse the
    /// build instead of repeating it. See
    /// [`RadioNet::install_topology`](emst_radio::RadioNet::install_topology).
    pub fn install_topology(&mut self, topo: std::sync::Arc<emst_radio::Topology>) {
        self.net
            .as_mut()
            .expect("network is held by a stage")
            .install_topology(topo);
    }

    /// Builds (or reuses) the cached adjacency at `radius` — call before
    /// stages that query neighbourhoods at a fixed radius.
    pub fn cache_topology(&mut self, radius: f64) {
        self.net
            .as_mut()
            .expect("network is held by a stage")
            .cache_topology(radius);
    }

    /// Runs one orchestrated stage against the shared network and records
    /// its resource deltas under `scope`/`name`.
    ///
    /// `scope` is the protocol namespace the stage transmits under
    /// (`"ghs"`, `"eopt1"`, …) — by convention also the message-kind
    /// prefix, so per-scope sums over stage marks replace ledger prefix
    /// matching.
    pub fn stage<R>(
        &mut self,
        scope: &'static str,
        name: &'static str,
        f: impl FnOnce(&mut RadioNet<'a>) -> R,
    ) -> R {
        let net = self.net.as_mut().expect("network is held by a stage");
        let before = StatSnapshot::capture(net);
        let out = f(net);
        self.seal(before, scope, name);
        out
    }

    /// Runs a reactive [`NodeProtocol`] fleet as one stage, under the
    /// run's configured MAC layer (contended or collision-free) — the
    /// single home of the engine construction dance. Returns the nodes
    /// (also on failure: faulted protocols salvage partial results from
    /// them) and the engine verdict.
    pub fn run_nodes<P: NodeProtocol>(
        &mut self,
        scope: &'static str,
        name: &'static str,
        nodes: Vec<P>,
        max_rounds: u64,
    ) -> (Vec<P>, Result<u64, RunError>) {
        let net = self.net.take().expect("network is held by a stage");
        let before = StatSnapshot::capture(&net);
        let mut eng = match self.contention {
            Some(cfg) => SyncEngine::with_contention(net, nodes, cfg),
            None => SyncEngine::new(net, nodes),
        };
        let run_res = eng.try_run(max_rounds);
        let (net, nodes) = eng.into_parts();
        self.net = Some(net);
        self.seal(before, scope, name);
        (nodes, run_res.map_err(RunError::from))
    }

    /// Like [`ExecEnv::run_nodes`], but applies the uniform tolerance for
    /// fault-starved schedules: under an active fault plan a round-limit
    /// overrun is a degraded partial result, not an error.
    pub fn run_nodes_tolerant<P: NodeProtocol>(
        &mut self,
        scope: &'static str,
        name: &'static str,
        nodes: Vec<P>,
        max_rounds: u64,
    ) -> Result<Vec<P>, RunError> {
        let net = self.net.take().expect("network is held by a stage");
        let before = StatSnapshot::capture(&net);
        let mut eng = match self.contention {
            Some(cfg) => SyncEngine::with_contention(net, nodes, cfg),
            None => SyncEngine::new(net, nodes),
        };
        let run_res = eng.try_run(max_rounds);
        let (net, nodes) = eng.into_parts();
        self.net = Some(net);
        self.seal(before, scope, name);
        match run_res {
            Ok(_) => Ok(nodes),
            Err(EngineError::RoundLimit(_)) if self.faulted => Ok(nodes),
            Err(e) => Err(e.into()),
        }
    }

    /// Closes a stage: computes the delta since `before`, mirrors it to
    /// the trace sink and appends it to the stage log.
    fn seal(&mut self, before: StatSnapshot, scope: &'static str, name: &'static str) {
        let net = self.net.as_mut().expect("network is held by a stage");
        let mark = before.delta(net, scope, name, self.stages.len() as u64);
        net.note_stage(mark);
        self.stages.push(mark);
    }

    /// Per-stage marks recorded so far (for mid-run attribution, e.g.
    /// EOPT's step split).
    pub fn stage_marks(&self) -> &[StageMark] {
        &self.stages
    }

    /// Finishes the run: captures the final [`RunStats`] and yields the
    /// stage log.
    pub fn finish(self) -> (RunStats, Vec<StageMark>) {
        let net = self.net.as_ref().expect("network is held by a stage");
        (RunStats::capture(net), self.stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_geom::{trial_rng, uniform_points};
    use emst_radio::MetricsSink;

    #[test]
    fn stage_marks_telescope_to_run_totals() {
        let pts = uniform_points(50, &mut trial_rng(0x57A6E, 0));
        let mut env = ExecEnv::new(&pts, 0.5, EnergyConfig::paper(), None, None, None);
        env.cache_topology(0.3);
        env.stage("a", "one", |net| {
            for u in 0..10 {
                net.unicast(u, u + 1, "a/x");
            }
            net.tick_round();
        });
        env.stage("b", "two", |net| {
            net.local_broadcast(0, 0.3, "b/y");
            net.advance_rounds(2);
        });
        let (stats, marks) = env.finish();
        assert_eq!(marks.len(), 2);
        assert_eq!(marks[0].index, 0);
        assert_eq!(marks[1].index, 1);
        assert_eq!(marks[0].messages + marks[1].messages, stats.messages);
        assert_eq!(marks[0].rounds + marks[1].rounds, stats.rounds);
        let sum: f64 = marks.iter().map(|m| m.energy).sum();
        assert!((sum - stats.energy).abs() < 1e-12);
        assert_eq!(marks[1].scope, "b");
        assert_eq!(marks[1].name, "two");
        assert_eq!(marks[1].round, 3);
    }

    #[test]
    fn stage_events_reach_the_sink() {
        let pts = uniform_points(20, &mut trial_rng(0x57A6F, 0));
        let mut m = MetricsSink::new();
        let mut env = ExecEnv::new(&pts, 0.5, EnergyConfig::paper(), None, None, Some(&mut m));
        env.stage("s", "only", |net| {
            net.unicast(0, 1, "s/k");
            net.tick_round();
        });
        let (_, marks) = env.finish();
        assert_eq!(m.stages(), marks.as_slice());
        assert_eq!(m.stages()[0].messages, 1);
        assert_eq!(m.stages()[0].rounds, 1);
    }

    #[test]
    #[should_panic(expected = "collision-free engine only")]
    fn faults_and_contention_are_mutually_exclusive() {
        let pts = uniform_points(5, &mut trial_rng(1, 0));
        let plan = FaultPlan::none().drop_probability(0.1);
        let _ = ExecEnv::new(
            &pts,
            0.5,
            EnergyConfig::paper(),
            Some(&plan),
            Some(ContentionConfig::default()),
            None,
        );
    }

    #[test]
    fn noop_fault_plan_is_elided() {
        let pts = uniform_points(5, &mut trial_rng(2, 0));
        let plan = FaultPlan::none().seed(9).retries(7);
        let env = ExecEnv::new(&pts, 0.5, EnergyConfig::paper(), Some(&plan), None, None);
        assert!(!env.faulted());
        assert_eq!(env.retry_slack(), 0);
    }
}
