//! Neighbour discovery.
//!
//! §II stipulates that nodes initially do **not** know the distances to
//! their neighbours. Every radius-disciplined protocol therefore begins
//! with one *hello* local broadcast per node at the operating radius;
//! receivers measure the sender's distance (the standard RSSI abstraction)
//! and record `(id, distance)`. Cost: `n` messages, `n·a·r^α` energy — at
//! the connectivity radius this is `O(log n)` total, dominated by every
//! algorithm that follows.
//!
//! Two interchangeable implementations are provided:
//!
//! * [`HelloProtocol`] — a genuine reactive protocol on the discrete-event
//!   engine (one broadcast in round 0, listen in round 1);
//! * [`discover`] — the stage-orchestrated equivalent used inside the GHS
//!   machinery (identical messages, energy and round count).
//!
//! A test asserts the two produce identical neighbour tables and charges.

use emst_radio::{Ctx, Delivery, NodeProtocol, RadioNet};

/// One discovered neighbour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Neighbour node id.
    pub id: u32,
    /// Measured Euclidean distance.
    pub dist: f64,
}

/// Neighbour table: for each node, its neighbours sorted by
/// `(distance, id)` ascending.
pub type NeighborTable = Vec<Vec<Neighbor>>;

/// Message kind charged for hello broadcasts.
pub const HELLO_KIND: &str = "discovery/hello";

/// Stage-orchestrated neighbour discovery: every node broadcasts once at
/// `radius` (kind `kind`), one synchronous round. Returns the sorted
/// neighbour table.
pub fn discover(net: &mut RadioNet<'_>, radius: f64, kind: &'static str) -> NeighborTable {
    let n = net.n();
    let mut table: NeighborTable = vec![Vec::new(); n];
    let mut receivers = Vec::new();
    for u in 0..n {
        // Receivers of u's hello learn (u, dist). Served from the cached
        // topology when the caller has built one at this radius.
        net.local_broadcast_into(u, radius, kind, &mut receivers);
        for &(v, d) in &receivers {
            table[v].push(Neighbor {
                id: u as u32,
                dist: d,
            });
        }
    }
    for row in &mut table {
        row.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    }
    net.tick_round();
    table
}

/// Reactive hello protocol: broadcast in round 0, collect in round 1.
#[derive(Debug)]
pub struct HelloProtocol {
    radius: f64,
    sent: bool,
    heard: Vec<Neighbor>,
}

impl HelloProtocol {
    /// New instance broadcasting at `radius`.
    pub fn new(radius: f64) -> Self {
        HelloProtocol {
            radius,
            sent: false,
            heard: Vec::new(),
        }
    }

    /// Neighbours heard so far, sorted by `(distance, id)`.
    pub fn neighbors(&self) -> Vec<Neighbor> {
        let mut v = self.heard.clone();
        v.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        v
    }
}

impl NodeProtocol for HelloProtocol {
    type Msg = ();

    fn on_round(&mut self, inbox: &[Delivery<()>], ctx: &mut Ctx<'_, ()>) {
        for d in inbox {
            self.heard.push(Neighbor {
                id: d.from as u32,
                dist: d.dist,
            });
        }
        if !self.sent {
            self.sent = true;
            ctx.broadcast(self.radius, HELLO_KIND, ());
        }
    }

    fn done(&self) -> bool {
        self.sent
    }
}

/// Runs [`HelloProtocol`] as one reactive stage of the shared execution
/// environment and returns the neighbour table. Unlike the historical
/// free-standing version (which built its own bare network), this honours
/// the env's energy model, fault plan, contention layer and trace sink.
pub fn discover_reactive(env: &mut crate::ExecEnv<'_>, radius: f64) -> NeighborTable {
    let n = env.n();
    let nodes = (0..n).map(|_| HelloProtocol::new(radius)).collect();
    let (nodes, res) = env.run_nodes("discovery", "hello", nodes, 16);
    res.expect("hello quiesces in two rounds");
    nodes.iter().map(|p| p.neighbors()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_geom::{trial_rng, uniform_points};

    #[test]
    fn orchestrated_discovery_finds_symmetric_neighbors() {
        let pts = uniform_points(200, &mut trial_rng(81, 0));
        let mut net = RadioNet::new(&pts, 0.15);
        let table = discover(&mut net, 0.15, HELLO_KIND);
        // Symmetry.
        for u in 0..200 {
            for nb in &table[u] {
                assert!(
                    table[nb.id as usize].iter().any(|x| x.id as usize == u),
                    "asymmetric neighbourhood {u} <-> {}",
                    nb.id
                );
            }
        }
        // Completeness against brute force.
        for u in 0..200 {
            let brute = (0..200)
                .filter(|&v| v != u && pts[u].dist(&pts[v]) <= 0.15)
                .count();
            assert_eq!(table[u].len(), brute, "node {u}");
        }
        // Sortedness.
        for row in &table {
            for w in row.windows(2) {
                assert!(w[0].dist <= w[1].dist);
            }
        }
        // Exactly n messages at radius² each.
        assert_eq!(net.ledger().total_messages(), 200);
        assert!((net.ledger().total_energy() - 200.0 * 0.15 * 0.15).abs() < 1e-9);
        assert_eq!(net.clock().now(), 1);
    }

    #[test]
    fn reactive_and_orchestrated_agree() {
        use emst_radio::EnergyConfig;
        let pts = uniform_points(150, &mut trial_rng(82, 0));
        let r = 0.12;
        let mut net1 = RadioNet::new(&pts, r);
        let t1 = discover(&mut net1, r, HELLO_KIND);
        let mut env = crate::ExecEnv::new(&pts, r, EnergyConfig::paper(), None, None, None);
        let t2 = discover_reactive(&mut env, r);
        let (stats2, marks) = env.finish();
        for u in 0..150 {
            assert_eq!(t1[u].len(), t2[u].len(), "node {u}");
            for (a, b) in t1[u].iter().zip(t2[u].iter()) {
                assert_eq!(a.id, b.id);
                assert!((a.dist - b.dist).abs() < 1e-12);
            }
        }
        assert_eq!(net1.ledger().total_messages(), stats2.messages);
        assert!((net1.ledger().total_energy() - stats2.energy).abs() < 1e-9);
        // The hello pass is one recorded stage.
        assert_eq!(marks.len(), 1);
        assert_eq!((marks[0].scope, marks[0].name), ("discovery", "hello"));
        assert_eq!(marks[0].messages, stats2.messages);
    }

    #[test]
    fn isolated_node_has_no_neighbors() {
        let pts = vec![
            emst_geom::Point::new(0.1, 0.1),
            emst_geom::Point::new(0.9, 0.9),
        ];
        let mut net = RadioNet::new(&pts, 0.2);
        let table = discover(&mut net, 0.2, HELLO_KIND);
        assert!(table[0].is_empty());
        assert!(table[1].is_empty());
        // Both still paid for their hello.
        assert_eq!(net.ledger().total_messages(), 2);
    }
}
