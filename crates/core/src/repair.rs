//! The recovery runtime: forest repair under an adaptive escalation
//! policy.
//!
//! PR 3's reliability layer classifies a fault-damaged run as `Degraded`
//! and hands back whatever partial forest survived. This module closes
//! the loop: when a tree-building run ends with its surviving nodes split
//! across several fragments, the repair pass salvages the partial forest
//! and drives a *targeted* modified-GHS reconnection pass over it —
//! still on the same network, under the same fault plan, with every
//! retry and re-discovery charged to the ledger as ordinary `repair/*`
//! stages.
//!
//! ## Why repair succeeds where the original run starved
//!
//! A run degrades when fragments repeatedly *stall*: at drop probability
//! `p` with retry budget `k`, one control message is abandoned with
//! probability `p^(k+1)`, and a fragment of `s` members moves `Θ(s)`
//! messages per phase — large fragments stall almost every phase once
//! `s·p^(k+1)` approaches 1, and the barren-phase cutoff eventually gives
//! up. The repair pass changes all three factors at once:
//!
//! 1. **Salvage, don't restart** — the surviving forest is seeded into a
//!    fresh [`GhsEngine`] as zero-cost internal edges
//!    ([`GhsEngine::seed_forest`]), so only the *missing* connections are
//!    renegotiated.
//! 2. **Passive trunk** — the largest surviving fragment is marked
//!    passive (the §V-A giant treatment): it stops broadcasting
//!    initiate/report traffic over its `Θ(n)` tree edges — the very
//!    traffic whose loss starved the original run — and merely accepts
//!    connections from the orphaned fragments.
//! 3. **Adaptive escalation** — each attempt multiplies the retry budget
//!    and the barren-phase patience ([`RepairPolicy`]), so the
//!    per-message abandonment probability falls geometrically
//!    (`p^(k+1)`) while attempts stay bounded.
//!
//! Crashed nodes are excluded up front: edges whose endpoint is dead are
//! dropped from the salvage (the link is physically gone) and the nodes
//! themselves never answer discovery, so they self-deactivate as inactive
//! singleton fragments. Success means the repaired forest spans **all
//! surviving nodes** — nodes alive at the round repair started.
//!
//! The caller ([`Sim::try_run`](crate::Sim::try_run)) upgrades a
//! successful repair to [`RunOutcome::Repaired`](crate::RunOutcome); an
//! exhausted policy leaves the (still improved) forest classified
//! `Degraded`. Clean runs never reach this module, so enabling repair is
//! bit-identical on fault-free paths (pinned by the golden fixtures).

use crate::exec::ExecEnv;
use crate::ghs::{GhsEngine, GhsKinds, GhsVariant};
use emst_graph::{SpanningTree, UnionFind};
use emst_radio::FaultStats;

/// Escalation schedule for the repair stage: how aggressively successive
/// reconnection attempts grow their retry budget and barren-phase
/// patience, and when to give up.
///
/// Attempt `k` (1-based) runs with retry budget
/// `min(base · retry_growth^k, max_retry_budget)` — where `base` is the
/// original plan's budget — and patience
/// `GhsEngine::DEFAULT_PATIENCE · patience_growth^(k−1)`. Both grow
/// exponentially, so the per-message abandonment probability `p^(budget+1)`
/// collapses geometrically while the attempt count stays bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairPolicy {
    /// Reconnection attempts before giving up (≥ 1).
    pub max_attempts: u32,
    /// Retry-budget multiplier applied per attempt (≥ 2 recommended).
    pub retry_growth: u32,
    /// Hard cap on the escalated retry budget.
    pub max_retry_budget: u32,
    /// Barren-phase patience multiplier applied per attempt.
    pub patience_growth: u32,
}

impl Default for RepairPolicy {
    fn default() -> Self {
        RepairPolicy {
            max_attempts: 3,
            retry_growth: 2,
            max_retry_budget: 64,
            patience_growth: 2,
        }
    }
}

impl RepairPolicy {
    /// Retry budget for 1-based `attempt`, escalated from `base`.
    fn retry_budget(&self, base: u32, attempt: u32) -> u32 {
        let growth = self.retry_growth.max(1);
        let mut budget = base.max(1);
        for _ in 0..attempt {
            budget = budget.saturating_mul(growth);
            if budget >= self.max_retry_budget {
                return self.max_retry_budget.max(1);
            }
        }
        budget
    }

    /// Barren-phase patience for 1-based `attempt`.
    fn patience(&self, attempt: u32) -> usize {
        let growth = self.patience_growth.max(1) as usize;
        let mut patience = GhsEngine::DEFAULT_PATIENCE;
        for _ in 1..attempt {
            patience = patience.saturating_mul(growth).min(64);
        }
        patience
    }
}

/// What the repair stage did, carried by
/// [`RunOutcome::Repaired`](crate::RunOutcome::Repaired).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairStats {
    /// Reconnection attempts executed (1-based count; ≥ 1 whenever repair
    /// actually ran).
    pub attempts: u32,
    /// Edges the reconnection pass added beyond the salvaged forest.
    pub edges_added: usize,
    /// Survivor-bearing fragments before repair (the value that
    /// triggered it).
    pub fragments_before: usize,
    /// Survivor-bearing fragments after the final attempt (1 on success).
    pub fragments_after: usize,
    /// Nodes alive when repair started.
    pub survivors: usize,
    /// Nodes crashed before repair started (excluded from the repaired
    /// forest; they remain isolated vertices).
    pub crashed: usize,
    /// Tree edges discarded from the salvage because an endpoint had
    /// crashed.
    pub dead_edges_dropped: usize,
    /// The escalated retry budget of the final attempt.
    pub final_retry_budget: u32,
    /// Fault events observed during the repair stages alone.
    pub faults: FaultStats,
    /// Radiated energy spent by the repair stages alone.
    pub energy: f64,
    /// Messages sent by the repair stages alone.
    pub messages: u64,
    /// Rounds consumed by the repair stages alone.
    pub rounds: u64,
}

/// Number of distinct forest components that contain at least one
/// survivor. Crashed nodes are ignored: an isolated dead vertex is not
/// damage the repair stage can (or should) fix. Shared with the churn
/// maintenance loop (`crate::maintain`), whose per-epoch reports count
/// fragments over the live set the same way.
pub(crate) fn survivor_fragments(n: usize, tree: &SpanningTree, survivors: &[bool]) -> usize {
    let mut uf = UnionFind::new(n);
    for e in tree.edges() {
        uf.union(e.u as usize, e.v as usize);
    }
    let mut roots: Vec<usize> = (0..n)
        .filter(|&u| survivors[u])
        .map(|u| uf.find(u))
        .collect();
    roots.sort_unstable();
    roots.dedup();
    roots.len()
}

/// Survivor bitmap at the network's current round, per the active plan.
fn survivor_map(env: &ExecEnv<'_>) -> Vec<bool> {
    let now = env.net().clock().now();
    let plan = env.fault_plan().expect("repair runs on faulted runs only");
    (0..env.n()).map(|u| plan.alive(u, now)).collect()
}

/// Whether `tree` leaves the surviving nodes in more than one fragment —
/// the trigger predicate for the repair stage.
pub(crate) fn needs_repair(env: &ExecEnv<'_>, tree: &SpanningTree) -> bool {
    let survivors = survivor_map(env);
    survivor_fragments(env.n(), tree, &survivors) > 1
}

/// Runs the repair stage: salvages `forest`, then reconnects the
/// surviving fragments with escalating modified-GHS passes at `radius`.
/// Returns the repaired forest, the repair read-outs, and whether the
/// forest now spans every surviving node. All traffic lands on the
/// shared environment as `repair/*` stages, so ledgers, traces and stage
/// marks account for the recovery exactly like any other stage.
pub(crate) fn run_repair(
    env: &mut ExecEnv<'_>,
    radius: f64,
    forest: &SpanningTree,
    policy: &RepairPolicy,
) -> (SpanningTree, RepairStats, bool) {
    let n = env.n();
    let kinds = GhsKinds::for_scope("repair");
    let plan = env.fault_plan().expect("repair runs on faulted runs only");
    let survivors = survivor_map(env);
    let survivor_count = survivors.iter().filter(|&&s| s).count();

    // Salvage: survivor↔survivor tree edges only. An edge with a crashed
    // endpoint is a dead link; keeping it would seed a fragment tree that
    // can never move its control traffic.
    let seed: Vec<(usize, usize, f64)> = forest
        .edges()
        .iter()
        .filter(|e| survivors[e.u as usize] && survivors[e.v as usize])
        .map(|e| (e.u as usize, e.v as usize, e.w))
        .collect();
    let dead_edges_dropped = forest.edges().len() - seed.len();
    let salvaged = SpanningTree::new(
        n,
        seed.iter()
            .map(|&(u, v, w)| emst_graph::Edge::new(u, v, w))
            .collect(),
    );
    let fragments_before = survivor_fragments(n, &salvaged, &survivors);

    let marks_from = env.stage_marks().len();
    let faults_before = env.net().fault_stats();
    let base_retries = plan.max_retries();

    let mut tree = salvaged;
    let mut success = fragments_before <= 1;
    let mut attempts = 0u32;
    let mut final_budget = base_retries;
    while !success && attempts < policy.max_attempts.max(1) {
        attempts += 1;
        final_budget = policy.retry_budget(base_retries, attempts);
        env.escalate_faults(plan.clone().retries(final_budget));
        let patience = policy.patience(attempts);

        let mut eng = GhsEngine::new(env.net(), GhsVariant::Modified);
        eng.set_shards(env.shards());
        eng.seed_forest(
            &tree
                .edges()
                .iter()
                .filter(|e| survivors[e.u as usize] && survivors[e.v as usize])
                .map(|e| (e.u as usize, e.v as usize, e.w))
                .collect::<Vec<_>>(),
        );
        // Passive trunk: the largest surviving fragment only accepts
        // connections, so its Θ(n) per-phase control traffic — the very
        // traffic whose loss starved the original run — goes silent.
        if let Some((trunk, size)) = eng.largest_fragment() {
            if size > 1 {
                eng.mark_passive(trunk);
            }
        }
        env.stage(kinds.scope, "discover", |net| {
            eng.discover(net, radius, kinds)
        });
        env.stage(kinds.scope, "phases", |net| {
            eng.run_phases_with_patience(net, kinds, patience)
        });
        tree = eng.tree();
        success = survivor_fragments(n, &tree, &survivors) <= 1;
    }

    // Repair-only deltas from the stage marks this pass appended.
    let (mut energy, mut messages, mut rounds) = (0.0f64, 0u64, 0u64);
    for mark in &env.stage_marks()[marks_from..] {
        energy += mark.energy;
        messages += mark.messages;
        rounds += mark.rounds;
    }
    let faults_now = env.net().fault_stats();
    let stats = RepairStats {
        attempts,
        edges_added: tree.edges().len() - seed.len(),
        fragments_before,
        fragments_after: survivor_fragments(n, &tree, &survivors),
        survivors: survivor_count,
        crashed: n - survivor_count,
        dead_edges_dropped,
        final_retry_budget: final_budget,
        faults: FaultStats {
            drops: faults_now.drops - faults_before.drops,
            retries: faults_now.retries - faults_before.retries,
            timeouts: faults_now.timeouts - faults_before.timeouts,
        },
        energy,
        messages,
        rounds,
    };
    (tree, stats, success)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalation_schedule_grows_and_saturates() {
        let policy = RepairPolicy::default();
        assert_eq!(policy.retry_budget(3, 1), 6);
        assert_eq!(policy.retry_budget(3, 2), 12);
        assert_eq!(policy.retry_budget(3, 3), 24);
        assert_eq!(policy.retry_budget(3, 10), 64, "cap must bind");
        assert_eq!(policy.patience(1), GhsEngine::DEFAULT_PATIENCE);
        assert_eq!(policy.patience(2), 2 * GhsEngine::DEFAULT_PATIENCE);
        assert_eq!(policy.patience(20), 64, "patience must saturate");
        // Degenerate growth factors never deadlock the schedule.
        let flat = RepairPolicy {
            retry_growth: 0,
            patience_growth: 0,
            ..RepairPolicy::default()
        };
        assert_eq!(flat.retry_budget(3, 2), 3);
        assert_eq!(flat.patience(5), GhsEngine::DEFAULT_PATIENCE);
    }

    #[test]
    fn survivor_fragments_ignores_crashed_singletons() {
        use emst_graph::Edge;
        // 0-1 connected, 2 isolated survivor, 3 isolated crashed node.
        let tree = SpanningTree::new(4, vec![Edge::new(0, 1, 0.1)]);
        let survivors = vec![true, true, true, false];
        assert_eq!(survivor_fragments(4, &tree, &survivors), 2);
        let all_alive = vec![true; 4];
        assert_eq!(survivor_fragments(4, &tree, &all_alive), 3);
        let tiny = vec![false, false, false, false];
        assert_eq!(survivor_fragments(4, &tree, &tiny), 0);
    }
}
