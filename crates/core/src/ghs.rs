//! The GHS family: synchronous Gallager–Humblet–Spira MST construction,
//! in the original (test/accept/reject) and modified (neighbour-cache,
//! §V-A) variants.
//!
//! ## Phase structure
//!
//! Execution proceeds in Borůvka-style phases under the standard
//! synchroniser abstraction (the variant the authors simulate in §VII).
//! Per phase, every *active* fragment runs:
//!
//! 1. **Initiate** — the leader broadcasts along the fragment tree
//!    (`size−1` messages, `depth` rounds);
//! 2. **MOE search** — each member finds its minimum outgoing edge:
//!    *original*: probe incident edges in ascending weight order with
//!    test/accept/reject exchanges (2 messages each; a rejected edge is
//!    marked on both sides and never re-tested — fragments only grow);
//!    *modified*: a free lookup in the cached neighbour fragment table
//!    (§V-A), kept exact by announcements;
//! 3. **Report** — convergecast of candidates to the leader
//!    (`size−1` messages, `depth` rounds);
//! 4. **Change-root + connect** — the leader forwards authority along the
//!    tree path to the MOE endpoint, which sends *connect* over the MOE;
//! 5. **Merge** — fragments joined by connect edges coalesce; the new
//!    fragment id is the higher endpoint of the merge's core edge, or the
//!    passive (giant) fragment's id when one is involved, so giant members
//!    never re-announce (§V-A's second technique);
//! 6. **Announce** (*modified only*) — every node whose fragment id changed
//!    makes one local broadcast at the operating radius; receivers update
//!    their caches.
//!
//! All messages are charged hop-by-hop at true distances; the round clock
//! advances by the depth of each broadcast/convergecast stage (fragments
//! progress in parallel, so stages cost the *maximum* depth over active
//! fragments).
//!
//! ## Reliability
//!
//! When the underlying network carries a [`FaultPlan`], every control
//! message goes through an ack/retry envelope ([`GhsEngine`] retries a
//! lost unicast up to the plan's budget, charging full transmit energy
//! per attempt). A fragment whose initiate/report traffic is lost simply
//! *stalls* for the phase — it is retried next phase rather than being
//! marked exhausted — and lost announcements leave neighbour caches
//! stale, which the merge stage tolerates by accepting connect edges
//! through a union-find (duplicate, cyclic, or stale-internal edges are
//! discarded instead of corrupting the forest). Fault-free runs take
//! byte-identical code paths and produce bit-identical ledgers.
//!
//! ## Correctness
//!
//! Every added edge is the minimum outgoing edge of some fragment at the
//! time of addition, so by the cut property the final forest is the minimum
//! spanning forest of the visible graph `G(points, radius)` — tests verify
//! agreement with Kruskal edge-for-edge. The two-phase EOPT algorithm
//! (`crate::eopt`) drives this same engine at two radii.

use emst_graph::{Edge, SpanningTree};
use emst_radio::{FaultKind, FaultPlan, Membership, RadioNet};
use std::collections::VecDeque;

/// Sentinel terminating intrusive member lists.
const NONE: u32 = u32::MAX;

/// Which MOE-search mechanism to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GhsVariant {
    /// Classical GHS: test/accept/reject message exchanges.
    Original,
    /// §V-A modified GHS: neighbour fragment-id cache + announcements.
    Modified,
    /// The awake-optimised variant: modified GHS whose nodes sleep the
    /// tail of every stage their fragment finishes early, and sleep
    /// whole stages once their fragment is exhausted — waking exactly
    /// at stage boundaries (the scheduled merge/announce windows).
    /// Identical forest, messages and rounds to [`GhsVariant::Modified`];
    /// what drops is the per-node awake-round count (the Augustine–
    /// Moses–Pandurangan awake complexity). Implies awake tracking:
    /// `RunStats::awake` is always `Some` for this variant.
    LowAwake,
}

impl GhsVariant {
    /// Whether this variant uses the §V-A modified machinery (fragment-id
    /// caches + announcements) — everything except [`GhsVariant::Original`].
    #[inline]
    pub fn is_modified(self) -> bool {
        !matches!(self, GhsVariant::Original)
    }
}

/// Message-kind labels for one GHS execution, so composite algorithms
/// (EOPT) can attribute energy per step.
#[derive(Debug, Clone, Copy)]
pub struct GhsKinds {
    /// Scope label for trace phase events (`"ghs"`, `"eopt1"`, …); also
    /// the namespace prefix of every kind below.
    pub scope: &'static str,
    /// Hello/announce broadcast that seeds discovery and the id caches.
    pub hello: &'static str,
    /// Initiate broadcast along fragment trees.
    pub initiate: &'static str,
    /// Test/accept/reject exchanges (original variant only).
    pub test: &'static str,
    /// Report convergecast.
    pub report: &'static str,
    /// Change-root forwarding.
    pub chroot: &'static str,
    /// Connect over the chosen MOE.
    pub connect: &'static str,
    /// Fragment-id announcements (modified variant only).
    pub announce: &'static str,
    /// Fragment-size computation traffic (EOPT step 2 preamble).
    pub size: &'static str,
}

impl GhsKinds {
    /// The kind table for `scope`, deriving every label as
    /// `"{scope}/{stage}"` and interning the result (message kinds are
    /// `&'static str` ledger keys). The first call for a scope leaks one
    /// small allocation; later calls return the cached table. This
    /// subsumes the hand-written per-scope const tables the EOPT steps
    /// used to carry: `for_scope("ghs")` yields exactly the historical
    /// `ghs/hello`, …, labels, `for_scope("eopt2/recover")` nests the
    /// recovery pass under the `eopt2/` namespace so step-level prefix
    /// sums (`eopt1/` + `eopt2/` = total) keep holding.
    pub fn for_scope(scope: &str) -> &'static GhsKinds {
        use std::collections::BTreeMap;
        use std::sync::{Mutex, OnceLock};
        static CACHE: OnceLock<Mutex<BTreeMap<String, &'static GhsKinds>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
        let mut map = cache.lock().expect("kind interner poisoned");
        if let Some(kinds) = map.get(scope) {
            return kinds;
        }
        fn leak(s: String) -> &'static str {
            Box::leak(s.into_boxed_str())
        }
        let kinds: &'static GhsKinds = Box::leak(Box::new(GhsKinds {
            scope: leak(scope.to_owned()),
            hello: leak(format!("{scope}/hello")),
            initiate: leak(format!("{scope}/initiate")),
            test: leak(format!("{scope}/test")),
            report: leak(format!("{scope}/report")),
            chroot: leak(format!("{scope}/chroot")),
            connect: leak(format!("{scope}/connect")),
            announce: leak(format!("{scope}/announce")),
            size: leak(format!("{scope}/size")),
        }));
        map.insert(scope.to_owned(), kinds);
        kinds
    }
}

/// One cached neighbour entry.
#[derive(Debug, Clone, Copy)]
struct Nbr {
    id: u32,
    dist: f64,
    /// Cached fragment id of this neighbour (modified variant; kept exact
    /// by announcements).
    frag: u32,
    /// Permanently rejected (both endpoints known to share a fragment).
    rejected: bool,
}

/// A candidate outgoing edge `(w, u, v)` with the global tie-break order
/// `(w, min(u,v), max(u,v))`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    w: f64,
    u: u32,
    v: u32,
}

/// Low-awake stage scheduling: called immediately before a stage advances
/// `advance` rounds, puts every node to sleep for the part of the stage it
/// does not participate in. A stage's message charging all happens at the
/// stage-start round, so windows opening at `now + 1` (or later) can never
/// miss a delivery; windows close exactly at the next stage's charging
/// round, so everyone is back up when traffic resumes.
///
/// `costs[ai]` is fragment `ai`'s own cost for this stage (tree depth for
/// broadcast/convergecast stages, path length + 1 for change-root); its
/// members sleep the `[now + max(cost, 1), now + advance)` tail. Nodes in
/// `idle` (members of passive/exhausted fragments) have no stage work at
/// all and sleep `[now + 1, now + advance)`.
fn schedule_stage_sleep(
    net: &mut RadioNet<'_>,
    active_nodes: &[u32],
    bounds: &[(u32, u32, u32)],
    costs: &[u64],
    idle: &[u32],
    advance: u64,
) {
    if advance == 0 || net.awake_schedule().is_none() {
        return;
    }
    let now = net.clock().now();
    for (ai, &(_f, s, e)) in bounds.iter().enumerate() {
        let own = costs.get(ai).copied().unwrap_or(advance).max(1);
        if own >= advance {
            continue;
        }
        for &u in &active_nodes[s as usize..e as usize] {
            net.sleep_node(u as usize, now + own, now + advance);
        }
    }
    if advance > 1 {
        for &u in idle {
            net.sleep_node(u as usize, now + 1, now + advance);
        }
    }
}

impl Cand {
    fn key(&self) -> (f64, u32, u32) {
        let (a, b) = if self.u < self.v {
            (self.u, self.v)
        } else {
            (self.v, self.u)
        };
        (self.w, a, b)
    }

    fn better_than(&self, other: &Cand) -> bool {
        let (sw, sa, sb) = self.key();
        let (ow, oa, ob) = other.key();
        sw.total_cmp(&ow).then_with(|| (sa, sb).cmp(&(oa, ob))) == std::cmp::Ordering::Less
    }
}

/// The synchronous GHS engine.
///
/// Constructed with singleton fragments; [`GhsEngine::discover`] seeds
/// neighbour tables (and, for the modified variant, the id caches) at a
/// given radius; [`GhsEngine::run_phases`] merges fragments to quiescence.
/// EOPT calls `discover` twice with different radii around a passivation
/// step.
///
/// The engine holds no borrow of the network: every stage method takes
/// `&mut RadioNet` explicitly, so callers (the [`crate::ExecEnv`] stage
/// runtime, examples composing repair scenarios) interleave engine stages
/// with other traffic on the same network.
pub struct GhsEngine {
    /// Node count, mirrored from the network at construction.
    n: usize,
    variant: GhsVariant,
    radius: f64,
    /// Fragment id per node (the id of some node — the fragment leader).
    frag: Vec<u32>,
    /// Parent in the fragment tree; `parent[u] == u` for leaders.
    parent: Vec<u32>,
    /// Memoised transmit energy of each node's parent edge
    /// (`INFINITY` = not computed / parent changed). Tree edges are
    /// charged once per phase per direction, so caching the path-loss
    /// evaluation removes two random point loads per control message;
    /// distances are exactly symmetric, so one entry serves both
    /// directions bit-identically.
    parent_energy: Vec<f64>,
    /// Per-node neighbour rows in one flat CSR arena (row `u` is
    /// `nbr_data[nbr_off[u]..nbr_off[u + 1]]`), each row sorted by
    /// `(dist, id)` — positions are recovered by binary search (distances
    /// are exactly symmetric, so a row's entry for a peer carries the same
    /// bits the peer measured).
    nbr_data: Vec<Nbr>,
    nbr_off: Vec<u32>,
    /// Arena-backed membership: an intrusive singly-linked member list per
    /// fragment, kept sorted ascending. Fragment ids are node ids, so all
    /// slabs are `n`-sized and indexed directly — no per-fragment heap
    /// allocations, and merges relink pointers instead of rebuilding maps.
    member_next: Vec<u32>,
    /// First member of each fragment's list (`NONE` when dead).
    frag_head: Vec<u32>,
    /// Last member of each fragment's list (fast appends during rebuilds).
    frag_tail: Vec<u32>,
    /// Member count per live fragment id.
    frag_size: Vec<u32>,
    /// Live fragment ids, ascending — the arena's deterministic iteration
    /// order, identical to the sorted member map it replaced.
    live: Vec<u32>,
    /// Liveness slab mirroring `live` for O(1) membership tests.
    is_live: Vec<bool>,
    /// Reusable per-phase scratch: flattened member lists of the active
    /// fragments plus `(frag, start, end)` bounds into it.
    active_nodes: Vec<u32>,
    active_bounds: Vec<(u32, u32, u32)>,
    /// Reusable per-phase scratch: best candidate / stalled flag per
    /// active-fragment index, and delivered connects per fragment id.
    cand_scratch: Vec<Option<Cand>>,
    stalled_scratch: Vec<bool>,
    delivered_scratch: Vec<(u32, Cand)>,
    /// Reusable merge scratch: relabeled nodes, `(group root, fragment)`
    /// pairs, gathered group members, and fresh fragment ids.
    changed_scratch: Vec<u32>,
    group_pairs: Vec<(u32, u32)>,
    member_gather: Vec<u32>,
    new_ids_scratch: Vec<u32>,
    /// Reusable merge scratch: accepted edges annotated with fragment
    /// endpoints, plus CSR adjacency + BFS state for the fragment-level
    /// re-rooting walk.
    group_edges_scratch: Vec<GroupEdge>,
    live_index_scratch: Vec<u32>,
    reflip_off: Vec<u32>,
    reflip_cur: Vec<u32>,
    reflip_adj: Vec<u32>,
    reflip_visited: Vec<bool>,
    reflip_queue: VecDeque<u32>,
    /// Per-node scan cursor into the topology's sorted rows (clean
    /// modified runs). Entries before the cursor joined the node's own
    /// fragment in an earlier phase; fragments only ever merge, so they
    /// can never turn foreign again and each row is scanned O(deg) total
    /// across all phases instead of O(deg) per phase.
    moe_state: Vec<MoeSlot>,
    /// Accumulated tree adjacency (for re-rooting after merges).
    tree_adj: Vec<Vec<(u32, f64)>>,
    tree_edges: Vec<Edge>,
    /// Fragments that do not search for MOEs (the giant in EOPT step 2).
    passive: std::collections::HashSet<u32>,
    /// Fragments with no outgoing edge at the current radius.
    inactive: std::collections::HashSet<u32>,
    phases: usize,
    /// Epoch-stamped visited marks + queue for re-rooting BFS.
    visit_mark: Vec<u32>,
    visit_epoch: u32,
    bfs_queue: VecDeque<u32>,
    /// Reusable frontier buffers for depth computation.
    depth_val: Vec<u32>,
    depth_path: Vec<u32>,
    /// Fault schedule mirrored from the network at construction; `None`
    /// keeps every code path byte-identical to the pre-fault engine.
    faults: Option<FaultPlan>,
    /// Live set mirrored from the network at construction; `None` (the
    /// all-live case, elided upstream by `RadioNet::set_members`) keeps
    /// every code path byte-identical to the fixed-array engine. When
    /// present, discovery and MOE search are restricted to live ids and
    /// dead ids degrade to zero-cost singleton fragments.
    members: Option<Membership>,
    /// Extra rounds consumed by retransmissions in the current stage
    /// (max over fragments, like stage depths); drained per stage.
    stage_extra: u64,
    /// Stale cache entries healed by the last phase's merge stage —
    /// cache repair is forward progress a barren-phase cutoff must not
    /// count against the run.
    healed_last_phase: usize,
    /// Worker-thread count for the sharded MOE stage (1 = in-place
    /// sequential). See [`GhsEngine::set_shards`].
    shards: usize,
    /// Per-shard `(position, candidate)` output buffers and replay
    /// cursors, reused across phases.
    shard_results: Vec<Vec<(u32, Cand)>>,
    shard_idx: Vec<usize>,
}

impl GhsEngine {
    /// Fresh engine: every node is its own single-node fragment. The node
    /// count and fault schedule are mirrored from `net`; the network
    /// itself is passed to each stage method explicitly.
    pub fn new(net: &RadioNet<'_>, variant: GhsVariant) -> Self {
        let n = net.n();
        let faults = net.faults().cloned();
        let members = net.members().cloned();
        GhsEngine {
            n,
            variant,
            radius: 0.0,
            frag: (0..n as u32).collect(),
            parent: (0..n as u32).collect(),
            parent_energy: vec![f64::INFINITY; n],
            nbr_data: Vec::new(),
            nbr_off: vec![0; n + 1],
            member_next: vec![NONE; n],
            frag_head: (0..n as u32).collect(),
            frag_tail: (0..n as u32).collect(),
            frag_size: vec![1; n],
            live: (0..n as u32).collect(),
            is_live: vec![true; n],
            active_nodes: Vec::new(),
            active_bounds: Vec::new(),
            cand_scratch: Vec::new(),
            stalled_scratch: Vec::new(),
            delivered_scratch: Vec::new(),
            changed_scratch: Vec::new(),
            group_pairs: Vec::new(),
            member_gather: Vec::new(),
            new_ids_scratch: Vec::new(),
            group_edges_scratch: Vec::new(),
            live_index_scratch: Vec::new(),
            reflip_off: Vec::new(),
            reflip_cur: Vec::new(),
            reflip_adj: Vec::new(),
            reflip_visited: Vec::new(),
            reflip_queue: VecDeque::new(),
            moe_state: Vec::new(),
            tree_adj: vec![Vec::new(); n],
            tree_edges: Vec::new(),
            passive: Default::default(),
            inactive: Default::default(),
            phases: 0,
            visit_mark: vec![0; n],
            visit_epoch: 0,
            bfs_queue: VecDeque::new(),
            depth_val: vec![0; n],
            depth_path: Vec::new(),
            faults,
            members,
            stage_extra: 0,
            healed_last_phase: 0,
            shards: 1,
            shard_results: Vec::new(),
            shard_idx: Vec::new(),
        }
    }

    /// Sets the worker-thread count for the per-round sharded MOE stage.
    ///
    /// The modified variant's stage B is pure computation (cache/topology
    /// scans, zero messages), so with `shards > 1` it is partitioned
    /// across scoped worker threads under a **fixed shard→node mapping**
    /// (contiguous blocks of node-id space) and reduced back in the exact
    /// sequential visit order. Ledgers, traces and stage marks are
    /// bit-identical to the single-thread run for any shard count —
    /// pinned by `tests/shard_identity.rs`. The original variant's stage
    /// B exchanges test/accept/reject messages and always runs
    /// sequentially.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// Number of executed merge phases so far.
    pub fn phases(&self) -> usize {
        self.phases
    }

    /// Fragment id of node `u`.
    pub fn frag_of(&self, u: usize) -> usize {
        self.frag[u] as usize
    }

    /// The accumulated spanning forest.
    pub fn tree(&self) -> SpanningTree {
        SpanningTree::new(self.n, self.tree_edges.clone())
    }

    /// Live fragment ids in ascending order — the deterministic iteration
    /// order every stage uses (so floating-point energy summation is
    /// reproducible). Pair with [`GhsEngine::members_of`] to walk the
    /// arena without copying it.
    pub fn live_fragments(&self) -> &[u32] {
        &self.live
    }

    /// Iterates the members of fragment `frag` in ascending node order.
    /// Yields nothing if `frag` is not a live fragment id.
    pub fn members_of(&self, frag: usize) -> impl Iterator<Item = usize> + '_ {
        let links = &self.member_next;
        let head = if self.is_live.get(frag).copied().unwrap_or(false) {
            self.frag_head[frag]
        } else {
            NONE
        };
        std::iter::successors((head != NONE).then_some(head), move |&u| {
            let nx = links[u as usize];
            (nx != NONE).then_some(nx)
        })
        .map(|u| u as usize)
    }

    /// Size of fragment `frag` (0 if not a live fragment id).
    pub fn fragment_size(&self, frag: usize) -> usize {
        if self.is_live.get(frag).copied().unwrap_or(false) {
            self.frag_size[frag] as usize
        } else {
            0
        }
    }

    /// Current number of fragments.
    pub fn fragment_count(&self) -> usize {
        self.live.len()
    }

    /// Sorted (descending) fragment sizes.
    pub fn fragment_sizes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .live
            .iter()
            .map(|&f| self.frag_size[f as usize] as usize)
            .collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Ids of fragments currently marked passive.
    pub fn passive_fragments(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.passive.iter().map(|&f| f as usize).collect();
        v.sort_unstable();
        v
    }

    /// Clears all passivity (EOPT's recovery pass).
    pub fn clear_passive(&mut self) {
        self.passive.clear();
        self.inactive.clear();
    }

    /// Marks the fragment with id `frag` passive: it stops searching for
    /// outgoing edges and only accepts connections, keeping its id across
    /// merges. EOPT uses this for declared giants; the repair stage uses
    /// it to keep the surviving trunk silent while orphaned fragments
    /// reconnect to it.
    pub fn mark_passive(&mut self, frag: usize) {
        assert!(
            self.is_live.get(frag).copied().unwrap_or(false),
            "mark_passive: {frag} is not a live fragment id"
        );
        self.passive.insert(frag as u32);
    }

    /// Id and size of the largest current fragment (ties broken by the
    /// higher id, deterministically). `None` on an empty engine.
    pub fn largest_fragment(&self) -> Option<(usize, usize)> {
        self.live
            .iter()
            .map(|&f| (f as usize, self.frag_size[f as usize] as usize))
            .max_by_key(|&(f, len)| (len, f))
    }

    /// Seeds the engine with an existing forest: the given `(u, v, w)`
    /// edges become fragment-internal tree edges with **no radio traffic**
    /// — used for repair scenarios where surviving nodes already know
    /// their tree neighbours from an earlier construction. Each seeded
    /// fragment's id/leader is its maximum member id. Must be called on a
    /// fresh engine (before any phases); the edges must form a forest.
    pub fn seed_forest(&mut self, edges: &[(usize, usize, f64)]) {
        assert_eq!(self.phases, 0, "seed_forest requires a fresh engine");
        let n = self.n;
        let mut uf = emst_graph::UnionFind::new(n);
        for &(u, v, w) in edges {
            assert!(uf.union(u, v), "seed edges must form a forest");
            self.tree_edges.push(Edge::new(u, v, w));
            self.tree_adj[u].push((v as u32, w));
            self.tree_adj[v].push((u as u32, w));
        }
        let (labels, sizes) = uf.labels();
        let mut leader_of_label: Vec<u32> = vec![0; sizes.len()];
        for (u, &l) in labels.iter().enumerate() {
            leader_of_label[l] = leader_of_label[l].max(u as u32);
        }
        for (u, &l) in labels.iter().enumerate() {
            self.frag[u] = leader_of_label[l];
        }
        // Rebuild the arena from `frag`: appending nodes in ascending order
        // keeps every member list sorted.
        self.is_live.iter_mut().for_each(|b| *b = false);
        for u in 0..n {
            let f = self.frag[u] as usize;
            if !self.is_live[f] {
                self.is_live[f] = true;
                self.frag_head[f] = u as u32;
                self.frag_size[f] = 1;
            } else {
                self.member_next[self.frag_tail[f] as usize] = u as u32;
                self.frag_size[f] += 1;
            }
            self.frag_tail[f] = u as u32;
            self.member_next[u] = NONE;
        }
        self.live.clear();
        let is_live = &self.is_live;
        self.live
            .extend((0..n as u32).filter(|&f| is_live[f as usize]));
        for &leader in &leader_of_label {
            self.reroot(leader);
        }
    }

    /// Neighbour discovery + id announcement at `radius`: every node makes
    /// one local broadcast carrying its id and current fragment id
    /// (`O(log n)`-bit payload). One synchronous round, `n` messages.
    /// Resets reject marks and the exhausted-fragment set — a larger radius
    /// can expose new outgoing edges.
    pub fn discover(&mut self, net: &mut RadioNet<'_>, radius: f64, kinds: &GhsKinds) {
        assert!(radius > 0.0, "discovery radius must be positive");
        net.note_phase(kinds.scope, self.phases as u64, "discover");
        self.radius = radius;
        // The whole run operates at this radius: build the CSR adjacency
        // once so discovery and every announce broadcast are slice lookups.
        net.cache_topology(radius);
        if self.faults.is_some() {
            self.discover_faulty(net, radius, kinds);
            self.inactive.clear();
            return;
        }
        if self.members.is_some() {
            self.discover_restricted(net, radius, kinds);
            self.inactive.clear();
            return;
        }
        // Hello round: one local broadcast per node, charged exactly like a
        // table-returning discovery (same kind, energy, rx count, and trace
        // event per node, one round on the clock) — but the neighbour rows
        // are assembled straight from the cached topology into the flat CSR
        // arena, with no per-node allocations or an intermediate table.
        let n = self.n;
        for u in 0..n {
            net.local_broadcast_silent(u, radius, kinds.hello);
        }
        net.tick_round();
        let topo = net.topology_at(radius).expect("cached above");
        if self.variant.is_modified() {
            // Clean modified runs never materialise private neighbour rows:
            // MOE search borrows the topology's shared `(dist, id)`-sorted
            // rows and reads live fragment ids directly (announces keep the
            // §V-A caches *exact* here — every row-holder is in announce
            // range — so the cache IS the live id). The sorted view is
            // forced now so phase timings don't absorb the one-time build;
            // with an instance-cached topology it is already built.
            let _ = topo.sorted();
            self.nbr_data.clear();
            self.nbr_off.clear();
            self.nbr_off.resize(n + 1, 0);
            self.moe_state.clear();
            self.moe_state.resize(n, MoeSlot::UNSCANNED);
        } else {
            // The original variant keeps private rows: test/accept/reject
            // bookkeeping needs a mutable `rejected` flag per edge.
            self.nbr_off.clear();
            self.nbr_off.push(0);
            let mut total = 0u32;
            for u in 0..n {
                total += topo.degree(u) as u32;
                self.nbr_off.push(total);
            }
            self.nbr_data.clear();
            self.nbr_data.reserve(total as usize);
            for u in 0..n {
                let start = self.nbr_data.len();
                for (&v, &d) in topo.ids(u).iter().zip(topo.dists(u)) {
                    self.nbr_data.push(Nbr {
                        id: v,
                        dist: d,
                        frag: self.frag[v as usize],
                        rejected: false,
                    });
                }
                self.nbr_data[start..]
                    .sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
            }
        }
        self.inactive.clear();
    }

    /// Discovery under a fault schedule: charges and round count match the
    /// clean path, but each hello delivery is subject to the plan's drop
    /// coin and sleep/crash schedule, so neighbour tables can come out
    /// *asymmetric* — `v` may know `u` without `u` knowing `v`. Hello
    /// broadcasts are one-shot (no retries): discovery is best-effort by
    /// design, and a missed hello only hides an edge, never corrupts one.
    /// The announce back-slot fast path is disabled (it assumes symmetric
    /// tables); faulty announces fall back to binary-search cache updates.
    fn discover_faulty(&mut self, net: &mut RadioNet<'_>, radius: f64, kinds: &GhsKinds) {
        let plan = self.faults.clone().expect("caller checked");
        let round = net.clock().now();
        let n = self.n;
        let hello_energy = net.loss().energy_for_distance(radius);
        let mut rows: Vec<Vec<Nbr>> = vec![Vec::new(); n];
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for u in 0..n {
            if !plan.awake(u, round) {
                // A sleeping or crashed node never transmits its hello.
                net.note_fault(FaultKind::Timeout, kinds.hello, u, None);
                continue;
            }
            net.charge_tx(kinds.hello, u, None, radius, hello_energy);
            net.neighbors_into(u, radius, &mut scratch);
            let mut delivered = 0u64;
            for &(v, d) in &scratch {
                if plan.delivers(round, u, v) {
                    rows[v].push(Nbr {
                        id: u as u32,
                        dist: d,
                        frag: self.frag[u],
                        rejected: false,
                    });
                    delivered += 1;
                } else {
                    net.note_fault(FaultKind::Drop, kinds.hello, u, Some(v));
                }
            }
            net.charge_receptions(delivered);
        }
        self.nbr_off.clear();
        self.nbr_off.push(0);
        let mut total = 0u32;
        for row in &rows {
            total += row.len() as u32;
            self.nbr_off.push(total);
        }
        self.nbr_data.clear();
        self.nbr_data.reserve(total as usize);
        for mut row in rows {
            row.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
            self.nbr_data.extend_from_slice(&row);
        }
        net.tick_round();
    }

    /// Discovery restricted to a live set: only live nodes transmit a
    /// hello (one broadcast each, one synchronous round, `live` messages)
    /// and only live nodes appear in the assembled neighbour rows. Both
    /// variants keep *private filtered* rows here — the shared sorted
    /// topology spans the whole id universe, and a dead id in a shared
    /// row would read as a permanently-foreign fragment to the clean
    /// cursor scan. Dead ids end up with empty rows: they are zero-cost
    /// singleton fragments (no parent edge, so they pay no
    /// initiate/report traffic) that the first phase marks inactive.
    fn discover_restricted(&mut self, net: &mut RadioNet<'_>, radius: f64, kinds: &GhsKinds) {
        let members = self.members.clone().expect("caller checked");
        for &u in members.live_ids() {
            net.local_broadcast_silent(u as usize, radius, kinds.hello);
        }
        net.tick_round();
        self.build_restricted_rows(net, &members);
    }

    /// Assembles the private `(dist, id)`-sorted neighbour rows over the
    /// live set only. Pure bookkeeping: no charges, no rounds.
    fn build_restricted_rows(&mut self, net: &RadioNet<'_>, members: &Membership) {
        let n = self.n;
        let topo = net.topology_at(self.radius).expect("caller cached");
        self.nbr_off.clear();
        self.nbr_off.push(0);
        let mut total = 0u32;
        for u in 0..n {
            if members.is_live(u) {
                total += topo.degree_live(u, members) as u32;
            }
            self.nbr_off.push(total);
        }
        self.nbr_data.clear();
        self.nbr_data.reserve(total as usize);
        for u in 0..n {
            if !members.is_live(u) {
                continue;
            }
            let start = self.nbr_data.len();
            for (v, d) in topo.neighbors_live(u, members) {
                self.nbr_data.push(Nbr {
                    id: v as u32,
                    dist: d,
                    frag: self.frag[v],
                    rejected: false,
                });
            }
            self.nbr_data[start..]
                .sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        }
    }

    /// Rebuilds the live-filtered neighbour rows with **zero radio
    /// traffic**: the incremental maintenance loop calls this instead of
    /// [`GhsEngine::discover`] at the start of an epoch, because
    /// surviving nodes already hold their neighbour tables (and §V-A
    /// caches) from the previous epoch, and a departed neighbour is
    /// detected by lease expiry — silence costs no transmissions. The
    /// engine must have been constructed against a membership-carrying
    /// network (`RadioNet::set_members` before [`GhsEngine::new`]).
    pub fn restore_neighbor_caches(&mut self, net: &mut RadioNet<'_>, radius: f64) {
        assert!(radius > 0.0, "restore radius must be positive");
        let members = self
            .members
            .clone()
            .expect("restore_neighbor_caches requires a membership-carrying engine");
        self.radius = radius;
        net.cache_topology(radius);
        self.build_restricted_rows(net, &members);
        self.inactive.clear();
    }

    /// Sends `u → v` through the ack/retry envelope when a fault schedule
    /// is active (plain unicast otherwise). Every attempt charges the full
    /// transmit energy; reception is charged only on actual delivery.
    /// Returns whether the message got through. Extra rounds consumed by
    /// retries accumulate into [`GhsEngine::take_stage_extra`] (max over
    /// the stage — fragments retry in parallel).
    fn reliable_unicast(
        &mut self,
        net: &mut RadioNet<'_>,
        u: usize,
        v: usize,
        kind: &'static str,
    ) -> bool {
        let Some(plan) = self.faults.as_ref() else {
            net.unicast(u, v, kind);
            return true;
        };
        let base = net.clock().now();
        let d = net.dist(u, v);
        let energy = net.loss().energy_for_distance(d);
        for attempt in 0..=plan.max_retries() {
            let round = base + attempt as u64;
            if !plan.alive(u, round) {
                // Dead sender: the message is abandoned, uncharged.
                net.note_fault(FaultKind::Timeout, kind, u, Some(v));
                self.stage_extra = self.stage_extra.max(attempt as u64);
                return false;
            }
            if attempt > 0 {
                net.note_fault(FaultKind::Retry, kind, u, Some(v));
            }
            net.charge_tx(kind, u, Some(v), d, energy);
            if plan.delivers(round, u, v) {
                net.charge_receptions(1);
                self.stage_extra = self.stage_extra.max(attempt as u64);
                return true;
            }
            net.note_fault(FaultKind::Drop, kind, u, Some(v));
        }
        net.note_fault(FaultKind::Timeout, kind, u, Some(v));
        self.stage_extra = self.stage_extra.max(plan.max_retries() as u64);
        false
    }

    /// Drains the retry-round surcharge accumulated since the last call.
    fn take_stage_extra(&mut self) -> u64 {
        std::mem::take(&mut self.stage_extra)
    }

    /// Position of the entry for neighbour `id` at distance `dist` in
    /// `nbrs[v]`, which is sorted by `(dist, id)`. Distances are exactly
    /// symmetric (IEEE negation and squaring commute), so the bits `v`
    /// recorded for `id` equal the bits `id` recorded for `v`.
    fn nbr_slot(&self, v: usize, dist: f64, id: u32) -> Option<usize> {
        self.nbr_row(v)
            .binary_search_by(|nb| nb.dist.total_cmp(&dist).then(nb.id.cmp(&id)))
            .ok()
    }

    /// Neighbour row of node `u` (sorted by `(dist, id)`).
    #[inline]
    fn nbr_row(&self, u: usize) -> &[Nbr] {
        &self.nbr_data[self.nbr_off[u] as usize..self.nbr_off[u + 1] as usize]
    }

    /// Depth of the fragment tree rooted at `leader`: the maximum
    /// parent-chain length over `members`, computed by walking parent
    /// pointers with per-epoch memoisation. Each node's depth is
    /// established exactly once, so a whole fragment costs O(members)
    /// flat-array reads — no adjacency-list traversal.
    fn depth_of(&mut self, leader: u32, members: &[u32]) -> u64 {
        self.visit_epoch += 1;
        let epoch = self.visit_epoch;
        self.visit_mark[leader as usize] = epoch;
        self.depth_val[leader as usize] = 0;
        let mut path = std::mem::take(&mut self.depth_path);
        let mut maxd = 0u32;
        for &u in members {
            let mut v = u;
            path.clear();
            while self.visit_mark[v as usize] != epoch {
                path.push(v);
                v = self.parent[v as usize];
            }
            let mut d = self.depth_val[v as usize];
            for &w in path.iter().rev() {
                d += 1;
                self.visit_mark[w as usize] = epoch;
                self.depth_val[w as usize] = d;
            }
            maxd = maxd.max(d);
        }
        self.depth_path = path;
        maxd as u64
    }

    /// Memoised transmit energy of `u`'s parent edge (computing and
    /// caching it on first use after a parent change).
    #[inline]
    fn parent_edge_energy(&mut self, net: &RadioNet<'_>, u: usize) -> f64 {
        let e = self.parent_energy[u];
        if e != f64::INFINITY {
            return e;
        }
        let e = net
            .loss()
            .energy(&net.pos(u), &net.pos(self.parent[u] as usize));
        self.parent_energy[u] = e;
        e
    }

    /// [`GhsEngine::reliable_unicast`] specialised to `u`'s parent edge
    /// (`up` = child→parent direction): fault-free runs charge the
    /// memoised edge energy without re-evaluating the path-loss model.
    fn reliable_unicast_parent(
        &mut self,
        net: &mut RadioNet<'_>,
        child: usize,
        up: bool,
        kind: &'static str,
    ) -> bool {
        let p = self.parent[child] as usize;
        let (src, dst) = if up { (child, p) } else { (p, child) };
        if self.faults.is_none() {
            let e = self.parent_edge_energy(net, child);
            net.unicast_with_energy(src, dst, kind, e);
            return true;
        }
        self.reliable_unicast(net, src, dst, kind)
    }

    /// Charges one message per tree edge of `members` in the top-down
    /// direction (initiate-style broadcast). Returns whether every tree
    /// edge was traversed successfully (always true without faults).
    fn charge_broadcast(
        &mut self,
        net: &mut RadioNet<'_>,
        members: &[u32],
        kind: &'static str,
    ) -> bool {
        let mut ok = true;
        for &u in members {
            if self.parent[u as usize] != u {
                ok &= self.reliable_unicast_parent(net, u as usize, false, kind);
            }
        }
        ok
    }

    /// Charges one message per tree edge in the bottom-up direction
    /// (report-style convergecast). Returns whether every hop succeeded.
    fn charge_convergecast(
        &mut self,
        net: &mut RadioNet<'_>,
        members: &[u32],
        kind: &'static str,
    ) -> bool {
        let mut ok = true;
        for &u in members {
            if self.parent[u as usize] != u {
                ok &= self.reliable_unicast_parent(net, u as usize, true, kind);
            }
        }
        ok
    }

    /// Local MOE of node `u` under the modified variant: a pure cache
    /// lookup, zero messages. The neighbour list is distance-sorted, so the
    /// first foreign entry is the minimum outgoing edge. Fault-injected
    /// runs only (rows seeded by `discover_faulty`); clean runs take
    /// [`GhsEngine::local_moe_clean`].
    fn local_moe_modified(&self, u: usize) -> Option<Cand> {
        let my = self.frag[u];
        self.nbr_row(u)
            .iter()
            .find(|nb| nb.frag != my)
            .map(|nb| Cand {
                w: nb.dist,
                u: u as u32,
                v: nb.id,
            })
    }

    /// Clean-run MOE of node `u`: same result as the cache lookup (clean
    /// caches are exact, so `cache[v] == frag[v]` at every read), served
    /// from the topology's shared sorted rows. The cursor skips the prefix
    /// that already belongs to `u`'s fragment — sound because fragments
    /// only merge: once `v` shares `u`'s fragment they share it forever.
    fn local_moe_clean(&mut self, topo: &emst_radio::Topology, u: usize) -> Option<Cand> {
        Self::moe_scan(topo, &self.frag, &mut self.moe_state[u], u)
    }

    /// The cursor scan behind [`GhsEngine::local_moe_clean`], shared with
    /// the sharded stage's workers (no `&self` so a worker can borrow its
    /// slot block mutably while `frag` stays shared).
    fn moe_scan(
        topo: &emst_radio::Topology,
        frag: &[u32],
        slot: &mut MoeSlot,
        u: usize,
    ) -> Option<Cand> {
        let my = frag[u];
        if slot.v == MOE_EXHAUSTED {
            return None;
        }
        if slot.v != MOE_UNSCANNED && frag[slot.v as usize] != my {
            // Candidate still foreign: the prefix before the cursor is
            // all same-fragment (permanently), so it is still the MOE.
            return Some(Cand {
                w: slot.w,
                u: u as u32,
                v: slot.v,
            });
        }
        let ids = topo.sorted_ids(u);
        let mut k = slot.cursor as usize;
        while k < ids.len() && frag[ids[k] as usize] == my {
            k += 1;
        }
        slot.cursor = k as u32;
        if k < ids.len() {
            slot.v = ids[k];
            slot.w = topo.sorted_dists(u)[k];
            Some(Cand {
                w: slot.w,
                u: u as u32,
                v: slot.v,
            })
        } else {
            slot.v = MOE_EXHAUSTED;
            None
        }
    }

    /// Restricted-mode MOE of node `u` (modified variant under a live
    /// set): the same zero-message lookup as
    /// [`GhsEngine::local_moe_modified`], but reading the *live* fragment
    /// id of each neighbour instead of the row's cached copy. Restricted
    /// runs are fault-free, so the §V-A caches are exact at every stage-B
    /// read point (every row-holder is within announce range) and the
    /// live read returns the very bits the maintained cache would hold —
    /// without the announce stage having to write per-receiver cache
    /// entries, and without re-announcing across maintenance epochs.
    fn local_moe_restricted(&self, u: usize) -> Option<Cand> {
        let my = self.frag[u];
        self.nbr_row(u)
            .iter()
            .find(|nb| self.frag[nb.id as usize] != my)
            .map(|nb| Cand {
                w: nb.dist,
                u: u as u32,
                v: nb.id,
            })
    }

    /// Local MOE of node `u` under the original variant: probe unrejected
    /// edges in ascending weight order with test/accept/reject exchanges.
    /// Returns the candidate and the number of exchanges performed.
    fn local_moe_original(
        &mut self,
        net: &mut RadioNet<'_>,
        u: usize,
        kinds: &GhsKinds,
    ) -> (Option<Cand>, u64) {
        let my = self.frag[u];
        let mut exchanges = 0u64;
        let mut found = None;
        let off = self.nbr_off[u] as usize;
        for i in 0..self.nbr_row(u).len() {
            let nb = self.nbr_data[off + i];
            if nb.rejected {
                continue;
            }
            // test -> accept/reject exchange, 2 messages at distance d.
            if self.faults.is_some() {
                exchanges += 1;
                let ok = self.reliable_unicast(net, u, nb.id as usize, kinds.test)
                    && self.reliable_unicast(net, nb.id as usize, u, kinds.test);
                if !ok {
                    // Exchange lost: nothing was learned about this edge;
                    // it stays unrejected and is probed again next phase.
                    continue;
                }
            } else {
                net.exchange(u, nb.id as usize, kinds.test);
                exchanges += 1;
            }
            if self.frag[nb.id as usize] == my {
                // Reject: mark on both sides, permanently. Under faults
                // the tables can be asymmetric — the peer may simply not
                // have an entry to mark.
                self.nbr_data[off + i].rejected = true;
                if let Some(back) = self.nbr_slot(nb.id as usize, nb.dist, u as u32) {
                    self.nbr_data[self.nbr_off[nb.id as usize] as usize + back].rejected = true;
                } else {
                    debug_assert!(
                        self.faults.is_some(),
                        "neighbourhoods are symmetric in fault-free runs"
                    );
                }
            } else {
                found = Some(Cand {
                    w: nb.dist,
                    u: u as u32,
                    v: nb.id,
                });
                break;
            }
        }
        (found, exchanges)
    }

    /// The sharded MOE stage (modified variant only): partitions nodes
    /// across `shards` scoped worker threads and reduces candidates back
    /// deterministically.
    ///
    /// **Mapping.** Node `u` belongs to shard `u / ceil(n / shards)` —
    /// contiguous blocks of node-id space, fixed for the whole run. The
    /// per-node scan cursors are `split_at_mut` along the same blocks, so
    /// every cursor write is provably disjoint; all other engine state
    /// (`frag`, neighbour rows, the shared sorted topology) is read-only
    /// during the stage.
    ///
    /// **Reduce.** Each worker emits `(position, candidate)` pairs in
    /// ascending position order over the phase's flattened active-node
    /// list. The orchestrating thread then replays the exact sequential
    /// visit order, folding each position's candidate with the same
    /// `better_than` comparison the unsharded loop uses — so the winning
    /// candidate per fragment (and therefore every downstream message,
    /// ledger charge and trace event) is bit-identical for any shard
    /// count.
    #[allow(clippy::needless_range_loop)] // `p` is the position value itself
    fn moe_sharded(
        &mut self,
        topo: Option<&emst_radio::Topology>,
        active_nodes: &[u32],
        bounds: &[(u32, u32, u32)],
        stalled: &[bool],
        cand: &mut [Option<Cand>],
        shards: usize,
    ) {
        let n = self.n;
        let block = n.div_ceil(shards);
        let mut results = std::mem::take(&mut self.shard_results);
        results.resize_with(shards, Vec::new);
        for r in &mut results {
            r.clear();
        }
        {
            let frag = &self.frag;
            let nbr_data = &self.nbr_data;
            let nbr_off = &self.nbr_off;
            // Clean runs own a cursor slab; faulty runs scan private rows
            // and the slab is empty — the split below just yields empty
            // per-shard slices that are never indexed.
            let mut cursor_blocks: Vec<&mut [MoeSlot]> = Vec::with_capacity(shards);
            let mut rest: &mut [MoeSlot] = &mut self.moe_state;
            for _ in 0..shards {
                let take = block.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                cursor_blocks.push(head);
                rest = tail;
            }
            std::thread::scope(|sc| {
                for (s, (cursor, out)) in cursor_blocks
                    .into_iter()
                    .zip(results.iter_mut())
                    .enumerate()
                {
                    let lo = s * block;
                    let hi = ((s + 1) * block).min(n);
                    sc.spawn(move || {
                        for (ai, &(_f, s0, e0)) in bounds.iter().enumerate() {
                            if stalled[ai] {
                                continue;
                            }
                            for p in s0 as usize..e0 as usize {
                                let u = active_nodes[p] as usize;
                                if u < lo || u >= hi {
                                    continue;
                                }
                                let my = frag[u];
                                let c = match topo {
                                    Some(topo) => {
                                        // local_moe_clean against this
                                        // shard's slot block.
                                        Self::moe_scan(topo, frag, &mut cursor[u - lo], u)
                                    }
                                    None => {
                                        // local_moe_modified: first foreign
                                        // entry of the distance-sorted row.
                                        let row =
                                            &nbr_data[nbr_off[u] as usize..nbr_off[u + 1] as usize];
                                        row.iter().find(|nb| nb.frag != my).map(|nb| Cand {
                                            w: nb.dist,
                                            u: u as u32,
                                            v: nb.id,
                                        })
                                    }
                                };
                                if let Some(c) = c {
                                    out.push((p as u32, c));
                                }
                            }
                        }
                    });
                }
            });
        }
        // Deterministic reduce: walk positions in the sequential order and
        // pop each shard's stream in lockstep (streams are position-sorted
        // by construction).
        let mut idx = std::mem::take(&mut self.shard_idx);
        idx.clear();
        idx.resize(shards, 0);
        for (ai, &(_f, s0, e0)) in bounds.iter().enumerate() {
            if stalled[ai] {
                continue;
            }
            for p in s0 as usize..e0 as usize {
                let s = active_nodes[p] as usize / block;
                if let Some(&(pp, c)) = results[s].get(idx[s]) {
                    if pp as usize == p {
                        idx[s] += 1;
                        match &cand[ai] {
                            Some(best) if !c.better_than(best) => {}
                            _ => cand[ai] = Some(c),
                        }
                    }
                }
            }
        }
        self.shard_idx = idx;
        self.shard_results = results;
    }

    /// Executes one phase. Returns the number of fragment merges performed
    /// (0 means the engine has quiesced at this radius).
    fn phase(&mut self, net: &mut RadioNet<'_>, kinds: &GhsKinds) -> usize {
        self.healed_last_phase = 0;
        // Flatten the active fragments' member lists into reusable scratch —
        // the arena equivalent of the per-phase cloned member map, without
        // the allocations. Bounds are built in ascending fragment order, so
        // every stage below iterates fragments exactly as the old sorted
        // map did.
        let mut active_nodes = std::mem::take(&mut self.active_nodes);
        let mut bounds = std::mem::take(&mut self.active_bounds);
        active_nodes.clear();
        bounds.clear();
        // Low-awake bookkeeping: members of passive/exhausted fragments do
        // nothing for the rest of this radius (exhausted fragments have no
        // outgoing edges, and edges are symmetric, so nobody connects *to*
        // them either) — they sleep through every stage of the phase,
        // waking only at stage boundaries.
        let low_awake = self.variant == GhsVariant::LowAwake;
        let mut idle_nodes: Vec<u32> = Vec::new();
        for idx in 0..self.live.len() {
            let f = self.live[idx];
            if self.passive.contains(&f) || self.inactive.contains(&f) {
                if low_awake {
                    let mut u = self.frag_head[f as usize];
                    while u != NONE {
                        idle_nodes.push(u);
                        u = self.member_next[u as usize];
                    }
                }
                continue;
            }
            let start = active_nodes.len() as u32;
            let mut u = self.frag_head[f as usize];
            while u != NONE {
                active_nodes.push(u);
                u = self.member_next[u as usize];
            }
            bounds.push((f, start, active_nodes.len() as u32));
        }
        if bounds.is_empty() {
            self.active_nodes = active_nodes;
            self.active_bounds = bounds;
            return 0;
        }
        self.phases += 1;
        let phase_no = self.phases as u64;

        // Stage A: initiate broadcasts. Fragments whose initiate traffic is
        // lost *stall* for this phase: their members never got the go-ahead,
        // so they neither search nor report, and are retried next phase.
        net.note_phase(kinds.scope, phase_no, "initiate");
        let mut max_depth = 0u64;
        let mut stalled = std::mem::take(&mut self.stalled_scratch);
        stalled.clear();
        stalled.resize(bounds.len(), false);
        // Per-fragment stage cost (its own tree depth): a low-awake
        // fragment sleeps the tail of the stage once its own broadcast or
        // convergecast is done, while the deepest fragment stays up.
        let mut depths: Vec<u64> = Vec::new();
        for (ai, &(f, s, e)) in bounds.iter().enumerate() {
            let members = &active_nodes[s as usize..e as usize];
            let d = self.depth_of(f, members);
            max_depth = max_depth.max(d);
            if low_awake {
                depths.push(d);
                debug_assert_eq!(depths.len(), ai + 1);
            }
            if !self.charge_broadcast(net, members, kinds.initiate) {
                stalled[ai] = true;
            }
        }
        let extra = self.take_stage_extra();
        if low_awake {
            schedule_stage_sleep(
                net,
                &active_nodes,
                &bounds,
                &depths,
                &idle_nodes,
                max_depth + extra,
            );
        }
        net.advance_rounds(max_depth + extra);

        // Stage B: local MOE search.
        net.note_phase(kinds.scope, phase_no, "test");
        let mut cand = std::mem::take(&mut self.cand_scratch); // best per fragment
        cand.clear();
        cand.resize(bounds.len(), None);
        let mut max_exchanges = 0u64;
        // Clean modified runs search over the shared sorted topology rows
        // (an owned handle, so `net` stays free for the original variant's
        // test exchanges below).
        let clean_topo =
            (self.variant.is_modified() && self.faults.is_none() && self.members.is_none())
                .then(|| net.topology_handle().expect("discover cached this radius"));
        let shard_count = if self.variant.is_modified() && self.members.is_none() {
            self.shards.min(self.n.max(1))
        } else {
            // The original variant's MOE search exchanges messages, and
            // restricted (live-set) runs read live fragment ids per row
            // entry — both stay on the orchestrating thread.
            1
        };
        if shard_count > 1 {
            self.moe_sharded(
                clean_topo.as_deref(),
                &active_nodes,
                &bounds,
                &stalled,
                &mut cand,
                shard_count,
            );
        } else {
            for (ai, &(_f, s, e)) in bounds.iter().enumerate() {
                if stalled[ai] {
                    continue;
                }
                for &u in &active_nodes[s as usize..e as usize] {
                    let (c, ex) = match (&clean_topo, self.variant) {
                        (Some(topo), _) => (self.local_moe_clean(topo, u as usize), 0),
                        (None, GhsVariant::Original) => {
                            self.local_moe_original(net, u as usize, kinds)
                        }
                        (None, _) if self.members.is_some() => {
                            (self.local_moe_restricted(u as usize), 0)
                        }
                        (None, _) => (self.local_moe_modified(u as usize), 0),
                    };
                    max_exchanges = max_exchanges.max(ex);
                    if let Some(c) = c {
                        match &cand[ai] {
                            Some(best) if !c.better_than(best) => {}
                            _ => cand[ai] = Some(c),
                        }
                    }
                }
            }
        }
        let extra = self.take_stage_extra();
        net.advance_rounds(2 * max_exchanges + extra);

        // Stage C: report convergecasts. A lost report means the leader
        // never learns the candidate: the fragment stalls (and must not be
        // marked exhausted below).
        net.note_phase(kinds.scope, phase_no, "report");
        for (ai, &(_f, s, e)) in bounds.iter().enumerate() {
            if stalled[ai] {
                continue;
            }
            let members = &active_nodes[s as usize..e as usize];
            if !self.charge_convergecast(net, members, kinds.report) {
                cand[ai] = None;
                stalled[ai] = true;
            }
        }
        let extra = self.take_stage_extra();
        if low_awake {
            // The report convergecast costs each fragment its own depth
            // again, so stage A's per-fragment costs apply verbatim.
            schedule_stage_sleep(
                net,
                &active_nodes,
                &bounds,
                &depths,
                &idle_nodes,
                max_depth + extra,
            );
        }
        net.advance_rounds(max_depth + extra);

        // Fragments with no outgoing edge are exhausted at this radius —
        // but only if their control traffic actually went through.
        for (ai, &(f, _, _)) in bounds.iter().enumerate() {
            if cand[ai].is_none() && !stalled[ai] {
                self.inactive.insert(f);
            }
        }
        if cand.iter().all(|c| c.is_none()) {
            self.active_nodes = active_nodes;
            self.active_bounds = bounds;
            self.cand_scratch = cand;
            self.stalled_scratch = stalled;
            return 0;
        }

        // Stage D: change-root along the leader→endpoint path, then connect.
        // Under faults a lost hop or connect abandons the candidate for the
        // phase (the fragment picks a fresh MOE next phase).
        net.note_phase(kinds.scope, phase_no, "change-root");
        let mut max_path = 0u64;
        let mut delivered = std::mem::take(&mut self.delivered_scratch);
        delivered.clear();
        // Per-fragment stage cost: path length + 1 connect round; a
        // fragment without a candidate (just exhausted) has cost 0 and
        // sleeps all but the stage's first round.
        let mut paths: Vec<u64> = if low_awake {
            vec![0; bounds.len()]
        } else {
            Vec::new()
        };
        for (ai, &(f, _, _)) in bounds.iter().enumerate() {
            let Some(c) = cand[ai] else { continue };
            // Walk the MOE endpoint → leader path; messages are charged in
            // that (upward) traversal order, one hop at a time. Authority
            // flows leader → endpoint; a failed hop stops it.
            let mut hops = 0u64;
            let mut cur = c.u;
            let mut ok = true;
            while cur != f {
                let p = self.parent[cur as usize];
                hops += 1;
                if ok {
                    ok = self.reliable_unicast_parent(net, cur as usize, false, kinds.chroot);
                }
                cur = p;
            }
            max_path = max_path.max(hops);
            if low_awake {
                paths[ai] = hops + 1;
            }
            if ok {
                ok = self.reliable_unicast(net, c.u as usize, c.v as usize, kinds.connect);
            }
            if ok {
                delivered.push((f, c));
            }
        }
        let extra = self.take_stage_extra();
        if low_awake {
            schedule_stage_sleep(
                net,
                &active_nodes,
                &bounds,
                &paths,
                &idle_nodes,
                max_path + 1 + extra,
            );
        }
        net.advance_rounds(max_path + 1 + extra);

        // Stage E: merge bookkeeping (no messages).
        let merges = self.merge(net, &delivered);
        self.healed_last_phase = merges.healed;

        // Stage F: announcements (modified variant).
        let changed = std::mem::take(&mut self.changed_scratch);
        if self.variant.is_modified() && !changed.is_empty() {
            net.note_phase(kinds.scope, phase_no, "announce");
            if let Some(plan) = self.faults.clone() {
                // One-shot broadcasts (no ack channel on a broadcast);
                // a missed receiver keeps a stale cache entry, which
                // the union-find merge acceptance tolerates.
                let round = net.clock().now();
                let energy = net.loss().energy_for_distance(self.radius);
                let mut scratch: Vec<(usize, f64)> = Vec::new();
                for &u in &changed {
                    let new_frag = self.frag[u as usize];
                    if !plan.awake(u as usize, round) {
                        net.note_fault(FaultKind::Timeout, kinds.announce, u as usize, None);
                        continue;
                    }
                    net.charge_tx(kinds.announce, u as usize, None, self.radius, energy);
                    net.neighbors_into(u as usize, self.radius, &mut scratch);
                    let mut delivered = 0u64;
                    for &(v, d) in &scratch {
                        if plan.delivers(round, u as usize, v) {
                            // `v` may never have heard `u`'s hello;
                            // then there is no cache entry to refresh.
                            if let Some(slot) = self.nbr_slot(v, d, u) {
                                self.nbr_data[self.nbr_off[v] as usize + slot].frag = new_frag;
                            }
                            delivered += 1;
                        } else {
                            net.note_fault(FaultKind::Drop, kinds.announce, u as usize, Some(v));
                        }
                    }
                    net.charge_receptions(delivered);
                }
            } else {
                // Clean runs charge the announce broadcasts but skip
                // the per-receiver cache writes entirely: every node
                // holding a row entry for `u` is within announce range
                // (rows and broadcasts use the same radius), so the
                // caches stay exact and stage B reads the live
                // fragment ids instead. Ledger and trace are identical
                // — cache maintenance was pure memory traffic.
                for &u in &changed {
                    net.local_broadcast_silent(u as usize, self.radius, kinds.announce);
                }
            }
            net.advance_rounds(1);
        }
        // Hand every scratch buffer back for the next phase.
        self.changed_scratch = changed;
        self.active_nodes = active_nodes;
        self.active_bounds = bounds;
        self.cand_scratch = cand;
        self.stalled_scratch = stalled;
        self.delivered_scratch = delivered;
        merges.merged_groups
    }

    /// Coalesces fragments along the chosen connect edges (`chosen` is
    /// sorted ascending by fragment id). Leaves the nodes whose fragment id
    /// changed in `self.changed_scratch` (in merge-group order) and returns
    /// the number of merged groups.
    fn merge(&mut self, net: &mut RadioNet<'_>, chosen: &[(u32, Cand)]) -> MergeResult {
        self.changed_scratch.clear();
        let mut pairs = std::mem::take(&mut self.group_pairs);
        pairs.clear();
        // An edge is accepted iff it joins two fragments not already
        // grouped this stage. In fault-free runs this is exactly the old
        // mutual-choice dedup (unique weights admit only 2-cycles among
        // MOE choices); under faults it additionally discards stale
        // cache picks that turned out fragment-internal and ≥3-cycles
        // among non-minimum candidates — either would corrupt the forest.
        let mut new_edges: Vec<Edge> = Vec::new();
        // Accepted edges annotated with their (pre-merge) fragment
        // endpoints and, after all unions, their group root — the
        // fragment-level spanning tree each merge group re-roots along.
        let mut group_edges = std::mem::take(&mut self.group_edges_scratch);
        group_edges.clear();
        // Candidates that were fragment-internal before this stage: a stale
        // announce cache proposed an edge to a node already merged in. The
        // delivered connect doubles as the real protocol's "same fragment"
        // reply, so the proposer's cache entry is healed below — without
        // this, a stale fragment re-proposes the same internal edge every
        // phase and livelocks until the barren-phase cutoff. Empty in
        // fault-free runs (accurate caches only pick outgoing edges).
        let mut stale: Vec<Cand> = Vec::new();
        let mut live_index = std::mem::take(&mut self.live_index_scratch);
        {
            // Union-find over live fragment ids; dense indices come from a
            // reusable id -> position array (entries for dead ids are stale
            // but never read — every lookup goes through a live id).
            let ids = &self.live;
            live_index.resize(self.n, 0);
            for (i, &f) in ids.iter().enumerate() {
                live_index[f as usize] = i as u32;
            }
            let index = |f: u32| live_index[f as usize] as usize;
            let mut uf = emst_graph::UnionFind::new(ids.len());
            for &(f, cand) in chosen {
                let g = self.frag[cand.v as usize];
                if g == f {
                    stale.push(cand);
                } else if uf.union(index(f), index(g)) {
                    let (a, b) = if cand.u < cand.v {
                        (cand.u, cand.v)
                    } else {
                        (cand.v, cand.u)
                    };
                    new_edges.push(Edge::new(a as usize, b as usize, cand.w));
                    group_edges.push(GroupEdge {
                        root: 0, // filled below once the unions settle
                        frag_u: f,
                        frag_v: g,
                        u: cand.u,
                        v: cand.v,
                    });
                }
            }
            for ge in group_edges.iter_mut() {
                ge.root = uf.find(index(ge.frag_u)) as u32;
            }
            // Group fragments: `(root, f)` pairs sorted by root then id give
            // each union-find class as a contiguous run with members in
            // ascending order — the same grouping (and group-internal order)
            // a sorted map of root → sorted members would produce.
            for &f in ids {
                pairs.push((uf.find(index(f)) as u32, f));
            }
        }
        self.live_index_scratch = live_index;
        pairs.sort_unstable();
        group_edges.sort_by_key(|ge| ge.root);
        let mut ge_cursor = 0usize;
        // Record new tree edges.
        for e in &new_edges {
            self.tree_adj[e.u as usize].push((e.v, e.w));
            self.tree_adj[e.v as usize].push((e.u, e.w));
            self.tree_edges.push(*e);
        }
        let mut gather = std::mem::take(&mut self.member_gather);
        let mut new_ids = std::mem::take(&mut self.new_ids_scratch);
        new_ids.clear();
        let mut merged_groups = 0usize;
        let mut i = 0usize;
        while i < pairs.len() {
            let mut j = i + 1;
            while j < pairs.len() && pairs[j].0 == pairs[i].0 {
                j += 1;
            }
            let group = &pairs[i..j];
            i = j;
            if group.len() < 2 {
                continue;
            }
            merged_groups += 1;
            // New fragment id: a passive member's id if present (the giant
            // keeps its id), else the higher endpoint of the group's core
            // edge (its minimum chosen edge, which both sides selected).
            let mut passive_id: Option<u32> = None;
            for &(_, f) in group {
                if self.passive.contains(&f) {
                    assert!(
                        passive_id.is_none(),
                        "two passive fragments cannot be joined (no fragment \
                         chose an edge out of a passive one)"
                    );
                    passive_id = Some(f);
                }
            }
            let new_id = if let Some(p) = passive_id {
                p
            } else {
                let core = group
                    .iter()
                    .filter_map(|&(_, f)| {
                        chosen
                            .binary_search_by_key(&f, |&(g, _)| g)
                            .ok()
                            .map(|k| &chosen[k].1)
                    })
                    .min_by(|a, b| {
                        a.key().0.total_cmp(&b.key().0).then_with(|| {
                            let ka = (a.key().1, a.key().2);
                            let kb = (b.key().1, b.key().2);
                            ka.cmp(&kb)
                        })
                    })
                    .expect("non-trivial group has at least one chosen edge");
                core.u.max(core.v)
            };
            // The new leader's pre-merge fragment — the BFS root of the
            // fragment-level re-attachment walk below.
            let f_star = self.frag[new_id as usize];
            // This group's slice of the accepted-edge list (both are
            // sorted by union-find root; singleton groups own no edges,
            // so skipping them cannot desynchronise the cursor).
            let ge_start = ge_cursor;
            while ge_cursor < group_edges.len() && group_edges[ge_cursor].root == group[0].0 {
                ge_cursor += 1;
            }
            debug_assert_eq!(ge_cursor - ge_start, group.len() - 1);
            // Relabel members and re-root the merged tree at the new leader.
            // Concatenation stays in group order (each list ascending) so
            // `changed` — and thus announce order — is unchanged by the
            // incremental member bookkeeping.
            gather.clear();
            for &(_, f) in group {
                let mut u = self.frag_head[f as usize];
                while u != NONE {
                    gather.push(u);
                    u = self.member_next[u as usize];
                }
                self.inactive.remove(&f);
                if self.passive.contains(&f) && f != new_id {
                    // The passive flag follows the surviving id.
                    self.passive.remove(&f);
                    self.passive.insert(new_id);
                }
            }
            for &u in &gather {
                if self.frag[u as usize] != new_id {
                    self.frag[u as usize] = new_id;
                    self.changed_scratch.push(u);
                }
            }
            net.note_merge(new_id as usize, group.len() - 1, gather.len());
            for &(_, f) in group {
                self.is_live[f as usize] = false;
            }
            gather.sort_unstable();
            for w in gather.windows(2) {
                self.member_next[w[0] as usize] = w[1];
            }
            let head = gather[0];
            let tail = *gather.last().unwrap();
            self.member_next[tail as usize] = NONE;
            self.frag_head[new_id as usize] = head;
            self.frag_tail[new_id as usize] = tail;
            self.frag_size[new_id as usize] = gather.len() as u32;
            self.is_live[new_id as usize] = true;
            new_ids.push(new_id);
            self.reflip_group(new_id, f_star, group, &group_edges[ge_start..ge_cursor]);
        }
        if merged_groups > 0 {
            // Rebuild the sorted live-id list: drop absorbed ids, insert the
            // survivors (a surviving id may coincide with a group member, in
            // which case `retain` already dropped it — reinsert).
            let is_live = std::mem::take(&mut self.is_live);
            self.live.retain(|&f| is_live[f as usize]);
            self.is_live = is_live;
            for &f in &new_ids {
                if let Err(pos) = self.live.binary_search(&f) {
                    self.live.insert(pos, f);
                }
            }
        }
        // Heal the stale cache entries detected above with the peer's
        // post-merge fragment id, so the proposer skips (or correctly
        // re-evaluates) the edge next phase.
        let mut healed = 0usize;
        for cand in &stale {
            if let Some(slot) = self.nbr_slot(cand.u as usize, cand.w, cand.v) {
                self.nbr_data[self.nbr_off[cand.u as usize] as usize + slot].frag =
                    self.frag[cand.v as usize];
                healed += 1;
            }
        }
        self.group_pairs = pairs;
        self.group_edges_scratch = group_edges;
        self.member_gather = gather;
        self.new_ids_scratch = new_ids;
        MergeResult {
            merged_groups,
            healed,
        }
    }

    /// Re-roots the fragment containing `leader` at `leader` by BFS over
    /// the accumulated tree adjacency, rebuilding parent/child pointers.
    fn reroot(&mut self, leader: u32) {
        self.visit_epoch += 1;
        let epoch = self.visit_epoch;
        self.visit_mark[leader as usize] = epoch;
        self.parent[leader as usize] = leader;
        self.parent_energy[leader as usize] = f64::INFINITY;
        let mut queue = std::mem::take(&mut self.bfs_queue);
        queue.clear();
        queue.push_back(leader);
        while let Some(u) = queue.pop_front() {
            for i in 0..self.tree_adj[u as usize].len() {
                let v = self.tree_adj[u as usize][i].0;
                if self.visit_mark[v as usize] != epoch {
                    self.visit_mark[v as usize] = epoch;
                    self.parent[v as usize] = u;
                    self.parent_energy[v as usize] = f64::INFINITY;
                    queue.push_back(v);
                }
            }
        }
        self.bfs_queue = queue;
    }

    /// Reverses the parent chain from `r` to its old root, making `r` the
    /// root of its (old) fragment tree — `O(path length)` instead of a
    /// whole-fragment BFS. The resulting orientation is the unique
    /// "towards `r`" one, so it is bit-identical to a full re-rooting.
    fn flip_to_root(&mut self, r: u32) {
        let mut prev = r;
        let mut cur = self.parent[r as usize];
        self.parent[r as usize] = r;
        self.parent_energy[r as usize] = f64::INFINITY;
        while cur != prev {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = prev;
            self.parent_energy[cur as usize] = f64::INFINITY;
            prev = cur;
            cur = next;
        }
    }

    /// Re-roots a merge group's combined tree at `new_id` by walking the
    /// fragment-level spanning tree (`edges`) breadth-first from
    /// `f_star` (= `new_id`'s old fragment) and reversing one
    /// root-to-attachment parent path per old fragment. Total cost is
    /// `O(k + Σ path lengths)` for a `k`-fragment group, against the
    /// whole-fragment BFS it replaces; the final parent orientation
    /// ("towards `new_id`") is unique on a tree, so the result is
    /// bit-identical.
    fn reflip_group(
        &mut self,
        new_id: u32,
        f_star: u32,
        group: &[(u32, u32)],
        edges: &[GroupEdge],
    ) {
        let k = group.len();
        let local = |f: u32| {
            group
                .binary_search_by_key(&f, |&(_, g)| g)
                .expect("edge endpoint outside its merge group")
        };
        // CSR adjacency over the group's dense fragment indices.
        let mut off = std::mem::take(&mut self.reflip_off);
        let mut cur = std::mem::take(&mut self.reflip_cur);
        let mut adj = std::mem::take(&mut self.reflip_adj);
        off.clear();
        off.resize(k + 1, 0);
        for e in edges {
            off[local(e.frag_u) + 1] += 1;
            off[local(e.frag_v) + 1] += 1;
        }
        for i in 0..k {
            let prev = off[i];
            off[i + 1] += prev;
        }
        cur.clear();
        cur.extend_from_slice(&off[..k]);
        adj.clear();
        adj.resize(2 * edges.len(), 0);
        for (ei, e) in edges.iter().enumerate() {
            for f in [e.frag_u, e.frag_v] {
                let l = local(f);
                adj[cur[l] as usize] = ei as u32;
                cur[l] += 1;
            }
        }
        let mut visited = std::mem::take(&mut self.reflip_visited);
        visited.clear();
        visited.resize(k, false);
        let mut queue = std::mem::take(&mut self.reflip_queue);
        queue.clear();
        let start = local(f_star);
        visited[start] = true;
        queue.push_back(start as u32);
        self.flip_to_root(new_id);
        while let Some(fi) = queue.pop_front() {
            let fi = fi as usize;
            for ai in off[fi] as usize..off[fi + 1] as usize {
                let e = edges[adj[ai] as usize];
                // Orient the edge away from the visited side.
                let (child_f, attach, connector) = if local(e.frag_u) == fi {
                    (e.frag_v, e.v, e.u)
                } else {
                    (e.frag_u, e.u, e.v)
                };
                let ci = local(child_f);
                if !visited[ci] {
                    visited[ci] = true;
                    self.flip_to_root(attach);
                    self.parent[attach as usize] = connector;
                    self.parent_energy[attach as usize] = f64::INFINITY;
                    queue.push_back(ci as u32);
                }
            }
        }
        self.reflip_off = off;
        self.reflip_cur = cur;
        self.reflip_adj = adj;
        self.reflip_visited = visited;
        self.reflip_queue = queue;
    }

    /// Runs phases until no active fragment can merge. Returns the number
    /// of phases executed by this call.
    pub fn run_phases(&mut self, net: &mut RadioNet<'_>, kinds: &GhsKinds) -> usize {
        self.run_phases_with_patience(net, kinds, Self::DEFAULT_PATIENCE)
    }

    /// Default barren-phase budget for fault-injected runs (see
    /// [`GhsEngine::run_phases_with_patience`]).
    pub const DEFAULT_PATIENCE: usize = 4;

    /// Runs phases until no active fragment can merge, with an explicit
    /// *patience* — the number of consecutive barren phases tolerated
    /// under an active fault plan before giving up. The repair stage grows
    /// this budget per escalation attempt (round slack); fault-free runs
    /// ignore it (a barren phase is then a proof of quiescence). Returns
    /// the number of phases executed by this call.
    pub fn run_phases_with_patience(
        &mut self,
        net: &mut RadioNet<'_>,
        kinds: &GhsKinds,
        patience: usize,
    ) -> usize {
        let before = self.phases;
        if self.faults.is_none() {
            // A phase with zero merges means no active fragment found an
            // outgoing edge (any found edge merges something), so every
            // active fragment was just marked exhausted and the engine has
            // quiesced at this radius.
            while self.phase(net, kinds) > 0 {}
        } else {
            // Under faults a merge-free phase can also mean "everything
            // stalled on lost control traffic" (stalled fragments are
            // deliberately not marked exhausted) or "the chosen candidates
            // were stale and got healed". Both are retried: healing is
            // monotone progress (after the last merge no new staleness is
            // created, so the backlog strictly drains), and stalls redraw
            // fresh retry coins next phase. Only a bounded number of
            // consecutive phases with *neither* merges nor heals give up,
            // accepting the forest as-is (the run is then reported as
            // degraded by the `Sim` layer, which may hand it to the repair
            // stage).
            let patience = patience.max(1);
            let mut barren = 0usize;
            while barren < patience {
                if self.phase(net, kinds) > 0 || self.healed_last_phase > 0 {
                    barren = 0;
                } else {
                    barren += 1;
                }
            }
        }
        self.phases - before
    }

    /// EOPT step-2 preamble: every fragment computes its size by a
    /// broadcast + convergecast along its tree and the leader's verdict is
    /// broadcast back (`3·(size−1)` messages per fragment, `3·depth`
    /// rounds). Fragments larger than `threshold` become passive. Returns
    /// `(fragment id, size, passive?)` rows.
    pub fn classify_passive_by_size(
        &mut self,
        net: &mut RadioNet<'_>,
        threshold: f64,
        kinds: &GhsKinds,
    ) -> Vec<(usize, usize, bool)> {
        net.note_phase(kinds.scope, self.phases as u64, "size");
        let mut rows = Vec::new();
        let mut max_depth = 0u64;
        let mut gather = std::mem::take(&mut self.member_gather);
        for idx in 0..self.live.len() {
            let f = self.live[idx];
            gather.clear();
            let mut u = self.frag_head[f as usize];
            while u != NONE {
                gather.push(u);
                u = self.member_next[u as usize];
            }
            max_depth = max_depth.max(self.depth_of(f, &gather));
            let mut ok = self.charge_broadcast(net, &gather, kinds.size); // size request
            ok &= self.charge_convergecast(net, &gather, kinds.size); // partial sums
            ok &= self.charge_broadcast(net, &gather, kinds.size); // verdict
                                                                   // A fragment whose size traffic was lost cannot prove its size
                                                                   // and must not go passive (passivation on a wrong count would
                                                                   // freeze a fragment that still needs to merge).
            let passive = ok && gather.len() as f64 > threshold;
            if passive {
                self.passive.insert(f);
            }
            rows.push((f as usize, gather.len(), passive));
        }
        self.member_gather = gather;
        let extra = self.take_stage_extra();
        net.advance_rounds(3 * max_depth + extra);
        rows.sort_unstable_by_key(|r| std::cmp::Reverse(r.1));
        rows
    }
}

/// Per-node clean-run MOE scan state: a resume cursor into the node's
/// shared sorted row plus the id and weight of the entry under the
/// cursor — the node's current outgoing candidate. While that entry
/// stays foreign, a stage-B visit reads this 16-byte slot and probes
/// `frag[]` once; the sorted row itself is only touched again when the
/// candidate gets absorbed into the node's own fragment and the cursor
/// has to advance (amortised O(row) over the whole run).
#[derive(Clone, Copy)]
struct MoeSlot {
    cursor: u32,
    /// Row id under the cursor; `MOE_UNSCANNED` before the first scan,
    /// `MOE_EXHAUSTED` once the row holds no foreign entry (permanent,
    /// since fragments only merge).
    v: u32,
    w: f64,
}

const MOE_UNSCANNED: u32 = u32::MAX;
const MOE_EXHAUSTED: u32 = u32::MAX - 1;

impl MoeSlot {
    const UNSCANNED: MoeSlot = MoeSlot {
        cursor: 0,
        v: MOE_UNSCANNED,
        w: 0.0,
    };
}

/// An accepted merge edge annotated with its (pre-merge) fragment
/// endpoints and, once the union-find settles, its merge-group root —
/// together the edges of one group form the fragment-level spanning tree
/// the group's trees are re-attached along.
#[derive(Clone, Copy)]
struct GroupEdge {
    /// Union-find root (dense index) identifying the merge group.
    root: u32,
    /// Fragment that proposed the edge (contains `u`).
    frag_u: u32,
    /// Fragment on the receiving end (contains `v`).
    frag_v: u32,
    u: u32,
    v: u32,
}

/// Internal result of a merge stage.
struct MergeResult {
    merged_groups: usize,
    /// Stale cache entries corrected (fault-injected runs only).
    healed: usize,
}

/// Result of the GHS stage composition (tree + protocol read-outs; stats
/// and stage marks live on the [`crate::ExecEnv`]).
pub(crate) struct GhsRun {
    pub tree: SpanningTree,
    pub phases: usize,
}

/// GHS as a stage sequence against the shared execution environment:
/// neighbour discovery, then merge phases to quiescence.
pub(crate) fn drive(env: &mut crate::ExecEnv<'_>, radius: f64, variant: GhsVariant) -> GhsRun {
    let kinds = GhsKinds::for_scope("ghs");
    let mut eng = GhsEngine::new(env.net(), variant);
    eng.set_shards(env.shards());
    env.stage(kinds.scope, "discover", |net| {
        eng.discover(net, radius, kinds)
    });
    env.stage(kinds.scope, "phases", |net| eng.run_phases(net, kinds));
    GhsRun {
        tree: eng.tree(),
        phases: eng.phases(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Protocol, RunOutput, Sim};
    use emst_geom::{paper_phase2_radius, trial_rng, uniform_points, Point};
    use emst_graph::{kruskal_forest, Graph};

    fn run(points: &[Point], radius: f64, variant: GhsVariant) -> RunOutput {
        Sim::new(points).radius(radius).run(Protocol::Ghs(variant))
    }

    fn phases_of(out: &RunOutput) -> usize {
        out.detail.as_ghs().expect("GHS run").phases
    }

    fn check_matches_kruskal(points: &[Point], radius: f64, variant: GhsVariant) -> RunOutput {
        let out = run(points, radius, variant);
        let g = Graph::geometric(points, radius);
        let forest = kruskal_forest(&g);
        let reference = SpanningTree::new(points.len(), forest);
        assert!(
            out.tree.same_edges(&reference),
            "GHS {variant:?} tree differs from Kruskal forest (n={}, r={radius})",
            points.len()
        );
        out
    }

    #[test]
    fn for_scope_reproduces_historic_labels_and_interns() {
        let k = GhsKinds::for_scope("ghs");
        assert_eq!(k.scope, "ghs");
        assert_eq!(k.hello, "ghs/hello");
        assert_eq!(k.size, "ghs/size");
        let r = GhsKinds::for_scope("eopt2/recover");
        assert_eq!(r.connect, "eopt2/recover/connect");
        // Interned: the same table (same address) comes back.
        assert!(std::ptr::eq(k, GhsKinds::for_scope("ghs")));
    }

    #[test]
    fn modified_ghs_builds_exact_mst_small() {
        let pts = uniform_points(60, &mut trial_rng(101, 0));
        let r = paper_phase2_radius(60);
        let out = check_matches_kruskal(&pts, r, GhsVariant::Modified);
        assert!(phases_of(&out) >= 1);
        assert!(out.stats.energy > 0.0);
    }

    #[test]
    fn original_ghs_builds_exact_mst_small() {
        let pts = uniform_points(60, &mut trial_rng(102, 0));
        let r = paper_phase2_radius(60);
        check_matches_kruskal(&pts, r, GhsVariant::Original);
    }

    #[test]
    fn clean_moe_cursor_matches_full_scan() {
        // Invariants behind the clean-run MOE fast path: the topology's
        // sorted rows are the grid rows reordered by `(dist, id)`, and the
        // cursor-resumed scan returns exactly what a from-scratch scan of
        // the row against live fragment ids would.
        let pts = uniform_points(250, &mut trial_rng(105, 1));
        let r = paper_phase2_radius(250);
        let mut net = RadioNet::new(&pts, r);
        let mut eng = GhsEngine::new(&net, GhsVariant::Modified);
        let kinds = GhsKinds::for_scope("ghs");
        eng.discover(&mut net, r, kinds);
        let topo = net.topology_handle().expect("cached by discover");
        for u in 0..pts.len() {
            let mut row: Vec<(f64, u32)> = topo.neighbors(u).map(|(v, d)| (d, v as u32)).collect();
            row.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let ids: Vec<u32> = row.iter().map(|&(_, v)| v).collect();
            assert_eq!(topo.sorted_ids(u), ids.as_slice(), "row {u}");
        }
        // Merge a few fragments, then check the cursor scan against a
        // cursor-free reference on every node.
        eng.run_phases(&mut net, kinds);
        for u in 0..pts.len() {
            let reference = topo
                .sorted_ids(u)
                .iter()
                .zip(topo.sorted_dists(u))
                .find(|(&v, _)| eng.frag[v as usize] != eng.frag[u])
                .map(|(&v, &d)| (v, d));
            let got = eng.local_moe_clean(&topo, u).map(|c| (c.v, c.w));
            assert_eq!(got, reference, "node {u}");
        }
    }

    #[test]
    fn both_variants_agree_across_seeds() {
        for seed in 0..4 {
            let pts = uniform_points(150, &mut trial_rng(103, seed));
            let r = paper_phase2_radius(150);
            let a = run(&pts, r, GhsVariant::Modified);
            let b = run(&pts, r, GhsVariant::Original);
            assert!(a.tree.same_edges(&b.tree), "seed {seed}");
        }
    }

    #[test]
    fn disconnected_radius_yields_min_spanning_forest() {
        let pts = uniform_points(200, &mut trial_rng(104, 0));
        let r = emst_geom::paper_phase1_radius(200); // percolation regime
        let out = check_matches_kruskal(&pts, r, GhsVariant::Modified);
        assert!(out.fragments > 1, "phase-1 radius should not connect");
    }

    #[test]
    fn modified_uses_fewer_messages_than_original() {
        let pts = uniform_points(300, &mut trial_rng(105, 0));
        let r = paper_phase2_radius(300);
        let orig = run(&pts, r, GhsVariant::Original);
        let modi = run(&pts, r, GhsVariant::Modified);
        // Test traffic scales with |E|; announcements with n·phases. At the
        // connectivity radius |E| ≫ n, so the modified variant must win on
        // messages.
        assert!(
            modi.stats.messages < orig.stats.messages,
            "modified {} vs original {}",
            modi.stats.messages,
            orig.stats.messages
        );
        // No test messages in the modified run, none rejected twice in the
        // original one.
        assert_eq!(modi.stats.ledger.kind("ghs/test").messages, 0);
        assert!(orig.stats.ledger.kind("ghs/test").messages > 0);
        // Announcements only in the modified run.
        assert!(modi.stats.ledger.kind("ghs/announce").messages > 0);
        assert_eq!(orig.stats.ledger.kind("ghs/announce").messages, 0);
    }

    #[test]
    fn phase_count_is_logarithmic() {
        let pts = uniform_points(500, &mut trial_rng(106, 0));
        let r = paper_phase2_radius(500);
        let out = run(&pts, r, GhsVariant::Modified);
        assert!(
            phases_of(&out) as f64 <= (500f64).log2() + 2.0,
            "phases = {}",
            phases_of(&out)
        );
    }

    #[test]
    fn two_nodes() {
        let pts = vec![Point::new(0.4, 0.5), Point::new(0.6, 0.5)];
        let out = run(&pts, 0.5, GhsVariant::Modified);
        assert_eq!(out.tree.edges().len(), 1);
        assert!(out.tree.is_valid());
        assert_eq!(out.fragments, 1);
    }

    #[test]
    fn single_node() {
        let pts = vec![Point::new(0.5, 0.5)];
        let out = run(&pts, 0.5, GhsVariant::Modified);
        assert!(out.tree.is_valid());
        assert_eq!(out.tree.edges().len(), 0);
        assert_eq!(out.fragments, 1);
    }

    #[test]
    fn original_rejects_each_edge_at_most_once() {
        // Message bound: test messages ≤ 2·(2·|E|) + 2·n·phases
        // (each edge rejected once per side, plus ≤1 accept probe per node
        // per phase).
        let pts = uniform_points(250, &mut trial_rng(107, 0));
        let r = paper_phase2_radius(250);
        let g = Graph::geometric(&pts, r);
        let out = run(&pts, r, GhsVariant::Original);
        let tests = out.stats.ledger.kind("ghs/test").messages;
        let bound = 2 * (2 * g.m() as u64) + 2 * (250 * phases_of(&out) as u64);
        assert!(tests <= bound, "tests {tests} > bound {bound}");
    }

    #[test]
    fn rounds_and_energy_are_positive_and_finite() {
        let pts = uniform_points(100, &mut trial_rng(108, 0));
        let r = paper_phase2_radius(100);
        let out = run(&pts, r, GhsVariant::Modified);
        assert!(out.stats.rounds > 0);
        assert!(out.stats.energy.is_finite() && out.stats.energy > 0.0);
        assert!(out.stats.messages as usize >= 100); // at least the hellos
    }

    #[test]
    fn seed_forest_preserves_fragments_and_completes_mst() {
        use emst_radio::RadioNet;
        let pts = uniform_points(120, &mut trial_rng(109, 0));
        let r = paper_phase2_radius(120);
        // First compute the true MST, then seed the engine with half of
        // its edges: the run must complete it to the same tree (seeded
        // MST edges are always consistent with the cut property).
        let full = run(&pts, r, GhsVariant::Modified);
        let seed_edges: Vec<(usize, usize, f64)> = full
            .tree
            .edges()
            .iter()
            .take(60)
            .map(|e| (e.u as usize, e.v as usize, e.w))
            .collect();
        let mut net = RadioNet::new(&pts, r);
        let kinds = GhsKinds::for_scope("ghs");
        let mut eng = GhsEngine::new(&net, GhsVariant::Modified);
        eng.seed_forest(&seed_edges);
        let frag_before = eng.fragment_count();
        eng.discover(&mut net, r, kinds);
        eng.run_phases(&mut net, kinds);
        let tree = eng.tree();
        assert_eq!(frag_before, 120 - 60);
        assert!(
            tree.same_edges(&full.tree),
            "seeded run must converge to the same MST"
        );
        // Cheaper than the full run (fewer phases of merging to do).
        assert!(net.ledger().total_energy() < full.stats.energy);
    }

    #[test]
    #[should_panic(expected = "forest")]
    fn seed_forest_rejects_cycles() {
        use emst_radio::RadioNet;
        let pts = uniform_points(4, &mut trial_rng(110, 0));
        let net = RadioNet::new(&pts, 0.5);
        let mut eng = GhsEngine::new(&net, GhsVariant::Modified);
        eng.seed_forest(&[(0, 1, 0.1), (1, 2, 0.1), (2, 0, 0.1)]);
    }

    #[test]
    fn passive_fragment_only_accepts_connections() {
        use emst_radio::RadioNet;
        // Build a full MST but mark the (single) final fragment passive
        // halfway: classify with threshold 0 so every fragment becomes
        // passive, then confirm run_phases makes no progress (passive
        // fragments never search).
        let pts = uniform_points(80, &mut trial_rng(111, 0));
        let r = paper_phase2_radius(80);
        let mut net = RadioNet::new(&pts, r);
        let kinds = GhsKinds::for_scope("ghs");
        let mut eng = GhsEngine::new(&net, GhsVariant::Modified);
        eng.discover(&mut net, r, kinds);
        // All singletons; make everything passive.
        let rows = eng.classify_passive_by_size(&mut net, 0.0, kinds);
        assert!(rows.iter().all(|r| r.2), "threshold 0 ⇒ all passive");
        let phases = eng.run_phases(&mut net, kinds);
        assert_eq!(phases, 0, "all-passive network must stay frozen");
        assert_eq!(eng.fragment_count(), 80);
        // Clearing passivity unfreezes the run.
        eng.clear_passive();
        eng.run_phases(&mut net, kinds);
        assert_eq!(eng.fragment_count(), 1);
        assert!(eng.tree().is_valid());
    }

    #[test]
    fn per_kind_attribution_is_complete() {
        let pts = uniform_points(150, &mut trial_rng(112, 0));
        let r = paper_phase2_radius(150);
        let out = run(&pts, r, GhsVariant::Original);
        let known = [
            "ghs/hello",
            "ghs/initiate",
            "ghs/test",
            "ghs/report",
            "ghs/chroot",
            "ghs/connect",
            "ghs/announce",
            "ghs/size",
        ];
        let sum: u64 = known
            .iter()
            .map(|k| out.stats.ledger.kind(k).messages)
            .sum();
        assert_eq!(sum, out.stats.messages, "unattributed messages exist");
        // Hello is exactly one broadcast per node.
        assert_eq!(out.stats.ledger.kind("ghs/hello").messages, 150);
        // A spanning run sends exactly n−1 connects plus duplicates for
        // mutually-chosen core edges: between n−1 and 2(n−1).
        let connects = out.stats.ledger.kind("ghs/connect").messages;
        assert!((149..=298).contains(&connects), "connects = {connects}");
    }

    #[test]
    fn deeper_fragments_cost_more_rounds() {
        // A path-like instance (collinear points) yields deep fragment
        // trees; rounds must exceed those of a compact instance of equal
        // size.
        let line: Vec<Point> = (0..60)
            .map(|i| Point::new(0.05 + 0.015 * i as f64, 0.5))
            .collect();
        let blob = uniform_points(60, &mut trial_rng(113, 0));
        let line_out = run(&line, 0.05, GhsVariant::Modified);
        let blob_out = run(&blob, paper_phase2_radius(60), GhsVariant::Modified);
        assert_eq!(line_out.fragments, 1);
        assert!(
            line_out.stats.rounds > blob_out.stats.rounds,
            "line {} vs blob {}",
            line_out.stats.rounds,
            blob_out.stats.rounds
        );
    }
}
