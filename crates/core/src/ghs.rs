//! The GHS family: synchronous Gallager–Humblet–Spira MST construction,
//! in the original (test/accept/reject) and modified (neighbour-cache,
//! §V-A) variants.
//!
//! ## Phase structure
//!
//! Execution proceeds in Borůvka-style phases under the standard
//! synchroniser abstraction (the variant the authors simulate in §VII).
//! Per phase, every *active* fragment runs:
//!
//! 1. **Initiate** — the leader broadcasts along the fragment tree
//!    (`size−1` messages, `depth` rounds);
//! 2. **MOE search** — each member finds its minimum outgoing edge:
//!    *original*: probe incident edges in ascending weight order with
//!    test/accept/reject exchanges (2 messages each; a rejected edge is
//!    marked on both sides and never re-tested — fragments only grow);
//!    *modified*: a free lookup in the cached neighbour fragment table
//!    (§V-A), kept exact by announcements;
//! 3. **Report** — convergecast of candidates to the leader
//!    (`size−1` messages, `depth` rounds);
//! 4. **Change-root + connect** — the leader forwards authority along the
//!    tree path to the MOE endpoint, which sends *connect* over the MOE;
//! 5. **Merge** — fragments joined by connect edges coalesce; the new
//!    fragment id is the higher endpoint of the merge's core edge, or the
//!    passive (giant) fragment's id when one is involved, so giant members
//!    never re-announce (§V-A's second technique);
//! 6. **Announce** (*modified only*) — every node whose fragment id changed
//!    makes one local broadcast at the operating radius; receivers update
//!    their caches.
//!
//! All messages are charged hop-by-hop at true distances; the round clock
//! advances by the depth of each broadcast/convergecast stage (fragments
//! progress in parallel, so stages cost the *maximum* depth over active
//! fragments).
//!
//! ## Reliability
//!
//! When the underlying network carries a [`FaultPlan`], every control
//! message goes through an ack/retry envelope ([`GhsEngine`] retries a
//! lost unicast up to the plan's budget, charging full transmit energy
//! per attempt). A fragment whose initiate/report traffic is lost simply
//! *stalls* for the phase — it is retried next phase rather than being
//! marked exhausted — and lost announcements leave neighbour caches
//! stale, which the merge stage tolerates by accepting connect edges
//! through a union-find (duplicate, cyclic, or stale-internal edges are
//! discarded instead of corrupting the forest). Fault-free runs take
//! byte-identical code paths and produce bit-identical ledgers.
//!
//! ## Correctness
//!
//! Every added edge is the minimum outgoing edge of some fragment at the
//! time of addition, so by the cut property the final forest is the minimum
//! spanning forest of the visible graph `G(points, radius)` — tests verify
//! agreement with Kruskal edge-for-edge. The two-phase EOPT algorithm
//! (`crate::eopt`) drives this same engine at two radii.

use crate::discovery::{discover, NeighborTable};
use emst_graph::{Edge, SpanningTree};
use emst_radio::{FaultKind, FaultPlan, RadioNet};
use std::collections::{BTreeMap, VecDeque};

/// Which MOE-search mechanism to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GhsVariant {
    /// Classical GHS: test/accept/reject message exchanges.
    Original,
    /// §V-A modified GHS: neighbour fragment-id cache + announcements.
    Modified,
}

/// Message-kind labels for one GHS execution, so composite algorithms
/// (EOPT) can attribute energy per step.
#[derive(Debug, Clone, Copy)]
pub struct GhsKinds {
    /// Scope label for trace phase events (`"ghs"`, `"eopt1"`, …); also
    /// the namespace prefix of every kind below.
    pub scope: &'static str,
    /// Hello/announce broadcast that seeds discovery and the id caches.
    pub hello: &'static str,
    /// Initiate broadcast along fragment trees.
    pub initiate: &'static str,
    /// Test/accept/reject exchanges (original variant only).
    pub test: &'static str,
    /// Report convergecast.
    pub report: &'static str,
    /// Change-root forwarding.
    pub chroot: &'static str,
    /// Connect over the chosen MOE.
    pub connect: &'static str,
    /// Fragment-id announcements (modified variant only).
    pub announce: &'static str,
    /// Fragment-size computation traffic (EOPT step 2 preamble).
    pub size: &'static str,
}

impl GhsKinds {
    /// The kind table for `scope`, deriving every label as
    /// `"{scope}/{stage}"` and interning the result (message kinds are
    /// `&'static str` ledger keys). The first call for a scope leaks one
    /// small allocation; later calls return the cached table. This
    /// subsumes the hand-written per-scope const tables the EOPT steps
    /// used to carry: `for_scope("ghs")` yields exactly the historical
    /// `ghs/hello`, …, labels, `for_scope("eopt2/recover")` nests the
    /// recovery pass under the `eopt2/` namespace so step-level prefix
    /// sums (`eopt1/` + `eopt2/` = total) keep holding.
    pub fn for_scope(scope: &str) -> &'static GhsKinds {
        use std::collections::BTreeMap;
        use std::sync::{Mutex, OnceLock};
        static CACHE: OnceLock<Mutex<BTreeMap<String, &'static GhsKinds>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
        let mut map = cache.lock().expect("kind interner poisoned");
        if let Some(kinds) = map.get(scope) {
            return kinds;
        }
        fn leak(s: String) -> &'static str {
            Box::leak(s.into_boxed_str())
        }
        let kinds: &'static GhsKinds = Box::leak(Box::new(GhsKinds {
            scope: leak(scope.to_owned()),
            hello: leak(format!("{scope}/hello")),
            initiate: leak(format!("{scope}/initiate")),
            test: leak(format!("{scope}/test")),
            report: leak(format!("{scope}/report")),
            chroot: leak(format!("{scope}/chroot")),
            connect: leak(format!("{scope}/connect")),
            announce: leak(format!("{scope}/announce")),
            size: leak(format!("{scope}/size")),
        }));
        map.insert(scope.to_owned(), kinds);
        kinds
    }
}

/// One cached neighbour entry.
#[derive(Debug, Clone, Copy)]
struct Nbr {
    id: u32,
    dist: f64,
    /// Cached fragment id of this neighbour (modified variant; kept exact
    /// by announcements).
    frag: u32,
    /// Permanently rejected (both endpoints known to share a fragment).
    rejected: bool,
}

/// A candidate outgoing edge `(w, u, v)` with the global tie-break order
/// `(w, min(u,v), max(u,v))`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    w: f64,
    u: u32,
    v: u32,
}

impl Cand {
    fn key(&self) -> (f64, u32, u32) {
        let (a, b) = if self.u < self.v {
            (self.u, self.v)
        } else {
            (self.v, self.u)
        };
        (self.w, a, b)
    }

    fn better_than(&self, other: &Cand) -> bool {
        let (sw, sa, sb) = self.key();
        let (ow, oa, ob) = other.key();
        sw.total_cmp(&ow).then_with(|| (sa, sb).cmp(&(oa, ob))) == std::cmp::Ordering::Less
    }
}

/// The synchronous GHS engine.
///
/// Constructed with singleton fragments; [`GhsEngine::discover`] seeds
/// neighbour tables (and, for the modified variant, the id caches) at a
/// given radius; [`GhsEngine::run_phases`] merges fragments to quiescence.
/// EOPT calls `discover` twice with different radii around a passivation
/// step.
///
/// The engine holds no borrow of the network: every stage method takes
/// `&mut RadioNet` explicitly, so callers (the [`crate::ExecEnv`] stage
/// runtime, examples composing repair scenarios) interleave engine stages
/// with other traffic on the same network.
pub struct GhsEngine {
    /// Node count, mirrored from the network at construction.
    n: usize,
    variant: GhsVariant,
    radius: f64,
    /// Fragment id per node (the id of some node — the fragment leader).
    frag: Vec<u32>,
    /// Parent in the fragment tree; `parent[u] == u` for leaders.
    parent: Vec<u32>,
    children: Vec<Vec<u32>>,
    /// Per-node neighbour rows, sorted by `(dist, id)` — positions are
    /// recovered by binary search (distances are exactly symmetric, so a
    /// row's entry for a peer carries the same bits the peer measured).
    nbrs: Vec<Vec<Nbr>>,
    /// Member list per fragment id, each list ascending — maintained
    /// incrementally across merges instead of rebuilt from `frag` every
    /// stage.
    members: BTreeMap<u32, Vec<u32>>,
    /// `back_slot[u][k]` = position of `u` in `nbrs[v]`, where `v` is the
    /// k-th entry of `u`'s cached topology row — announce cache updates
    /// become direct writes instead of per-receiver binary searches.
    back_slot: Vec<Vec<u32>>,
    /// Accumulated tree adjacency (for re-rooting after merges).
    tree_adj: Vec<Vec<(u32, f64)>>,
    tree_edges: Vec<Edge>,
    /// Fragments that do not search for MOEs (the giant in EOPT step 2).
    passive: std::collections::HashSet<u32>,
    /// Fragments with no outgoing edge at the current radius.
    inactive: std::collections::HashSet<u32>,
    phases: usize,
    /// Epoch-stamped visited marks + queue for re-rooting BFS.
    visit_mark: Vec<u32>,
    visit_epoch: u32,
    bfs_queue: VecDeque<u32>,
    /// Reusable frontier buffers for depth computation.
    depth_frontier: Vec<u32>,
    depth_next: Vec<u32>,
    /// Fault schedule mirrored from the network at construction; `None`
    /// keeps every code path byte-identical to the pre-fault engine.
    faults: Option<FaultPlan>,
    /// Extra rounds consumed by retransmissions in the current stage
    /// (max over fragments, like stage depths); drained per stage.
    stage_extra: u64,
    /// Stale cache entries healed by the last phase's merge stage —
    /// cache repair is forward progress a barren-phase cutoff must not
    /// count against the run.
    healed_last_phase: usize,
}

impl GhsEngine {
    /// Fresh engine: every node is its own single-node fragment. The node
    /// count and fault schedule are mirrored from `net`; the network
    /// itself is passed to each stage method explicitly.
    pub fn new(net: &RadioNet<'_>, variant: GhsVariant) -> Self {
        let n = net.n();
        let faults = net.faults().cloned();
        GhsEngine {
            n,
            variant,
            radius: 0.0,
            frag: (0..n as u32).collect(),
            parent: (0..n as u32).collect(),
            children: vec![Vec::new(); n],
            nbrs: vec![Vec::new(); n],
            members: (0..n as u32).map(|u| (u, vec![u])).collect(),
            back_slot: vec![Vec::new(); n],
            tree_adj: vec![Vec::new(); n],
            tree_edges: Vec::new(),
            passive: Default::default(),
            inactive: Default::default(),
            phases: 0,
            visit_mark: vec![0; n],
            visit_epoch: 0,
            bfs_queue: VecDeque::new(),
            depth_frontier: Vec::new(),
            depth_next: Vec::new(),
            faults,
            stage_extra: 0,
            healed_last_phase: 0,
        }
    }

    /// Number of executed merge phases so far.
    pub fn phases(&self) -> usize {
        self.phases
    }

    /// Fragment id of node `u`.
    pub fn frag_of(&self, u: usize) -> usize {
        self.frag[u] as usize
    }

    /// The accumulated spanning forest.
    pub fn tree(&self) -> SpanningTree {
        SpanningTree::new(self.n, self.tree_edges.clone())
    }

    /// Members per fragment, keyed by fragment id (sorted map so that all
    /// iteration — and therefore floating-point energy summation — is
    /// deterministic). Maintained incrementally; this returns a copy.
    pub fn fragments(&self) -> BTreeMap<u32, Vec<u32>> {
        self.members.clone()
    }

    /// Current number of fragments.
    pub fn fragment_count(&self) -> usize {
        self.members.len()
    }

    /// Sorted (descending) fragment sizes.
    pub fn fragment_sizes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.members.values().map(|m| m.len()).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Ids of fragments currently marked passive.
    pub fn passive_fragments(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.passive.iter().map(|&f| f as usize).collect();
        v.sort_unstable();
        v
    }

    /// Clears all passivity (EOPT's recovery pass).
    pub fn clear_passive(&mut self) {
        self.passive.clear();
        self.inactive.clear();
    }

    /// Marks the fragment with id `frag` passive: it stops searching for
    /// outgoing edges and only accepts connections, keeping its id across
    /// merges. EOPT uses this for declared giants; the repair stage uses
    /// it to keep the surviving trunk silent while orphaned fragments
    /// reconnect to it.
    pub fn mark_passive(&mut self, frag: usize) {
        assert!(
            self.members.contains_key(&(frag as u32)),
            "mark_passive: {frag} is not a live fragment id"
        );
        self.passive.insert(frag as u32);
    }

    /// Id and size of the largest current fragment (ties broken by the
    /// higher id, deterministically). `None` on an empty engine.
    pub fn largest_fragment(&self) -> Option<(usize, usize)> {
        self.members
            .iter()
            .map(|(&f, m)| (f as usize, m.len()))
            .max_by_key(|&(f, len)| (len, f))
    }

    /// Seeds the engine with an existing forest: the given `(u, v, w)`
    /// edges become fragment-internal tree edges with **no radio traffic**
    /// — used for repair scenarios where surviving nodes already know
    /// their tree neighbours from an earlier construction. Each seeded
    /// fragment's id/leader is its maximum member id. Must be called on a
    /// fresh engine (before any phases); the edges must form a forest.
    pub fn seed_forest(&mut self, edges: &[(usize, usize, f64)]) {
        assert_eq!(self.phases, 0, "seed_forest requires a fresh engine");
        let n = self.n;
        let mut uf = emst_graph::UnionFind::new(n);
        for &(u, v, w) in edges {
            assert!(uf.union(u, v), "seed edges must form a forest");
            self.tree_edges.push(Edge::new(u, v, w));
            self.tree_adj[u].push((v as u32, w));
            self.tree_adj[v].push((u as u32, w));
        }
        let (labels, sizes) = uf.labels();
        let mut leader_of_label: Vec<u32> = vec![0; sizes.len()];
        for (u, &l) in labels.iter().enumerate() {
            leader_of_label[l] = leader_of_label[l].max(u as u32);
        }
        for (u, &l) in labels.iter().enumerate() {
            self.frag[u] = leader_of_label[l];
        }
        self.members.clear();
        for (u, &f) in self.frag.iter().enumerate() {
            self.members.entry(f).or_default().push(u as u32);
        }
        for &leader in &leader_of_label {
            self.reroot(leader);
        }
    }

    /// Neighbour discovery + id announcement at `radius`: every node makes
    /// one local broadcast carrying its id and current fragment id
    /// (`O(log n)`-bit payload). One synchronous round, `n` messages.
    /// Resets reject marks and the exhausted-fragment set — a larger radius
    /// can expose new outgoing edges.
    pub fn discover(&mut self, net: &mut RadioNet<'_>, radius: f64, kinds: &GhsKinds) {
        assert!(radius > 0.0, "discovery radius must be positive");
        net.note_phase(kinds.scope, self.phases as u64, "discover");
        self.radius = radius;
        // The whole run operates at this radius: build the CSR adjacency
        // once so discovery and every announce broadcast are slice lookups.
        net.cache_topology(radius);
        if self.faults.is_some() {
            self.discover_faulty(net, radius, kinds);
            self.inactive.clear();
            return;
        }
        let table: NeighborTable = discover(net, radius, kinds.hello);
        for (u, row) in table.iter().enumerate() {
            self.nbrs[u] = row
                .iter()
                .map(|nb| Nbr {
                    id: nb.id,
                    dist: nb.dist,
                    frag: self.frag[nb.id as usize],
                    rejected: false,
                })
                .collect();
        }
        if self.variant == GhsVariant::Modified {
            let topo = net.topology_at(radius).expect("cached above");
            let n = table.len();
            // Search-free back-slot construction. Every topology row lists
            // neighbours in the grid's global visit order, so processing
            // nodes `v` in that same order appends to each `back[u]` in
            // exactly `u`'s row order — a per-node cursor replaces the
            // per-edge binary search.
            let mut back: Vec<Vec<u32>> = (0..n).map(|u| vec![0u32; topo.degree(u)]).collect();
            let mut cursor = vec![0u32; n];
            let mut slot_of = vec![0u32; n];
            for &v in net.grid().visit_order() {
                let v = v as usize;
                for (j, e) in self.nbrs[v].iter().enumerate() {
                    slot_of[e.id as usize] = j as u32;
                }
                for &u in topo.ids(v) {
                    let u = u as usize;
                    back[u][cursor[u] as usize] = slot_of[u];
                    cursor[u] += 1;
                }
            }
            self.back_slot = back;
        }
        self.inactive.clear();
    }

    /// Discovery under a fault schedule: charges and round count match the
    /// clean path, but each hello delivery is subject to the plan's drop
    /// coin and sleep/crash schedule, so neighbour tables can come out
    /// *asymmetric* — `v` may know `u` without `u` knowing `v`. Hello
    /// broadcasts are one-shot (no retries): discovery is best-effort by
    /// design, and a missed hello only hides an edge, never corrupts one.
    /// The announce back-slot fast path is disabled (it assumes symmetric
    /// tables); faulty announces fall back to binary-search cache updates.
    fn discover_faulty(&mut self, net: &mut RadioNet<'_>, radius: f64, kinds: &GhsKinds) {
        let plan = self.faults.clone().expect("caller checked");
        let round = net.clock().now();
        let n = self.n;
        let hello_energy = net.loss().energy_for_distance(radius);
        let mut rows: Vec<Vec<Nbr>> = vec![Vec::new(); n];
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for u in 0..n {
            if !plan.awake(u, round) {
                // A sleeping or crashed node never transmits its hello.
                net.note_fault(FaultKind::Timeout, kinds.hello, u, None);
                continue;
            }
            net.charge_tx(kinds.hello, u, None, radius, hello_energy);
            net.neighbors_into(u, radius, &mut scratch);
            let mut delivered = 0u64;
            for &(v, d) in &scratch {
                if plan.delivers(round, u, v) {
                    rows[v].push(Nbr {
                        id: u as u32,
                        dist: d,
                        frag: self.frag[u],
                        rejected: false,
                    });
                    delivered += 1;
                } else {
                    net.note_fault(FaultKind::Drop, kinds.hello, u, Some(v));
                }
            }
            net.charge_receptions(delivered);
        }
        for (u, mut row) in rows.into_iter().enumerate() {
            row.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
            self.nbrs[u] = row;
        }
        self.back_slot = vec![Vec::new(); n];
        net.tick_round();
    }

    /// Sends `u → v` through the ack/retry envelope when a fault schedule
    /// is active (plain unicast otherwise). Every attempt charges the full
    /// transmit energy; reception is charged only on actual delivery.
    /// Returns whether the message got through. Extra rounds consumed by
    /// retries accumulate into [`GhsEngine::take_stage_extra`] (max over
    /// the stage — fragments retry in parallel).
    fn reliable_unicast(
        &mut self,
        net: &mut RadioNet<'_>,
        u: usize,
        v: usize,
        kind: &'static str,
    ) -> bool {
        let Some(plan) = self.faults.as_ref() else {
            net.unicast(u, v, kind);
            return true;
        };
        let base = net.clock().now();
        let d = net.dist(u, v);
        let energy = net.loss().energy_for_distance(d);
        for attempt in 0..=plan.max_retries() {
            let round = base + attempt as u64;
            if !plan.alive(u, round) {
                // Dead sender: the message is abandoned, uncharged.
                net.note_fault(FaultKind::Timeout, kind, u, Some(v));
                self.stage_extra = self.stage_extra.max(attempt as u64);
                return false;
            }
            if attempt > 0 {
                net.note_fault(FaultKind::Retry, kind, u, Some(v));
            }
            net.charge_tx(kind, u, Some(v), d, energy);
            if plan.delivers(round, u, v) {
                net.charge_receptions(1);
                self.stage_extra = self.stage_extra.max(attempt as u64);
                return true;
            }
            net.note_fault(FaultKind::Drop, kind, u, Some(v));
        }
        net.note_fault(FaultKind::Timeout, kind, u, Some(v));
        self.stage_extra = self.stage_extra.max(plan.max_retries() as u64);
        false
    }

    /// Drains the retry-round surcharge accumulated since the last call.
    fn take_stage_extra(&mut self) -> u64 {
        std::mem::take(&mut self.stage_extra)
    }

    /// Position of the entry for neighbour `id` at distance `dist` in
    /// `nbrs[v]`, which is sorted by `(dist, id)`. Distances are exactly
    /// symmetric (IEEE negation and squaring commute), so the bits `v`
    /// recorded for `id` equal the bits `id` recorded for `v`.
    fn nbr_slot(&self, v: usize, dist: f64, id: u32) -> Option<usize> {
        self.nbrs[v]
            .binary_search_by(|nb| nb.dist.total_cmp(&dist).then(nb.id.cmp(&id)))
            .ok()
    }

    /// Depth of the fragment tree rooted at `leader` (via child lists).
    fn depth(&mut self, leader: u32) -> u64 {
        let mut frontier = std::mem::take(&mut self.depth_frontier);
        let mut next = std::mem::take(&mut self.depth_next);
        frontier.clear();
        frontier.push(leader);
        let mut depth = 0u64;
        loop {
            next.clear();
            for &u in &frontier {
                next.extend_from_slice(&self.children[u as usize]);
            }
            if next.is_empty() {
                break;
            }
            depth += 1;
            std::mem::swap(&mut frontier, &mut next);
        }
        self.depth_frontier = frontier;
        self.depth_next = next;
        depth
    }

    /// Charges one message per tree edge of `members` in the top-down
    /// direction (initiate-style broadcast). Returns whether every tree
    /// edge was traversed successfully (always true without faults).
    fn charge_broadcast(
        &mut self,
        net: &mut RadioNet<'_>,
        members: &[u32],
        kind: &'static str,
    ) -> bool {
        let mut ok = true;
        for &u in members {
            let p = self.parent[u as usize];
            if p != u {
                ok &= self.reliable_unicast(net, p as usize, u as usize, kind);
            }
        }
        ok
    }

    /// Charges one message per tree edge in the bottom-up direction
    /// (report-style convergecast). Returns whether every hop succeeded.
    fn charge_convergecast(
        &mut self,
        net: &mut RadioNet<'_>,
        members: &[u32],
        kind: &'static str,
    ) -> bool {
        let mut ok = true;
        for &u in members {
            let p = self.parent[u as usize];
            if p != u {
                ok &= self.reliable_unicast(net, u as usize, p as usize, kind);
            }
        }
        ok
    }

    /// Local MOE of node `u` under the modified variant: a pure cache
    /// lookup, zero messages. The neighbour list is distance-sorted, so the
    /// first foreign entry is the minimum outgoing edge.
    fn local_moe_modified(&self, u: usize) -> Option<Cand> {
        let my = self.frag[u];
        self.nbrs[u].iter().find(|nb| nb.frag != my).map(|nb| Cand {
            w: nb.dist,
            u: u as u32,
            v: nb.id,
        })
    }

    /// Local MOE of node `u` under the original variant: probe unrejected
    /// edges in ascending weight order with test/accept/reject exchanges.
    /// Returns the candidate and the number of exchanges performed.
    fn local_moe_original(
        &mut self,
        net: &mut RadioNet<'_>,
        u: usize,
        kinds: &GhsKinds,
    ) -> (Option<Cand>, u64) {
        let my = self.frag[u];
        let mut exchanges = 0u64;
        let mut found = None;
        for i in 0..self.nbrs[u].len() {
            let nb = self.nbrs[u][i];
            if nb.rejected {
                continue;
            }
            // test -> accept/reject exchange, 2 messages at distance d.
            if self.faults.is_some() {
                exchanges += 1;
                let ok = self.reliable_unicast(net, u, nb.id as usize, kinds.test)
                    && self.reliable_unicast(net, nb.id as usize, u, kinds.test);
                if !ok {
                    // Exchange lost: nothing was learned about this edge;
                    // it stays unrejected and is probed again next phase.
                    continue;
                }
            } else {
                net.exchange(u, nb.id as usize, kinds.test);
                exchanges += 1;
            }
            if self.frag[nb.id as usize] == my {
                // Reject: mark on both sides, permanently. Under faults
                // the tables can be asymmetric — the peer may simply not
                // have an entry to mark.
                self.nbrs[u][i].rejected = true;
                if let Some(back) = self.nbr_slot(nb.id as usize, nb.dist, u as u32) {
                    self.nbrs[nb.id as usize][back].rejected = true;
                } else {
                    debug_assert!(
                        self.faults.is_some(),
                        "neighbourhoods are symmetric in fault-free runs"
                    );
                }
            } else {
                found = Some(Cand {
                    w: nb.dist,
                    u: u as u32,
                    v: nb.id,
                });
                break;
            }
        }
        (found, exchanges)
    }

    /// Executes one phase. Returns the number of fragment merges performed
    /// (0 means the engine has quiesced at this radius).
    fn phase(&mut self, net: &mut RadioNet<'_>, kinds: &GhsKinds) -> usize {
        self.healed_last_phase = 0;
        let active_owned: Vec<(u32, Vec<u32>)> = self
            .members
            .iter()
            .filter(|(f, _)| !self.passive.contains(f) && !self.inactive.contains(f))
            .map(|(&f, m)| (f, m.clone()))
            .collect();
        if active_owned.is_empty() {
            return 0;
        }
        self.phases += 1;
        let phase_no = self.phases as u64;

        // Stage A: initiate broadcasts. Fragments whose initiate traffic is
        // lost *stall* for this phase: their members never got the go-ahead,
        // so they neither search nor report, and are retried next phase.
        net.note_phase(kinds.scope, phase_no, "initiate");
        let mut max_depth = 0u64;
        let mut stalled: Vec<u32> = Vec::new();
        for (f, members) in &active_owned {
            max_depth = max_depth.max(self.depth(*f));
            if !self.charge_broadcast(net, members, kinds.initiate) {
                stalled.push(*f);
            }
        }
        let extra = self.take_stage_extra();
        net.advance_rounds(max_depth + extra);

        // Stage B: local MOE search.
        net.note_phase(kinds.scope, phase_no, "test");
        let mut local: BTreeMap<u32, Cand> = BTreeMap::new(); // best per fragment
        let mut max_exchanges = 0u64;
        for (f, members) in &active_owned {
            if stalled.contains(f) {
                continue;
            }
            for &u in members {
                let (cand, ex) = match self.variant {
                    GhsVariant::Modified => (self.local_moe_modified(u as usize), 0),
                    GhsVariant::Original => self.local_moe_original(net, u as usize, kinds),
                };
                max_exchanges = max_exchanges.max(ex);
                if let Some(c) = cand {
                    match local.get(f) {
                        Some(best) if !c.better_than(best) => {}
                        _ => {
                            local.insert(*f, c);
                        }
                    }
                }
            }
        }
        let extra = self.take_stage_extra();
        net.advance_rounds(2 * max_exchanges + extra);

        // Stage C: report convergecasts. A lost report means the leader
        // never learns the candidate: the fragment stalls (and must not be
        // marked exhausted below).
        net.note_phase(kinds.scope, phase_no, "report");
        for (f, members) in &active_owned {
            if stalled.contains(f) {
                continue;
            }
            if !self.charge_convergecast(net, members, kinds.report) {
                local.remove(f);
                stalled.push(*f);
            }
        }
        let extra = self.take_stage_extra();
        net.advance_rounds(max_depth + extra);

        // Fragments with no outgoing edge are exhausted at this radius —
        // but only if their control traffic actually went through.
        for (f, _) in &active_owned {
            if !local.contains_key(f) && !stalled.contains(f) {
                self.inactive.insert(*f);
            }
        }
        if local.is_empty() {
            return 0;
        }

        // Stage D: change-root along the leader→endpoint path, then connect.
        // Under faults a lost hop or connect abandons the candidate for the
        // phase (the fragment picks a fresh MOE next phase).
        net.note_phase(kinds.scope, phase_no, "change-root");
        let mut max_path = 0u64;
        let mut delivered: BTreeMap<u32, Cand> = BTreeMap::new();
        for (f, cand) in &local {
            // Path from the MOE endpoint up to the leader.
            let mut path = vec![cand.u];
            let mut cur = cand.u;
            while cur != *f {
                cur = self.parent[cur as usize];
                path.push(cur);
            }
            max_path = max_path.max(path.len() as u64 - 1);
            // Authority flows leader → endpoint; a failed hop stops it.
            let mut ok = true;
            for pair in path.windows(2) {
                if ok {
                    ok = self.reliable_unicast(
                        net,
                        pair[1] as usize,
                        pair[0] as usize,
                        kinds.chroot,
                    );
                }
            }
            if ok {
                ok = self.reliable_unicast(net, cand.u as usize, cand.v as usize, kinds.connect);
            }
            if ok {
                delivered.insert(*f, *cand);
            }
        }
        let extra = self.take_stage_extra();
        net.advance_rounds(max_path + 1 + extra);

        // Stage E: merge bookkeeping (no messages).
        let merges = self.merge(net, &delivered);
        self.healed_last_phase = merges.healed;

        // Stage F: announcements (modified variant).
        if self.variant == GhsVariant::Modified {
            let changed: Vec<u32> = merges.changed;
            if !changed.is_empty() {
                net.note_phase(kinds.scope, phase_no, "announce");
                if let Some(plan) = self.faults.clone() {
                    // One-shot broadcasts (no ack channel on a broadcast);
                    // a missed receiver keeps a stale cache entry, which
                    // the union-find merge acceptance tolerates.
                    let round = net.clock().now();
                    let energy = net.loss().energy_for_distance(self.radius);
                    let mut scratch: Vec<(usize, f64)> = Vec::new();
                    for &u in &changed {
                        let new_frag = self.frag[u as usize];
                        if !plan.awake(u as usize, round) {
                            net.note_fault(FaultKind::Timeout, kinds.announce, u as usize, None);
                            continue;
                        }
                        net.charge_tx(kinds.announce, u as usize, None, self.radius, energy);
                        net.neighbors_into(u as usize, self.radius, &mut scratch);
                        let mut delivered = 0u64;
                        for &(v, d) in &scratch {
                            if plan.delivers(round, u as usize, v) {
                                // `v` may never have heard `u`'s hello;
                                // then there is no cache entry to refresh.
                                if let Some(slot) = self.nbr_slot(v, d, u) {
                                    self.nbrs[v][slot].frag = new_frag;
                                }
                                delivered += 1;
                            } else {
                                net.note_fault(
                                    FaultKind::Drop,
                                    kinds.announce,
                                    u as usize,
                                    Some(v),
                                );
                            }
                        }
                        net.charge_receptions(delivered);
                    }
                } else {
                    for &u in &changed {
                        let new_frag = self.frag[u as usize];
                        // Charges and trace event are identical to a receiver-
                        // returning broadcast; the receiver set is the cached
                        // topology row, updated through the back-slot table.
                        net.local_broadcast_silent(u as usize, self.radius, kinds.announce);
                        let topo = net
                            .topology_at(self.radius)
                            .expect("discover cached this radius");
                        let ids = topo.ids(u as usize);
                        let slots = &self.back_slot[u as usize];
                        debug_assert_eq!(ids.len(), slots.len());
                        for (&v, &slot) in ids.iter().zip(slots) {
                            self.nbrs[v as usize][slot as usize].frag = new_frag;
                        }
                    }
                }
                net.advance_rounds(1);
            }
        }
        merges.merged_groups
    }

    /// Coalesces fragments along the chosen connect edges. Returns the
    /// nodes whose fragment id changed and the number of merged groups.
    fn merge(&mut self, net: &mut RadioNet<'_>, chosen: &BTreeMap<u32, Cand>) -> MergeResult {
        // Union-find over fragment ids; `ids` is sorted (BTreeMap keys), so
        // dense indices come from binary search instead of a hash map.
        let ids: Vec<u32> = self.members.keys().copied().collect();
        let index = |f: u32| ids.binary_search(&f).expect("unknown fragment id");
        let mut uf = emst_graph::UnionFind::new(ids.len());
        // An edge is accepted iff it joins two fragments not already
        // grouped this stage. In fault-free runs this is exactly the old
        // mutual-choice dedup (unique weights admit only 2-cycles among
        // MOE choices); under faults it additionally discards stale
        // cache picks that turned out fragment-internal and ≥3-cycles
        // among non-minimum candidates — either would corrupt the forest.
        let mut new_edges: Vec<Edge> = Vec::new();
        // Candidates that were fragment-internal before this stage: a stale
        // announce cache proposed an edge to a node already merged in. The
        // delivered connect doubles as the real protocol's "same fragment"
        // reply, so the proposer's cache entry is healed below — without
        // this, a stale fragment re-proposes the same internal edge every
        // phase and livelocks until the barren-phase cutoff. Empty in
        // fault-free runs (accurate caches only pick outgoing edges).
        let mut stale: Vec<Cand> = Vec::new();
        for (f, cand) in chosen {
            let g = self.frag[cand.v as usize];
            if g == *f {
                stale.push(*cand);
            } else if uf.union(index(*f), index(g)) {
                let (a, b) = if cand.u < cand.v {
                    (cand.u, cand.v)
                } else {
                    (cand.v, cand.u)
                };
                new_edges.push(Edge::new(a as usize, b as usize, cand.w));
            }
        }
        // Group fragments.
        let mut groups: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        for &f in &ids {
            groups.entry(uf.find(index(f))).or_default().push(f);
        }
        // Record new tree edges.
        for e in &new_edges {
            self.tree_adj[e.u as usize].push((e.v, e.w));
            self.tree_adj[e.v as usize].push((e.u, e.w));
            self.tree_edges.push(*e);
        }
        let mut changed: Vec<u32> = Vec::new();
        let mut merged_groups = 0usize;
        for group in groups.values() {
            if group.len() < 2 {
                continue;
            }
            merged_groups += 1;
            // New fragment id: a passive member's id if present (the giant
            // keeps its id), else the higher endpoint of the group's core
            // edge (its minimum chosen edge, which both sides selected).
            let passives: Vec<u32> = group
                .iter()
                .copied()
                .filter(|f| self.passive.contains(f))
                .collect();
            assert!(
                passives.len() <= 1,
                "two passive fragments cannot be joined (no fragment chose \
                 an edge out of a passive one): {passives:?}"
            );
            let new_id = if let Some(&p) = passives.first() {
                p
            } else {
                let core = group
                    .iter()
                    .filter_map(|f| chosen.get(f))
                    .min_by(|a, b| {
                        a.key().0.total_cmp(&b.key().0).then_with(|| {
                            let ka = (a.key().1, a.key().2);
                            let kb = (b.key().1, b.key().2);
                            ka.cmp(&kb)
                        })
                    })
                    .expect("non-trivial group has at least one chosen edge");
                core.u.max(core.v)
            };
            // Relabel members and re-root the merged tree at the new leader.
            // Concatenation stays in group order (each list ascending) so
            // `changed` — and thus announce order — is unchanged by the
            // incremental member bookkeeping.
            let mut members: Vec<u32> = Vec::new();
            for f in group {
                members.extend_from_slice(&self.members[f]);
                self.inactive.remove(f);
                if self.passive.contains(f) && *f != new_id {
                    // The passive flag follows the surviving id.
                    self.passive.remove(f);
                    self.passive.insert(new_id);
                }
            }
            for &u in &members {
                if self.frag[u as usize] != new_id {
                    self.frag[u as usize] = new_id;
                    changed.push(u);
                }
            }
            net.note_merge(new_id as usize, group.len() - 1, members.len());
            for f in group {
                self.members.remove(f);
            }
            members.sort_unstable();
            self.members.insert(new_id, members);
            self.reroot(new_id);
        }
        // Heal the stale cache entries detected above with the peer's
        // post-merge fragment id, so the proposer skips (or correctly
        // re-evaluates) the edge next phase.
        let mut healed = 0usize;
        for cand in &stale {
            if let Some(slot) = self.nbr_slot(cand.u as usize, cand.w, cand.v) {
                self.nbrs[cand.u as usize][slot].frag = self.frag[cand.v as usize];
                healed += 1;
            }
        }
        MergeResult {
            changed,
            merged_groups,
            healed,
        }
    }

    /// Re-roots the fragment containing `leader` at `leader` by BFS over
    /// the accumulated tree adjacency, rebuilding parent/child pointers.
    fn reroot(&mut self, leader: u32) {
        self.visit_epoch += 1;
        let epoch = self.visit_epoch;
        self.visit_mark[leader as usize] = epoch;
        self.parent[leader as usize] = leader;
        self.children[leader as usize].clear();
        let mut queue = std::mem::take(&mut self.bfs_queue);
        queue.clear();
        queue.push_back(leader);
        while let Some(u) = queue.pop_front() {
            for i in 0..self.tree_adj[u as usize].len() {
                let v = self.tree_adj[u as usize][i].0;
                if self.visit_mark[v as usize] != epoch {
                    self.visit_mark[v as usize] = epoch;
                    self.parent[v as usize] = u;
                    self.children[v as usize].clear();
                    self.children[u as usize].push(v);
                    queue.push_back(v);
                }
            }
        }
        self.bfs_queue = queue;
    }

    /// Runs phases until no active fragment can merge. Returns the number
    /// of phases executed by this call.
    pub fn run_phases(&mut self, net: &mut RadioNet<'_>, kinds: &GhsKinds) -> usize {
        self.run_phases_with_patience(net, kinds, Self::DEFAULT_PATIENCE)
    }

    /// Default barren-phase budget for fault-injected runs (see
    /// [`GhsEngine::run_phases_with_patience`]).
    pub const DEFAULT_PATIENCE: usize = 4;

    /// Runs phases until no active fragment can merge, with an explicit
    /// *patience* — the number of consecutive barren phases tolerated
    /// under an active fault plan before giving up. The repair stage grows
    /// this budget per escalation attempt (round slack); fault-free runs
    /// ignore it (a barren phase is then a proof of quiescence). Returns
    /// the number of phases executed by this call.
    pub fn run_phases_with_patience(
        &mut self,
        net: &mut RadioNet<'_>,
        kinds: &GhsKinds,
        patience: usize,
    ) -> usize {
        let before = self.phases;
        if self.faults.is_none() {
            // A phase with zero merges means no active fragment found an
            // outgoing edge (any found edge merges something), so every
            // active fragment was just marked exhausted and the engine has
            // quiesced at this radius.
            while self.phase(net, kinds) > 0 {}
        } else {
            // Under faults a merge-free phase can also mean "everything
            // stalled on lost control traffic" (stalled fragments are
            // deliberately not marked exhausted) or "the chosen candidates
            // were stale and got healed". Both are retried: healing is
            // monotone progress (after the last merge no new staleness is
            // created, so the backlog strictly drains), and stalls redraw
            // fresh retry coins next phase. Only a bounded number of
            // consecutive phases with *neither* merges nor heals give up,
            // accepting the forest as-is (the run is then reported as
            // degraded by the `Sim` layer, which may hand it to the repair
            // stage).
            let patience = patience.max(1);
            let mut barren = 0usize;
            while barren < patience {
                if self.phase(net, kinds) > 0 || self.healed_last_phase > 0 {
                    barren = 0;
                } else {
                    barren += 1;
                }
            }
        }
        self.phases - before
    }

    /// EOPT step-2 preamble: every fragment computes its size by a
    /// broadcast + convergecast along its tree and the leader's verdict is
    /// broadcast back (`3·(size−1)` messages per fragment, `3·depth`
    /// rounds). Fragments larger than `threshold` become passive. Returns
    /// `(fragment id, size, passive?)` rows.
    pub fn classify_passive_by_size(
        &mut self,
        net: &mut RadioNet<'_>,
        threshold: f64,
        kinds: &GhsKinds,
    ) -> Vec<(usize, usize, bool)> {
        net.note_phase(kinds.scope, self.phases as u64, "size");
        let mut rows = Vec::new();
        let mut max_depth = 0u64;
        let owned: Vec<(u32, Vec<u32>)> =
            self.members.iter().map(|(&f, m)| (f, m.clone())).collect();
        for (f, members) in &owned {
            max_depth = max_depth.max(self.depth(*f));
            let mut ok = self.charge_broadcast(net, members, kinds.size); // size request
            ok &= self.charge_convergecast(net, members, kinds.size); // partial sums
            ok &= self.charge_broadcast(net, members, kinds.size); // verdict
                                                                   // A fragment whose size traffic was lost cannot prove its size
                                                                   // and must not go passive (passivation on a wrong count would
                                                                   // freeze a fragment that still needs to merge).
            let passive = ok && members.len() as f64 > threshold;
            if passive {
                self.passive.insert(*f);
            }
            rows.push((*f as usize, members.len(), passive));
        }
        let extra = self.take_stage_extra();
        net.advance_rounds(3 * max_depth + extra);
        rows.sort_unstable_by_key(|r| std::cmp::Reverse(r.1));
        rows
    }
}

/// Internal result of a merge stage.
struct MergeResult {
    changed: Vec<u32>,
    merged_groups: usize,
    /// Stale cache entries corrected (fault-injected runs only).
    healed: usize,
}

/// Result of the GHS stage composition (tree + protocol read-outs; stats
/// and stage marks live on the [`crate::ExecEnv`]).
pub(crate) struct GhsRun {
    pub tree: SpanningTree,
    pub phases: usize,
}

/// GHS as a stage sequence against the shared execution environment:
/// neighbour discovery, then merge phases to quiescence.
pub(crate) fn drive(env: &mut crate::ExecEnv<'_>, radius: f64, variant: GhsVariant) -> GhsRun {
    let kinds = GhsKinds::for_scope("ghs");
    let mut eng = GhsEngine::new(env.net(), variant);
    env.stage(kinds.scope, "discover", |net| {
        eng.discover(net, radius, kinds)
    });
    env.stage(kinds.scope, "phases", |net| eng.run_phases(net, kinds));
    GhsRun {
        tree: eng.tree(),
        phases: eng.phases(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Protocol, RunOutput, Sim};
    use emst_geom::{paper_phase2_radius, trial_rng, uniform_points, Point};
    use emst_graph::{kruskal_forest, Graph};

    fn run(points: &[Point], radius: f64, variant: GhsVariant) -> RunOutput {
        Sim::new(points).radius(radius).run(Protocol::Ghs(variant))
    }

    fn phases_of(out: &RunOutput) -> usize {
        out.detail.as_ghs().expect("GHS run").phases
    }

    fn check_matches_kruskal(points: &[Point], radius: f64, variant: GhsVariant) -> RunOutput {
        let out = run(points, radius, variant);
        let g = Graph::geometric(points, radius);
        let forest = kruskal_forest(&g);
        let reference = SpanningTree::new(points.len(), forest);
        assert!(
            out.tree.same_edges(&reference),
            "GHS {variant:?} tree differs from Kruskal forest (n={}, r={radius})",
            points.len()
        );
        out
    }

    #[test]
    fn for_scope_reproduces_historic_labels_and_interns() {
        let k = GhsKinds::for_scope("ghs");
        assert_eq!(k.scope, "ghs");
        assert_eq!(k.hello, "ghs/hello");
        assert_eq!(k.size, "ghs/size");
        let r = GhsKinds::for_scope("eopt2/recover");
        assert_eq!(r.connect, "eopt2/recover/connect");
        // Interned: the same table (same address) comes back.
        assert!(std::ptr::eq(k, GhsKinds::for_scope("ghs")));
    }

    #[test]
    fn modified_ghs_builds_exact_mst_small() {
        let pts = uniform_points(60, &mut trial_rng(101, 0));
        let r = paper_phase2_radius(60);
        let out = check_matches_kruskal(&pts, r, GhsVariant::Modified);
        assert!(phases_of(&out) >= 1);
        assert!(out.stats.energy > 0.0);
    }

    #[test]
    fn original_ghs_builds_exact_mst_small() {
        let pts = uniform_points(60, &mut trial_rng(102, 0));
        let r = paper_phase2_radius(60);
        check_matches_kruskal(&pts, r, GhsVariant::Original);
    }

    #[test]
    fn back_slot_table_matches_sorted_rows() {
        // Invariant behind the announce fast path: for the k-th entry `v`
        // of `u`'s cached topology row, `nbrs[v][back_slot[u][k]]` is the
        // entry for `u` — and it agrees with the binary-search lookup the
        // cursor construction replaced.
        let pts = uniform_points(250, &mut trial_rng(105, 1));
        let r = paper_phase2_radius(250);
        let mut net = RadioNet::new(&pts, r);
        let mut eng = GhsEngine::new(&net, GhsVariant::Modified);
        eng.discover(&mut net, r, GhsKinds::for_scope("ghs"));
        let topo = net.topology_at(r).expect("cached by discover");
        for u in 0..pts.len() {
            let slots = &eng.back_slot[u];
            assert_eq!(slots.len(), topo.degree(u));
            for (k, (v, d)) in topo.neighbors(u).enumerate() {
                let entry = &eng.nbrs[v][slots[k] as usize];
                assert_eq!(entry.id as usize, u, "row {v} slot {k}");
                assert_eq!(
                    Some(slots[k] as usize),
                    eng.nbr_slot(v, d, u as u32),
                    "cursor and binary-search disagree at ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn both_variants_agree_across_seeds() {
        for seed in 0..4 {
            let pts = uniform_points(150, &mut trial_rng(103, seed));
            let r = paper_phase2_radius(150);
            let a = run(&pts, r, GhsVariant::Modified);
            let b = run(&pts, r, GhsVariant::Original);
            assert!(a.tree.same_edges(&b.tree), "seed {seed}");
        }
    }

    #[test]
    fn disconnected_radius_yields_min_spanning_forest() {
        let pts = uniform_points(200, &mut trial_rng(104, 0));
        let r = emst_geom::paper_phase1_radius(200); // percolation regime
        let out = check_matches_kruskal(&pts, r, GhsVariant::Modified);
        assert!(out.fragments > 1, "phase-1 radius should not connect");
    }

    #[test]
    fn modified_uses_fewer_messages_than_original() {
        let pts = uniform_points(300, &mut trial_rng(105, 0));
        let r = paper_phase2_radius(300);
        let orig = run(&pts, r, GhsVariant::Original);
        let modi = run(&pts, r, GhsVariant::Modified);
        // Test traffic scales with |E|; announcements with n·phases. At the
        // connectivity radius |E| ≫ n, so the modified variant must win on
        // messages.
        assert!(
            modi.stats.messages < orig.stats.messages,
            "modified {} vs original {}",
            modi.stats.messages,
            orig.stats.messages
        );
        // No test messages in the modified run, none rejected twice in the
        // original one.
        assert_eq!(modi.stats.ledger.kind("ghs/test").messages, 0);
        assert!(orig.stats.ledger.kind("ghs/test").messages > 0);
        // Announcements only in the modified run.
        assert!(modi.stats.ledger.kind("ghs/announce").messages > 0);
        assert_eq!(orig.stats.ledger.kind("ghs/announce").messages, 0);
    }

    #[test]
    fn phase_count_is_logarithmic() {
        let pts = uniform_points(500, &mut trial_rng(106, 0));
        let r = paper_phase2_radius(500);
        let out = run(&pts, r, GhsVariant::Modified);
        assert!(
            phases_of(&out) as f64 <= (500f64).log2() + 2.0,
            "phases = {}",
            phases_of(&out)
        );
    }

    #[test]
    fn two_nodes() {
        let pts = vec![Point::new(0.4, 0.5), Point::new(0.6, 0.5)];
        let out = run(&pts, 0.5, GhsVariant::Modified);
        assert_eq!(out.tree.edges().len(), 1);
        assert!(out.tree.is_valid());
        assert_eq!(out.fragments, 1);
    }

    #[test]
    fn single_node() {
        let pts = vec![Point::new(0.5, 0.5)];
        let out = run(&pts, 0.5, GhsVariant::Modified);
        assert!(out.tree.is_valid());
        assert_eq!(out.tree.edges().len(), 0);
        assert_eq!(out.fragments, 1);
    }

    #[test]
    fn original_rejects_each_edge_at_most_once() {
        // Message bound: test messages ≤ 2·(2·|E|) + 2·n·phases
        // (each edge rejected once per side, plus ≤1 accept probe per node
        // per phase).
        let pts = uniform_points(250, &mut trial_rng(107, 0));
        let r = paper_phase2_radius(250);
        let g = Graph::geometric(&pts, r);
        let out = run(&pts, r, GhsVariant::Original);
        let tests = out.stats.ledger.kind("ghs/test").messages;
        let bound = 2 * (2 * g.m() as u64) + 2 * (250 * phases_of(&out) as u64);
        assert!(tests <= bound, "tests {tests} > bound {bound}");
    }

    #[test]
    fn rounds_and_energy_are_positive_and_finite() {
        let pts = uniform_points(100, &mut trial_rng(108, 0));
        let r = paper_phase2_radius(100);
        let out = run(&pts, r, GhsVariant::Modified);
        assert!(out.stats.rounds > 0);
        assert!(out.stats.energy.is_finite() && out.stats.energy > 0.0);
        assert!(out.stats.messages as usize >= 100); // at least the hellos
    }

    #[test]
    fn seed_forest_preserves_fragments_and_completes_mst() {
        use emst_radio::RadioNet;
        let pts = uniform_points(120, &mut trial_rng(109, 0));
        let r = paper_phase2_radius(120);
        // First compute the true MST, then seed the engine with half of
        // its edges: the run must complete it to the same tree (seeded
        // MST edges are always consistent with the cut property).
        let full = run(&pts, r, GhsVariant::Modified);
        let seed_edges: Vec<(usize, usize, f64)> = full
            .tree
            .edges()
            .iter()
            .take(60)
            .map(|e| (e.u as usize, e.v as usize, e.w))
            .collect();
        let mut net = RadioNet::new(&pts, r);
        let kinds = GhsKinds::for_scope("ghs");
        let mut eng = GhsEngine::new(&net, GhsVariant::Modified);
        eng.seed_forest(&seed_edges);
        let frag_before = eng.fragment_count();
        eng.discover(&mut net, r, kinds);
        eng.run_phases(&mut net, kinds);
        let tree = eng.tree();
        assert_eq!(frag_before, 120 - 60);
        assert!(
            tree.same_edges(&full.tree),
            "seeded run must converge to the same MST"
        );
        // Cheaper than the full run (fewer phases of merging to do).
        assert!(net.ledger().total_energy() < full.stats.energy);
    }

    #[test]
    #[should_panic(expected = "forest")]
    fn seed_forest_rejects_cycles() {
        use emst_radio::RadioNet;
        let pts = uniform_points(4, &mut trial_rng(110, 0));
        let net = RadioNet::new(&pts, 0.5);
        let mut eng = GhsEngine::new(&net, GhsVariant::Modified);
        eng.seed_forest(&[(0, 1, 0.1), (1, 2, 0.1), (2, 0, 0.1)]);
    }

    #[test]
    fn passive_fragment_only_accepts_connections() {
        use emst_radio::RadioNet;
        // Build a full MST but mark the (single) final fragment passive
        // halfway: classify with threshold 0 so every fragment becomes
        // passive, then confirm run_phases makes no progress (passive
        // fragments never search).
        let pts = uniform_points(80, &mut trial_rng(111, 0));
        let r = paper_phase2_radius(80);
        let mut net = RadioNet::new(&pts, r);
        let kinds = GhsKinds::for_scope("ghs");
        let mut eng = GhsEngine::new(&net, GhsVariant::Modified);
        eng.discover(&mut net, r, kinds);
        // All singletons; make everything passive.
        let rows = eng.classify_passive_by_size(&mut net, 0.0, kinds);
        assert!(rows.iter().all(|r| r.2), "threshold 0 ⇒ all passive");
        let phases = eng.run_phases(&mut net, kinds);
        assert_eq!(phases, 0, "all-passive network must stay frozen");
        assert_eq!(eng.fragment_count(), 80);
        // Clearing passivity unfreezes the run.
        eng.clear_passive();
        eng.run_phases(&mut net, kinds);
        assert_eq!(eng.fragment_count(), 1);
        assert!(eng.tree().is_valid());
    }

    #[test]
    fn per_kind_attribution_is_complete() {
        let pts = uniform_points(150, &mut trial_rng(112, 0));
        let r = paper_phase2_radius(150);
        let out = run(&pts, r, GhsVariant::Original);
        let known = [
            "ghs/hello",
            "ghs/initiate",
            "ghs/test",
            "ghs/report",
            "ghs/chroot",
            "ghs/connect",
            "ghs/announce",
            "ghs/size",
        ];
        let sum: u64 = known
            .iter()
            .map(|k| out.stats.ledger.kind(k).messages)
            .sum();
        assert_eq!(sum, out.stats.messages, "unattributed messages exist");
        // Hello is exactly one broadcast per node.
        assert_eq!(out.stats.ledger.kind("ghs/hello").messages, 150);
        // A spanning run sends exactly n−1 connects plus duplicates for
        // mutually-chosen core edges: between n−1 and 2(n−1).
        let connects = out.stats.ledger.kind("ghs/connect").messages;
        assert!((149..=298).contains(&connects), "connects = {connects}");
    }

    #[test]
    fn deeper_fragments_cost_more_rounds() {
        // A path-like instance (collinear points) yields deep fragment
        // trees; rounds must exceed those of a compact instance of equal
        // size.
        let line: Vec<Point> = (0..60)
            .map(|i| Point::new(0.05 + 0.015 * i as f64, 0.5))
            .collect();
        let blob = uniform_points(60, &mut trial_rng(113, 0));
        let line_out = run(&line, 0.05, GhsVariant::Modified);
        let blob_out = run(&blob, paper_phase2_radius(60), GhsVariant::Modified);
        assert_eq!(line_out.fragments, 1);
        assert!(
            line_out.stats.rounds > blob_out.stats.rounds,
            "line {} vs blob {}",
            line_out.stats.rounds,
            blob_out.stats.rounds
        );
    }
}
