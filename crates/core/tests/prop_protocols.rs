//! Property-based tests across the distributed protocols: on arbitrary
//! point clouds (not just uniform ones) the protocols must keep their
//! structural guarantees.

use emst_core::{GhsVariant, Protocol, RankScheme, RepairPolicy, RunOutcome, Sim};
use emst_geom::Point;
use emst_graph::{kruskal_forest, Graph, SpanningTree, UnionFind};
use emst_radio::{FaultPlan, MetricsSink};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Clouds with distinct coordinates (dedupe very close pairs so ranking and
/// MOE tie-breaks stay unambiguous).
fn cloud(max: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(
        (0.001f64..0.999, 0.001f64..0.999).prop_map(|(x, y)| Point::new(x, y)),
        2..max,
    )
    .prop_map(|mut pts| {
        pts.sort_by(|a, b| (a.x, a.y).partial_cmp(&(b.x, b.y)).unwrap());
        pts.dedup_by(|a, b| a.dist(b) < 1e-6);
        pts
    })
    .prop_filter("need at least two distinct points", |p| p.len() >= 2)
}

/// Every soundness promise a `Repaired` outcome makes, as one checkable
/// predicate shared by the property test and the deterministic probe
/// below: the forest is valid, it spans exactly the surviving nodes, and
/// the shared ledger conserves energy across the original + repair
/// stages.
fn repaired_soundness(
    outcome: &RunOutcome,
    n: usize,
    never_crashed: &BTreeSet<usize>,
    sink: &MetricsSink,
) -> Result<(), String> {
    let RunOutcome::Repaired { output, repair } = outcome else {
        return Err("expected a Repaired outcome".into());
    };
    output
        .tree
        .validate_forest()
        .map_err(|e| format!("invalid repaired forest: {e:?}"))?;
    if repair.attempts == 0 {
        return Err("Repaired with zero repair attempts".into());
    }
    if repair.survivors + repair.crashed != n {
        return Err(format!(
            "survivors {} + crashed {} != n {n}",
            repair.survivors, repair.crashed
        ));
    }
    if repair.survivors > 0 && repair.fragments_after != 1 {
        return Err(format!(
            "repair left {} survivor fragments",
            repair.fragments_after
        ));
    }
    // Spans exactly the survivors: a node that never crashes survives
    // every run, so all such nodes must share one forest component.
    let mut uf = UnionFind::new(n);
    for e in output.tree.edges() {
        let (u, v) = e.endpoints();
        uf.union(u, v);
    }
    let mut root = None;
    for &u in never_crashed {
        let r = uf.find(u);
        if *root.get_or_insert(r) != r {
            return Err(format!("surviving node {u} is disconnected after repair"));
        }
    }
    // Ledger conservation: the external sink saw every transmission the
    // run charged, original and repair traffic alike — bitwise.
    if sink.total_energy().to_bits() != output.stats.energy.to_bits() {
        return Err(format!(
            "sink energy {} != stats energy {}",
            sink.total_energy(),
            output.stats.energy
        ));
    }
    if sink.total_messages() != output.stats.messages {
        return Err(format!(
            "sink messages {} != stats messages {}",
            sink.total_messages(),
            output.stats.messages
        ));
    }
    // The stage marks — original + repair scopes — telescope to the
    // totals, and the repair scope actually appears in the log.
    let stage_energy: f64 = output.stages.iter().map(|s| s.energy).sum();
    if (stage_energy - output.stats.energy).abs() > 1e-9 {
        return Err(format!(
            "stage energies sum to {stage_energy}, stats say {}",
            output.stats.energy
        ));
    }
    let stage_msgs: u64 = output.stages.iter().map(|s| s.messages).sum();
    if stage_msgs != output.stats.messages {
        return Err(format!(
            "stage messages sum to {stage_msgs}, stats say {}",
            output.stats.messages
        ));
    }
    if !output.stages.iter().any(|s| s.scope == "repair") {
        return Err("no repair-scope stage mark on a Repaired run".into());
    }
    // Per-kind ledger tallies agree with the totals too.
    let kind_sum: f64 = output.stats.ledger.kinds().map(|(_, t)| t.energy).sum();
    if (kind_sum - output.stats.energy).abs() > 1e-9 {
        return Err(format!(
            "ledger kinds sum to {kind_sum}, stats say {}",
            output.stats.energy
        ));
    }
    // Repair's own charge is part of — not on top of — the total.
    if !(repair.energy > 0.0 && repair.energy <= output.stats.energy) {
        return Err(format!(
            "repair energy {} outside (0, total {}]",
            repair.energy, output.stats.energy
        ));
    }
    Ok(())
}

/// Deterministic probe pinning that the repair property below is not
/// vacuous: at n = 64 and 30% link loss a plan that fragments modified
/// GHS exists in a small seed window (seed 42 at the time of writing),
/// and its `Repaired` outcome passes every soundness check.
#[test]
fn repaired_outcome_is_reachable_and_sound() {
    let pts = emst_geom::uniform_points(
        64,
        &mut emst_geom::trial_rng(emst_geom::mix_seed(0xC0DE, 64), 0),
    );
    let never_crashed: BTreeSet<usize> = (0..pts.len()).collect();
    let r = emst_geom::paper_phase2_radius(pts.len());
    for seed in 0..64u64 {
        let plan = FaultPlan::none().seed(seed).drop_probability(0.3);
        let mut sink = MetricsSink::new();
        let outcome = Sim::new(&pts)
            .radius(r)
            .with_faults(plan)
            .repair(RepairPolicy::default())
            .sink(&mut sink)
            .try_run(Protocol::Ghs(GhsVariant::Modified));
        if matches!(outcome, RunOutcome::Repaired { .. }) {
            repaired_soundness(&outcome, pts.len(), &never_crashed, &sink).unwrap();
            return;
        }
    }
    panic!("no seed in 0..64 produced a Repaired run — repair became unreachable");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// GHS (both variants) computes the minimum spanning forest of the
    /// visible graph at any radius, on any cloud.
    #[test]
    fn ghs_equals_kruskal_forest(pts in cloud(40), r in 0.05f64..1.0) {
        let g = Graph::geometric(&pts, r);
        let reference = SpanningTree::new(pts.len(), kruskal_forest(&g));
        for variant in [GhsVariant::Modified, GhsVariant::Original] {
            let out = Sim::new(&pts).radius(r).run(Protocol::Ghs(variant));
            prop_assert!(
                out.tree.same_edges(&reference),
                "{variant:?} mismatch at r={r}"
            );
        }
    }

    /// EOPT's tree always equals the Kruskal forest of the connectivity
    /// graph — the exactness claim of Theorem 5.3, radius-restricted.
    #[test]
    fn eopt_is_exact(pts in cloud(40)) {
        let cfg = emst_core::EoptConfig::default();
        let out = Sim::new(&pts).run(Protocol::Eopt(cfg));
        let g = Graph::geometric(&pts, cfg.radius2(pts.len().max(2)));
        let reference = SpanningTree::new(pts.len(), kruskal_forest(&g));
        prop_assert!(out.tree.same_edges(&reference));
    }

    /// Co-NNT always yields a spanning tree with exactly one root, under
    /// both rankings, on any distinct-coordinate cloud.
    #[test]
    fn nnt_always_spans(pts in cloud(60)) {
        for scheme in [RankScheme::Diagonal, RankScheme::XOrder] {
            let out = Sim::new(&pts).run(Protocol::Nnt(scheme));
            prop_assert!(out.tree.is_valid(), "{scheme:?}: {:?}", out.tree.validate());
            prop_assert_eq!(out.detail.as_nnt().unwrap().unconnected, 1);
        }
    }

    /// NNT cost dominates MST cost but never by more than the trivial
    /// n·max-edge bound; and every NNT edge goes to the true nearest
    /// higher-ranked node.
    #[test]
    fn nnt_edges_are_nearest_higher_rank(pts in cloud(40)) {
        let out = Sim::new(&pts).run(Protocol::Nnt(RankScheme::Diagonal));
        let mut parent = vec![usize::MAX; pts.len()];
        for e in out.tree.edges() {
            let (u, v) = e.endpoints();
            if emst_geom::diag_rank_less(&pts[u], &pts[v]) {
                parent[u] = v;
            } else {
                parent[v] = u;
            }
        }
        for u in 0..pts.len() {
            let brute = (0..pts.len())
                .filter(|&v| v != u && emst_geom::diag_rank_less(&pts[u], &pts[v]))
                .min_by(|&a, &b| pts[u].dist(&pts[a]).total_cmp(&pts[u].dist(&pts[b])));
            match brute {
                Some(b) => prop_assert_eq!(parent[u], b),
                None => prop_assert_eq!(parent[u], usize::MAX),
            }
        }
        let mst = emst_graph::euclidean_mst(&pts);
        prop_assert!(out.tree.cost(1.0) >= mst.cost(1.0) - 1e-9);
    }

    /// Energy ledgers are internally consistent: per-kind tallies sum to
    /// the totals, and rounds/messages are nonzero whenever edges exist.
    #[test]
    fn ledger_consistency(pts in cloud(30), r in 0.2f64..0.9) {
        let out = Sim::new(&pts).radius(r).run(Protocol::Ghs(GhsVariant::Modified));
        let kind_sum: f64 = out.stats.ledger.kinds().map(|(_, t)| t.energy).sum();
        prop_assert!((kind_sum - out.stats.energy).abs() < 1e-9);
        let msg_sum: u64 = out.stats.ledger.kinds().map(|(_, t)| t.messages).sum();
        prop_assert_eq!(msg_sum, out.stats.messages);
        prop_assert!(out.stats.messages >= pts.len() as u64); // hellos
    }

    /// Random clouds under random lossy/crashy fault plans: whenever the
    /// recovery runtime reports `Repaired`, the outcome is sound — valid
    /// forest, exactly the surviving nodes spanned, energy conserved
    /// across the original + repair stages. Outcomes that finish without
    /// repair still keep the baseline ledger invariants.
    #[test]
    fn repaired_runs_are_sound(
        pts in cloud(48),
        p in 0.15f64..0.35,
        seed in any::<u64>(),
        crashes in proptest::collection::vec((any::<u32>(), 0u64..40), 0..3),
    ) {
        let n = pts.len();
        let mut plan = FaultPlan::none().seed(seed).drop_probability(p);
        let mut crashed = BTreeSet::new();
        for &(node, round) in &crashes {
            let node = node as usize % n;
            if crashed.insert(node) {
                plan = plan.crash_at(node, round);
            }
        }
        let never_crashed: BTreeSet<usize> =
            (0..n).filter(|u| !crashed.contains(u)).collect();
        let mut sink = MetricsSink::new();
        let outcome = Sim::new(&pts)
            .radius(emst_geom::paper_phase2_radius(n))
            .with_faults(plan)
            .repair(RepairPolicy::default())
            .sink(&mut sink)
            .try_run(Protocol::Ghs(GhsVariant::Modified));
        match &outcome {
            RunOutcome::Repaired { .. } => {
                prop_assert_eq!(
                    repaired_soundness(&outcome, n, &never_crashed, &sink),
                    Ok(())
                );
            }
            RunOutcome::Complete(out) => {
                prop_assert!(out.tree.validate_forest().is_ok());
                prop_assert_eq!(
                    sink.total_energy().to_bits(),
                    out.stats.energy.to_bits()
                );
                prop_assert_eq!(sink.total_messages(), out.stats.messages);
            }
            RunOutcome::Degraded { output: out, faults } => {
                // Degraded means repair was not needed (forest already
                // spans) or genuinely could not finish; either way the
                // damage must be visible and the ledger consistent.
                prop_assert!(out.tree.validate_forest().is_ok());
                prop_assert!(faults.drops > 0 || faults.timeouts > 0);
                prop_assert_eq!(
                    sink.total_energy().to_bits(),
                    out.stats.energy.to_bits()
                );
            }
            // A crash-heavy plan may legitimately abort the run.
            RunOutcome::Failed { .. } => {}
        }
    }
}
