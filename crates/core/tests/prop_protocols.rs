//! Property-based tests across the distributed protocols: on arbitrary
//! point clouds (not just uniform ones) the protocols must keep their
//! structural guarantees.

use emst_core::{GhsVariant, Protocol, RankScheme, Sim};
use emst_geom::Point;
use emst_graph::{kruskal_forest, Graph, SpanningTree};
use proptest::prelude::*;

/// Clouds with distinct coordinates (dedupe very close pairs so ranking and
/// MOE tie-breaks stay unambiguous).
fn cloud(max: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(
        (0.001f64..0.999, 0.001f64..0.999).prop_map(|(x, y)| Point::new(x, y)),
        2..max,
    )
    .prop_map(|mut pts| {
        pts.sort_by(|a, b| (a.x, a.y).partial_cmp(&(b.x, b.y)).unwrap());
        pts.dedup_by(|a, b| a.dist(b) < 1e-6);
        pts
    })
    .prop_filter("need at least two distinct points", |p| p.len() >= 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// GHS (both variants) computes the minimum spanning forest of the
    /// visible graph at any radius, on any cloud.
    #[test]
    fn ghs_equals_kruskal_forest(pts in cloud(40), r in 0.05f64..1.0) {
        let g = Graph::geometric(&pts, r);
        let reference = SpanningTree::new(pts.len(), kruskal_forest(&g));
        for variant in [GhsVariant::Modified, GhsVariant::Original] {
            let out = Sim::new(&pts).radius(r).run(Protocol::Ghs(variant));
            prop_assert!(
                out.tree.same_edges(&reference),
                "{variant:?} mismatch at r={r}"
            );
        }
    }

    /// EOPT's tree always equals the Kruskal forest of the connectivity
    /// graph — the exactness claim of Theorem 5.3, radius-restricted.
    #[test]
    fn eopt_is_exact(pts in cloud(40)) {
        let cfg = emst_core::EoptConfig::default();
        let out = Sim::new(&pts).run(Protocol::Eopt(cfg));
        let g = Graph::geometric(&pts, cfg.radius2(pts.len().max(2)));
        let reference = SpanningTree::new(pts.len(), kruskal_forest(&g));
        prop_assert!(out.tree.same_edges(&reference));
    }

    /// Co-NNT always yields a spanning tree with exactly one root, under
    /// both rankings, on any distinct-coordinate cloud.
    #[test]
    fn nnt_always_spans(pts in cloud(60)) {
        for scheme in [RankScheme::Diagonal, RankScheme::XOrder] {
            let out = Sim::new(&pts).run(Protocol::Nnt(scheme));
            prop_assert!(out.tree.is_valid(), "{scheme:?}: {:?}", out.tree.validate());
            prop_assert_eq!(out.detail.as_nnt().unwrap().unconnected, 1);
        }
    }

    /// NNT cost dominates MST cost but never by more than the trivial
    /// n·max-edge bound; and every NNT edge goes to the true nearest
    /// higher-ranked node.
    #[test]
    fn nnt_edges_are_nearest_higher_rank(pts in cloud(40)) {
        let out = Sim::new(&pts).run(Protocol::Nnt(RankScheme::Diagonal));
        let mut parent = vec![usize::MAX; pts.len()];
        for e in out.tree.edges() {
            let (u, v) = e.endpoints();
            if emst_geom::diag_rank_less(&pts[u], &pts[v]) {
                parent[u] = v;
            } else {
                parent[v] = u;
            }
        }
        for u in 0..pts.len() {
            let brute = (0..pts.len())
                .filter(|&v| v != u && emst_geom::diag_rank_less(&pts[u], &pts[v]))
                .min_by(|&a, &b| pts[u].dist(&pts[a]).total_cmp(&pts[u].dist(&pts[b])));
            match brute {
                Some(b) => prop_assert_eq!(parent[u], b),
                None => prop_assert_eq!(parent[u], usize::MAX),
            }
        }
        let mst = emst_graph::euclidean_mst(&pts);
        prop_assert!(out.tree.cost(1.0) >= mst.cost(1.0) - 1e-9);
    }

    /// Energy ledgers are internally consistent: per-kind tallies sum to
    /// the totals, and rounds/messages are nonzero whenever edges exist.
    #[test]
    fn ledger_consistency(pts in cloud(30), r in 0.2f64..0.9) {
        let out = Sim::new(&pts).radius(r).run(Protocol::Ghs(GhsVariant::Modified));
        let kind_sum: f64 = out.stats.ledger.kinds().map(|(_, t)| t.energy).sum();
        prop_assert!((kind_sum - out.stats.energy).abs() < 1e-9);
        let msg_sum: u64 = out.stats.ledger.kinds().map(|(_, t)| t.messages).sum();
        prop_assert_eq!(msg_sum, out.stats.messages);
        prop_assert!(out.stats.messages >= pts.len() as u64); // hellos
    }
}
