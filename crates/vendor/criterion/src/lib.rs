//! Offline stand-in for the `criterion` benchmark harness covering the API
//! this workspace's benches use: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId::from_parameter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: a short warm-up, then a fixed batch
//! of timed iterations whose mean is printed as `group/bench: <mean>`. No
//! statistics, baselines, or HTML reports — enough to run every bench
//! binary and eyeball regressions in an offline container.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Parameterised benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Label from one displayable parameter (upstream renders the same).
    pub fn from_parameter<D: Display>(p: D) -> Self {
        BenchmarkId(p.to_string())
    }
}

/// Runs the body passed to `Bencher::iter`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / iters.max(1) as f64;
    let pretty = if mean >= 1.0 {
        format!("{mean:.3} s")
    } else if mean >= 1e-3 {
        format!("{:.3} ms", mean * 1e3)
    } else {
        format!("{:.3} µs", mean * 1e6)
    };
    println!("{label:<48} {pretty:>12}  ({iters} iters)");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    iters: u64,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes the statistical sample count; here it scales the
    /// timed iteration count (floor of 3).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64 / 3).max(3);
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.iters, &mut f);
        self
    }

    /// Benchmarks a closure taking a borrowed input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.0), self.iters, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing happened eagerly).
    pub fn finish(&mut self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            iters: 10,
            _c: self,
        }
    }

    /// Benchmarks a standalone closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, 10, &mut f);
        self
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
