//! Value-generation strategies: ranges, tuples, `Just`, `any`, and the
//! `prop_map` / `prop_flat_map` / `prop_filter` combinators.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for drawing values of one type. Unlike upstream proptest there
/// is no value tree and no shrinking: `sample` draws a fresh value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value and feeds it to a strategy-producing
    /// function (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying with fresh draws.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut StdRng) -> u8 {
        rng.gen::<u64>() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> u32 {
        rng.gen::<u32>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.gen::<u64>()
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, …).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, usize, u64, u32, u16, u8);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(
    A.0, B.1, C.2, D.3, E.4
));
