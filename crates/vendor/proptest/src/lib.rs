//! Offline stand-in for the `proptest` crate, implementing the subset this
//! workspace's property tests use: the [`proptest!`] macro, the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter`, range and tuple strategies, [`strategy::Just`],
//! [`prelude::any`] and [`collection::vec`].
//!
//! Semantics differ from upstream in two deliberate ways: cases are drawn
//! from a deterministic per-test generator (seeded from the test name), and
//! there is **no shrinking** — a failing case panics with the ordinary
//! assertion message. Both are acceptable for a CI gate; neither changes
//! what a passing suite certifies.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Deterministic per-test generator: the test name is FNV-hashed into the
/// seed so every property test gets a distinct, reproducible stream.
pub fn __new_rng(test_name: &str) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    rand::rngs::StdRng::seed_from_u64(h)
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as with
/// upstream proptest) running `cases` seeded draws of its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ { $cfg } $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            { $crate::test_runner::ProptestConfig::default() } $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( { $cfg:expr }
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::__new_rng(stringify!($name));
                for _ in 0..__cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// Skips the current case when its precondition fails. Upstream rejects and
/// redraws; here the per-case loop just moves on, which only lowers the
/// effective case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts inside a property test (plain `assert!` here: no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
