//! Collection strategies: `vec`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Element-count specification: an exact size or a half-open range,
/// mirroring upstream's `Into<SizeRange>` argument.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy generating `Vec`s of `element` with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
