//! Test-runner configuration.

/// How many cases each property test draws. Only the field this
/// workspace's tests configure is modelled.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases per property test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the full-workspace suite fast
        // while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}
