//! Generator implementations: the single `StdRng` the workspace uses.

use crate::{RngCore, SeedableRng};

/// SplitMix64 step — used to expand one seed word into the full state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256++ generator (Blackman & Vigna). Same role as
/// `rand::rngs::StdRng`: a fast, statistically solid, *non-cryptographic*
/// source for seeded simulations. Streams differ from upstream `StdRng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is the one forbidden fixed point; SplitMix64 cannot
        // produce four zero words from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
