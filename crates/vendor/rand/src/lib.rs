//! Offline stand-in for the `rand` crate, covering exactly the API surface
//! this workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, the
//! `Rng` extension trait (`gen`, `gen_range`, `gen_bool`) and
//! `seq::SliceRandom::shuffle`.
//!
//! The container this reproduction grows in has no network access and no
//! registry cache, so third-party crates cannot be fetched; this crate
//! keeps the workspace self-contained. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic across platforms and runs,
//! which is all the experiment harness requires (every table footnotes its
//! seed, not the upstream crate version).
//!
//! Not a drop-in replacement for the real `rand`: the stream of values for
//! a given seed differs, and only the listed items exist.

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface; only the `u64` convenience constructor is provided.
pub trait SeedableRng: Sized {
    /// Deterministically derives a full generator state from one word.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a generator ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u128;
                // Lemma: multiply-shift maps 64 uniform bits onto [0, span)
                // with bias < 2^-64·span — negligible for experiment sizes.
                let v = (rng.next_u64() as u128 * span) >> 64;
                self.start + v as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty gen_range");
                let span = (e - s) as u128 + 1;
                let v = (rng.next_u64() as u128 * span) >> 64;
                s + v as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + (self.end - self.start) * f64::draw(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (s, e) = (*self.start(), *self.end());
        assert!(s <= e, "empty gen_range");
        s + (e - s) * f64::draw(rng)
    }
}

/// The user-facing extension trait, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 1/2");
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut hit = [0usize; 10];
        for _ in 0..10_000 {
            hit[rng.gen_range(0..10usize)] += 1;
        }
        assert!(hit.iter().all(|&h| h > 700), "skewed buckets {hit:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "identity shuffle");
    }
}
