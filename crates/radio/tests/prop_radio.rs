//! Property-based tests for the radio simulator: the contention layer
//! must deliver exactly the collision-free message set (later and at
//! higher cost, never lossily), and energy accounting must stay
//! internally consistent under any configuration.

use emst_geom::Point;
use emst_radio::{
    ContentionConfig, Ctx, Delivery, EnergyConfig, NodeProtocol, RadioNet, SyncEngine,
};
use proptest::prelude::*;

fn cloud(max: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(
        (0.0f64..=1.0, 0.0f64..=1.0).prop_map(|(x, y)| Point::new(x, y)),
        2..max,
    )
}

/// Gossip protocol: every node broadcasts its id once in round 0; each
/// node records everything it hears (ids can arrive over multiple rounds
/// under contention). Quiesces when all have sent.
struct Gossip {
    radius: f64,
    sent: bool,
    heard: Vec<usize>,
}

impl NodeProtocol for Gossip {
    type Msg = usize;

    fn on_round(&mut self, inbox: &[Delivery<usize>], ctx: &mut Ctx<'_, usize>) {
        for d in inbox {
            self.heard.push(d.msg);
        }
        if !self.sent {
            self.sent = true;
            ctx.broadcast(self.radius, "gossip", ctx.me());
        }
    }

    fn done(&self) -> bool {
        self.sent
    }
}

fn run_gossip(pts: &[Point], radius: f64, contention: Option<ContentionConfig>) -> Vec<Vec<usize>> {
    let net = RadioNet::new(pts, radius.max(1e-3));
    let nodes: Vec<Gossip> = (0..pts.len())
        .map(|_| Gossip {
            radius,
            sent: false,
            heard: Vec::new(),
        })
        .collect();
    let mut eng = match contention {
        Some(cfg) => SyncEngine::with_contention(net, nodes, cfg),
        None => SyncEngine::new(net, nodes),
    };
    eng.run(64).expect("gossip quiesces");
    eng.nodes()
        .iter()
        .map(|g| {
            let mut h = g.heard.clone();
            h.sort_unstable();
            h
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contention delivers exactly the collision-free message sets.
    #[test]
    fn contention_is_lossless(pts in cloud(24), radius in 0.05f64..0.6, seed in 1u64..1000) {
        let clean = run_gossip(&pts, radius, None);
        let noisy = run_gossip(
            &pts,
            radius,
            Some(ContentionConfig {
                seed,
                ..ContentionConfig::default()
            }),
        );
        prop_assert_eq!(clean, noisy);
    }

    /// Contention never reduces messages, energy, or rounds.
    #[test]
    fn contention_only_adds_cost(pts in cloud(20), radius in 0.05f64..0.5) {
        let run = |cont: Option<ContentionConfig>| {
            let net = RadioNet::new(&pts, radius.max(1e-3));
            let nodes: Vec<Gossip> = (0..pts.len())
                .map(|_| Gossip { radius, sent: false, heard: Vec::new() })
                .collect();
            let mut eng = match cont {
                Some(cfg) => SyncEngine::with_contention(net, nodes, cfg),
                None => SyncEngine::new(net, nodes),
            };
            eng.run(64).unwrap();
            (
                eng.net().ledger().total_messages(),
                eng.net().ledger().total_energy(),
                eng.net().clock().now(),
            )
        };
        let (m0, e0, r0) = run(None);
        let (m1, e1, r1) = run(Some(ContentionConfig::default()));
        prop_assert!(m1 >= m0);
        prop_assert!(e1 >= e0 - 1e-12);
        prop_assert!(r1 >= r0);
    }

    /// Under the extended model, full energy decomposes exactly into
    /// tx + rx + idle, and rx receptions equal total deliveries.
    #[test]
    fn extended_accounting_decomposes(pts in cloud(20), radius in 0.05f64..0.5,
                                      rx in 0.0f64..0.1, idle in 0.0f64..0.01) {
        let cfg = EnergyConfig::extended(emst_geom::PathLoss::paper(), rx.max(1e-9), idle.max(1e-9));
        let net = RadioNet::with_config(&pts, radius.max(1e-3), cfg);
        let nodes: Vec<Gossip> = (0..pts.len())
            .map(|_| Gossip { radius, sent: false, heard: Vec::new() })
            .collect();
        let mut eng = SyncEngine::new(net, nodes);
        eng.run(64).unwrap();
        let total_heard: usize = eng.nodes().iter().map(|g| g.heard.len()).sum();
        let ledger = eng.net().ledger();
        prop_assert_eq!(ledger.rx_count(), total_heard as u64);
        let expect_rx = total_heard as f64 * cfg.rx;
        prop_assert!((ledger.rx_energy() - expect_rx).abs() < 1e-9);
        let expect_idle = eng.net().clock().now() as f64 * pts.len() as f64 * cfg.idle_per_round;
        prop_assert!((ledger.idle_energy() - expect_idle).abs() < 1e-9);
        prop_assert!(
            (ledger.full_energy()
                - (ledger.total_energy() + ledger.rx_energy() + ledger.idle_energy()))
            .abs()
                < 1e-12
        );
    }
}
