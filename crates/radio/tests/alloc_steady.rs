//! Steady-state allocation discipline of the round engine.
//!
//! The engine's per-round hot path runs out of pooled buffers (outbox,
//! inbox views, retry drain) that grow during the first few rounds and
//! are then recycled, so a long run must not touch the allocator at all
//! once warm — that guarantee is what keeps large-n runs flat, and it is
//! easy to break silently (a `collect()` in the delivery loop, a map
//! rebuilt per round). This test pins it with a counting global
//! allocator: run a message-heavy protocol for a warm-up window, arm the
//! counter, run on, and require zero allocations.
//!
//! The counter is armed only around the measured `step()` calls and the
//! protocol payload is `Copy`, so the only possible hits are the
//! engine's own.

use emst_geom::{uniform_points, Point};
use emst_radio::{Ctx, Delivery, NodeProtocol, RadioNet, SyncEngine};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Every node unicasts a counter to its successor each round and
/// broadcasts at a short radius every fourth round — enough traffic to
/// exercise both transmission paths and the delivery fan-out.
struct Chatter {
    me: usize,
    n: usize,
    radius: f64,
    seen: u64,
    rounds: u64,
    limit: u64,
}

impl NodeProtocol for Chatter {
    type Msg = u64;

    fn on_round(&mut self, inbox: &[Delivery<u64>], ctx: &mut Ctx<'_, u64>) {
        self.seen += inbox.len() as u64;
        self.rounds += 1;
        ctx.unicast((self.me + 1) % self.n, "alloc/ring", self.seen);
        if self.rounds.is_multiple_of(4) {
            ctx.broadcast(self.radius, "alloc/burst", self.rounds);
        }
    }

    fn done(&self) -> bool {
        self.rounds >= self.limit
    }
}

#[test]
fn engine_steady_state_allocates_nothing() {
    let mut rng = emst_geom::trial_rng(4242, 0);
    let pts: Vec<Point> = uniform_points(200, &mut rng);
    let radius = emst_geom::paper_phase2_radius(pts.len());
    let net = RadioNet::new(&pts, radius);
    let n = pts.len();
    let nodes: Vec<Chatter> = (0..n)
        .map(|me| Chatter {
            me,
            n,
            radius: radius / 2.0,
            seen: 0,
            rounds: 0,
            limit: 10_000,
        })
        .collect();
    let mut engine = SyncEngine::new(net, nodes);

    // Warm-up: pools grow to their high-water marks (both message kinds
    // appear in the ledger, every broadcast cell is materialised).
    for _ in 0..32 {
        assert!(engine.step(), "protocol terminated during warm-up");
    }

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..256 {
        assert!(engine.step(), "protocol terminated during measurement");
    }
    ARMED.store(false, Ordering::SeqCst);

    let hits = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        hits, 0,
        "engine hot path allocated {hits} times across 256 warm rounds — \
         a per-round allocation crept in"
    );
}
