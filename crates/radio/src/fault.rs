//! Deterministic fault injection for the radio layer.
//!
//! The paper assumes loss-free delivery (§II) and defers unreliable
//! channels to future work (§VIII); related work (Augustine–Moses–
//! Pandurangan's sleeping nodes, Chang's energy-charged listening) makes
//! robustness a first-class axis. A [`FaultPlan`] describes three fault
//! classes:
//!
//! * **message drops** — every (sender, receiver) delivery in round `r`
//!   independently fails with probability `p`;
//! * **crashes** — a node stops participating permanently from a given
//!   round on (it neither sends, receives, nor retries);
//! * **sleep windows** — a node misses all traffic during `[from, to)`
//!   rounds but transmits queued messages once awake again.
//!
//! Drop coins are *stateless*: each is derived by hashing
//! `(seed, round, sender, receiver)` through the splitmix64 finalizer, so
//! outcomes are independent of execution order, thread count, and of the
//! ALOHA backoff RNG (the coin stream and the backoff stream are
//! domain-separated — see [`fault_stream_seed`] / [`backoff_stream_seed`]).

/// splitmix64 finalizer — the same avalanching mix used by
/// `emst_geom::mix_seed` for the trial fan-out, duplicated here so
/// `emst-radio` stays free of a geometry dependency for RNG plumbing.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Domain tag for the fault-coin stream.
const FAULT_DOMAIN: u64 = 0xFA17_7C01_4D0B_0001;
/// Domain tag for the ALOHA backoff stream.
const BACKOFF_DOMAIN: u64 = 0xBAC0_FF5E_ED5A_0002;

/// Derives the fault-coin stream seed from a user seed. Domain-separated
/// from [`backoff_stream_seed`] so loss coins cannot correlate with
/// backoff coins even when both layers are configured with the same seed.
#[inline]
pub fn fault_stream_seed(seed: u64) -> u64 {
    mix64(seed ^ FAULT_DOMAIN)
}

/// Derives the ALOHA backoff RNG seed from a user seed (see
/// [`fault_stream_seed`] for why the two streams are separated).
#[inline]
pub fn backoff_stream_seed(seed: u64) -> u64 {
    mix64(seed ^ BACKOFF_DOMAIN)
}

/// What went wrong with one transmission attempt or message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A delivery to one receiver failed (coin, sleeping or crashed
    /// receiver).
    Drop,
    /// A sender retransmitted a message some receiver had not confirmed.
    Retry,
    /// A message was abandoned: its sender crashed, or the retry budget
    /// ran out with receivers still waiting.
    Timeout,
}

impl FaultKind {
    /// Stable lowercase label used by the streaming sinks.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Retry => "retry",
            FaultKind::Timeout => "timeout",
        }
    }
}

/// Running counts of fault events observed by a network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Failed deliveries (per receiver).
    pub drops: u64,
    /// Retransmissions (per extra attempt).
    pub retries: u64,
    /// Abandoned messages (sender crash or retry budget exhausted).
    pub timeouts: u64,
}

impl FaultStats {
    /// Folds another run's counters into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.drops += other.drops;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
    }

    /// Bumps the counter for `kind`.
    pub(crate) fn note(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::Drop => self.drops += 1,
            FaultKind::Retry => self.retries += 1,
            FaultKind::Timeout => self.timeouts += 1,
        }
    }

    /// True when no fault event was observed.
    pub fn is_clean(&self) -> bool {
        self.drops == 0 && self.retries == 0 && self.timeouts == 0
    }
}

/// A deterministic fault schedule for one protocol run.
///
/// Construct with builder calls; [`FaultPlan::none`] (or a default plan)
/// injects nothing and is guaranteed zero-cost: a network handed a no-op
/// plan stores nothing and takes the exact code paths of a fault-free run.
///
/// ```
/// use emst_radio::FaultPlan;
/// let plan = FaultPlan::none()
///     .drop_probability(0.05)
///     .seed(42)
///     .retries(4)
///     .crash_at(7, 100);
/// assert!(!plan.is_noop());
/// assert!(!plan.alive(7, 100));
/// assert!(plan.alive(7, 99));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    drop_p: f64,
    seed: u64,
    /// Cached domain-separated coin stream seed.
    stream: u64,
    max_retries: u32,
    /// `(node, round)` — node crashes at the start of `round`.
    crash: Vec<(usize, u64)>,
    /// `(node, from, to)` — node sleeps during rounds `[from, to)`.
    sleep: Vec<(usize, u64, u64)>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no drops, no crashes, no sleep.
    pub fn none() -> Self {
        FaultPlan {
            drop_p: 0.0,
            seed: 0,
            stream: fault_stream_seed(0),
            max_retries: 3,
            crash: Vec::new(),
            sleep: Vec::new(),
        }
    }

    /// Sets the per-(sender, receiver, round) message-drop probability.
    pub fn drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability {p} ∉ [0,1]");
        self.drop_p = p;
        self
    }

    /// Sets the coin-stream seed (domain-mixed internally).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.stream = fault_stream_seed(seed);
        self
    }

    /// Sets the retry budget: a message is retransmitted at most this many
    /// times beyond the first attempt before being abandoned.
    pub fn retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Crashes `node` permanently at the start of `round`.
    pub fn crash_at(mut self, node: usize, round: u64) -> Self {
        self.crash.push((node, round));
        self
    }

    /// Puts `node` to sleep during rounds `[from, to)`.
    pub fn sleep_between(mut self, node: usize, from: u64, to: u64) -> Self {
        assert!(from < to, "empty sleep window [{from}, {to})");
        self.sleep.push((node, from, to));
        self
    }

    /// True when the plan injects nothing (and may be elided entirely).
    pub fn is_noop(&self) -> bool {
        self.drop_p == 0.0 && self.crash.is_empty() && self.sleep.is_empty()
    }

    /// The configured drop probability.
    #[inline]
    pub fn drop_p(&self) -> f64 {
        self.drop_p
    }

    /// The configured retry budget.
    #[inline]
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// The user-facing seed.
    #[inline]
    pub fn coin_seed(&self) -> u64 {
        self.seed
    }

    /// The crash schedule: `(node, round)` pairs in insertion order.
    #[inline]
    pub fn crashes(&self) -> &[(usize, u64)] {
        &self.crash
    }

    /// The sleep schedule: `(node, from, to)` windows in insertion order.
    #[inline]
    pub fn sleeps(&self) -> &[(usize, u64, u64)] {
        &self.sleep
    }

    /// Number of discrete fault entries in the plan: one per crash, one
    /// per sleep window, plus one when a drop probability is set. The
    /// chaos shrinker minimises this count.
    pub fn entry_count(&self) -> usize {
        self.crash.len() + self.sleep.len() + usize::from(self.drop_p > 0.0)
    }

    /// Renders the plan as a copy-pastable builder expression — the chaos
    /// harness prints minimised failing plans in this form so a reproducer
    /// can be dropped straight into a test:
    ///
    /// ```
    /// use emst_radio::FaultPlan;
    /// let plan = FaultPlan::none().seed(7).drop_probability(0.2).crash_at(3, 9);
    /// assert_eq!(
    ///     plan.to_source(),
    ///     "FaultPlan::none().seed(7).retries(3).drop_probability(0.2).crash_at(3, 9)"
    /// );
    /// ```
    ///
    /// Float formatting uses `{:?}` (shortest round-tripping form), so the
    /// rebuilt plan draws bit-identical coins.
    pub fn to_source(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "FaultPlan::none().seed({}).retries({})",
            self.seed, self.max_retries
        );
        if self.drop_p > 0.0 {
            write!(s, ".drop_probability({:?})", self.drop_p).unwrap();
        }
        for &(node, round) in &self.crash {
            write!(s, ".crash_at({node}, {round})").unwrap();
        }
        for &(node, from, to) in &self.sleep {
            write!(s, ".sleep_between({node}, {from}, {to})").unwrap();
        }
        s
    }

    /// Whether `node` has not crashed by `round`.
    #[inline]
    pub fn alive(&self, node: usize, round: u64) -> bool {
        !self.crash.iter().any(|&(u, r)| u == node && round >= r)
    }

    /// Whether `node` is alive and not sleeping in `round`.
    #[inline]
    pub fn awake(&self, node: usize, round: u64) -> bool {
        self.alive(node, round)
            && !self
                .sleep
                .iter()
                .any(|&(u, from, to)| u == node && (from..to).contains(&round))
    }

    /// The stateless drop coin for delivery `(src → dst)` in `round`:
    /// `true` means the message is lost. Independent of call order and of
    /// every other RNG stream in the system.
    #[inline]
    pub fn drop_coin(&self, round: u64, src: usize, dst: usize) -> bool {
        if self.drop_p <= 0.0 {
            return false;
        }
        if self.drop_p >= 1.0 {
            return true;
        }
        let mut h = self.stream;
        h = mix64(h ^ round);
        h = mix64(h ^ (src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        h = mix64(h ^ (dst as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.drop_p
    }

    /// Whether a transmission by a live, awake `src` in `round` reaches
    /// `dst`: the receiver must be awake and the drop coin must pass.
    #[inline]
    pub fn delivers(&self, round: u64, src: usize, dst: usize) -> bool {
        self.awake(dst, round) && !self.drop_coin(round, src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_plan_is_noop() {
        assert!(FaultPlan::none().is_noop());
        assert!(FaultPlan::none().seed(99).retries(7).is_noop());
        assert!(!FaultPlan::none().drop_probability(0.01).is_noop());
        assert!(!FaultPlan::none().crash_at(0, 5).is_noop());
        assert!(!FaultPlan::none().sleep_between(0, 2, 4).is_noop());
    }

    #[test]
    fn crash_and_sleep_schedules() {
        let plan = FaultPlan::none().crash_at(3, 10).sleep_between(5, 2, 6);
        assert!(plan.alive(3, 9));
        assert!(!plan.alive(3, 10));
        assert!(!plan.alive(3, 1000));
        assert!(plan.awake(5, 1));
        assert!(!plan.awake(5, 2));
        assert!(!plan.awake(5, 5));
        assert!(plan.awake(5, 6));
        // Crashed implies not awake.
        assert!(!plan.awake(3, 50));
    }

    #[test]
    fn drop_coin_is_stateless_and_seed_sensitive() {
        let a = FaultPlan::none().drop_probability(0.5).seed(1);
        // Same arguments, same coin, however many times it is asked.
        for round in 0..50u64 {
            for (s, d) in [(0usize, 1usize), (3, 7)] {
                assert_eq!(a.drop_coin(round, s, d), a.drop_coin(round, s, d));
            }
        }
        // Direction matters (src→dst vs dst→src are distinct links).
        let diff = (0..200u64)
            .filter(|&r| a.drop_coin(r, 2, 9) != a.drop_coin(r, 9, 2))
            .count();
        assert!(diff > 0, "link coins must be directional");
        // Different seeds give different streams.
        let b = FaultPlan::none().drop_probability(0.5).seed(2);
        let differs = (0..200u64)
            .filter(|&r| a.drop_coin(r, 0, 1) != b.drop_coin(r, 0, 1))
            .count();
        assert!(differs > 40, "seeds must decorrelate streams ({differs})");
    }

    #[test]
    fn drop_coin_rate_matches_probability() {
        let plan = FaultPlan::none().drop_probability(0.2).seed(77);
        let trials = 20_000u64;
        let drops = (0..trials)
            .filter(|&r| plan.drop_coin(r, (r % 13) as usize, (r % 17) as usize))
            .count();
        let rate = drops as f64 / trials as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed rate {rate}");
        assert!(!FaultPlan::none().drop_coin(0, 0, 1), "p=0 never drops");
        let always = FaultPlan::none().drop_probability(1.0);
        assert!(always.drop_coin(0, 0, 1), "p=1 always drops");
    }

    #[test]
    fn fault_and_backoff_streams_are_domain_separated() {
        // Same user seed must yield unrelated stream seeds…
        for seed in [0u64, 1, 42, 0x5EED_3AC1, u64::MAX] {
            assert_ne!(fault_stream_seed(seed), backoff_stream_seed(seed));
        }
        // …and the derived bit sequences must be uncorrelated, not merely
        // offset: compare the low bits of successive mixes of each stream.
        let seed = 0x5EED_3AC1u64;
        let (mut f, mut b) = (fault_stream_seed(seed), backoff_stream_seed(seed));
        let mut agree = 0u32;
        for _ in 0..256 {
            f = mix64(f);
            b = mix64(b);
            if (f & 1) == (b & 1) {
                agree += 1;
            }
        }
        assert!(
            (64..=192).contains(&agree),
            "streams correlate: {agree}/256 bit agreements"
        );
    }

    #[test]
    fn fault_stats_merge_and_note() {
        let mut s = FaultStats::default();
        assert!(s.is_clean());
        s.note(FaultKind::Drop);
        s.note(FaultKind::Retry);
        s.note(FaultKind::Retry);
        s.note(FaultKind::Timeout);
        let mut t = FaultStats::default();
        t.merge(&s);
        t.merge(&s);
        assert_eq!(t.drops, 2);
        assert_eq!(t.retries, 4);
        assert_eq!(t.timeouts, 2);
        assert!(!t.is_clean());
    }

    #[test]
    fn fault_kind_labels() {
        assert_eq!(FaultKind::Drop.label(), "drop");
        assert_eq!(FaultKind::Retry.label(), "retry");
        assert_eq!(FaultKind::Timeout.label(), "timeout");
    }

    #[test]
    #[should_panic(expected = "∉ [0,1]")]
    fn rejects_bad_probability() {
        let _ = FaultPlan::none().drop_probability(1.5);
    }

    #[test]
    fn schedules_are_observable_and_counted() {
        let plan = FaultPlan::none()
            .drop_probability(0.1)
            .crash_at(3, 10)
            .crash_at(8, 2)
            .sleep_between(5, 2, 6);
        assert_eq!(plan.crashes(), &[(3, 10), (8, 2)]);
        assert_eq!(plan.sleeps(), &[(5, 2, 6)]);
        assert_eq!(plan.entry_count(), 4);
        assert_eq!(FaultPlan::none().entry_count(), 0);
        assert_eq!(FaultPlan::none().retries(9).entry_count(), 0);
    }

    #[test]
    fn to_source_round_trips_bitwise() {
        // The printed builder expression, re-evaluated, must equal the
        // plan — including the exact drop-probability bits, so the
        // reproducer draws the same coin stream.
        let plan = FaultPlan::none()
            .seed(0xC0FFEE)
            .retries(5)
            .drop_probability(0.07 + 0.13) // a value with a long decimal tail
            .crash_at(1, 4)
            .sleep_between(2, 3, 9);
        let rebuilt = FaultPlan::none()
            .seed(0xC0FFEE)
            .retries(5)
            .drop_probability(0.07 + 0.13)
            .crash_at(1, 4)
            .sleep_between(2, 3, 9);
        assert_eq!(plan, rebuilt);
        let src = plan.to_source();
        assert!(src.starts_with("FaultPlan::none().seed(12648430).retries(5)"));
        assert!(src.contains(".crash_at(1, 4)"));
        assert!(src.contains(".sleep_between(2, 3, 9)"));
        // The shortest round-trip form of 0.07+0.13 re-parses to the same
        // bits.
        let printed = format!("{:?}", 0.07f64 + 0.13f64);
        let reparsed: f64 = printed.parse().unwrap();
        assert_eq!(reparsed.to_bits(), (0.07f64 + 0.13f64).to_bits());
    }
}
