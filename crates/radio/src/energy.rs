//! Energy accounting.
//!
//! The paper's headline metric is the **energy complexity** `Σᵢ wᵢ` where
//! `wᵢ` is the weight (radiated energy) of the edge carrying the i-th
//! message (§II). The [`EnergyLedger`] tracks that sum exactly, broken down
//! by message kind so experiments can attribute energy to protocol stages
//! (initiate vs test vs report vs announce, …).

use std::fmt;

/// Message count and accumulated energy for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Tally {
    /// Number of transmissions.
    pub messages: u64,
    /// Total radiated energy.
    pub energy: f64,
}

impl Tally {
    fn add(&mut self, energy: f64) {
        self.messages += 1;
        self.energy += energy;
    }

    fn merge(&mut self, other: &Tally) {
        self.messages += other.messages;
        self.energy += other.energy;
    }
}

/// Accumulates messages and energy, per message kind and in total.
///
/// Kinds are `&'static str` labels chosen by the protocols
/// (`"ghs/initiate"`, `"nnt/request"`, …). The per-kind table is a small
/// `Vec` kept sorted by label, so reports stay deterministic while the
/// per-message hot path is a memoized index check instead of a tree walk
/// — a run only ever touches a dozen kinds but charges millions of
/// messages, and protocols charge long runs of the same kind.
#[derive(Debug, Clone, Default)]
pub struct EnergyLedger {
    total: Tally,
    /// `(kind, tally)` pairs sorted by kind label.
    by_kind: Vec<(&'static str, Tally)>,
    /// Index of the most recently charged kind (perf memo only; validated
    /// by label comparison before use).
    last: usize,
    /// Reception cost (extended model; zero under the paper's §II model).
    rx: Tally,
    /// Idle/listen cost (extended model; zero under the paper's §II model).
    idle: Tally,
}

impl EnergyLedger {
    /// Fresh empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one transmission of the given kind and energy.
    pub fn charge(&mut self, kind: &'static str, energy: f64) {
        debug_assert!(
            energy.is_finite() && energy >= 0.0,
            "bad energy charge {energy} for kind {kind}"
        );
        self.total.add(energy);
        if let Some(entry) = self.by_kind.get_mut(self.last) {
            if entry.0 == kind {
                entry.1.add(energy);
                return;
            }
        }
        let idx = self.kind_index(kind);
        self.by_kind[idx].1.add(energy);
        self.last = idx;
    }

    /// Index of `kind` in the sorted table, inserting a zero tally if absent.
    fn kind_index(&mut self, kind: &'static str) -> usize {
        match self.by_kind.binary_search_by(|e| e.0.cmp(kind)) {
            Ok(i) => i,
            Err(i) => {
                self.by_kind.insert(i, (kind, Tally::default()));
                i
            }
        }
    }

    /// Total *radiated* (transmit) energy over all messages so far — the
    /// paper's energy-complexity metric.
    #[inline]
    pub fn total_energy(&self) -> f64 {
        self.total.energy
    }

    /// Records `count` receptions at `energy_each` per reception (the
    /// extended model of §VIII; the paper's model has zero rx cost).
    pub fn charge_rx(&mut self, count: u64, energy_each: f64) {
        debug_assert!(energy_each >= 0.0 && energy_each.is_finite());
        self.rx.messages += count;
        self.rx.energy += count as f64 * energy_each;
    }

    /// Records idle/listen energy (extended model).
    pub fn charge_idle(&mut self, energy: f64) {
        debug_assert!(energy >= 0.0 && energy.is_finite());
        self.idle.messages += 1;
        self.idle.energy += energy;
    }

    /// Total reception energy (0 under the paper's model).
    #[inline]
    pub fn rx_energy(&self) -> f64 {
        self.rx.energy
    }

    /// Number of receptions recorded.
    #[inline]
    pub fn rx_count(&self) -> u64 {
        self.rx.messages
    }

    /// Total idle/listen energy (0 under the paper's model).
    #[inline]
    pub fn idle_energy(&self) -> f64 {
        self.idle.energy
    }

    /// Whole-radio energy: transmit + receive + idle.
    #[inline]
    pub fn full_energy(&self) -> f64 {
        self.total.energy + self.rx.energy + self.idle.energy
    }

    /// Total number of transmissions so far.
    #[inline]
    pub fn total_messages(&self) -> u64 {
        self.total.messages
    }

    /// Tally for one message kind (zero tally if never charged).
    pub fn kind(&self, kind: &str) -> Tally {
        match self.by_kind.binary_search_by(|e| e.0.cmp(kind)) {
            Ok(i) => self.by_kind[i].1,
            Err(_) => Tally::default(),
        }
    }

    /// Iterates `(kind, tally)` in deterministic (sorted) order.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, &Tally)> {
        self.by_kind.iter().map(|(k, v)| (*k, v))
    }

    /// Folds another ledger into this one (used when a protocol composes
    /// sub-protocols that ran on separate network handles).
    pub fn merge(&mut self, other: &EnergyLedger) {
        self.total.merge(&other.total);
        self.rx.merge(&other.rx);
        self.idle.merge(&other.idle);
        for &(k, ref v) in &other.by_kind {
            let idx = self.kind_index(k);
            self.by_kind[idx].1.merge(v);
        }
    }

    /// Energy attributed to kinds whose label starts with `prefix` —
    /// protocols namespace their kinds (`"ghs/…"`, `"nnt/…"`).
    pub fn energy_with_prefix(&self, prefix: &str) -> f64 {
        self.by_kind
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, t)| t.energy)
            .sum()
    }

    /// Messages attributed to kinds whose label starts with `prefix`.
    pub fn messages_with_prefix(&self, prefix: &str) -> u64 {
        self.by_kind
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, t)| t.messages)
            .sum()
    }
}

impl fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "total: {} msgs, {:.6} energy",
            self.total.messages, self.total.energy
        )?;
        for (k, t) in &self.by_kind {
            writeln!(
                f,
                "  {k:<24} {:>10} msgs  {:>12.6} energy",
                t.messages, t.energy
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut l = EnergyLedger::new();
        l.charge("a", 0.25);
        l.charge("a", 0.25);
        l.charge("b", 1.0);
        assert_eq!(l.total_messages(), 3);
        assert!((l.total_energy() - 1.5).abs() < 1e-15);
        assert_eq!(l.kind("a").messages, 2);
        assert!((l.kind("a").energy - 0.5).abs() < 1e-15);
        assert_eq!(l.kind("missing"), Tally::default());
    }

    #[test]
    fn merge_combines_ledgers() {
        let mut a = EnergyLedger::new();
        a.charge("x", 1.0);
        let mut b = EnergyLedger::new();
        b.charge("x", 2.0);
        b.charge("y", 3.0);
        a.merge(&b);
        assert_eq!(a.total_messages(), 3);
        assert!((a.total_energy() - 6.0).abs() < 1e-12);
        assert_eq!(a.kind("x").messages, 2);
        assert!((a.kind("y").energy - 3.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_queries() {
        let mut l = EnergyLedger::new();
        l.charge("ghs/initiate", 1.0);
        l.charge("ghs/report", 2.0);
        l.charge("nnt/request", 4.0);
        assert!((l.energy_with_prefix("ghs/") - 3.0).abs() < 1e-12);
        assert_eq!(l.messages_with_prefix("ghs/"), 2);
        assert!((l.energy_with_prefix("nnt/") - 4.0).abs() < 1e-12);
        assert_eq!(l.energy_with_prefix("zzz/"), 0.0);
    }

    #[test]
    fn kinds_iterate_sorted() {
        let mut l = EnergyLedger::new();
        l.charge("b", 1.0);
        l.charge("a", 1.0);
        l.charge("c", 1.0);
        let order: Vec<&str> = l.kinds().map(|(k, _)| k).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn display_mentions_kinds() {
        let mut l = EnergyLedger::new();
        l.charge("hello", 0.5);
        let s = format!("{l}");
        assert!(s.contains("hello"));
        assert!(s.contains("total: 1 msgs"));
    }

    #[test]
    fn zero_energy_message_is_counted() {
        // A message over distance 0 still counts toward message complexity.
        let mut l = EnergyLedger::new();
        l.charge("k", 0.0);
        assert_eq!(l.total_messages(), 1);
        assert_eq!(l.total_energy(), 0.0);
    }
}
