//! Slotted-ALOHA contention layer — the interference model the paper
//! defers to future work (§VIII).
//!
//! The paper assumes collision-free delivery and notes that combining its
//! algorithms with the contention-resolution protocol of Khan et al. \[15\]
//! costs an `O(n log n)` factor in *time* and only a constant factor in
//! *energy* under the Radio Broadcast Network (RBN) interference model.
//! This module lets experiments measure that trade-off concretely.
//!
//! Model: one logical protocol round expands into MAC **slots**. Every
//! pending transmission attempts each slot independently with probability
//! `p` (slotted ALOHA). Under RBN, a node `v` successfully receives a
//! transmission from `u` in a slot iff `u` transmits and **no other node
//! within interference range of `v`** transmits in the same slot. Each
//! attempt is charged full transmit energy (retries are why energy grows
//! by a constant factor); a broadcast completes once *every* node in its
//! target disk has received it, a unicast once its addressee has.
//!
//! The interference range of a transmission is its transmission radius
//! (for a unicast: the sender-receiver distance) times `range_factor`
//! (≥ 1; 1.0 is the pure protocol-model RBN).

use emst_geom::Point;

/// Contention configuration for [`crate::SyncEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionConfig {
    /// Per-slot transmission probability **cap** (slotted ALOHA). The
    /// effective per-transmission rate adapts downwards to
    /// `min(cap, 2/(1 + local contenders))` — an idealised carrier-sense
    /// load estimate that models adaptive backoff; without it a dense
    /// broadcast wave (hundreds of simultaneous transmitters, as in a
    /// flood) drives plain fixed-p ALOHA into its classic collapse.
    pub attempt_probability: f64,
    /// Interference range as a multiple of the transmission range.
    pub range_factor: f64,
    /// Hard cap on slots per logical round (guards against livelock in
    /// pathological configurations; hitting it surfaces a typed
    /// [`ContentionOverflow`] error rather than silently dropping
    /// messages, so one pathological trial degrades instead of aborting a
    /// whole parallel sweep).
    pub max_slots_per_round: u32,
    /// RNG seed for the backoff coin flips.
    pub seed: u64,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig {
            attempt_probability: 0.25,
            range_factor: 1.0,
            max_slots_per_round: 100_000,
            seed: 0x5EED_3AC1,
        }
    }
}

/// The contention layer failed to resolve a logical round within
/// [`ContentionConfig::max_slots_per_round`] MAC slots.
///
/// Everything charged up to the overflow stays charged (attempts radiate
/// energy whether or not the round completes); the error reports how much
/// was still in flight so callers can degrade the trial gracefully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentionOverflow {
    /// Transmissions whose receiver set was still non-empty.
    pub unresolved: usize,
    /// The slot cap that was hit.
    pub slots: u32,
}

impl std::fmt::Display for ContentionOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "contention livelock: {} transmissions unresolved after {} slots",
            self.unresolved, self.slots
        )
    }
}

impl std::error::Error for ContentionOverflow {}

/// xorshift64* — a tiny deterministic RNG so the contention layer does not
/// pull `rand` into `emst-radio`'s public dependency set.
#[derive(Debug, Clone)]
pub(crate) struct SlotRng(u64);

impl SlotRng {
    pub(crate) fn new(seed: u64) -> Self {
        SlotRng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, 1).
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub(crate) fn coin(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// One in-flight transmission during contention resolution.
#[derive(Debug, Clone)]
pub(crate) struct PendingTx {
    /// Sender.
    pub from: usize,
    /// Transmission radius (unicast: exact distance to the addressee).
    pub radius: f64,
    /// Indices (into the engine's outbox bookkeeping) of receivers that
    /// still need this message.
    pub waiting: Vec<usize>,
    /// Energy charged per attempt.
    pub energy_per_attempt: f64,
    /// Message kind (for ledger attribution of retries).
    pub kind: &'static str,
}

/// Resolves one logical round of transmissions under slotted ALOHA + RBN.
///
/// `positions` gives node coordinates; `deliver(tx_index, receiver)` is
/// invoked exactly once per (transmission, receiver) on success;
/// `charge(tx_index)` once per attempt. Returns the number of slots used,
/// or [`ContentionOverflow`] if the round did not resolve within
/// [`ContentionConfig::max_slots_per_round`] slots (everything delivered
/// and charged before the overflow stands).
pub(crate) fn resolve_round<FD, FC>(
    cfg: &ContentionConfig,
    rng: &mut SlotRng,
    positions: &[Point],
    pending: &mut [PendingTx],
    mut deliver: FD,
    mut charge: FC,
) -> Result<u32, ContentionOverflow>
where
    FD: FnMut(usize, usize),
    FC: FnMut(usize),
{
    let mut slots = 0u32;
    // Adaptive per-transmission attempt rates, refreshed periodically as
    // the pending set drains: p_i = min(cap, 2/(1 + local contenders)),
    // where j contends with i when j's interference disk can cover one of
    // i's receivers (dist(sender_i, sender_j) ≤ r_i + r_j·range_factor).
    let mut rates: Vec<f64> = vec![cfg.attempt_probability; pending.len()];
    let mut refresh = 0u32;
    while pending.iter().any(|t| !t.waiting.is_empty()) {
        if slots >= refresh {
            for i in 0..pending.len() {
                if pending[i].waiting.is_empty() {
                    continue;
                }
                let pi = positions[pending[i].from];
                let mut contenders = 0usize;
                for (j, other) in pending.iter().enumerate() {
                    if j != i
                        && !other.waiting.is_empty()
                        && pi.dist(&positions[other.from])
                            <= pending[i].radius + other.radius * cfg.range_factor
                    {
                        contenders += 1;
                    }
                }
                rates[i] = cfg.attempt_probability.min(2.0 / (1.0 + contenders as f64));
            }
            refresh = slots + 16;
        }
        slots += 1;
        if slots > cfg.max_slots_per_round {
            return Err(ContentionOverflow {
                unresolved: pending.iter().filter(|t| !t.waiting.is_empty()).count(),
                slots: cfg.max_slots_per_round,
            });
        }
        // Decide who transmits this slot.
        let active: Vec<usize> = (0..pending.len())
            .filter(|&i| !pending[i].waiting.is_empty() && rng.coin(rates[i]))
            .collect();
        if active.is_empty() {
            continue;
        }
        for &i in &active {
            charge(i);
        }
        // Successful receptions: v receives from tx i iff v is within i's
        // radius and no OTHER active transmission interferes at v.
        for &i in &active {
            let tx_pos = positions[pending[i].from];
            let mut delivered_local: Vec<usize> = Vec::new();
            for (wi, &v) in pending[i].waiting.iter().enumerate() {
                let in_range = tx_pos.dist(&positions[v]) <= pending[i].radius * (1.0 + 1e-12);
                if !in_range {
                    // Defensive: waiting sets are built from range queries,
                    // so this should not occur.
                    continue;
                }
                let jammed = active.iter().any(|&j| {
                    j != i && {
                        let other = &pending[j];
                        positions[other.from].dist(&positions[v])
                            <= other.radius * cfg.range_factor * (1.0 + 1e-12)
                    }
                });
                if !jammed {
                    delivered_local.push(wi);
                }
            }
            // Remove delivered receivers (descending to keep indices valid).
            for &wi in delivered_local.iter().rev() {
                let v = pending[i].waiting.swap_remove(wi);
                deliver(i, v);
            }
        }
    }
    Ok(slots)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn single_transmission_needs_expected_attempts() {
        let positions = pts(&[(0.1, 0.5), (0.2, 0.5)]);
        let cfg = ContentionConfig {
            attempt_probability: 0.5,
            ..Default::default()
        };
        let mut rng = SlotRng::new(7);
        let mut pending = vec![PendingTx {
            from: 0,
            radius: 0.15,
            waiting: vec![1],
            energy_per_attempt: 0.15 * 0.15,
            kind: "t",
        }];
        let mut delivered = Vec::new();
        let mut attempts = 0;
        let slots = resolve_round(
            &cfg,
            &mut rng,
            &positions,
            &mut pending,
            |i, v| delivered.push((i, v)),
            |_| attempts += 1,
        )
        .unwrap();
        assert_eq!(delivered, vec![(0, 1)]);
        assert!(attempts >= 1);
        assert!(slots >= attempts as u32);
    }

    #[test]
    fn two_nearby_transmitters_collide_until_separated_in_time() {
        // Nodes 0 and 1 both broadcast to node 2 between them: any slot in
        // which both transmit delivers nothing; eventually one transmits
        // alone and wins.
        let positions = pts(&[(0.4, 0.5), (0.6, 0.5), (0.5, 0.5)]);
        let cfg = ContentionConfig::default();
        let mut rng = SlotRng::new(99);
        let mut pending = vec![
            PendingTx {
                from: 0,
                radius: 0.15,
                waiting: vec![2],
                energy_per_attempt: 1.0,
                kind: "a",
            },
            PendingTx {
                from: 1,
                radius: 0.15,
                waiting: vec![2],
                energy_per_attempt: 1.0,
                kind: "b",
            },
        ];
        let mut delivered = Vec::new();
        let mut attempts = 0usize;
        resolve_round(
            &cfg,
            &mut rng,
            &positions,
            &mut pending,
            |i, v| delivered.push((i, v)),
            |_| attempts += 1,
        )
        .unwrap();
        delivered.sort_unstable();
        assert_eq!(delivered, vec![(0, 2), (1, 2)]);
        // Collisions force strictly more attempts than deliveries whp with
        // this seed; at minimum each tx attempted once.
        assert!(attempts >= 2);
    }

    #[test]
    fn distant_transmitters_do_not_interfere() {
        // Far-apart pairs can share a slot — no cross-jamming.
        let positions = pts(&[(0.1, 0.1), (0.15, 0.1), (0.9, 0.9), (0.85, 0.9)]);
        let cfg = ContentionConfig {
            attempt_probability: 1.0, // always transmit
            ..Default::default()
        };
        let mut rng = SlotRng::new(3);
        let mut pending = vec![
            PendingTx {
                from: 0,
                radius: 0.1,
                waiting: vec![1],
                energy_per_attempt: 0.01,
                kind: "a",
            },
            PendingTx {
                from: 2,
                radius: 0.1,
                waiting: vec![3],
                energy_per_attempt: 0.01,
                kind: "b",
            },
        ];
        let mut attempts = 0usize;
        let slots = resolve_round(
            &cfg,
            &mut rng,
            &positions,
            &mut pending,
            |_, _| {},
            |_| attempts += 1,
        )
        .unwrap();
        assert_eq!(slots, 1, "both should deliver in the first slot");
        assert_eq!(attempts, 2);
    }

    #[test]
    fn colocated_always_on_transmitters_livelock_is_an_error() {
        // p = 1 with two mutually interfering transmissions can never
        // resolve — the guard must surface a typed error (not a panic)
        // instead of spinning forever.
        let positions = pts(&[(0.4, 0.5), (0.6, 0.5), (0.5, 0.5)]);
        let cfg = ContentionConfig {
            attempt_probability: 1.0,
            max_slots_per_round: 50,
            ..Default::default()
        };
        let mut rng = SlotRng::new(1);
        let mut pending = vec![
            PendingTx {
                from: 0,
                radius: 0.2,
                waiting: vec![2],
                energy_per_attempt: 1.0,
                kind: "a",
            },
            PendingTx {
                from: 1,
                radius: 0.2,
                waiting: vec![2],
                energy_per_attempt: 1.0,
                kind: "b",
            },
        ];
        let mut attempts = 0usize;
        let err = resolve_round(
            &cfg,
            &mut rng,
            &positions,
            &mut pending,
            |_, _| {},
            |_| attempts += 1,
        )
        .unwrap_err();
        assert_eq!(err.unresolved, 2);
        assert_eq!(err.slots, 50);
        assert!(format!("{err}").contains("contention livelock"));
        // Everything attempted before the overflow was still charged.
        assert_eq!(attempts, 100, "p=1: both transmit every slot");
    }

    #[test]
    fn slot_rng_is_deterministic_and_uniformish() {
        let mut a = SlotRng::new(42);
        let mut b = SlotRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SlotRng::new(7);
        let mean: f64 = (0..10_000).map(|_| r.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
