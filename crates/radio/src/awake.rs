//! The awake-complexity layer: per-node sleep/wake scheduling.
//!
//! The paper's §VIII defers non-transmit energy; our [`EnergyConfig`]
//! carries the deferred rx/idle costs, but until this layer a node could
//! never *stop* paying them — every node was implicitly awake for every
//! round, so awake time was not a measurable quantity. Augustine, Moses &
//! Pandurangan ("Awake Complexity of Distributed MST", PAPERS.md) make
//! the number of rounds a node spends awake the headline measure; an
//! [`AwakeSchedule`] turns it into a first-class metric here.
//!
//! Semantics — sleep is *scheduling*, not a fault:
//!
//! * a sleeping node pays no idle energy, hears no broadcast, and cannot
//!   transmit;
//! * unlike a crash it retains all protocol state and wakes exactly when
//!   its window ends — protocols schedule windows they can prove silent
//!   (all charging in a stage happens at the stage-start round, so a
//!   window starting one round later never misses a delivery);
//! * unlike a [`crate::FaultPlan`] sleep it is cooperative: the protocol
//!   itself decides the windows, so there is nothing to retry or heal.
//!
//! An installed schedule with no sleep windows is the *all-awake* case:
//! every charging path behaves bit-identically to no schedule at all
//! (pinned by golden-fixture tests); only the awake-round counters become
//! observable. No schedule installed means awake rounds are not tracked
//! and every read-out stays `None` — the same elision contract as no-op
//! fault plans and all-live memberships.
//!
//! ```
//! use emst_radio::AwakeSchedule;
//! let mut s = AwakeSchedule::new(3);
//! s.sleep(1, 4, 9);            // node 1 sleeps rounds 4..9
//! assert!(s.is_awake(1, 3));
//! assert!(!s.is_awake(1, 4));
//! assert!(s.is_awake(1, 9));   // half-open: awake again at 9
//! s.on_advance(0, 10, |_| true);
//! assert_eq!(s.awake_rounds(0), 10);
//! assert_eq!(s.awake_rounds(1), 5);
//! assert_eq!(s.total_awake_rounds(), 25);
//! assert_eq!(s.max_awake_rounds(), 10);
//! ```
//!
//! [`EnergyConfig`]: crate::EnergyConfig

/// Aggregate awake-round read-outs of a run, reported next to energy in
/// `RunStats` when a schedule is installed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AwakeStats {
    /// Total awake node-rounds summed over every node.
    pub total: u64,
    /// The largest per-node awake-round count — the awake complexity of
    /// the run in the Augustine–Moses–Pandurangan sense.
    pub max_per_node: u64,
}

/// Per-node pending sleep window, absolute rounds, half-open `[from, to)`.
/// `from == to` encodes "no window".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Window {
    from: u64,
    to: u64,
}

impl Window {
    #[inline]
    fn is_empty(&self) -> bool {
        self.from >= self.to
    }

    /// Rounds of `[lo, hi)` covered by this window.
    #[inline]
    fn overlap(&self, lo: u64, hi: u64) -> u64 {
        let a = self.from.max(lo);
        let b = self.to.min(hi);
        b.saturating_sub(a)
    }
}

/// Per-node awake/asleep state with protocol-driven sleep windows and
/// awake-round accounting.
///
/// Each node holds at most one pending window at a time; protocols
/// schedule one window per stage and the clock advance consumes it, so a
/// later [`AwakeSchedule::sleep`] simply replaces the (spent) previous
/// window. Accounting happens in [`AwakeSchedule::on_advance`], which the
/// network calls for every clock movement — protocols cannot bypass it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AwakeSchedule {
    windows: Vec<Window>,
    awake_rounds: Vec<u64>,
    /// Earliest window start / latest window end over all nodes — a
    /// conservative summary so the hot charging paths can answer "is
    /// anyone possibly asleep at round r?" in O(1).
    span: Window,
}

impl AwakeSchedule {
    /// An all-awake schedule over `n` nodes (no sleep windows).
    pub fn new(n: usize) -> Self {
        AwakeSchedule {
            windows: vec![Window::default(); n],
            awake_rounds: vec![0; n],
            span: Window::default(),
        }
    }

    /// Number of nodes covered.
    #[inline]
    pub fn n(&self) -> usize {
        self.windows.len()
    }

    /// Schedules node `u` to sleep rounds `[from, to)`, replacing any
    /// previous window. An empty range is a no-op (clears the window).
    pub fn sleep(&mut self, u: usize, from: u64, to: u64) {
        if from >= to {
            self.windows[u] = Window::default();
            return;
        }
        self.windows[u] = Window { from, to };
        if self.span.is_empty() {
            self.span = Window { from, to };
        } else {
            self.span.from = self.span.from.min(from);
            self.span.to = self.span.to.max(to);
        }
    }

    /// Schedules node `u` to sleep from `now` until round `to`
    /// (exclusive): the `sleep_until` transition.
    pub fn sleep_until(&mut self, u: usize, now: u64, to: u64) {
        self.sleep(u, now, to);
    }

    /// Wakes node `u` at `round`: truncates any pending window so the
    /// node is awake from `round` on.
    pub fn wake(&mut self, u: usize, round: u64) {
        let w = &mut self.windows[u];
        if !w.is_empty() && w.to > round {
            w.to = round;
            if w.is_empty() {
                *w = Window::default();
            }
        }
    }

    /// Whether node `u` is awake at `round`.
    #[inline]
    pub fn is_awake(&self, u: usize, round: u64) -> bool {
        let w = self.windows[u];
        w.is_empty() || round < w.from || round >= w.to
    }

    /// Whether *any* node might be asleep at `round` (conservative: may
    /// return true when every window at `round` belongs to another node,
    /// never false when someone is asleep). Lets all-awake charging paths
    /// skip per-node checks entirely.
    #[inline]
    pub fn any_asleep_at(&self, round: u64) -> bool {
        !self.span.is_empty() && round >= self.span.from && round < self.span.to
    }

    /// Accounts the clock advancing from `from` to `to` (half-open):
    /// every node for which `live(u)` holds accrues one awake round per
    /// round of the range outside its sleep window. Dead nodes accrue
    /// nothing — awake complexity is a property of participating nodes.
    /// Returns the total awake node-rounds accrued by this advance (what
    /// idle charging owes).
    pub fn on_advance(&mut self, from: u64, to: u64, live: impl Fn(usize) -> bool) -> u64 {
        if to <= from {
            return 0;
        }
        let k = to - from;
        let mut accrued = 0u64;
        if self.span.overlap(from, to) == 0 {
            // No window can intersect the range: all-awake fast path.
            for u in 0..self.windows.len() {
                if live(u) {
                    self.awake_rounds[u] += k;
                    accrued += k;
                }
            }
            return accrued;
        }
        for u in 0..self.windows.len() {
            if live(u) {
                let inc = k - self.windows[u].overlap(from, to);
                self.awake_rounds[u] += inc;
                accrued += inc;
            }
        }
        accrued
    }

    /// Awake node-rounds accrued by node `u` so far.
    #[inline]
    pub fn awake_rounds(&self, u: usize) -> u64 {
        self.awake_rounds[u]
    }

    /// Total awake node-rounds over all nodes.
    pub fn total_awake_rounds(&self) -> u64 {
        self.awake_rounds.iter().sum()
    }

    /// The largest per-node awake-round count.
    pub fn max_awake_rounds(&self) -> u64 {
        self.awake_rounds.iter().copied().max().unwrap_or(0)
    }

    /// The aggregate read-outs as one [`AwakeStats`].
    pub fn stats(&self) -> AwakeStats {
        AwakeStats {
            total: self.total_awake_rounds(),
            max_per_node: self.max_awake_rounds(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_awake_accrues_every_round() {
        let mut s = AwakeSchedule::new(4);
        s.on_advance(0, 7, |_| true);
        assert_eq!(s.total_awake_rounds(), 28);
        assert_eq!(s.max_awake_rounds(), 7);
        assert_eq!(s.stats().total, 28);
    }

    #[test]
    fn sleep_window_subtracts_exactly_its_overlap() {
        let mut s = AwakeSchedule::new(2);
        s.sleep(1, 3, 8);
        // Advance 0..5: node 1 sleeps rounds 3 and 4 of it.
        s.on_advance(0, 5, |_| true);
        assert_eq!(s.awake_rounds(0), 5);
        assert_eq!(s.awake_rounds(1), 3);
        // Advance 5..10: node 1 sleeps rounds 5,6,7.
        s.on_advance(5, 10, |_| true);
        assert_eq!(s.awake_rounds(0), 10);
        assert_eq!(s.awake_rounds(1), 5);
    }

    #[test]
    fn wake_truncates_pending_window() {
        let mut s = AwakeSchedule::new(1);
        s.sleep(0, 2, 10);
        s.wake(0, 5);
        assert!(!s.is_awake(0, 4));
        assert!(s.is_awake(0, 5));
        s.on_advance(0, 10, |_| true);
        assert_eq!(s.awake_rounds(0), 7);
    }

    #[test]
    fn dead_nodes_accrue_nothing() {
        let mut s = AwakeSchedule::new(3);
        s.on_advance(0, 4, |u| u != 1);
        assert_eq!(s.awake_rounds(0), 4);
        assert_eq!(s.awake_rounds(1), 0);
        assert_eq!(s.awake_rounds(2), 4);
        assert_eq!(s.total_awake_rounds(), 8);
    }

    #[test]
    fn empty_and_replaced_windows() {
        let mut s = AwakeSchedule::new(1);
        s.sleep(0, 5, 5); // empty: no-op
        assert!(s.is_awake(0, 5));
        s.sleep(0, 1, 3);
        s.sleep(0, 4, 6); // replaces
        assert!(s.is_awake(0, 2));
        assert!(!s.is_awake(0, 4));
    }

    #[test]
    fn any_asleep_is_conservative_but_sound() {
        let mut s = AwakeSchedule::new(2);
        assert!(!s.any_asleep_at(0));
        s.sleep(0, 4, 6);
        s.sleep(1, 8, 9);
        assert!(s.any_asleep_at(4));
        assert!(s.any_asleep_at(8));
        assert!(!s.any_asleep_at(3));
        assert!(!s.any_asleep_at(9));
    }
}
