//! Synchronous discrete-event engine for reactive per-node protocols.
//!
//! The engine executes the model of §II directly: time is a sequence of
//! rounds; in each round every node reads the messages delivered to it
//! (those sent in the previous round), updates its local state, and emits at
//! most a bounded number of transmissions, each charged to the energy
//! ledger at send time. Neighbour discovery and Co-NNT run on this engine
//! as genuine message-passing state machines; the GHS family uses
//! stage-orchestrated simulation (see `emst-core::ghs`) under the standard
//! synchroniser abstraction.

use crate::contention::{resolve_round, ContentionConfig, PendingTx, SlotRng};
use crate::network::RadioNet;
use emst_geom::Point;

/// A message delivered to a node, with the measured distance to the sender
/// (the RSSI abstraction: receivers can estimate the sender's distance).
#[derive(Debug, Clone)]
pub struct Delivery<M> {
    /// Sender node id.
    pub from: usize,
    /// Euclidean distance to the sender.
    pub dist: f64,
    /// Payload.
    pub msg: M,
}

/// A transmission requested by a node during its round callback.
#[derive(Debug, Clone)]
enum Outgoing<M> {
    Unicast {
        to: usize,
        kind: &'static str,
        msg: M,
    },
    Broadcast {
        radius: f64,
        kind: &'static str,
        msg: M,
    },
}

/// Per-round context handed to a node: identity, geometry it is entitled to
/// know, and the outbox.
pub struct Ctx<'c, M> {
    me: usize,
    pos: Point,
    n: usize,
    round: u64,
    outbox: &'c mut Vec<(usize, Outgoing<M>)>,
}

impl<'c, M> Ctx<'c, M> {
    /// This node's id.
    #[inline]
    pub fn me(&self) -> usize {
        self.me
    }

    /// This node's position. (Only coordinate-aware protocols such as
    /// Co-NNT may consult it — the GHS family must not, per §II; that
    /// discipline is by convention, enforced in code review of protocols.)
    #[inline]
    pub fn pos(&self) -> Point {
        self.pos
    }

    /// Network size `n`, which §VI assumes nodes know approximately.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current round number.
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Queues a unicast to `to`; delivered next round, energy `a·d^α`.
    pub fn unicast(&mut self, to: usize, kind: &'static str, msg: M) {
        self.outbox
            .push((self.me, Outgoing::Unicast { to, kind, msg }));
    }

    /// Queues a local broadcast at power `radius`; delivered next round to
    /// every node within `radius`, energy `a·radius^α` once.
    pub fn broadcast(&mut self, radius: f64, kind: &'static str, msg: M) {
        self.outbox
            .push((self.me, Outgoing::Broadcast { radius, kind, msg }));
    }
}

/// A reactive per-node protocol.
pub trait NodeProtocol {
    /// Message payload type.
    type Msg: Clone;

    /// Called once per round for every node, with the messages delivered
    /// this round (sent last round). `inbox` order is deterministic:
    /// ascending sender id, unicasts before broadcast receptions from the
    /// same round.
    fn on_round(&mut self, inbox: &[Delivery<Self::Msg>], ctx: &mut Ctx<'_, Self::Msg>);

    /// True when this node has terminated (it may still receive messages).
    fn done(&self) -> bool;
}

/// Error from [`SyncEngine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundLimitExceeded {
    /// The limit that was hit.
    pub max_rounds: u64,
}

impl std::fmt::Display for RoundLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "protocol did not quiesce within {} rounds",
            self.max_rounds
        )
    }
}

impl std::error::Error for RoundLimitExceeded {}

/// Synchronous executor: one protocol instance per node over a
/// [`RadioNet`].
pub struct SyncEngine<'a, P: NodeProtocol> {
    net: RadioNet<'a>,
    nodes: Vec<P>,
    inboxes: Vec<Vec<Delivery<P::Msg>>>,
    /// Reusable receiver buffer for broadcast fan-out — one allocation for
    /// the whole run instead of one per broadcast.
    rx_scratch: Vec<(usize, f64)>,
    contention: Option<(ContentionConfig, SlotRng)>,
    /// Logical protocol rounds executed. Equals the clock under
    /// collision-free delivery; under contention one logical round spans
    /// many clock rounds (MAC slots), and protocols are scheduled by the
    /// logical counter so their phase arithmetic is MAC-agnostic.
    logical_round: u64,
}

impl<'a, P: NodeProtocol> SyncEngine<'a, P> {
    /// Creates an engine; `nodes.len()` must equal the network size.
    pub fn new(net: RadioNet<'a>, nodes: Vec<P>) -> Self {
        assert_eq!(
            net.n(),
            nodes.len(),
            "one protocol instance per network node required"
        );
        let n = nodes.len();
        SyncEngine {
            net,
            nodes,
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            rx_scratch: Vec::new(),
            contention: None,
            logical_round: 0,
        }
    }

    /// Creates an engine whose transmissions contend under slotted ALOHA +
    /// RBN interference (§VIII) instead of the paper's collision-free
    /// assumption. Each logical round expands into MAC slots; every
    /// attempt radiates full transmit energy and the clock advances by the
    /// number of slots used.
    pub fn with_contention(net: RadioNet<'a>, nodes: Vec<P>, cfg: ContentionConfig) -> Self {
        let mut eng = SyncEngine::new(net, nodes);
        let rng = SlotRng::new(cfg.seed);
        eng.contention = Some((cfg, rng));
        eng
    }

    /// Executes one round. Returns `true` if any message was transmitted.
    pub fn step(&mut self) -> bool {
        let n = self.nodes.len();
        let round = self.logical_round;
        self.logical_round += 1;
        let mut outbox: Vec<(usize, Outgoing<P::Msg>)> = Vec::new();
        // Deliver: swap each inbox out, call the node, collect sends.
        for i in 0..n {
            let inbox = std::mem::take(&mut self.inboxes[i]);
            let mut ctx = Ctx {
                me: i,
                pos: self.net.pos(i),
                n,
                round,
                outbox: &mut outbox,
            };
            self.nodes[i].on_round(&inbox, &mut ctx);
        }
        let sent = !outbox.is_empty();
        if self.contention.is_some() {
            self.transmit_contended(outbox);
        } else {
            self.transmit_collision_free(outbox);
        }
        // Deterministic inbox order: by sender id (stable by arrival within
        // equal senders).
        for inbox in &mut self.inboxes {
            inbox.sort_by_key(|d| d.from);
        }
        sent
    }

    /// The paper's §II semantics: every transmission is delivered in one
    /// attempt; one logical round is one clock round.
    fn transmit_collision_free(&mut self, outbox: Vec<(usize, Outgoing<P::Msg>)>) {
        for (from, out) in outbox {
            match out {
                Outgoing::Unicast { to, kind, msg } => {
                    self.net.unicast(from, to, kind);
                    let dist = self.net.dist(from, to);
                    self.inboxes[to].push(Delivery { from, dist, msg });
                }
                Outgoing::Broadcast { radius, kind, msg } => {
                    self.net
                        .local_broadcast_into(from, radius, kind, &mut self.rx_scratch);
                    for &(to, dist) in &self.rx_scratch {
                        self.inboxes[to].push(Delivery {
                            from,
                            dist,
                            msg: msg.clone(),
                        });
                    }
                }
            }
        }
        self.net.tick_round();
    }

    /// §VIII semantics: the round's transmissions contend in MAC slots
    /// until every intended receiver has heard its message; retries are
    /// charged in full and the clock advances by the slot count.
    fn transmit_contended(&mut self, outbox: Vec<(usize, Outgoing<P::Msg>)>) {
        let positions = self.net.points();
        let loss = self.net.loss();
        let mut pending: Vec<PendingTx> = Vec::with_capacity(outbox.len());
        let mut payloads: Vec<P::Msg> = Vec::with_capacity(outbox.len());
        for (from, out) in outbox {
            match out {
                Outgoing::Unicast { to, kind, msg } => {
                    let d = positions[from].dist(&positions[to]);
                    pending.push(PendingTx {
                        from,
                        radius: d,
                        waiting: vec![to],
                        energy_per_attempt: loss.energy_for_distance(d),
                        kind,
                    });
                    payloads.push(msg);
                }
                Outgoing::Broadcast { radius, kind, msg } => {
                    self.net.neighbors_into(from, radius, &mut self.rx_scratch);
                    let waiting: Vec<usize> = self.rx_scratch.iter().map(|&(v, _)| v).collect();
                    pending.push(PendingTx {
                        from,
                        radius,
                        waiting,
                        energy_per_attempt: loss.energy_for_distance(radius),
                        kind,
                    });
                    payloads.push(msg);
                }
            }
        }
        // Transmissions with no in-range receiver still radiate once.
        let mut attempts: Vec<usize> = pending
            .iter()
            .enumerate()
            .filter(|(_, t)| t.waiting.is_empty())
            .map(|(i, _)| i)
            .collect();
        let froms: Vec<usize> = pending.iter().map(|t| t.from).collect();
        let kinds: Vec<&'static str> = pending.iter().map(|t| t.kind).collect();
        let radii: Vec<f64> = pending.iter().map(|t| t.radius).collect();
        let energies: Vec<f64> = pending.iter().map(|t| t.energy_per_attempt).collect();
        let mut delivered: Vec<(usize, usize)> = Vec::new();
        let (cfg, rng) = self.contention.as_mut().expect("contended path");
        let slots = resolve_round(
            cfg,
            rng,
            positions,
            &mut pending,
            |i, v| delivered.push((i, v)),
            |i| attempts.push(i),
        );
        for &i in &attempts {
            self.net
                .charge_attempt(kinds[i], froms[i], radii[i], energies[i]);
        }
        self.net.charge_receptions(delivered.len() as u64);
        for (i, v) in delivered {
            self.inboxes[v].push(Delivery {
                from: froms[i],
                dist: positions[froms[i]].dist(&positions[v]),
                msg: payloads[i].clone(),
            });
        }
        self.net.advance_rounds(slots.max(1) as u64);
    }

    /// Runs until quiescence — every node reports `done()` and no messages
    /// are in flight — or fails after `max_rounds`.
    pub fn run(&mut self, max_rounds: u64) -> Result<u64, RoundLimitExceeded> {
        let start = self.logical_round;
        loop {
            let elapsed = self.logical_round - start;
            if elapsed >= max_rounds {
                return Err(RoundLimitExceeded { max_rounds });
            }
            let sent = self.step();
            let pending = self.inboxes.iter().any(|b| !b.is_empty());
            if !sent && !pending && self.nodes.iter().all(|p| p.done()) {
                return Ok(self.logical_round - start);
            }
        }
    }

    /// The underlying network (ledger, clock, geometry).
    #[inline]
    pub fn net(&self) -> &RadioNet<'a> {
        &self.net
    }

    /// The protocol instances.
    #[inline]
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Consumes the engine, returning network and nodes.
    pub fn into_parts(self) -> (RadioNet<'a>, Vec<P>) {
        (self.net, self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_geom::Point;

    /// Toy protocol: node 0 floods a token by local broadcast; every node
    /// re-broadcasts the first time it hears it. Tests delivery, energy
    /// accounting, and quiescence.
    struct Flood {
        has_token: bool,
        announced: bool,
        radius: f64,
    }

    impl NodeProtocol for Flood {
        type Msg = ();

        fn on_round(&mut self, inbox: &[Delivery<()>], ctx: &mut Ctx<'_, ()>) {
            if !inbox.is_empty() {
                self.has_token = true;
            }
            if self.has_token && !self.announced {
                self.announced = true;
                ctx.broadcast(self.radius, "flood", ());
            }
        }

        fn done(&self) -> bool {
            self.announced
        }
    }

    fn flood_net(pts: &[Point], radius: f64) -> (u64, f64, usize) {
        let net = RadioNet::new(pts, radius);
        let nodes = (0..pts.len())
            .map(|i| Flood {
                has_token: i == 0,
                announced: false,
                radius,
            })
            .collect();
        let mut eng = SyncEngine::new(net, nodes);
        let rounds = eng.run(10_000).expect("flood must quiesce");
        let informed = eng.nodes().iter().filter(|f| f.has_token).count();
        (rounds, eng.net().ledger().total_energy(), informed)
    }

    #[test]
    fn flood_reaches_connected_line() {
        // 5 nodes in a line, spacing 0.2, radius 0.25: hop-by-hop flood.
        let pts: Vec<Point> = (0..5)
            .map(|i| Point::new(0.1 + 0.2 * i as f64, 0.5))
            .collect();
        let (rounds, energy, informed) = flood_net(&pts, 0.25);
        assert_eq!(informed, 5);
        // 5 broadcasts at radius 0.25 → energy 5·0.0625.
        assert!((energy - 5.0 * 0.0625).abs() < 1e-12);
        // One hop per round plus the final quiet round.
        assert!((5..=7).contains(&rounds), "rounds = {rounds}");
    }

    #[test]
    fn flood_stops_at_gap() {
        // Two clusters with a gap wider than the radius.
        let pts = vec![
            Point::new(0.1, 0.5),
            Point::new(0.2, 0.5),
            Point::new(0.8, 0.5),
            Point::new(0.9, 0.5),
        ];
        let net = RadioNet::new(&pts, 0.15);
        let nodes = (0..4)
            .map(|i| Flood {
                has_token: i == 0,
                announced: false,
                radius: 0.15,
            })
            .collect();
        let mut eng = SyncEngine::new(net, nodes);
        // Nodes 2,3 never announce → run() would hit the limit; use steps.
        for _ in 0..20 {
            eng.step();
        }
        let informed = eng.nodes().iter().filter(|f| f.has_token).count();
        assert_eq!(informed, 2);
    }

    /// Ping-pong protocol: tests unicast delivery, distances, and inbox
    /// determinism.
    struct PingPong {
        peer: usize,
        is_server: bool,
        got: u32,
        want: u32,
        last_dist: f64,
    }

    impl NodeProtocol for PingPong {
        type Msg = u32;

        fn on_round(&mut self, inbox: &[Delivery<u32>], ctx: &mut Ctx<'_, u32>) {
            if ctx.round() == 0 && !self.is_server {
                ctx.unicast(self.peer, "ping", 0);
                return;
            }
            for d in inbox {
                self.got += 1;
                self.last_dist = d.dist;
                if d.msg + 1 < self.want {
                    ctx.unicast(self.peer, "pong", d.msg + 1);
                }
            }
        }

        fn done(&self) -> bool {
            self.got > 0 || !self.is_server
        }
    }

    #[test]
    fn ping_pong_measures_distance() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.3, 0.4)];
        let net = RadioNet::new(&pts, 1.0);
        let nodes = vec![
            PingPong {
                peer: 1,
                is_server: false,
                got: 0,
                want: 4,
                last_dist: 0.0,
            },
            PingPong {
                peer: 0,
                is_server: true,
                got: 0,
                want: 4,
                last_dist: 0.0,
            },
        ];
        let mut eng = SyncEngine::new(net, nodes);
        eng.run(100).unwrap();
        let (net, nodes) = eng.into_parts();
        assert_eq!(net.ledger().total_messages(), 4); // 0,1,2,3 volley
        assert!((net.ledger().total_energy() - 4.0 * 0.25).abs() < 1e-12);
        assert!((nodes[1].last_dist - 0.5).abs() < 1e-12);
    }

    #[test]
    fn run_times_out_on_livelock() {
        // A protocol that never goes quiet.
        struct Chatter;
        impl NodeProtocol for Chatter {
            type Msg = ();
            fn on_round(&mut self, _inbox: &[Delivery<()>], ctx: &mut Ctx<'_, ()>) {
                ctx.broadcast(0.1, "noise", ());
            }
            fn done(&self) -> bool {
                false
            }
        }
        let pts = vec![Point::new(0.5, 0.5)];
        let net = RadioNet::new(&pts, 1.0);
        let mut eng = SyncEngine::new(net, vec![Chatter]);
        let err = eng.run(25).unwrap_err();
        assert_eq!(err.max_rounds, 25);
        assert!(format!("{err}").contains("25 rounds"));
    }

    #[test]
    #[should_panic(expected = "one protocol instance per network node")]
    fn engine_rejects_mismatched_counts() {
        let pts = vec![Point::new(0.5, 0.5)];
        let net = RadioNet::new(&pts, 1.0);
        let _ = SyncEngine::<Flood>::new(net, vec![]);
    }

    fn run_flood_line(contended: bool) -> (u64, f64, u64, usize) {
        let pts: Vec<Point> = (0..5)
            .map(|i| Point::new(0.1 + 0.2 * i as f64, 0.5))
            .collect();
        let nodes: Vec<Flood> = (0..5)
            .map(|i| Flood {
                has_token: i == 0,
                announced: false,
                radius: 0.25,
            })
            .collect();
        let net = RadioNet::new(&pts, 0.25);
        let mut eng = if contended {
            SyncEngine::with_contention(net, nodes, crate::ContentionConfig::default())
        } else {
            SyncEngine::new(net, nodes)
        };
        eng.run(100_000).expect("flood quiesces");
        let informed = eng.nodes().iter().filter(|f| f.has_token).count();
        (
            eng.net().clock().now(),
            eng.net().ledger().total_energy(),
            eng.net().ledger().total_messages(),
            informed,
        )
    }

    #[test]
    fn contended_flood_delivers_everything_at_higher_cost() {
        let (rounds_cf, energy_cf, msgs_cf, informed_cf) = run_flood_line(false);
        let (rounds_ct, energy_ct, msgs_ct, informed_ct) = run_flood_line(true);
        assert_eq!(informed_cf, 5);
        assert_eq!(informed_ct, 5, "contention must not lose messages");
        // The chain flood never has simultaneous transmitters, so no
        // collisions occur: message/energy cost matches the collision-free
        // run exactly, and only *time* inflates (idle ALOHA slots while
        // the lone transmitter waits for its coin).
        assert_eq!(msgs_ct, msgs_cf);
        assert!((energy_ct - energy_cf).abs() < 1e-12);
        assert!(rounds_ct > rounds_cf, "{rounds_ct} vs {rounds_cf}");
    }

    #[test]
    fn simultaneous_broadcasts_pay_collision_retries() {
        // Every node holds the token from the start: all five broadcast in
        // round 0 and mutually interfere — retries are mandatory.
        let pts: Vec<Point> = (0..5)
            .map(|i| Point::new(0.1 + 0.2 * i as f64, 0.5))
            .collect();
        let mk = || -> Vec<Flood> {
            (0..5)
                .map(|_| Flood {
                    has_token: true,
                    announced: false,
                    radius: 0.25,
                })
                .collect()
        };
        let net_cf = RadioNet::new(&pts, 0.25);
        let mut cf = SyncEngine::new(net_cf, mk());
        cf.run(100).unwrap();
        let net_ct = RadioNet::new(&pts, 0.25);
        let mut ct = SyncEngine::with_contention(net_ct, mk(), crate::ContentionConfig::default());
        ct.run(100_000).unwrap();
        let (m_cf, e_cf) = (
            cf.net().ledger().total_messages(),
            cf.net().ledger().total_energy(),
        );
        let (m_ct, e_ct) = (
            ct.net().ledger().total_messages(),
            ct.net().ledger().total_energy(),
        );
        assert_eq!(m_cf, 5);
        assert!(m_ct > m_cf, "collisions must force retries: {m_ct}");
        assert!(e_ct > e_cf);
        // Constant-factor overhead, as the paper claims for RBN contention
        // resolution.
        assert!(e_ct < 30.0 * e_cf, "energy blow-up {e_ct} vs {e_cf}");
        // Every node still ends up having heard someone (inbox effects are
        // observable through announced: all announced trivially here), and
        // crucially delivery completed without the livelock guard firing.
    }

    #[test]
    fn contended_runs_are_deterministic() {
        let a = run_flood_line(true);
        let b = run_flood_line(true);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.to_bits(), b.1.to_bits());
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn extended_energy_model_charges_rx_and_idle() {
        use crate::network::EnergyConfig;
        let pts: Vec<Point> = (0..3)
            .map(|i| Point::new(0.3 + 0.2 * i as f64, 0.5))
            .collect();
        let cfg = EnergyConfig::extended(emst_geom::PathLoss::paper(), 0.01, 0.001);
        let net = RadioNet::with_config(&pts, 0.25, cfg);
        let nodes: Vec<Flood> = (0..3)
            .map(|i| Flood {
                has_token: i == 0,
                announced: false,
                radius: 0.25,
            })
            .collect();
        let mut eng = SyncEngine::new(net, nodes);
        let rounds = eng.run(100).unwrap();
        let ledger = eng.net().ledger();
        // 3 broadcasts; node 1 hears nodes 0 and 2, node 0 and 2 hear 1 and
        // each other (distance 0.4 > 0.25? positions 0.3,0.5,0.7: 0-1 and
        // 1-2 in range (0.2), 0-2 out of range (0.4)). Receptions: b0→{1},
        // b1→{0,2}, b2→{1} = 4.
        assert_eq!(ledger.rx_count(), 4);
        assert!((ledger.rx_energy() - 0.04).abs() < 1e-12);
        // Idle: n·rounds·0.001.
        assert!((ledger.idle_energy() - 3.0 * rounds as f64 * 0.001).abs() < 1e-12);
        assert!(ledger.full_energy() > ledger.total_energy());
    }
}
