//! Synchronous discrete-event engine for reactive per-node protocols.
//!
//! The engine executes the model of §II directly: time is a sequence of
//! rounds; in each round every node reads the messages delivered to it
//! (those sent in the previous round), updates its local state, and emits at
//! most a bounded number of transmissions, each charged to the energy
//! ledger at send time. Neighbour discovery and Co-NNT run on this engine
//! as genuine message-passing state machines; the GHS family uses
//! stage-orchestrated simulation (see `emst-core::ghs`) under the standard
//! synchroniser abstraction.

use crate::contention::{resolve_round, ContentionConfig, ContentionOverflow, PendingTx, SlotRng};
use crate::fault::{backoff_stream_seed, FaultKind, FaultPlan};
use crate::network::RadioNet;
use emst_geom::Point;

/// A message delivered to a node, with the measured distance to the sender
/// (the RSSI abstraction: receivers can estimate the sender's distance).
#[derive(Debug, Clone)]
pub struct Delivery<M> {
    /// Sender node id.
    pub from: usize,
    /// Euclidean distance to the sender.
    pub dist: f64,
    /// Payload.
    pub msg: M,
}

/// A transmission requested by a node during its round callback.
#[derive(Debug, Clone)]
enum Outgoing<M> {
    Unicast {
        to: usize,
        kind: &'static str,
        msg: M,
    },
    Broadcast {
        radius: f64,
        kind: &'static str,
        msg: M,
    },
}

/// Per-round context handed to a node: identity, geometry it is entitled to
/// know, and the outbox.
pub struct Ctx<'c, M> {
    me: usize,
    pos: Point,
    n: usize,
    round: u64,
    outbox: &'c mut Vec<(usize, Outgoing<M>)>,
}

impl<'c, M> Ctx<'c, M> {
    /// This node's id.
    #[inline]
    pub fn me(&self) -> usize {
        self.me
    }

    /// This node's position. (Only coordinate-aware protocols such as
    /// Co-NNT may consult it — the GHS family must not, per §II; that
    /// discipline is by convention, enforced in code review of protocols.)
    #[inline]
    pub fn pos(&self) -> Point {
        self.pos
    }

    /// Network size `n`, which §VI assumes nodes know approximately.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current round number.
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Queues a unicast to `to`; delivered next round, energy `a·d^α`.
    pub fn unicast(&mut self, to: usize, kind: &'static str, msg: M) {
        self.outbox
            .push((self.me, Outgoing::Unicast { to, kind, msg }));
    }

    /// Queues a local broadcast at power `radius`; delivered next round to
    /// every node within `radius`, energy `a·radius^α` once.
    pub fn broadcast(&mut self, radius: f64, kind: &'static str, msg: M) {
        self.outbox
            .push((self.me, Outgoing::Broadcast { radius, kind, msg }));
    }
}

/// A reactive per-node protocol.
pub trait NodeProtocol {
    /// Message payload type.
    type Msg: Clone;

    /// Called once per round for every node, with the messages delivered
    /// this round (sent last round). `inbox` order is deterministic:
    /// ascending sender id, unicasts before broadcast receptions from the
    /// same round.
    fn on_round(&mut self, inbox: &[Delivery<Self::Msg>], ctx: &mut Ctx<'_, Self::Msg>);

    /// True when this node has terminated (it may still receive messages).
    fn done(&self) -> bool;
}

/// Error from [`SyncEngine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundLimitExceeded {
    /// The limit that was hit.
    pub max_rounds: u64,
}

impl std::fmt::Display for RoundLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "protocol did not quiesce within {} rounds",
            self.max_rounds
        )
    }
}

impl std::error::Error for RoundLimitExceeded {}

/// Error from [`SyncEngine::try_run`]: either the protocol did not quiesce
/// in time, or the contention layer overflowed its slot budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The round budget ran out before quiescence.
    RoundLimit(RoundLimitExceeded),
    /// The MAC layer hit [`ContentionConfig::max_slots_per_round`].
    Contention(ContentionOverflow),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::RoundLimit(e) => e.fmt(f),
            EngineError::Contention(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RoundLimitExceeded> for EngineError {
    fn from(e: RoundLimitExceeded) -> Self {
        EngineError::RoundLimit(e)
    }
}

impl From<ContentionOverflow> for EngineError {
    fn from(e: ContentionOverflow) -> Self {
        EngineError::Contention(e)
    }
}

/// A message held by the reliability layer until every intended receiver
/// has heard it (or the retry budget runs out).
struct ReliableTx<M> {
    from: usize,
    kind: &'static str,
    /// `Some` for unicast-shaped messages (kept in trace events).
    dst: Option<usize>,
    power: f64,
    energy: f64,
    /// Receivers (with distances) still waiting for this message.
    pending: Vec<(usize, f64)>,
    attempts: u32,
    msg: M,
}

/// Synchronous executor: one protocol instance per node over a
/// [`RadioNet`].
pub struct SyncEngine<'a, P: NodeProtocol> {
    net: RadioNet<'a>,
    nodes: Vec<P>,
    inboxes: Vec<Vec<Delivery<P::Msg>>>,
    /// Reusable receiver buffer for broadcast fan-out — one allocation for
    /// the whole run instead of one per broadcast.
    rx_scratch: Vec<(usize, f64)>,
    /// Pooled outbox: taken at the start of each round, drained by the
    /// transmit path, returned with its capacity intact.
    outbox: Vec<(usize, Outgoing<P::Msg>)>,
    /// Pooled per-node inbox view: each node's inbox is swapped in here
    /// for its callback and swapped back cleared, so the per-node buffers
    /// keep their capacity instead of being dropped every round.
    inbox_scratch: Vec<Delivery<P::Msg>>,
    /// Pooled survivor list for the reliability layer's per-transmission
    /// retry filtering.
    still_scratch: Vec<(usize, f64)>,
    /// Pooled drain buffer for the retry queue.
    retry_scratch: Vec<ReliableTx<P::Msg>>,
    contention: Option<(ContentionConfig, SlotRng)>,
    /// Fault schedule mirrored from the network at construction time;
    /// `Some` switches delivery onto the ack/timeout/retry path.
    faults: Option<FaultPlan>,
    /// Messages awaiting retransmission under the fault path.
    retry_queue: Vec<ReliableTx<P::Msg>>,
    /// Logical protocol rounds executed. Equals the clock under
    /// collision-free delivery; under contention one logical round spans
    /// many clock rounds (MAC slots), and protocols are scheduled by the
    /// logical counter so their phase arithmetic is MAC-agnostic.
    logical_round: u64,
}

impl<'a, P: NodeProtocol> SyncEngine<'a, P> {
    /// Creates an engine; `nodes.len()` must equal the network size.
    pub fn new(net: RadioNet<'a>, nodes: Vec<P>) -> Self {
        assert_eq!(
            net.n(),
            nodes.len(),
            "one protocol instance per network node required"
        );
        let n = nodes.len();
        let faults = net.faults().cloned();
        SyncEngine {
            net,
            nodes,
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            rx_scratch: Vec::new(),
            outbox: Vec::new(),
            inbox_scratch: Vec::new(),
            still_scratch: Vec::new(),
            retry_scratch: Vec::new(),
            contention: None,
            faults,
            retry_queue: Vec::new(),
            logical_round: 0,
        }
    }

    /// Creates an engine whose transmissions contend under slotted ALOHA +
    /// RBN interference (§VIII) instead of the paper's collision-free
    /// assumption. Each logical round expands into MAC slots; every
    /// attempt radiates full transmit energy and the clock advances by the
    /// number of slots used.
    ///
    /// The backoff RNG is seeded through [`backoff_stream_seed`], a
    /// splitmix64 stream domain-separated from the fault-coin stream, so
    /// configuring both layers with the same seed cannot correlate loss
    /// with backoff.
    pub fn with_contention(net: RadioNet<'a>, nodes: Vec<P>, cfg: ContentionConfig) -> Self {
        assert!(
            net.faults().is_none(),
            "fault injection composes with the collision-free engine only"
        );
        let mut eng = SyncEngine::new(net, nodes);
        let rng = SlotRng::new(backoff_stream_seed(cfg.seed));
        eng.contention = Some((cfg, rng));
        eng
    }

    /// Executes one round. Returns `true` if any message was transmitted.
    /// Panics on a contention-slot overflow; [`SyncEngine::try_step`] is
    /// the non-panicking variant.
    pub fn step(&mut self) -> bool {
        self.try_step().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Executes one round, surfacing a MAC-layer slot overflow as a typed
    /// error instead of a panic. Everything charged and delivered before
    /// the overflow stands.
    pub fn try_step(&mut self) -> Result<bool, ContentionOverflow> {
        let n = self.nodes.len();
        let round = self.logical_round;
        self.logical_round += 1;
        let clock_round = self.net.clock().now();
        let mut outbox = std::mem::take(&mut self.outbox);
        outbox.clear();
        // Deliver: swap each inbox out, call the node, collect sends. The
        // swap-in/swap-back dance (instead of dropping a taken inbox)
        // keeps every per-node buffer's capacity, so steady-state rounds
        // allocate nothing.
        let mut inbox = std::mem::take(&mut self.inbox_scratch);
        for i in 0..n {
            if let Some(plan) = &self.faults {
                if !plan.alive(i, clock_round) {
                    // Crashed: discards whatever arrived, computes nothing.
                    self.inboxes[i].clear();
                    continue;
                }
                if !plan.awake(i, clock_round) {
                    // Asleep: the inbox holds until the node wakes.
                    continue;
                }
            }
            std::mem::swap(&mut self.inboxes[i], &mut inbox);
            let mut ctx = Ctx {
                me: i,
                pos: self.net.pos(i),
                n,
                round,
                outbox: &mut outbox,
            };
            self.nodes[i].on_round(&inbox, &mut ctx);
            inbox.clear();
            std::mem::swap(&mut self.inboxes[i], &mut inbox);
        }
        self.inbox_scratch = inbox;
        let sent = !outbox.is_empty();
        if self.contention.is_some() {
            let res = self.transmit_contended(&mut outbox);
            self.outbox = outbox;
            res?;
        } else if self.faults.is_some() {
            self.transmit_faulty(&mut outbox);
            self.outbox = outbox;
        } else {
            self.transmit_collision_free(&mut outbox);
            self.outbox = outbox;
        }
        // Deterministic inbox order: by sender id (stable by arrival within
        // equal senders). The collision-free path delivers in ascending
        // sender order already, so the pre-check keeps steady-state rounds
        // away from the sort's scratch allocation.
        for inbox in &mut self.inboxes {
            if !inbox.windows(2).all(|w| w[0].from <= w[1].from) {
                inbox.sort_by_key(|d| d.from);
            }
        }
        Ok(sent)
    }

    /// The paper's §II semantics: every transmission is delivered in one
    /// attempt; one logical round is one clock round.
    fn transmit_collision_free(&mut self, outbox: &mut Vec<(usize, Outgoing<P::Msg>)>) {
        for (from, out) in outbox.drain(..) {
            match out {
                Outgoing::Unicast { to, kind, msg } => {
                    self.net.unicast(from, to, kind);
                    let dist = self.net.dist(from, to);
                    self.inboxes[to].push(Delivery { from, dist, msg });
                }
                Outgoing::Broadcast { radius, kind, msg } => {
                    self.net
                        .local_broadcast_into(from, radius, kind, &mut self.rx_scratch);
                    for &(to, dist) in &self.rx_scratch {
                        self.inboxes[to].push(Delivery {
                            from,
                            dist,
                            msg: msg.clone(),
                        });
                    }
                }
            }
        }
        self.net.tick_round();
    }

    /// Lossy collision-free semantics: each transmission is charged per
    /// attempt; deliveries are filtered by the fault plan's stateless drop
    /// coins and crash/sleep schedules; undelivered messages are retried
    /// in subsequent rounds up to [`FaultPlan::max_retries`] extra
    /// attempts, then abandoned with a timeout.
    fn transmit_faulty(&mut self, outbox: &mut Vec<(usize, Outgoing<P::Msg>)>) {
        let plan = self.faults.clone().expect("faulty path requires a plan");
        let round = self.net.clock().now();
        let loss = self.net.loss();
        // Rotate the retry queue through the pooled drain buffer so the
        // requeue below reuses the old queue's capacity.
        std::mem::swap(&mut self.retry_queue, &mut self.retry_scratch);
        let mut queue = std::mem::take(&mut self.retry_scratch);
        for (from, out) in outbox.drain(..) {
            match out {
                Outgoing::Unicast { to, kind, msg } => {
                    let d = self.net.dist(from, to);
                    queue.push(ReliableTx {
                        from,
                        kind,
                        dst: Some(to),
                        power: d,
                        energy: loss.energy_for_distance(d),
                        pending: vec![(to, d)],
                        attempts: 0,
                        msg,
                    });
                }
                Outgoing::Broadcast { radius, kind, msg } => {
                    self.net.neighbors_into(from, radius, &mut self.rx_scratch);
                    queue.push(ReliableTx {
                        from,
                        kind,
                        dst: None,
                        power: radius,
                        energy: loss.energy_for_distance(radius),
                        pending: self.rx_scratch.clone(),
                        attempts: 0,
                        msg,
                    });
                }
            }
        }
        let mut delivered = 0u64;
        for mut tx in queue.drain(..) {
            if !plan.alive(tx.from, round) {
                // The sender crashed with the message in hand: abandoned,
                // nothing radiated.
                self.net
                    .note_fault(FaultKind::Timeout, tx.kind, tx.from, tx.dst);
                continue;
            }
            if !plan.awake(tx.from, round) {
                // A sleeping sender holds the message (uncharged) and
                // transmits once awake.
                self.retry_queue.push(tx);
                continue;
            }
            tx.attempts += 1;
            if tx.attempts > 1 {
                self.net
                    .note_fault(FaultKind::Retry, tx.kind, tx.from, tx.dst);
            }
            // Every attempt radiates full transmit energy, delivered or not.
            self.net
                .charge_tx(tx.kind, tx.from, tx.dst, tx.power, tx.energy);
            let mut still = std::mem::take(&mut self.still_scratch);
            for (v, d) in tx.pending.drain(..) {
                if !plan.alive(v, round) {
                    // A crashed receiver will never ack: count the loss
                    // once and stop waiting for it.
                    self.net
                        .note_fault(FaultKind::Drop, tx.kind, tx.from, Some(v));
                } else if plan.delivers(round, tx.from, v) {
                    self.inboxes[v].push(Delivery {
                        from: tx.from,
                        dist: d,
                        msg: tx.msg.clone(),
                    });
                    delivered += 1;
                } else {
                    self.net
                        .note_fault(FaultKind::Drop, tx.kind, tx.from, Some(v));
                    still.push((v, d));
                }
            }
            if still.is_empty() {
                self.still_scratch = still;
                continue;
            }
            if tx.attempts > plan.max_retries() {
                self.net
                    .note_fault(FaultKind::Timeout, tx.kind, tx.from, tx.dst);
                still.clear();
                self.still_scratch = still;
            } else {
                std::mem::swap(&mut tx.pending, &mut still);
                self.still_scratch = still; // the drained old pending buffer
                self.retry_queue.push(tx);
            }
        }
        self.retry_scratch = queue;
        // rx energy only for messages actually heard.
        self.net.charge_receptions(delivered);
        self.net.tick_round();
    }

    /// §VIII semantics: the round's transmissions contend in MAC slots
    /// until every intended receiver has heard its message; retries are
    /// charged in full and the clock advances by the slot count.
    fn transmit_contended(
        &mut self,
        outbox: &mut Vec<(usize, Outgoing<P::Msg>)>,
    ) -> Result<(), ContentionOverflow> {
        let positions = self.net.points();
        let loss = self.net.loss();
        let mut pending: Vec<PendingTx> = Vec::with_capacity(outbox.len());
        let mut payloads: Vec<P::Msg> = Vec::with_capacity(outbox.len());
        for (from, out) in outbox.drain(..) {
            match out {
                Outgoing::Unicast { to, kind, msg } => {
                    let d = positions[from].dist(&positions[to]);
                    pending.push(PendingTx {
                        from,
                        radius: d,
                        waiting: vec![to],
                        energy_per_attempt: loss.energy_for_distance(d),
                        kind,
                    });
                    payloads.push(msg);
                }
                Outgoing::Broadcast { radius, kind, msg } => {
                    self.net.neighbors_into(from, radius, &mut self.rx_scratch);
                    let waiting: Vec<usize> = self.rx_scratch.iter().map(|&(v, _)| v).collect();
                    pending.push(PendingTx {
                        from,
                        radius,
                        waiting,
                        energy_per_attempt: loss.energy_for_distance(radius),
                        kind,
                    });
                    payloads.push(msg);
                }
            }
        }
        // Transmissions with no in-range receiver still radiate once.
        let mut attempts: Vec<usize> = pending
            .iter()
            .enumerate()
            .filter(|(_, t)| t.waiting.is_empty())
            .map(|(i, _)| i)
            .collect();
        let froms: Vec<usize> = pending.iter().map(|t| t.from).collect();
        let kinds: Vec<&'static str> = pending.iter().map(|t| t.kind).collect();
        let radii: Vec<f64> = pending.iter().map(|t| t.radius).collect();
        let energies: Vec<f64> = pending.iter().map(|t| t.energy_per_attempt).collect();
        let mut delivered: Vec<(usize, usize)> = Vec::new();
        let (cfg, rng) = self.contention.as_mut().expect("contended path");
        let resolved = resolve_round(
            cfg,
            rng,
            positions,
            &mut pending,
            |i, v| delivered.push((i, v)),
            |i| attempts.push(i),
        );
        // Attempts radiated and receptions heard before an overflow stay
        // charged and delivered; only the unresolved remainder is lost.
        for &i in &attempts {
            self.net
                .charge_attempt(kinds[i], froms[i], radii[i], energies[i]);
        }
        self.net.charge_receptions(delivered.len() as u64);
        for (i, v) in delivered {
            self.inboxes[v].push(Delivery {
                from: froms[i],
                dist: positions[froms[i]].dist(&positions[v]),
                msg: payloads[i].clone(),
            });
        }
        match resolved {
            Ok(slots) => {
                self.net.advance_rounds(slots.max(1) as u64);
                Ok(())
            }
            Err(e) => {
                self.net.advance_rounds(e.slots as u64);
                Err(e)
            }
        }
    }

    /// Runs until quiescence — every node reports `done()` and no messages
    /// are in flight — or fails after `max_rounds`. Panics on a contention
    /// overflow; use [`SyncEngine::try_run`] for the graceful path.
    pub fn run(&mut self, max_rounds: u64) -> Result<u64, RoundLimitExceeded> {
        match self.try_run(max_rounds) {
            Ok(r) => Ok(r),
            Err(EngineError::RoundLimit(e)) => Err(e),
            Err(EngineError::Contention(e)) => panic!("{e}"),
        }
    }

    /// [`SyncEngine::run`] with every failure mode surfaced as a typed
    /// error. Quiescence additionally requires the reliability layer's
    /// retry queue to be empty; crashed nodes count as done.
    pub fn try_run(&mut self, max_rounds: u64) -> Result<u64, EngineError> {
        let start = self.logical_round;
        loop {
            let elapsed = self.logical_round - start;
            if elapsed >= max_rounds {
                return Err(RoundLimitExceeded { max_rounds }.into());
            }
            let sent = self.try_step()?;
            let pending =
                self.inboxes.iter().any(|b| !b.is_empty()) || !self.retry_queue.is_empty();
            if !sent && !pending && self.all_done() {
                return Ok(self.logical_round - start);
            }
        }
    }

    /// Every node has terminated (crashed nodes count as terminated).
    fn all_done(&self) -> bool {
        let round = self.net.clock().now();
        self.nodes
            .iter()
            .enumerate()
            .all(|(i, p)| p.done() || self.faults.as_ref().is_some_and(|f| !f.alive(i, round)))
    }

    /// The underlying network (ledger, clock, geometry).
    #[inline]
    pub fn net(&self) -> &RadioNet<'a> {
        &self.net
    }

    /// The protocol instances.
    #[inline]
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Consumes the engine, returning network and nodes.
    pub fn into_parts(self) -> (RadioNet<'a>, Vec<P>) {
        (self.net, self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_geom::Point;

    /// Toy protocol: node 0 floods a token by local broadcast; every node
    /// re-broadcasts the first time it hears it. Tests delivery, energy
    /// accounting, and quiescence.
    struct Flood {
        has_token: bool,
        announced: bool,
        radius: f64,
    }

    impl NodeProtocol for Flood {
        type Msg = ();

        fn on_round(&mut self, inbox: &[Delivery<()>], ctx: &mut Ctx<'_, ()>) {
            if !inbox.is_empty() {
                self.has_token = true;
            }
            if self.has_token && !self.announced {
                self.announced = true;
                ctx.broadcast(self.radius, "flood", ());
            }
        }

        fn done(&self) -> bool {
            self.announced
        }
    }

    fn flood_net(pts: &[Point], radius: f64) -> (u64, f64, usize) {
        let net = RadioNet::new(pts, radius);
        let nodes = (0..pts.len())
            .map(|i| Flood {
                has_token: i == 0,
                announced: false,
                radius,
            })
            .collect();
        let mut eng = SyncEngine::new(net, nodes);
        let rounds = eng.run(10_000).expect("flood must quiesce");
        let informed = eng.nodes().iter().filter(|f| f.has_token).count();
        (rounds, eng.net().ledger().total_energy(), informed)
    }

    #[test]
    fn flood_reaches_connected_line() {
        // 5 nodes in a line, spacing 0.2, radius 0.25: hop-by-hop flood.
        let pts: Vec<Point> = (0..5)
            .map(|i| Point::new(0.1 + 0.2 * i as f64, 0.5))
            .collect();
        let (rounds, energy, informed) = flood_net(&pts, 0.25);
        assert_eq!(informed, 5);
        // 5 broadcasts at radius 0.25 → energy 5·0.0625.
        assert!((energy - 5.0 * 0.0625).abs() < 1e-12);
        // One hop per round plus the final quiet round.
        assert!((5..=7).contains(&rounds), "rounds = {rounds}");
    }

    #[test]
    fn flood_stops_at_gap() {
        // Two clusters with a gap wider than the radius.
        let pts = vec![
            Point::new(0.1, 0.5),
            Point::new(0.2, 0.5),
            Point::new(0.8, 0.5),
            Point::new(0.9, 0.5),
        ];
        let net = RadioNet::new(&pts, 0.15);
        let nodes = (0..4)
            .map(|i| Flood {
                has_token: i == 0,
                announced: false,
                radius: 0.15,
            })
            .collect();
        let mut eng = SyncEngine::new(net, nodes);
        // Nodes 2,3 never announce → run() would hit the limit; use steps.
        for _ in 0..20 {
            eng.step();
        }
        let informed = eng.nodes().iter().filter(|f| f.has_token).count();
        assert_eq!(informed, 2);
    }

    /// Ping-pong protocol: tests unicast delivery, distances, and inbox
    /// determinism.
    struct PingPong {
        peer: usize,
        is_server: bool,
        got: u32,
        want: u32,
        last_dist: f64,
    }

    impl NodeProtocol for PingPong {
        type Msg = u32;

        fn on_round(&mut self, inbox: &[Delivery<u32>], ctx: &mut Ctx<'_, u32>) {
            if ctx.round() == 0 && !self.is_server {
                ctx.unicast(self.peer, "ping", 0);
                return;
            }
            for d in inbox {
                self.got += 1;
                self.last_dist = d.dist;
                if d.msg + 1 < self.want {
                    ctx.unicast(self.peer, "pong", d.msg + 1);
                }
            }
        }

        fn done(&self) -> bool {
            self.got > 0 || !self.is_server
        }
    }

    #[test]
    fn ping_pong_measures_distance() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.3, 0.4)];
        let net = RadioNet::new(&pts, 1.0);
        let nodes = vec![
            PingPong {
                peer: 1,
                is_server: false,
                got: 0,
                want: 4,
                last_dist: 0.0,
            },
            PingPong {
                peer: 0,
                is_server: true,
                got: 0,
                want: 4,
                last_dist: 0.0,
            },
        ];
        let mut eng = SyncEngine::new(net, nodes);
        eng.run(100).unwrap();
        let (net, nodes) = eng.into_parts();
        assert_eq!(net.ledger().total_messages(), 4); // 0,1,2,3 volley
        assert!((net.ledger().total_energy() - 4.0 * 0.25).abs() < 1e-12);
        assert!((nodes[1].last_dist - 0.5).abs() < 1e-12);
    }

    #[test]
    fn run_times_out_on_livelock() {
        // A protocol that never goes quiet.
        struct Chatter;
        impl NodeProtocol for Chatter {
            type Msg = ();
            fn on_round(&mut self, _inbox: &[Delivery<()>], ctx: &mut Ctx<'_, ()>) {
                ctx.broadcast(0.1, "noise", ());
            }
            fn done(&self) -> bool {
                false
            }
        }
        let pts = vec![Point::new(0.5, 0.5)];
        let net = RadioNet::new(&pts, 1.0);
        let mut eng = SyncEngine::new(net, vec![Chatter]);
        let err = eng.run(25).unwrap_err();
        assert_eq!(err.max_rounds, 25);
        assert!(format!("{err}").contains("25 rounds"));
    }

    #[test]
    #[should_panic(expected = "one protocol instance per network node")]
    fn engine_rejects_mismatched_counts() {
        let pts = vec![Point::new(0.5, 0.5)];
        let net = RadioNet::new(&pts, 1.0);
        let _ = SyncEngine::<Flood>::new(net, vec![]);
    }

    fn run_flood_line(contended: bool) -> (u64, f64, u64, usize) {
        let pts: Vec<Point> = (0..5)
            .map(|i| Point::new(0.1 + 0.2 * i as f64, 0.5))
            .collect();
        let nodes: Vec<Flood> = (0..5)
            .map(|i| Flood {
                has_token: i == 0,
                announced: false,
                radius: 0.25,
            })
            .collect();
        let net = RadioNet::new(&pts, 0.25);
        let mut eng = if contended {
            SyncEngine::with_contention(net, nodes, crate::ContentionConfig::default())
        } else {
            SyncEngine::new(net, nodes)
        };
        eng.run(100_000).expect("flood quiesces");
        let informed = eng.nodes().iter().filter(|f| f.has_token).count();
        (
            eng.net().clock().now(),
            eng.net().ledger().total_energy(),
            eng.net().ledger().total_messages(),
            informed,
        )
    }

    #[test]
    fn contended_flood_delivers_everything_at_higher_cost() {
        let (rounds_cf, energy_cf, msgs_cf, informed_cf) = run_flood_line(false);
        let (rounds_ct, energy_ct, msgs_ct, informed_ct) = run_flood_line(true);
        assert_eq!(informed_cf, 5);
        assert_eq!(informed_ct, 5, "contention must not lose messages");
        // The chain flood never has simultaneous transmitters, so no
        // collisions occur: message/energy cost matches the collision-free
        // run exactly, and only *time* inflates (idle ALOHA slots while
        // the lone transmitter waits for its coin).
        assert_eq!(msgs_ct, msgs_cf);
        assert!((energy_ct - energy_cf).abs() < 1e-12);
        assert!(rounds_ct > rounds_cf, "{rounds_ct} vs {rounds_cf}");
    }

    #[test]
    fn simultaneous_broadcasts_pay_collision_retries() {
        // Every node holds the token from the start: all five broadcast in
        // round 0 and mutually interfere — retries are mandatory.
        let pts: Vec<Point> = (0..5)
            .map(|i| Point::new(0.1 + 0.2 * i as f64, 0.5))
            .collect();
        let mk = || -> Vec<Flood> {
            (0..5)
                .map(|_| Flood {
                    has_token: true,
                    announced: false,
                    radius: 0.25,
                })
                .collect()
        };
        let net_cf = RadioNet::new(&pts, 0.25);
        let mut cf = SyncEngine::new(net_cf, mk());
        cf.run(100).unwrap();
        let net_ct = RadioNet::new(&pts, 0.25);
        // A seed whose backoff stream exhibits same-slot collisions for
        // this instance (some streams happen to separate all five
        // transmitters in time and never collide).
        let cfg = crate::ContentionConfig {
            seed: 17,
            ..Default::default()
        };
        let mut ct = SyncEngine::with_contention(net_ct, mk(), cfg);
        ct.run(100_000).unwrap();
        let (m_cf, e_cf) = (
            cf.net().ledger().total_messages(),
            cf.net().ledger().total_energy(),
        );
        let (m_ct, e_ct) = (
            ct.net().ledger().total_messages(),
            ct.net().ledger().total_energy(),
        );
        assert_eq!(m_cf, 5);
        assert!(m_ct > m_cf, "collisions must force retries: {m_ct}");
        assert!(e_ct > e_cf);
        // Constant-factor overhead, as the paper claims for RBN contention
        // resolution.
        assert!(e_ct < 30.0 * e_cf, "energy blow-up {e_ct} vs {e_cf}");
        // Every node still ends up having heard someone (inbox effects are
        // observable through announced: all announced trivially here), and
        // crucially delivery completed without the livelock guard firing.
    }

    #[test]
    fn contended_runs_are_deterministic() {
        let a = run_flood_line(true);
        let b = run_flood_line(true);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.to_bits(), b.1.to_bits());
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn contention_overflow_is_a_typed_error_via_try_run() {
        // Two always-on transmitters jamming a middle receiver can never
        // resolve; try_run must surface the overflow, not panic, and the
        // attempts radiated before the cap must stay charged.
        let pts = vec![
            Point::new(0.4, 0.5),
            Point::new(0.6, 0.5),
            Point::new(0.5, 0.5),
        ];
        struct Blaster;
        impl NodeProtocol for Blaster {
            type Msg = ();
            fn on_round(&mut self, _inbox: &[Delivery<()>], ctx: &mut Ctx<'_, ()>) {
                if ctx.round() == 0 && ctx.me() < 2 {
                    ctx.broadcast(0.2, "jam", ());
                }
            }
            fn done(&self) -> bool {
                true
            }
        }
        let cfg = crate::ContentionConfig {
            attempt_probability: 1.0,
            max_slots_per_round: 40,
            ..Default::default()
        };
        let net = RadioNet::new(&pts, 0.2);
        let mut eng = SyncEngine::with_contention(net, vec![Blaster, Blaster, Blaster], cfg);
        let err = eng.try_run(10).unwrap_err();
        match err {
            EngineError::Contention(o) => {
                assert_eq!(o.unresolved, 2);
                assert_eq!(o.slots, 40);
            }
            other => panic!("expected contention overflow, got {other:?}"),
        }
        // p=1: both transmitters radiated in each of the 40 slots.
        assert_eq!(eng.net().ledger().total_messages(), 80);
        assert_eq!(eng.net().clock().now(), 40);
    }

    fn faulty_flood_line(plan: crate::FaultPlan) -> (RunStatsTriple, crate::FaultStats, usize) {
        let pts: Vec<Point> = (0..5)
            .map(|i| Point::new(0.1 + 0.2 * i as f64, 0.5))
            .collect();
        let nodes: Vec<Flood> = (0..5)
            .map(|i| Flood {
                has_token: i == 0,
                announced: false,
                radius: 0.25,
            })
            .collect();
        let mut net = RadioNet::new(&pts, 0.25);
        net.set_faults(plan);
        let mut eng = SyncEngine::new(net, nodes);
        match eng.try_run(500) {
            // A flood severed by crashes/undelivered tokens leaves the
            // uninformed nodes not-done forever; the round limit is the
            // graceful exit for those degraded runs.
            Ok(_) | Err(EngineError::RoundLimit(_)) => {}
            Err(e) => panic!("{e}"),
        }
        let informed = eng.nodes().iter().filter(|f| f.has_token).count();
        let net = eng.net();
        (
            (
                net.clock().now(),
                net.ledger().total_energy(),
                net.ledger().total_messages(),
            ),
            net.fault_stats(),
            informed,
        )
    }

    type RunStatsTriple = (u64, f64, u64);

    #[test]
    fn noop_fault_plan_is_bit_identical_to_clean_run() {
        let (clean_rounds, clean_energy, clean_msgs, _) = run_flood_line(false);
        let ((rounds, energy, msgs), stats, informed) = faulty_flood_line(crate::FaultPlan::none());
        assert_eq!(informed, 5);
        assert_eq!(rounds, clean_rounds);
        assert_eq!(energy.to_bits(), clean_energy.to_bits());
        assert_eq!(msgs, clean_msgs);
        assert!(stats.is_clean());
    }

    #[test]
    fn drops_force_charged_retries_and_ledger_conservation() {
        let plan = crate::FaultPlan::none().drop_probability(0.3).seed(11);
        let ((_, energy, msgs), stats, informed) = faulty_flood_line(plan);
        let (_, clean_energy, clean_msgs, _) = run_flood_line(false);
        assert_eq!(informed, 5, "bounded retries should still flood whp");
        // Conservation: every attempt (original + retries) charges exactly
        // one full-energy message; abandoned messages charge nothing extra.
        assert_eq!(msgs, clean_msgs + stats.retries);
        let expected = (msgs as f64) * 0.0625; // all broadcasts at r=0.25
        assert!((energy - expected).abs() < 1e-12, "{energy} vs {expected}");
        assert!(energy > clean_energy, "retries must cost energy");
        assert!(stats.drops > 0, "p=0.3 over 5 hops should drop something");
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let plan = || crate::FaultPlan::none().drop_probability(0.25).seed(5);
        let a = faulty_flood_line(plan());
        let b = faulty_flood_line(plan());
        assert_eq!(a.0 .0, b.0 .0);
        assert_eq!(a.0 .1.to_bits(), b.0 .1.to_bits());
        assert_eq!(a.0 .2, b.0 .2);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn certain_loss_times_out_after_bounded_retries() {
        // p = 1: nothing is ever delivered; each broadcast is attempted
        // 1 + max_retries times, then abandoned, and the run still
        // quiesces (degraded, not hung).
        let plan = crate::FaultPlan::none().drop_probability(1.0).retries(2);
        let ((_, _, msgs), stats, informed) = faulty_flood_line(plan);
        assert_eq!(informed, 1, "only the seeded node has the token");
        // Node 0 broadcasts: 3 attempts (1 + 2 retries), then timeout.
        assert_eq!(msgs, 3);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.timeouts, 1);
        // One neighbour (node 1) misses each of the 3 attempts.
        assert_eq!(stats.drops, 3);
    }

    #[test]
    fn crashed_node_stops_and_flood_routes_stop_with_it() {
        // Crash node 1 (the only bridge from node 0) before the flood
        // starts: the token cannot spread, yet the run quiesces.
        let plan = crate::FaultPlan::none().crash_at(1, 0);
        let (_, stats, informed) = faulty_flood_line(plan);
        assert_eq!(informed, 1);
        // Node 0's broadcast reaches only node 1, which is crashed: the
        // delivery is dropped once and never retried to a dead receiver.
        assert_eq!(stats.drops, 1);
        assert_eq!(stats.timeouts, 0, "no receiver left waiting");
    }

    #[test]
    fn sleeping_node_delays_but_does_not_lose_the_flood() {
        // Node 1 sleeps for rounds [0, 4): node 0's broadcast is retried
        // until node 1 wakes, then the flood completes end to end.
        let plan = crate::FaultPlan::none().sleep_between(1, 0, 4).retries(10);
        let ((rounds, _, _), stats, informed) = faulty_flood_line(plan);
        assert_eq!(informed, 5, "sleep must delay, not lose, the token");
        assert!(
            stats.retries >= 3,
            "retries while asleep: {}",
            stats.retries
        );
        assert!(rounds >= 8, "wake-up delay must show up in rounds");
        assert_eq!(stats.timeouts, 0);
    }

    #[test]
    fn rx_energy_only_on_actual_delivery() {
        use crate::network::EnergyConfig;
        // Extended model under faults: rx is charged per heard message,
        // not per attempt.
        let pts: Vec<Point> = (0..3)
            .map(|i| Point::new(0.3 + 0.2 * i as f64, 0.5))
            .collect();
        let cfg = EnergyConfig::extended(emst_geom::PathLoss::paper(), 0.01, 0.0);
        let mk = |i: usize| Flood {
            has_token: i == 0,
            announced: false,
            radius: 0.25,
        };
        let mut net = RadioNet::with_config(&pts, 0.25, cfg);
        net.set_faults(crate::FaultPlan::none().drop_probability(0.4).seed(3));
        let mut eng = SyncEngine::new(net, (0..3).map(mk).collect());
        eng.try_run(1000).unwrap();
        let ledger = eng.net().ledger();
        let stats = eng.net().fault_stats();
        // Clean receptions would be 4 (b0→{1}, b1→{0,2}, b2→{1}); under
        // faults a node hears each message exactly once (drops are retried
        // until delivered within budget), so rx_count stays 4 while drops
        // record the failed attempts — and rx energy must track rx_count,
        // not attempt count.
        assert!(stats.drops > 0, "p=0.4 must have dropped something");
        assert_eq!(ledger.rx_count(), 4);
        assert!((ledger.rx_energy() - ledger.rx_count() as f64 * 0.01).abs() < 1e-12);
    }

    #[test]
    fn extended_energy_model_charges_rx_and_idle() {
        use crate::network::EnergyConfig;
        let pts: Vec<Point> = (0..3)
            .map(|i| Point::new(0.3 + 0.2 * i as f64, 0.5))
            .collect();
        let cfg = EnergyConfig::extended(emst_geom::PathLoss::paper(), 0.01, 0.001);
        let net = RadioNet::with_config(&pts, 0.25, cfg);
        let nodes: Vec<Flood> = (0..3)
            .map(|i| Flood {
                has_token: i == 0,
                announced: false,
                radius: 0.25,
            })
            .collect();
        let mut eng = SyncEngine::new(net, nodes);
        let rounds = eng.run(100).unwrap();
        let ledger = eng.net().ledger();
        // 3 broadcasts; node 1 hears nodes 0 and 2, node 0 and 2 hear 1 and
        // each other (distance 0.4 > 0.25? positions 0.3,0.5,0.7: 0-1 and
        // 1-2 in range (0.2), 0-2 out of range (0.4)). Receptions: b0→{1},
        // b1→{0,2}, b2→{1} = 4.
        assert_eq!(ledger.rx_count(), 4);
        assert!((ledger.rx_energy() - 0.04).abs() < 1e-12);
        // Idle: n·rounds·0.001.
        assert!((ledger.idle_energy() - 3.0 * rounds as f64 * 0.001).abs() < 1e-12);
        assert!(ledger.full_energy() > ledger.total_energy());
    }
}
