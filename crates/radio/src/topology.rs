//! Cached unit-disk topology: the CSR adjacency of the network at a fixed
//! operating radius.
//!
//! Fixed-radius protocols (GHS, BFS flood, discovery, leader election)
//! query the same disk neighbourhoods over and over. Rebuilding each
//! neighbour list from the [`BucketGrid`] on every broadcast allocates a
//! fresh `Vec` and re-scans up to nine grid cells per call; a [`Topology`]
//! materialises all rows once per run in compressed-sparse-row form, after
//! which every query is a contiguous slice lookup.
//!
//! **Determinism contract.** Rows are stored in *grid visit order* — the
//! exact order [`BucketGrid::for_neighbors_within`] yields neighbours
//! (cells row-major, CSR order within a cell). Every receiver list the
//! simulator hands to a protocol therefore has the same content *and
//! order* whether it came from the cached topology or a live grid query,
//! which keeps energy ledgers and golden traces bit-identical across the
//! two paths.

use crate::membership::Membership;
use emst_geom::BucketGrid;
use std::sync::OnceLock;

/// CSR adjacency of the unit-disk graph at one operating radius.
///
/// Row `u` holds the neighbours of `u` within `radius` (excluding `u`
/// itself) in grid visit order, with their exact Euclidean distances.
#[derive(Debug)]
pub struct Topology {
    radius: f64,
    /// Row boundaries: row `u` is `nbr[offsets[u]..offsets[u+1]]`.
    offsets: Vec<u32>,
    /// Neighbour ids, concatenated row-major.
    nbr: Vec<u32>,
    /// Distances, parallel to `nbr`.
    dist: Vec<f64>,
    /// Lazily-built `(dist, id)`-sorted view of the rows (see
    /// [`Topology::sorted`]). Built at most once, then shared by every
    /// run holding this topology.
    sorted: OnceLock<SortedRows>,
}

/// Distance-sorted view of a [`Topology`]: the same rows, each reordered
/// ascending by `(dist, id)`. Row boundaries are the parent topology's
/// offsets; access goes through [`Topology::sorted_ids`] /
/// [`Topology::sorted_dists`].
#[derive(Debug, Clone, PartialEq)]
pub struct SortedRows {
    ids: Vec<u32>,
    dists: Vec<f64>,
}

impl Clone for Topology {
    fn clone(&self) -> Self {
        let sorted = OnceLock::new();
        if let Some(s) = self.sorted.get() {
            let _ = sorted.set(s.clone());
        }
        Topology {
            radius: self.radius,
            offsets: self.offsets.clone(),
            nbr: self.nbr.clone(),
            dist: self.dist.clone(),
            sorted,
        }
    }
}

impl PartialEq for Topology {
    fn eq(&self, other: &Self) -> bool {
        // The sorted view is a cache derived from the base rows: two
        // topologies with equal rows are equal regardless of whether
        // either has materialised it yet.
        self.radius == other.radius
            && self.offsets == other.offsets
            && self.nbr == other.nbr
            && self.dist == other.dist
    }
}

impl Topology {
    /// Builds the adjacency for every node at `radius` by a single pass of
    /// grid disk queries. O(n + m) memory for an m-edge unit-disk graph.
    pub fn build(grid: &BucketGrid<'_>, radius: f64) -> Self {
        assert!(radius >= 0.0, "negative topology radius");
        let n = grid.points().len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut nbr: Vec<u32> = Vec::new();
        let mut dist: Vec<f64> = Vec::new();
        offsets.push(0u32);
        for u in 0..n {
            grid.for_neighbors_within(u, radius, |v, d| {
                nbr.push(v as u32);
                dist.push(d);
            });
            let end = u32::try_from(nbr.len()).expect("topology larger than u32 edge space");
            offsets.push(end);
        }
        Topology {
            radius,
            offsets,
            nbr,
            dist,
            sorted: OnceLock::new(),
        }
    }

    /// The `(dist, id)`-sorted view of the rows, built on first use and
    /// cached for the topology's lifetime. Protocols that scan rows in
    /// ascending-weight order (modified-GHS MOE search) borrow this
    /// instead of sorting private copies per run.
    pub fn sorted(&self) -> &SortedRows {
        self.sorted.get_or_init(|| {
            let mut ids = vec![0u32; self.nbr.len()];
            let mut dists = vec![0f64; self.nbr.len()];
            let mut scratch: Vec<(f64, u32)> = Vec::new();
            for u in 0..self.n() {
                let r = self.row(u);
                scratch.clear();
                scratch.extend(
                    self.nbr[r.clone()]
                        .iter()
                        .zip(&self.dist[r.clone()])
                        .map(|(&v, &d)| (d, v)),
                );
                scratch.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                for (k, &(d, v)) in scratch.iter().enumerate() {
                    ids[r.start + k] = v;
                    dists[r.start + k] = d;
                }
            }
            SortedRows { ids, dists }
        })
    }

    /// Neighbour ids of `u` in ascending `(dist, id)` order.
    #[inline]
    pub fn sorted_ids(&self, u: usize) -> &[u32] {
        &self.sorted().ids[self.row(u)]
    }

    /// Distances parallel to [`Topology::sorted_ids`].
    #[inline]
    pub fn sorted_dists(&self, u: usize) -> &[f64] {
        &self.sorted().dists[self.row(u)]
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The operating radius the adjacency was built at.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Total directed edge count (sum of row lengths).
    #[inline]
    pub fn directed_edges(&self) -> usize {
        self.nbr.len()
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    #[inline]
    fn row(&self, u: usize) -> std::ops::Range<usize> {
        self.offsets[u] as usize..self.offsets[u + 1] as usize
    }

    /// Neighbour ids of `u`, in grid visit order.
    #[inline]
    pub fn ids(&self, u: usize) -> &[u32] {
        &self.nbr[self.row(u)]
    }

    /// Distances parallel to [`Topology::ids`].
    #[inline]
    pub fn dists(&self, u: usize) -> &[f64] {
        &self.dist[self.row(u)]
    }

    /// Iterates `(neighbour, distance)` pairs of `u` in grid visit order.
    #[inline]
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let r = self.row(u);
        self.nbr[r.clone()]
            .iter()
            .zip(&self.dist[r])
            .map(|(&v, &d)| (v as usize, d))
    }

    /// Appends `u`'s row to `out` (which the caller has cleared or wants
    /// extended) without allocating beyond `out`'s capacity growth.
    pub fn extend_row_into(&self, u: usize, out: &mut Vec<(usize, f64)>) {
        let r = self.row(u);
        out.reserve(r.len());
        for (&v, &d) in self.nbr[r.clone()].iter().zip(&self.dist[r]) {
            out.push((v as usize, d));
        }
    }

    /// Iterates the *live* `(neighbour, distance)` pairs of `u` in grid
    /// visit order — the row restricted to `members`' live set. The rows
    /// themselves are built over the full id universe (dead nodes keep
    /// their slots, so the CSR never has to be rebuilt on churn); this is
    /// the filtered view every membership-aware stage iterates.
    #[inline]
    pub fn neighbors_live<'m>(
        &'m self,
        u: usize,
        members: &'m Membership,
    ) -> impl Iterator<Item = (usize, f64)> + 'm {
        self.neighbors(u).filter(move |&(v, _)| members.is_live(v))
    }

    /// Live degree of `u` under `members` (row length minus dead entries).
    pub fn degree_live(&self, u: usize, members: &Membership) -> usize {
        self.ids(u)
            .iter()
            .filter(|&&v| members.is_live(v as usize))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_geom::{trial_rng, uniform_points};

    #[test]
    fn rows_match_grid_queries_exactly() {
        let pts = uniform_points(250, &mut trial_rng(81, 0));
        let grid = BucketGrid::for_radius(&pts, 0.08);
        let topo = Topology::build(&grid, 0.08);
        assert_eq!(topo.n(), 250);
        assert!((topo.radius() - 0.08).abs() == 0.0);
        let mut total = 0;
        for u in 0..250 {
            let live = grid.neighbors_within(u, 0.08);
            assert_eq!(topo.degree(u), live.len());
            let row: Vec<(usize, f64)> = topo.neighbors(u).collect();
            assert_eq!(row, live, "node {u}");
            let mut buf = vec![(usize::MAX, 0.0)];
            buf.clear();
            topo.extend_row_into(u, &mut buf);
            assert_eq!(buf, live);
            total += live.len();
        }
        assert_eq!(topo.directed_edges(), total);
    }

    #[test]
    fn radius_beyond_grid_cell_is_exhaustive() {
        let pts = uniform_points(120, &mut trial_rng(82, 0));
        let grid = BucketGrid::for_radius(&pts, 0.05);
        let topo = Topology::build(&grid, 0.4);
        for u in [0usize, 60, 119] {
            let brute = (0..120)
                .filter(|&v| v != u && pts[u].dist(&pts[v]) <= 0.4)
                .count();
            assert_eq!(topo.degree(u), brute);
        }
    }

    #[test]
    fn empty_and_isolated_rows() {
        let pts = uniform_points(10, &mut trial_rng(83, 0));
        let grid = BucketGrid::for_radius(&pts, 0.05);
        let topo = Topology::build(&grid, 0.0);
        for u in 0..10 {
            assert_eq!(topo.degree(u), 0);
            assert!(topo.ids(u).is_empty());
            assert!(topo.dists(u).is_empty());
        }
    }
}
