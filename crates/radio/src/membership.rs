//! Node membership and lifecycle: which nodes currently participate in
//! the protocol, and how that set evolves across maintenance epochs.
//!
//! Every layer below this module historically assumed the implicit node
//! set `0..n`: topology rows, broadcast delivery, fault coins and the
//! GHS arenas were all indexed by a fixed array that never grew or
//! shrank. A [`Membership`] makes the live set explicit: node ids stay
//! *stable for the lifetime of the simulation* (a departed node keeps
//! its id and position slot), while the membership tracks which ids are
//! currently awake/alive, a dense live-index for arena-keyed state, and
//! an epoch counter that advances once per maintenance step.
//!
//! **Determinism contract.** A membership in which every id is live is
//! a *no-op* and is elided by
//! [`RadioNet::set_members`](crate::RadioNet::set_members) exactly like
//! a no-op
//! [`FaultPlan`](crate::FaultPlan): static-topology runs carry no
//! membership at all and take byte-identical code paths, so ledgers,
//! traces and golden fixtures are unchanged by this layer's existence.
//!
//! Membership and fault injection are mutually exclusive on one network:
//! a fault plan models *transient* loss on a fixed node set (nodes keep
//! their array slots and may wake), while a membership models the
//! *authoritative* live set across epochs. Composing both would give two
//! owners for "is `u` participating this round". The fault plan's coin
//! streams are keyed by node id, not array position, so they remain
//! stable under churn by construction — a future composition only has to
//! decide ownership of liveness, not re-key any randomness.

/// The live set of a long-running simulation: stable node ids, a dense
/// live-id index, and an epoch counter.
///
/// ```
/// use emst_radio::Membership;
/// let mut m = Membership::all_live(4);
/// assert!(m.is_all_live());
/// m.leave(2);
/// m.advance_epoch();
/// assert_eq!(m.epoch(), 1);
/// assert_eq!(m.live_ids(), &[0, 1, 3]);
/// assert_eq!(m.dense_index(3), Some(2));
/// assert_eq!(m.dense_index(2), None);
/// let joined = m.admit(4); // brand-new id grows the universe
/// assert_eq!(joined, 4);
/// assert_eq!(m.live_count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    /// Maintenance epoch: advanced once per churn step by the driver.
    epoch: u64,
    /// Liveness per node id (`alive.len()` = the id universe size).
    alive: Vec<bool>,
    /// Live ids in ascending order — the deterministic iteration order
    /// for every membership-aware stage.
    live: Vec<u32>,
    /// Dense index of each live id in `live` (`u32::MAX` when dead), so
    /// arena-keyed protocol state can be packed over live ids.
    index: Vec<u32>,
}

/// Sentinel marking a dead id in the dense index.
const DEAD: u32 = u32::MAX;

impl Membership {
    /// A membership over ids `0..n`, all live, at epoch 0.
    pub fn all_live(n: usize) -> Self {
        Membership {
            epoch: 0,
            alive: vec![true; n],
            live: (0..n as u32).collect(),
            index: (0..n as u32).collect(),
        }
    }

    /// Size of the id universe (live and dead ids together).
    #[inline]
    pub fn n(&self) -> usize {
        self.alive.len()
    }

    /// Current maintenance epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the epoch counter by one (the churn driver calls this
    /// once per maintenance step; epochs are monotone by construction).
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Whether id `u` is currently live. Ids beyond the universe are dead.
    #[inline]
    pub fn is_live(&self, u: usize) -> bool {
        self.alive.get(u).copied().unwrap_or(false)
    }

    /// Number of live ids.
    #[inline]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Live ids in ascending order.
    #[inline]
    pub fn live_ids(&self) -> &[u32] {
        &self.live
    }

    /// Dense position of live id `u` in [`Membership::live_ids`]
    /// (`None` when dead) — the key for live-packed arenas.
    #[inline]
    pub fn dense_index(&self, u: usize) -> Option<usize> {
        match self.index.get(u).copied() {
            Some(i) if i != DEAD => Some(i as usize),
            _ => None,
        }
    }

    /// Whether every id in the universe is live — the no-op predicate
    /// under which the membership is elided from a network.
    pub fn is_all_live(&self) -> bool {
        self.live.len() == self.alive.len()
    }

    /// Marks id `u` dead (crash or sleep — the distinction lives in the
    /// churn driver; the network only needs liveness). Idempotent.
    pub fn leave(&mut self, u: usize) {
        if !self.is_live(u) {
            return;
        }
        self.alive[u] = false;
        let pos = self.index[u] as usize;
        self.live.remove(pos);
        self.index[u] = DEAD;
        for (i, &v) in self.live.iter().enumerate().skip(pos) {
            self.index[v as usize] = i as u32;
        }
    }

    /// Marks id `u` live, growing the universe when `u` is a brand-new id
    /// (joins take the next free slot; re-admitting a sleeper reuses its
    /// stable id). Returns `u`. Idempotent for already-live ids.
    pub fn admit(&mut self, u: usize) -> usize {
        if u >= self.alive.len() {
            self.alive.resize(u + 1, false);
            self.index.resize(u + 1, DEAD);
        }
        if self.alive[u] {
            return u;
        }
        self.alive[u] = true;
        let pos = self.live.partition_point(|&v| (v as usize) < u);
        self.live.insert(pos, u as u32);
        for (i, &v) in self.live.iter().enumerate().skip(pos) {
            self.index[v as usize] = i as u32;
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_live_is_noop() {
        let m = Membership::all_live(5);
        assert!(m.is_all_live());
        assert_eq!(m.n(), 5);
        assert_eq!(m.live_count(), 5);
        assert_eq!(m.epoch(), 0);
        for u in 0..5 {
            assert!(m.is_live(u));
            assert_eq!(m.dense_index(u), Some(u));
        }
        assert!(!m.is_live(5), "ids beyond the universe are dead");
        assert_eq!(m.dense_index(9), None);
    }

    #[test]
    fn leave_reindexes_the_suffix() {
        let mut m = Membership::all_live(6);
        m.leave(1);
        m.leave(4);
        assert!(!m.is_all_live());
        assert_eq!(m.live_ids(), &[0, 2, 3, 5]);
        assert_eq!(m.dense_index(0), Some(0));
        assert_eq!(m.dense_index(2), Some(1));
        assert_eq!(m.dense_index(3), Some(2));
        assert_eq!(m.dense_index(5), Some(3));
        assert_eq!(m.dense_index(1), None);
        assert_eq!(m.dense_index(4), None);
        m.leave(1); // idempotent
        assert_eq!(m.live_count(), 4);
    }

    #[test]
    fn admit_revives_and_grows() {
        let mut m = Membership::all_live(3);
        m.leave(1);
        assert_eq!(m.admit(1), 1, "sleeper keeps its stable id");
        assert!(m.is_all_live());
        assert_eq!(m.live_ids(), &[0, 1, 2]);
        assert_eq!(m.admit(5), 5, "join grows the universe");
        assert_eq!(m.n(), 6);
        assert!(!m.is_all_live(), "id 3 and 4 were never admitted");
        assert_eq!(m.live_ids(), &[0, 1, 2, 5]);
        assert_eq!(m.dense_index(5), Some(3));
        m.admit(5); // idempotent
        assert_eq!(m.live_count(), 4);
    }

    #[test]
    fn epochs_are_monotone() {
        let mut m = Membership::all_live(2);
        for k in 1..=5 {
            m.advance_epoch();
            assert_eq!(m.epoch(), k);
        }
    }

    #[test]
    fn churn_round_trip_keeps_index_consistent() {
        let mut m = Membership::all_live(8);
        for &u in &[0usize, 3, 7, 2] {
            m.leave(u);
        }
        for &u in &[3usize, 9, 0] {
            m.admit(u);
        }
        let live: Vec<u32> = (0..m.n() as u32)
            .filter(|&u| m.is_live(u as usize))
            .collect();
        assert_eq!(m.live_ids(), &live[..]);
        for (i, &u) in m.live_ids().iter().enumerate() {
            assert_eq!(m.dense_index(u as usize), Some(i));
        }
        assert_eq!(m.live_count(), m.live_ids().len());
    }
}
