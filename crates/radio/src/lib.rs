//! # emst-radio — synchronous radio-network simulator
//!
//! Implements the communication model of §II of the paper:
//!
//! * nodes at fixed positions in the unit square, adaptive transmission
//!   power, energy `w(u,v) = a·d(u,v)^α` per message ([`RadioNet`]);
//! * local broadcast: one transmission at power `ρ` costs `a·ρ^α` and
//!   reaches every node within distance `ρ`;
//! * synchronous rounds, collision-free delivery (the paper's RBN
//!   simplification), `O(log n)`-bit messages;
//! * exact energy/message accounting per message kind ([`EnergyLedger`]);
//! * a discrete-event executor for reactive per-node state machines
//!   ([`SyncEngine`] / [`NodeProtocol`]).

pub mod awake;
pub mod contention;
pub mod energy;
pub mod engine;
pub mod fault;
pub mod membership;
pub mod network;
pub mod stats;
pub mod topology;
pub mod trace;

pub use awake::{AwakeSchedule, AwakeStats};
pub use contention::{ContentionConfig, ContentionOverflow};
pub use energy::{EnergyLedger, Tally};
pub use engine::{Ctx, Delivery, EngineError, NodeProtocol, RoundLimitExceeded, SyncEngine};
pub use fault::{backoff_stream_seed, fault_stream_seed, FaultKind, FaultPlan, FaultStats};
pub use membership::Membership;
pub use network::{Clock, EnergyConfig, RadioNet};
pub use stats::{RunStats, StatSnapshot};
pub use topology::Topology;
pub use trace::{
    ClassMask, CsvSink, EventClass, FilterSink, JsonlSink, MergeMark, MetricsSink, NullSink,
    PhaseKey, StageMark, TeeSink, TraceEvent, TraceSink,
};
