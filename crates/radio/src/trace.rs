//! Structured observability for protocol runs.
//!
//! A [`TraceSink`] receives every observable event of a run — round
//! advances, individual transmissions with their power and energy, phase
//! transitions, fragment merges — as it happens, straight from the
//! [`RadioNet`](crate::RadioNet) charge points. Because events are emitted
//! where energy is charged, *any* protocol built on the network (the
//! stage-orchestrated GHS family as well as reactive [`SyncEngine`](crate::engine::SyncEngine)
//! protocols, contended or collision-free) is covered without
//! per-protocol instrumentation.
//!
//! Shipped sinks:
//!
//! * [`NullSink`] — does nothing. The default is better still: a network
//!   without a sink attached skips event construction entirely, so
//!   untraced runs pay nothing.
//! * [`MetricsSink`] — in-memory aggregation: per-round × per-kind and
//!   per-phase energy/message tallies, per-node transmit budgets, and the
//!   maximum-power watermark. Its running totals reproduce
//!   [`RunStats`](crate::RunStats) totals *exactly* (bit-for-bit): it
//!   accumulates in the same order as the [`EnergyLedger`](crate::energy::EnergyLedger).
//! * [`JsonlSink`] / [`CsvSink`] — streaming event logs for offline
//!   analysis; byte-deterministic for a fixed seed.

use crate::energy::Tally;
use crate::fault::{FaultKind, FaultStats};
use std::collections::BTreeMap;
use std::io::{self, Write};

/// One observable event of a protocol run.
///
/// `Message` is emitted once per transmission (a broadcast is one message
/// regardless of receiver count, matching §II's energy model); `Rounds`
/// once per clock advance; `Phase` and `Merge` when a protocol calls the
/// corresponding [`RadioNet`](crate::RadioNet) hook.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The round clock advanced from `from` to `to` (`to > from`).
    Rounds {
        /// Round before the advance.
        from: u64,
        /// Round after the advance.
        to: u64,
    },
    /// One transmission.
    Message {
        /// Round the message was sent in.
        round: u64,
        /// Protocol-chosen kind label (`"ghs/test"`, …).
        kind: &'static str,
        /// Sender.
        src: usize,
        /// Receiver for a unicast; `None` for a local broadcast.
        dst: Option<usize>,
        /// Transmission power as a radius: the unicast distance, or the
        /// broadcast radius.
        power: f64,
        /// Radiated energy `a·power^α`.
        energy: f64,
    },
    /// A protocol phase transition.
    Phase {
        /// Round at which the phase started.
        round: u64,
        /// Protocol scope (`"ghs"`, `"eopt1"`, `"eopt2"`, …).
        scope: &'static str,
        /// Phase index within the scope (e.g. the Borůvka phase number).
        index: u64,
        /// Stage label (`"discover"`, `"initiate"`, `"report"`, …).
        stage: &'static str,
    },
    /// A fragment merge: `absorbed` fragments coalesced into the fragment
    /// led by `leader`, which now has `size` members.
    Merge {
        /// Round of the merge.
        round: u64,
        /// Surviving fragment id (its leader node).
        leader: usize,
        /// Number of fragments absorbed (group size − 1).
        absorbed: usize,
        /// Member count of the merged fragment.
        size: usize,
    },
    /// A protocol stage completed. Carries the stage's identity and its
    /// resource *deltas* (energy/messages/rounds/faults consumed by that
    /// stage alone), as recorded by the stage runtime. Purely additive
    /// telemetry: stage events never alter the ledger or the clock, so a
    /// trace with its `stage` lines removed is byte-identical to one from
    /// a runtime that does not emit them.
    Stage(StageMark),
    /// A reliability-layer fault: a dropped delivery, a retransmission, or
    /// an abandoned message. Emitted only when a
    /// [`FaultPlan`](crate::FaultPlan) is active; fault-free traces are
    /// byte-identical to pre-reliability-layer traces.
    Fault {
        /// Round of the event.
        round: u64,
        /// Drop / retry / timeout.
        what: FaultKind,
        /// Message kind of the affected transmission.
        kind: &'static str,
        /// Sender.
        src: usize,
        /// Receiver for a unicast-shaped message; `None` for a broadcast
        /// or an aggregate event.
        dst: Option<usize>,
    },
}

/// Coarse classes of [`TraceEvent`], for stream filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// [`TraceEvent::Rounds`].
    Rounds,
    /// [`TraceEvent::Message`] — the high-volume class.
    Message,
    /// [`TraceEvent::Phase`].
    Phase,
    /// [`TraceEvent::Merge`].
    Merge,
    /// [`TraceEvent::Stage`].
    Stage,
    /// [`TraceEvent::Fault`].
    Fault,
}

impl EventClass {
    const fn bit(self) -> u8 {
        match self {
            EventClass::Rounds => 1 << 0,
            EventClass::Message => 1 << 1,
            EventClass::Phase => 1 << 2,
            EventClass::Merge => 1 << 3,
            EventClass::Stage => 1 << 4,
            EventClass::Fault => 1 << 5,
        }
    }
}

impl TraceEvent {
    /// This event's [`EventClass`].
    pub fn class(&self) -> EventClass {
        match self {
            TraceEvent::Rounds { .. } => EventClass::Rounds,
            TraceEvent::Message { .. } => EventClass::Message,
            TraceEvent::Phase { .. } => EventClass::Phase,
            TraceEvent::Merge { .. } => EventClass::Merge,
            TraceEvent::Stage(_) => EventClass::Stage,
            TraceEvent::Fault { .. } => EventClass::Fault,
        }
    }
}

/// A set of [`EventClass`]es, for [`FilterSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassMask(u8);

impl ClassMask {
    /// Every event class.
    pub const ALL: ClassMask = ClassMask(0x3F);
    /// Nothing.
    pub const NONE: ClassMask = ClassMask(0);
    /// The per-run summary classes — everything except the high-volume
    /// per-transmission [`EventClass::Message`] stream. This is what a
    /// streamed service response ships by default: phase transitions,
    /// merges, stage deltas, clock advances and fault marks, at a volume
    /// proportional to protocol structure rather than message count.
    pub const SUMMARY: ClassMask = ClassMask(0x3F & !(1 << 1));

    /// The mask containing exactly `class`.
    pub const fn only(class: EventClass) -> ClassMask {
        ClassMask(class.bit())
    }

    /// This mask plus `class`.
    pub const fn with(self, class: EventClass) -> ClassMask {
        ClassMask(self.0 | class.bit())
    }

    /// Whether `class` is in the mask.
    pub const fn contains(self, class: EventClass) -> bool {
        self.0 & class.bit() != 0
    }
}

/// Forwards only the event classes in its mask to the wrapped sink.
///
/// The service's streaming responses use this to put a [`JsonlSink`]
/// directly on the response socket without paying per-transmission
/// serialisation for clients that only want the structural summary.
pub struct FilterSink<'s> {
    allow: ClassMask,
    inner: &'s mut dyn TraceSink,
}

impl<'s> FilterSink<'s> {
    /// Wraps `inner`, forwarding only classes in `allow`.
    pub fn new(allow: ClassMask, inner: &'s mut dyn TraceSink) -> Self {
        FilterSink { allow, inner }
    }
}

impl TraceSink for FilterSink<'_> {
    fn record(&mut self, event: &TraceEvent) {
        if self.allow.contains(event.class()) {
            self.inner.record(event);
        }
    }
}

/// Receiver of [`TraceEvent`]s.
///
/// Implementations must be cheap per call; the network invokes `record`
/// synchronously on every transmission.
pub trait TraceSink {
    /// Handles one event.
    fn record(&mut self, event: &TraceEvent);
}

/// A sink that discards everything. Equivalent to attaching no sink,
/// except the dynamic dispatch still happens — useful as a placeholder
/// where a `&mut dyn TraceSink` is structurally required.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn record(&mut self, _event: &TraceEvent) {}
}

/// Key of one phase interval: scope, index and stage as reported by the
/// protocol's `Phase` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PhaseKey {
    /// Protocol scope (`"ghs"`, `"eopt1"`, …).
    pub scope: &'static str,
    /// Phase index within the scope.
    pub index: u64,
    /// Stage label.
    pub stage: &'static str,
}

impl PhaseKey {
    /// The implicit phase before any `Phase` event arrives.
    pub const SETUP: PhaseKey = PhaseKey {
        scope: "",
        index: 0,
        stage: "setup",
    };
}

/// One completed protocol stage with its resource deltas.
///
/// Produced by the stage runtime (`emst-core`'s `ExecEnv`) at every stage
/// boundary: the runtime snapshots the network counters before the stage
/// body runs and publishes the difference afterwards. Deltas telescope —
/// summing a run's marks recovers (up to float re-association) the run's
/// `RunStats` totals, and summing marks of one scope gives exact
/// per-stage attribution without ledger prefix matching.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageMark {
    /// Round at which the stage ended.
    pub round: u64,
    /// Protocol scope (`"ghs"`, `"eopt1"`, `"eopt2/recover"`, …) — also
    /// the message-kind prefix of everything the stage transmitted.
    pub scope: &'static str,
    /// Stage name (`"discover"`, `"merge"`, `"probe"`, …).
    pub name: &'static str,
    /// Position in the run's stage sequence (0-based).
    pub index: u64,
    /// Radiated energy consumed by this stage.
    pub energy: f64,
    /// Transmissions sent by this stage.
    pub messages: u64,
    /// Clock rounds elapsed during this stage.
    pub rounds: u64,
    /// Fault events (drops/retries/timeouts) observed during this stage.
    pub faults: FaultStats,
    /// Awake node-rounds accrued during this stage; `None` unless the
    /// run tracks an awake schedule (kept `None` for untracked runs so
    /// pre-awake trace consumers see byte-identical stage lines).
    pub awake: Option<u64>,
}

/// One recorded merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeMark {
    /// Round of the merge.
    pub round: u64,
    /// Surviving fragment id.
    pub leader: usize,
    /// Fragments absorbed.
    pub absorbed: usize,
    /// Resulting member count.
    pub size: usize,
}

/// In-memory aggregation sink.
///
/// Message energies are accumulated in event order, which is charge order,
/// so [`MetricsSink::total_energy`] equals
/// [`RunStats::energy`](crate::RunStats) bit-for-bit, and each per-kind
/// tally equals the corresponding [`EnergyLedger`](crate::energy::EnergyLedger)(crate::EnergyLedger)
/// entry bit-for-bit.
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    total: Tally,
    by_kind: BTreeMap<&'static str, Tally>,
    by_round_kind: BTreeMap<(u64, &'static str), Tally>,
    by_phase: BTreeMap<PhaseKey, Tally>,
    per_node: Vec<Tally>,
    max_power: f64,
    max_power_at: Option<(usize, u64)>,
    rounds: u64,
    current_phase: Option<PhaseKey>,
    phase_log: Vec<(u64, PhaseKey)>,
    merges: Vec<MergeMark>,
    stage_log: Vec<StageMark>,
    fault_drops: u64,
    fault_retries: u64,
    fault_timeouts: u64,
}

impl MetricsSink {
    /// Fresh empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total radiated energy over all messages seen, accumulated in charge
    /// order (bitwise equal to the ledger's total).
    #[inline]
    pub fn total_energy(&self) -> f64 {
        self.total.energy
    }

    /// Total messages seen.
    #[inline]
    pub fn total_messages(&self) -> u64 {
        self.total.messages
    }

    /// Last round observed (message round or clock advance).
    #[inline]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Largest transmission power (radius) seen.
    #[inline]
    pub fn max_power(&self) -> f64 {
        self.max_power
    }

    /// `(node, round)` of the maximum-power transmission, if any message
    /// was seen.
    #[inline]
    pub fn max_power_at(&self) -> Option<(usize, u64)> {
        self.max_power_at
    }

    /// Per-kind tallies in sorted kind order.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, &Tally)> {
        self.by_kind.iter().map(|(k, v)| (*k, v))
    }

    /// Tally for one kind (zero if never seen).
    pub fn kind(&self, kind: &str) -> Tally {
        self.by_kind.get(kind).copied().unwrap_or_default()
    }

    /// Per-`(round, kind)` tallies in sorted order — the round × kind
    /// histogram.
    pub fn round_kinds(&self) -> impl Iterator<Item = ((u64, &'static str), &Tally)> {
        self.by_round_kind.iter().map(|(k, v)| (*k, v))
    }

    /// Tally of everything sent in `round`.
    pub fn round_tally(&self, round: u64) -> Tally {
        let mut t = Tally::default();
        for (_, tt) in self.by_round_kinds_of(round) {
            t.messages += tt.messages;
            t.energy += tt.energy;
        }
        t
    }

    /// Per-kind tallies of one round.
    pub fn by_round_kinds_of(&self, round: u64) -> impl Iterator<Item = (&'static str, &Tally)> {
        self.by_round_kind
            .range((round, "")..(round + 1, ""))
            .map(|((_, k), v)| (*k, v))
    }

    /// Per-phase tallies (messages attributed to the most recent `Phase`
    /// event at send time; [`PhaseKey::SETUP`] before the first).
    pub fn phases(&self) -> impl Iterator<Item = (&PhaseKey, &Tally)> {
        self.by_phase.iter()
    }

    /// Chronological phase log as `(start round, key)` pairs.
    pub fn phase_log(&self) -> &[(u64, PhaseKey)] {
        &self.phase_log
    }

    /// Transmit tally of node `u` (zero if it never transmitted).
    pub fn node_tally(&self, u: usize) -> Tally {
        self.per_node.get(u).copied().unwrap_or_default()
    }

    /// Per-node transmit tallies, indexed by node id; may be shorter than
    /// `n` if high-id nodes never transmitted.
    pub fn node_tallies(&self) -> &[Tally] {
        &self.per_node
    }

    /// Largest per-node transmit energy (a lower bound on the battery any
    /// single node must bring).
    pub fn max_node_energy(&self) -> f64 {
        self.per_node.iter().map(|t| t.energy).fold(0.0, f64::max)
    }

    /// Recorded fragment merges in order.
    pub fn merges(&self) -> &[MergeMark] {
        &self.merges
    }

    /// Completed stages in execution order, with per-stage resource
    /// deltas (empty unless the run went through the stage runtime).
    pub fn stages(&self) -> &[StageMark] {
        &self.stage_log
    }

    /// Dropped deliveries observed (0 in fault-free runs).
    #[inline]
    pub fn fault_drops(&self) -> u64 {
        self.fault_drops
    }

    /// Retransmissions observed (0 in fault-free runs).
    #[inline]
    pub fn fault_retries(&self) -> u64 {
        self.fault_retries
    }

    /// Abandoned messages observed (0 in fault-free runs).
    #[inline]
    pub fn fault_timeouts(&self) -> u64 {
        self.fault_timeouts
    }
}

impl TraceSink for MetricsSink {
    fn record(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::Rounds { to, .. } => self.rounds = self.rounds.max(to),
            TraceEvent::Message {
                round,
                kind,
                src,
                power,
                energy,
                ..
            } => {
                self.total.messages += 1;
                self.total.energy += energy;
                let t = self.by_kind.entry(kind).or_default();
                t.messages += 1;
                t.energy += energy;
                let rt = self.by_round_kind.entry((round, kind)).or_default();
                rt.messages += 1;
                rt.energy += energy;
                let phase = self.current_phase.unwrap_or(PhaseKey::SETUP);
                let pt = self.by_phase.entry(phase).or_default();
                pt.messages += 1;
                pt.energy += energy;
                if src >= self.per_node.len() {
                    self.per_node.resize(src + 1, Tally::default());
                }
                self.per_node[src].messages += 1;
                self.per_node[src].energy += energy;
                if power > self.max_power {
                    self.max_power = power;
                    self.max_power_at = Some((src, round));
                }
                self.rounds = self.rounds.max(round);
            }
            TraceEvent::Phase {
                round,
                scope,
                index,
                stage,
            } => {
                let key = PhaseKey {
                    scope,
                    index,
                    stage,
                };
                self.current_phase = Some(key);
                self.phase_log.push((round, key));
            }
            TraceEvent::Merge {
                round,
                leader,
                absorbed,
                size,
            } => self.merges.push(MergeMark {
                round,
                leader,
                absorbed,
                size,
            }),
            TraceEvent::Stage(mark) => self.stage_log.push(mark),
            TraceEvent::Fault { what, .. } => match what {
                FaultKind::Drop => self.fault_drops += 1,
                FaultKind::Retry => self.fault_retries += 1,
                FaultKind::Timeout => self.fault_timeouts += 1,
            },
        }
    }
}

/// Streams events as JSON Lines: one compact object per event with a `"t"`
/// type tag. Field order and float formatting are fixed, so two runs with
/// the same seed produce byte-identical logs.
pub struct JsonlSink<W: Write> {
    w: W,
    error: Option<io::Error>,
}

impl JsonlSink<io::BufWriter<std::fs::File>> {
    /// Creates (truncating) a trace file.
    pub fn create(path: impl AsRef<std::path::Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        JsonlSink { w, error: None }
    }

    /// Flushes and returns the writer, or the first write error, which
    /// `record` (infallible by trait) had to defer.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.w.flush()?;
        Ok(self.w)
    }

    fn try_record(&mut self, event: &TraceEvent) -> io::Result<()> {
        match *event {
            TraceEvent::Rounds { from, to } => {
                writeln!(self.w, r#"{{"t":"rounds","from":{from},"to":{to}}}"#)
            }
            TraceEvent::Message {
                round,
                kind,
                src,
                dst,
                power,
                energy,
            } => {
                // f64 Display is the shortest round-trip representation —
                // deterministic and lossless.
                match dst {
                    Some(d) => writeln!(
                        self.w,
                        r#"{{"t":"msg","round":{round},"kind":"{kind}","src":{src},"dst":{d},"power":{power},"energy":{energy}}}"#
                    ),
                    None => writeln!(
                        self.w,
                        r#"{{"t":"msg","round":{round},"kind":"{kind}","src":{src},"dst":null,"power":{power},"energy":{energy}}}"#
                    ),
                }
            }
            TraceEvent::Phase {
                round,
                scope,
                index,
                stage,
            } => writeln!(
                self.w,
                r#"{{"t":"phase","round":{round},"scope":"{scope}","index":{index},"stage":"{stage}"}}"#
            ),
            TraceEvent::Merge {
                round,
                leader,
                absorbed,
                size,
            } => writeln!(
                self.w,
                r#"{{"t":"merge","round":{round},"leader":{leader},"absorbed":{absorbed},"size":{size}}}"#
            ),
            TraceEvent::Stage(StageMark {
                round,
                scope,
                name,
                index,
                energy,
                messages,
                rounds,
                faults,
                awake,
            }) => {
                // The awake field is emitted only when the run tracks a
                // schedule: untracked runs keep their pre-awake stage
                // lines byte-identical (golden fixtures).
                let awake = match awake {
                    Some(a) => format!(r#","awake":{a}"#),
                    None => String::new(),
                };
                writeln!(
                    self.w,
                    r#"{{"t":"stage","round":{round},"scope":"{scope}","name":"{name}","index":{index},"energy":{energy},"messages":{messages},"rounds":{rounds},"drops":{},"retries":{},"timeouts":{}{awake}}}"#,
                    faults.drops, faults.retries, faults.timeouts
                )
            }
            TraceEvent::Fault {
                round,
                what,
                kind,
                src,
                dst,
            } => {
                let what = what.label();
                match dst {
                    Some(d) => writeln!(
                        self.w,
                        r#"{{"t":"fault","round":{round},"what":"{what}","kind":"{kind}","src":{src},"dst":{d}}}"#
                    ),
                    None => writeln!(
                        self.w,
                        r#"{{"t":"fault","round":{round},"what":"{what}","kind":"{kind}","src":{src},"dst":null}}"#
                    ),
                }
            }
        }
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.try_record(event) {
            self.error = Some(e);
        }
    }
}

/// Streams events as CSV with a fixed header; inapplicable columns are
/// left empty. Like [`JsonlSink`], byte-deterministic per seed.
pub struct CsvSink<W: Write> {
    w: W,
    error: Option<io::Error>,
    wrote_header: bool,
}

impl CsvSink<io::BufWriter<std::fs::File>> {
    /// Creates (truncating) a trace file.
    pub fn create(path: impl AsRef<std::path::Path>) -> io::Result<Self> {
        Ok(CsvSink::new(io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write> CsvSink<W> {
    /// Wraps a writer. The header is written with the first event.
    pub fn new(w: W) -> Self {
        CsvSink {
            w,
            error: None,
            wrote_header: false,
        }
    }

    /// Flushes and returns the writer, or the first deferred write error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.w.flush()?;
        Ok(self.w)
    }

    fn try_record(&mut self, event: &TraceEvent) -> io::Result<()> {
        if !self.wrote_header {
            self.wrote_header = true;
            writeln!(
                self.w,
                "event,round,kind,src,dst,power,energy,scope,index,stage,leader,absorbed,size"
            )?;
        }
        match *event {
            TraceEvent::Rounds { to, .. } => {
                writeln!(self.w, "rounds,{to},,,,,,,,,,,")
            }
            TraceEvent::Message {
                round,
                kind,
                src,
                dst,
                power,
                energy,
            } => {
                let dst = dst.map(|d| d.to_string()).unwrap_or_default();
                writeln!(
                    self.w,
                    "msg,{round},{kind},{src},{dst},{power},{energy},,,,,,"
                )
            }
            TraceEvent::Phase {
                round,
                scope,
                index,
                stage,
            } => writeln!(self.w, "phase,{round},,,,,,{scope},{index},{stage},,,"),
            TraceEvent::Merge {
                round,
                leader,
                absorbed,
                size,
            } => writeln!(self.w, "merge,{round},,,,,,,,,{leader},{absorbed},{size}"),
            TraceEvent::Stage(StageMark {
                round,
                scope,
                name,
                index,
                energy,
                messages,
                ..
            }) => {
                // Stage rows reuse the fixed 13-column header: the stage
                // name rides in `stage`, the message delta in `size`;
                // round/fault deltas are JSONL-only.
                writeln!(
                    self.w,
                    "stage,{round},,,,,{energy},{scope},{index},{name},,,{messages}"
                )
            }
            TraceEvent::Fault {
                round,
                what,
                kind,
                src,
                dst,
            } => {
                // Fault rows reuse the fixed 13-column header: the `event`
                // column carries the fault flavour (drop/retry/timeout).
                let dst = dst.map(|d| d.to_string()).unwrap_or_default();
                writeln!(
                    self.w,
                    "{},{round},{kind},{src},{dst},,,,,,,,",
                    what.label()
                )
            }
        }
    }
}

impl<W: Write> TraceSink for CsvSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.try_record(event) {
            self.error = Some(e);
        }
    }
}

/// Fans one event stream out to two sinks (compose for more).
pub struct TeeSink<'s> {
    a: &'s mut dyn TraceSink,
    b: &'s mut dyn TraceSink,
}

impl<'s> TeeSink<'s> {
    /// Duplicates events to `a` then `b`.
    pub fn new(a: &'s mut dyn TraceSink, b: &'s mut dyn TraceSink) -> Self {
        TeeSink { a, b }
    }
}

impl TraceSink for TeeSink<'_> {
    fn record(&mut self, event: &TraceEvent) {
        self.a.record(event);
        self.b.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(round: u64, kind: &'static str, src: usize, energy: f64) -> TraceEvent {
        TraceEvent::Message {
            round,
            kind,
            src,
            dst: None,
            power: energy.sqrt(),
            energy,
        }
    }

    #[test]
    fn metrics_aggregates_by_kind_round_node() {
        let mut m = MetricsSink::new();
        m.record(&msg(0, "a", 1, 1.0));
        m.record(&msg(0, "b", 2, 2.0));
        m.record(&TraceEvent::Rounds { from: 0, to: 3 });
        m.record(&msg(3, "a", 1, 4.0));
        assert_eq!(m.total_messages(), 3);
        assert!((m.total_energy() - 7.0).abs() < 1e-15);
        assert_eq!(m.kind("a").messages, 2);
        assert!((m.kind("a").energy - 5.0).abs() < 1e-15);
        assert_eq!(m.round_tally(0).messages, 2);
        assert_eq!(m.round_tally(3).messages, 1);
        assert_eq!(m.node_tally(1).messages, 2);
        assert_eq!(m.node_tally(7).messages, 0);
        assert!((m.max_power() - 2.0).abs() < 1e-15);
        assert_eq!(m.max_power_at(), Some((1, 3)));
        assert_eq!(m.rounds(), 3);
        assert!((m.max_node_energy() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn metrics_attributes_phases_in_event_order() {
        let mut m = MetricsSink::new();
        m.record(&msg(0, "x", 0, 1.0));
        m.record(&TraceEvent::Phase {
            round: 0,
            scope: "ghs",
            index: 1,
            stage: "initiate",
        });
        m.record(&msg(0, "x", 0, 2.0));
        m.record(&msg(1, "x", 0, 4.0));
        let phases: Vec<_> = m.phases().collect();
        assert_eq!(phases.len(), 2);
        assert_eq!(*phases[0].0, PhaseKey::SETUP);
        assert!((phases[0].1.energy - 1.0).abs() < 1e-15);
        assert_eq!(phases[1].0.scope, "ghs");
        assert!((phases[1].1.energy - 6.0).abs() < 1e-15);
        assert_eq!(m.phase_log().len(), 1);
    }

    #[test]
    fn metrics_records_merges() {
        let mut m = MetricsSink::new();
        m.record(&TraceEvent::Merge {
            round: 5,
            leader: 9,
            absorbed: 2,
            size: 7,
        });
        assert_eq!(
            m.merges(),
            &[MergeMark {
                round: 5,
                leader: 9,
                absorbed: 2,
                size: 7
            }]
        );
    }

    #[test]
    fn jsonl_lines_are_valid_and_deterministic() {
        let run = || {
            let mut sink = JsonlSink::new(Vec::new());
            sink.record(&TraceEvent::Rounds { from: 0, to: 2 });
            sink.record(&msg(2, "ghs/test", 4, 0.25));
            sink.record(&TraceEvent::Message {
                round: 2,
                kind: "ghs/connect",
                src: 1,
                dst: Some(3),
                power: 0.5,
                energy: 0.25,
            });
            sink.record(&TraceEvent::Phase {
                round: 2,
                scope: "ghs",
                index: 1,
                stage: "report",
            });
            sink.record(&TraceEvent::Merge {
                round: 2,
                leader: 3,
                absorbed: 1,
                size: 2,
            });
            sink.finish().unwrap()
        };
        let bytes = run();
        assert_eq!(bytes, run(), "same events must serialise identically");
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], r#"{"t":"rounds","from":0,"to":2}"#);
        assert!(lines[1].contains(r#""kind":"ghs/test""#));
        assert!(lines[1].contains(r#""dst":null"#));
        assert!(lines[2].contains(r#""dst":3"#));
        assert!(lines[3].contains(r#""stage":"report""#));
        assert!(lines[4].contains(r#""leader":3"#));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn csv_has_header_and_one_row_per_event() {
        let mut sink = CsvSink::new(Vec::new());
        sink.record(&msg(1, "k", 0, 1.0));
        sink.record(&TraceEvent::Merge {
            round: 1,
            leader: 0,
            absorbed: 1,
            size: 2,
        });
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("event,round,kind"));
        let cols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), cols, "ragged row: {l}");
        }
    }

    #[test]
    fn fault_events_flow_through_all_sinks() {
        let fault = |what| TraceEvent::Fault {
            round: 4,
            what,
            kind: "ghs/test",
            src: 2,
            dst: Some(5),
        };
        let mut m = MetricsSink::new();
        m.record(&fault(FaultKind::Drop));
        m.record(&fault(FaultKind::Drop));
        m.record(&fault(FaultKind::Retry));
        m.record(&fault(FaultKind::Timeout));
        assert_eq!(m.fault_drops(), 2);
        assert_eq!(m.fault_retries(), 1);
        assert_eq!(m.fault_timeouts(), 1);
        // Fault events carry no energy or message count.
        assert_eq!(m.total_messages(), 0);

        let mut j = JsonlSink::new(Vec::new());
        j.record(&fault(FaultKind::Drop));
        j.record(&TraceEvent::Fault {
            round: 9,
            what: FaultKind::Timeout,
            kind: "nnt/request",
            src: 0,
            dst: None,
        });
        let text = String::from_utf8(j.finish().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            r#"{"t":"fault","round":4,"what":"drop","kind":"ghs/test","src":2,"dst":5}"#
        );
        assert!(lines[1].contains(r#""what":"timeout""#));
        assert!(lines[1].contains(r#""dst":null"#));

        let mut c = CsvSink::new(Vec::new());
        c.record(&msg(1, "k", 0, 1.0));
        c.record(&fault(FaultKind::Retry));
        let text = String::from_utf8(c.finish().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let cols = lines[0].split(',').count();
        assert_eq!(lines[2].split(',').count(), cols, "ragged fault row");
        assert!(lines[2].starts_with("retry,4,ghs/test,2,5,"));
    }

    #[test]
    fn filter_sink_forwards_only_masked_classes() {
        let mut m = MetricsSink::new();
        {
            let mut f = FilterSink::new(ClassMask::SUMMARY, &mut m);
            f.record(&msg(0, "k", 0, 1.0)); // Message: filtered out
            f.record(&TraceEvent::Rounds { from: 0, to: 3 });
            f.record(&TraceEvent::Merge {
                round: 1,
                leader: 2,
                absorbed: 1,
                size: 2,
            });
        }
        assert_eq!(m.total_messages(), 0);
        assert_eq!(m.rounds(), 3);
        assert_eq!(m.merges().len(), 1);

        assert!(ClassMask::ALL.contains(EventClass::Message));
        assert!(!ClassMask::SUMMARY.contains(EventClass::Message));
        assert!(ClassMask::SUMMARY.contains(EventClass::Stage));
        assert!(!ClassMask::NONE.contains(EventClass::Rounds));
        let only = ClassMask::only(EventClass::Phase).with(EventClass::Fault);
        assert!(only.contains(EventClass::Phase) && only.contains(EventClass::Fault));
        assert!(!only.contains(EventClass::Merge));
        assert_eq!(msg(0, "k", 0, 1.0).class(), EventClass::Message);
    }

    #[test]
    fn tee_duplicates_events() {
        let mut a = MetricsSink::new();
        let mut b = MetricsSink::new();
        {
            let mut tee = TeeSink::new(&mut a, &mut b);
            tee.record(&msg(0, "k", 0, 1.0));
        }
        assert_eq!(a.total_messages(), 1);
        assert_eq!(b.total_messages(), 1);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut s = NullSink;
        s.record(&msg(0, "k", 0, 1.0));
        s.record(&TraceEvent::Rounds { from: 0, to: 1 });
    }
}
