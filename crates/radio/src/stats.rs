//! Run statistics: the (energy, messages, rounds) triple the paper's
//! evaluation reports, captured from a network after a protocol run.

use crate::awake::AwakeStats;
use crate::energy::EnergyLedger;
use crate::fault::FaultStats;
use crate::network::RadioNet;
use crate::trace::StageMark;
use std::fmt;

/// A point-in-time snapshot of a network's run-wide counters, used by the
/// stage runtime to compute per-stage deltas: snapshot before a stage,
/// [`StatSnapshot::delta`] after it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatSnapshot {
    energy: f64,
    messages: u64,
    rounds: u64,
    faults: FaultStats,
    /// Total awake node-rounds at capture time; `None` when the network
    /// tracks no awake schedule.
    awake: Option<u64>,
}

impl StatSnapshot {
    /// Captures the network's current totals. O(1) without an awake
    /// schedule; O(n) with one (stage boundaries only).
    pub fn capture(net: &RadioNet<'_>) -> Self {
        StatSnapshot {
            energy: net.ledger().total_energy(),
            messages: net.ledger().total_messages(),
            rounds: net.clock().now(),
            faults: net.fault_stats(),
            awake: net.awake_total(),
        }
    }

    /// The resources consumed since this snapshot, stamped with the
    /// stage's identity. `round` in the mark is the network's current
    /// round (the round the stage ended at).
    pub fn delta(
        &self,
        net: &RadioNet<'_>,
        scope: &'static str,
        name: &'static str,
        index: u64,
    ) -> StageMark {
        let now = StatSnapshot::capture(net);
        StageMark {
            round: now.rounds,
            scope,
            name,
            index,
            energy: now.energy - self.energy,
            messages: now.messages - self.messages,
            rounds: now.rounds - self.rounds,
            faults: FaultStats {
                drops: now.faults.drops - self.faults.drops,
                retries: now.faults.retries - self.faults.retries,
                timeouts: now.faults.timeouts - self.faults.timeouts,
            },
            awake: match (now.awake, self.awake) {
                (Some(a), Some(b)) => Some(a - b),
                // A schedule installed mid-stage attributes its whole
                // total to that stage; never happens in practice (the
                // runtime installs schedules before the first stage).
                (Some(a), None) => Some(a),
                _ => None,
            },
        }
    }
}

/// Summary of one protocol execution.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Total radiated (transmit) energy — the paper's energy complexity.
    pub energy: f64,
    /// Reception energy under the extended model (0 under §II's model).
    pub rx_energy: f64,
    /// Idle/listen energy under the extended model (0 under §II's model).
    pub idle_energy: f64,
    /// Total number of transmissions (message complexity).
    pub messages: u64,
    /// Synchronous rounds consumed (time complexity).
    pub rounds: u64,
    /// Drop/retry/timeout counters (all zero in fault-free runs).
    pub faults: FaultStats,
    /// Awake-round read-outs (total + max-per-node); `None` unless the
    /// run installed an [`crate::AwakeSchedule`].
    pub awake: Option<AwakeStats>,
    /// Full per-kind ledger for attribution.
    pub ledger: EnergyLedger,
}

impl RunStats {
    /// Snapshot from a network handle.
    pub fn capture(net: &RadioNet<'_>) -> Self {
        let ledger = net.ledger().clone();
        RunStats {
            energy: ledger.total_energy(),
            rx_energy: ledger.rx_energy(),
            idle_energy: ledger.idle_energy(),
            messages: ledger.total_messages(),
            rounds: net.clock().now(),
            faults: net.fault_stats(),
            awake: net.awake_stats(),
            ledger,
        }
    }

    /// Whole-radio energy: transmit + receive + idle.
    pub fn full_energy(&self) -> f64 {
        self.energy + self.rx_energy + self.idle_energy
    }

    /// Folds another run's statistics into this one (sequential protocol
    /// composition: rounds add, ledgers merge).
    pub fn absorb(&mut self, other: &RunStats) {
        self.ledger.merge(&other.ledger);
        self.energy = self.ledger.total_energy();
        self.rx_energy = self.ledger.rx_energy();
        self.idle_energy = self.ledger.idle_energy();
        self.messages = self.ledger.total_messages();
        self.rounds += other.rounds;
        self.faults.merge(&other.faults);
        // Sequential composition over the same node set: totals add and
        // the per-node maxima add as an upper bound (the true combined
        // max would need per-node vectors, which the aggregates drop).
        self.awake = match (self.awake, other.awake) {
            (Some(a), Some(b)) => Some(AwakeStats {
                total: a.total + b.total,
                max_per_node: a.max_per_node + b.max_per_node,
            }),
            (a, b) => a.or(b),
        };
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "energy {:.6}, {} msgs, {} rounds",
            self.energy, self.messages, self.rounds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_geom::Point;

    #[test]
    fn capture_reflects_ledger_and_clock() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.6, 0.8)];
        let mut net = RadioNet::new(&pts, 1.5);
        net.unicast(0, 1, "x");
        net.clock_mut().advance(3);
        let s = RunStats::capture(&net);
        assert!((s.energy - 1.0).abs() < 1e-12);
        assert_eq!(s.messages, 1);
        assert_eq!(s.rounds, 3);
        assert_eq!(s.ledger.kind("x").messages, 1);
    }

    #[test]
    fn absorb_adds_rounds_and_merges_energy() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.3, 0.4)];
        let mut net = RadioNet::new(&pts, 1.0);
        net.unicast(0, 1, "a");
        net.clock_mut().advance(2);
        let mut s1 = RunStats::capture(&net);
        let mut net2 = RadioNet::new(&pts, 1.0);
        net2.exchange(0, 1, "b");
        net2.clock_mut().advance(5);
        let s2 = RunStats::capture(&net2);
        s1.absorb(&s2);
        assert_eq!(s1.messages, 3);
        assert_eq!(s1.rounds, 7);
        assert!((s1.energy - 0.75).abs() < 1e-12);
        assert_eq!(s1.ledger.kind("b").messages, 2);
    }

    #[test]
    fn display_is_informative() {
        let s = RunStats {
            energy: 1.5,
            rx_energy: 0.0,
            idle_energy: 0.0,
            messages: 10,
            rounds: 4,
            faults: FaultStats::default(),
            awake: None,
            ledger: EnergyLedger::new(),
        };
        let txt = format!("{s}");
        assert!(txt.contains("10 msgs"));
        assert!(txt.contains("4 rounds"));
    }
}
