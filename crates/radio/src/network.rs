//! The radio network: positions, power-controlled transmission primitives,
//! and the synchronous round clock.
//!
//! Model (§II of the paper):
//!
//! * nodes are points in the unit square; the unit-disk graph at the
//!   operating radius defines who can hear whom;
//! * nodes set their transmission power adaptively, so a unicast to a node
//!   at distance `d` costs `a·d^α` and a *local broadcast* at power `ρ`
//!   costs `a·ρ^α` while reaching every node within `ρ`;
//! * communication is synchronous, one message per node per time step, and
//!   collision-free (RBN with the paper's no-collision simplification);
//! * a message carries `O(log n)` bits — message size is tracked only as a
//!   count since energy is size-independent in the model.

use crate::awake::{AwakeSchedule, AwakeStats};
use crate::energy::EnergyLedger;
use crate::fault::{FaultKind, FaultPlan, FaultStats};
use crate::membership::Membership;
use crate::topology::Topology;
use crate::trace::{TraceEvent, TraceSink};
use emst_geom::{BucketGrid, PathLoss, Point};

/// Energy configuration: the paper's radiated-energy model plus the
/// extended per-reception and idle/listen costs that §VIII defers to
/// future work (after Min & Chandrakasan's critique that transmit-only
/// accounting understates radio energy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyConfig {
    /// Transmit path-loss model `w = a·d^α`.
    pub loss: PathLoss,
    /// Energy consumed per message *received* (0 in the paper's model).
    pub rx: f64,
    /// Energy consumed per node per round spent awake (0 in the paper's
    /// model).
    pub idle_per_round: f64,
}

impl EnergyConfig {
    /// The paper's §II model: transmit-only.
    pub fn paper() -> Self {
        EnergyConfig {
            loss: PathLoss::paper(),
            rx: 0.0,
            idle_per_round: 0.0,
        }
    }

    /// An extended model with explicit rx/idle costs.
    ///
    /// Does not validate the costs: a malformed configuration is reported
    /// through the typed [`EnergyConfig::check`] path (surfaced as a
    /// `ConfigError` by `Sim::validate`), not a panic — a long-lived
    /// service must be able to reject a bad energy config as a value.
    pub fn extended(loss: PathLoss, rx: f64, idle_per_round: f64) -> Self {
        EnergyConfig {
            loss,
            rx,
            idle_per_round,
        }
    }

    /// Validates the per-reception and idle costs, naming the offending
    /// field. Both must be finite and non-negative (`NaN` fails both
    /// comparisons and is rejected).
    pub fn check(&self) -> Result<(), &'static str> {
        if !(self.rx >= 0.0 && self.rx.is_finite()) {
            return Err("rx");
        }
        if !(self.idle_per_round >= 0.0 && self.idle_per_round.is_finite()) {
            return Err("idle_per_round");
        }
        Ok(())
    }
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig::paper()
    }
}

/// Synchronous round clock. Protocols advance it by the true round cost of
/// each communication stage (e.g. a fragment broadcast advances by the
/// fragment-tree depth).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Clock {
    rounds: u64,
}

impl Clock {
    /// Current round.
    #[inline]
    pub fn now(&self) -> u64 {
        self.rounds
    }

    /// Advances by one round.
    #[inline]
    pub fn tick(&mut self) {
        self.rounds += 1;
    }

    /// Advances by `n` rounds.
    #[inline]
    pub fn advance(&mut self, n: u64) {
        self.rounds += n;
    }
}

/// A radio network over a fixed set of node positions.
///
/// Owns the energy ledger and round clock; borrows the positions. The
/// spatial grid is sized for `max_query_radius` but queries at larger radii
/// remain correct (they just scan more cells).
///
/// An optional [`TraceSink`] can be attached with [`RadioNet::set_sink`];
/// every transmission, clock advance, and protocol-reported phase/merge is
/// then mirrored to it as a [`TraceEvent`]. Without a sink, no event is
/// even constructed.
///
/// ```
/// use emst_geom::Point;
/// use emst_radio::RadioNet;
/// let pts = vec![Point::new(0.0, 0.0), Point::new(0.3, 0.4)];
/// let mut net = RadioNet::new(&pts, 1.0);
/// net.unicast(0, 1, "demo/ping");           // energy d² = 0.25
/// net.local_broadcast(1, 0.6, "demo/hello"); // energy 0.6² = 0.36
/// assert_eq!(net.ledger().total_messages(), 2);
/// assert!((net.ledger().total_energy() - 0.61).abs() < 1e-12);
/// ```
pub struct RadioNet<'a> {
    points: &'a [Point],
    config: EnergyConfig,
    grid: BucketGrid<'a>,
    /// Cached CSR adjacency at one operating radius (see
    /// [`RadioNet::cache_topology`]); `None` until a protocol opts in.
    /// Behind an `Arc` so an [`RadioNet::install_topology`] caller (the
    /// instance-reuse API) can share one build across many runs.
    topo: Option<std::sync::Arc<Topology>>,
    /// Pre-built topologies registered by [`RadioNet::install_topology`];
    /// consulted by [`RadioNet::cache_topology`] before building, so a
    /// run that switches radii (EOPT) can have every radius prewarmed.
    prewarmed: Vec<std::sync::Arc<Topology>>,
    ledger: EnergyLedger,
    clock: Clock,
    sink: Option<&'a mut dyn TraceSink>,
    /// Fault schedule; `None` when fault injection is disabled (a no-op
    /// plan is stored as `None`, so disabled runs take identical paths).
    faults: Option<FaultPlan>,
    /// Drop/retry/timeout counters, reported through [`RadioNet::note_fault`].
    fault_stats: FaultStats,
    /// Live set; `None` when every node participates (an all-live
    /// membership is stored as `None`, mirroring the no-op fault-plan
    /// elision, so static runs take identical paths).
    members: Option<Membership>,
    /// Sleep/wake schedule; `None` when awake tracking was never
    /// requested (the default), so untracked runs take identical paths.
    /// An *installed* schedule with no windows is the observable
    /// all-awake case: counters accrue, charges stay bit-identical.
    awake: Option<AwakeSchedule>,
}

impl std::fmt::Debug for RadioNet<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RadioNet")
            .field("n", &self.n())
            .field("config", &self.config)
            .field("ledger", &self.ledger)
            .field("clock", &self.clock)
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

impl<'a> RadioNet<'a> {
    /// Creates a network with the paper's default energy model
    /// (`w = d²`).
    pub fn new(points: &'a [Point], max_query_radius: f64) -> Self {
        RadioNet::with_loss(points, max_query_radius, PathLoss::paper())
    }

    /// Creates a network with an explicit path-loss model (rx/idle stay 0).
    pub fn with_loss(points: &'a [Point], max_query_radius: f64, loss: PathLoss) -> Self {
        RadioNet::with_config(
            points,
            max_query_radius,
            EnergyConfig {
                loss,
                ..EnergyConfig::paper()
            },
        )
    }

    /// Creates a network with a full energy configuration.
    pub fn with_config(points: &'a [Point], max_query_radius: f64, config: EnergyConfig) -> Self {
        assert!(
            max_query_radius > 0.0,
            "need a positive query radius, got {max_query_radius}"
        );
        RadioNet {
            points,
            config,
            grid: BucketGrid::for_radius(points, max_query_radius),
            topo: None,
            prewarmed: Vec::new(),
            ledger: EnergyLedger::new(),
            clock: Clock::default(),
            sink: None,
            faults: None,
            fault_stats: FaultStats::default(),
            members: None,
            awake: None,
        }
    }

    /// Installs a fault schedule. A no-op plan ([`FaultPlan::is_noop`]) is
    /// discarded so fault-free runs keep their exact pre-fault behaviour
    /// (bit-identical ledgers and traces).
    ///
    /// # Panics
    ///
    /// If an effective membership is installed: fault injection and
    /// membership are mutually exclusive (see [`RadioNet::set_members`]).
    pub fn set_faults(&mut self, plan: FaultPlan) {
        let effective = !plan.is_noop();
        assert!(
            !(effective && self.members.is_some()),
            "fault injection and an effective membership are mutually exclusive"
        );
        assert!(
            !(effective && self.awake.is_some()),
            "fault injection and an awake schedule are mutually exclusive"
        );
        self.faults = if effective { Some(plan) } else { None };
    }

    /// Installs the live set. An all-live membership
    /// ([`Membership::is_all_live`]) is discarded so static runs keep
    /// their exact pre-membership behaviour (bit-identical ledgers and
    /// traces) — the same elision contract as no-op fault plans.
    ///
    /// With an effective membership, broadcast delivery and reception
    /// accounting are filtered to live nodes; dead nodes keep their array
    /// slots (stable ids) but neither receive nor count as receivers.
    ///
    /// # Panics
    ///
    /// If an effective fault plan is installed: a plan models transient
    /// loss on a fixed node set, a membership models the authoritative
    /// live set — composing both would give two owners of per-round
    /// liveness.
    pub fn set_members(&mut self, members: Membership) {
        let effective = !members.is_all_live();
        assert!(
            !(effective && self.faults.is_some()),
            "fault injection and an effective membership are mutually exclusive"
        );
        self.members = if effective { Some(members) } else { None };
    }

    /// The active live set, if an effective membership is installed.
    #[inline]
    pub fn members(&self) -> Option<&Membership> {
        self.members.as_ref()
    }

    /// Whether node `u` is live (true for every node when no effective
    /// membership is installed).
    #[inline]
    pub fn live(&self, u: usize) -> bool {
        self.members.as_ref().is_none_or(|m| m.is_live(u))
    }

    /// Degree of `u` at `radius` counting live neighbours only (equals
    /// [`RadioNet::degree`] when no effective membership is installed).
    pub fn live_degree(&self, u: usize, radius: f64) -> usize {
        match &self.members {
            None => self.degree(u, radius),
            Some(m) => {
                if let Some(t) = self.topology_at(radius) {
                    t.ids(u).iter().filter(|&&v| m.is_live(v as usize)).count()
                } else {
                    let mut deg = 0usize;
                    self.grid.for_neighbors_within(u, radius, |v, _| {
                        if m.is_live(v) {
                            deg += 1;
                        }
                    });
                    deg
                }
            }
        }
    }

    /// Installs a sleep/wake schedule, enabling awake-round tracking.
    /// Unlike fault plans and memberships there is no no-op elision
    /// here: installing an all-awake schedule is exactly how a caller
    /// asks for the counters — charges stay bit-identical (pinned by
    /// golden tests), only the awake read-outs become `Some`. Callers
    /// that do not want tracking simply never call this.
    ///
    /// # Panics
    ///
    /// If the schedule does not cover this network's nodes, or if an
    /// effective fault plan is installed — a [`FaultPlan`] already owns
    /// adversarial sleep windows; composing both would give two owners
    /// of per-round wakefulness.
    pub fn set_awake(&mut self, schedule: AwakeSchedule) {
        assert_eq!(
            schedule.n(),
            self.n(),
            "awake schedule must cover every node"
        );
        assert!(
            self.faults.is_none(),
            "fault injection and an awake schedule are mutually exclusive"
        );
        self.awake = Some(schedule);
    }

    /// The installed sleep/wake schedule, if awake tracking is enabled.
    #[inline]
    pub fn awake_schedule(&self) -> Option<&AwakeSchedule> {
        self.awake.as_ref()
    }

    /// Schedules node `u` to sleep rounds `[from, to)` (protocol-driven
    /// `sleep_until` transition; see [`AwakeSchedule::sleep`]).
    ///
    /// # Panics
    ///
    /// If no awake schedule is installed.
    pub fn sleep_node(&mut self, u: usize, from: u64, to: u64) {
        self.awake
            .as_mut()
            .expect("sleep_node requires an installed awake schedule")
            .sleep(u, from, to);
    }

    /// Wakes node `u` at `round`, truncating its pending sleep window
    /// (no-op without a schedule).
    pub fn wake_node(&mut self, u: usize, round: u64) {
        if let Some(aw) = self.awake.as_mut() {
            aw.wake(u, round);
        }
    }

    /// Whether node `u` is awake at the current round (true for every
    /// node when no schedule is installed).
    #[inline]
    pub fn awake_now(&self, u: usize) -> bool {
        match &self.awake {
            None => true,
            Some(aw) => aw.is_awake(u, self.clock.now()),
        }
    }

    /// Total awake node-rounds accrued so far; `None` when awake
    /// tracking is not enabled. O(n) — called at stage boundaries only.
    pub fn awake_total(&self) -> Option<u64> {
        self.awake.as_ref().map(|a| a.total_awake_rounds())
    }

    /// Aggregate awake read-outs; `None` when tracking is not enabled.
    pub fn awake_stats(&self) -> Option<AwakeStats> {
        self.awake.as_ref().map(|a| a.stats())
    }

    /// Degree of `u` at `radius` counting only neighbours that can hear
    /// right now: live *and* awake. Equals [`RadioNet::live_degree`]
    /// whenever nobody can be asleep at the current round, which is the
    /// only case the clean charging paths ever see.
    fn hearing_degree(&self, u: usize, radius: f64) -> usize {
        let round = self.clock.now();
        match &self.awake {
            Some(aw) if aw.any_asleep_at(round) => {
                let mut deg = 0usize;
                let count = |v: usize, deg: &mut usize| {
                    if self.live(v) && aw.is_awake(v, round) {
                        *deg += 1;
                    }
                };
                if let Some(t) = self.topology_at(radius) {
                    for &v in t.ids(u) {
                        count(v as usize, &mut deg);
                    }
                } else {
                    self.grid.for_neighbors_within(u, radius, |v, _| {
                        count(v, &mut deg);
                    });
                }
                deg
            }
            _ => self.live_degree(u, radius),
        }
    }

    /// The active fault schedule, if fault injection is enabled.
    #[inline]
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Fault counters accumulated so far.
    #[inline]
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Records one fault event: bumps the matching counter and mirrors a
    /// [`TraceEvent::Fault`] to the sink, if any.
    pub fn note_fault(
        &mut self,
        what: FaultKind,
        kind: &'static str,
        src: usize,
        dst: Option<usize>,
    ) {
        self.fault_stats.note(what);
        let round = self.clock.now();
        self.emit(|| TraceEvent::Fault {
            round,
            what,
            kind,
            src,
            dst,
        });
    }

    /// Attaches a trace sink: every subsequent transmission, clock advance
    /// and protocol-reported phase/merge is mirrored to it. The sink
    /// borrow lives as long as the network's point borrow.
    pub fn set_sink(&mut self, sink: &'a mut dyn TraceSink) {
        self.sink = Some(sink);
    }

    /// Detaches the current sink, if any.
    pub fn clear_sink(&mut self) {
        self.sink = None;
    }

    /// Whether a trace sink is attached (events are being emitted).
    #[inline]
    pub fn traced(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits an event to the sink if one is attached; the closure defers
    /// event construction so untraced runs pay nothing.
    #[inline]
    fn emit(&mut self, build: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.sink.as_mut() {
            sink.record(&build());
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.points.len()
    }

    /// Node positions.
    #[inline]
    pub fn points(&self) -> &'a [Point] {
        self.points
    }

    /// Position of node `u`.
    #[inline]
    pub fn pos(&self, u: usize) -> Point {
        self.points[u]
    }

    /// Euclidean distance between two nodes.
    #[inline]
    pub fn dist(&self, u: usize, v: usize) -> f64 {
        self.points[u].dist(&self.points[v])
    }

    /// The path-loss model in force.
    #[inline]
    pub fn loss(&self) -> PathLoss {
        self.config.loss
    }

    /// The full energy configuration.
    #[inline]
    pub fn config(&self) -> EnergyConfig {
        self.config
    }

    /// Read access to the energy ledger.
    #[inline]
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Read access to the round clock.
    #[inline]
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Mutable clock access for protocols that account rounds themselves.
    #[inline]
    pub fn clock_mut(&mut self) -> &mut Clock {
        &mut self.clock
    }

    /// Builds (or reuses) the cached CSR adjacency at `radius`. Fixed-radius
    /// protocols call this once up front; every subsequent neighbour query
    /// or broadcast at a bitwise-equal radius is then a slice lookup
    /// instead of a grid scan. A second call with the same radius is free.
    ///
    /// The cached rows are in grid visit order — identical content and
    /// order to a live [`BucketGrid`] query — so switching a protocol onto
    /// the cache cannot change its energy ledger or trace.
    pub fn cache_topology(&mut self, radius: f64) {
        if self
            .topo
            .as_ref()
            .is_some_and(|t| radius_close(t.radius(), radius))
        {
            return;
        }
        if let Some(t) = self
            .prewarmed
            .iter()
            .find(|t| radius_close(t.radius(), radius))
        {
            self.topo = Some(t.clone());
            return;
        }
        self.topo = Some(std::sync::Arc::new(Topology::build(&self.grid, radius)));
    }

    /// Installs a pre-built shared topology (the instance-reuse fast path):
    /// subsequent [`RadioNet::cache_topology`] calls at the same radius
    /// reuse it instead of rebuilding. The rows must describe this
    /// network's points — [`crate::Topology::build`] over the same
    /// positions — which `Sim::from_instance` guarantees by construction.
    pub fn install_topology(&mut self, topo: std::sync::Arc<Topology>) {
        if self.topo.is_none() {
            self.topo = Some(topo.clone());
        }
        self.prewarmed.push(topo);
    }

    /// Shared handle to the cached topology, if one has been built —
    /// lets a caller keep the build alive past this run (instance reuse).
    #[inline]
    pub fn topology_handle(&self) -> Option<std::sync::Arc<Topology>> {
        self.topo.clone()
    }

    /// The cached topology, if one has been built.
    #[inline]
    pub fn topology(&self) -> Option<&Topology> {
        self.topo.as_deref()
    }

    /// The cached topology *at this radius*, if present. Callers that may
    /// run at varying radii use this to take the fast path only when it is
    /// actually valid. The match tolerates a couple of ulps (see
    /// `radius_close`): a caller that recomputes the operating radius
    /// through a different floating-point expression must not silently
    /// fall back to live-grid queries — that was a silent 4× slowdown.
    #[inline]
    pub fn topology_at(&self, radius: f64) -> Option<&Topology> {
        self.topo
            .as_deref()
            .filter(|t| radius_close(t.radius(), radius))
    }

    /// Neighbours of `u` within `radius` with distances (the unit-disk
    /// neighbourhood at the current operating radius).
    pub fn neighbors(&self, u: usize, radius: f64) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        self.neighbors_into(u, radius, &mut out);
        out
    }

    /// Fills `out` with the neighbours of `u` within `radius`, reusing the
    /// buffer's capacity. Served from the cached topology when it matches,
    /// otherwise from the grid; both produce the same list in the same
    /// order.
    pub fn neighbors_into(&self, u: usize, radius: f64, out: &mut Vec<(usize, f64)>) {
        out.clear();
        if let Some(t) = self.topology_at(radius) {
            t.extend_row_into(u, out);
        } else {
            self.grid.neighbors_within_into(u, radius, out);
        }
    }

    /// Degree of `u` at `radius`.
    pub fn degree(&self, u: usize, radius: f64) -> usize {
        if let Some(t) = self.topology_at(radius) {
            t.degree(u)
        } else {
            self.grid.degree_within(u, radius)
        }
    }

    /// The spatial index (for read-only geometric queries by protocols).
    #[inline]
    pub fn grid(&self) -> &BucketGrid<'a> {
        &self.grid
    }

    /// Sends one message from `u` to `v` with power exactly reaching `v`:
    /// charges `a·d(u,v)^α`. Power control may exceed any nominal unit-disk
    /// radius (Co-NNT escalates beyond it), so no radius check is applied
    /// here; radius-disciplined protocols should assert on their side.
    pub fn unicast(&mut self, u: usize, v: usize, kind: &'static str) {
        assert!(u != v, "node {u} cannot unicast to itself");
        debug_assert!(
            self.live(u) && self.live(v),
            "unicast {u}→{v} with a dead endpoint"
        );
        debug_assert!(
            self.awake_now(u),
            "unicast {u}→{v} from a sleeping transmitter"
        );
        let e = self.config.loss.energy(&self.points[u], &self.points[v]);
        self.ledger.charge(kind, e);
        if self.config.rx > 0.0 {
            self.ledger.charge_rx(1, self.config.rx);
        }
        let round = self.clock.now();
        let power = if self.sink.is_some() {
            self.points[u].dist(&self.points[v])
        } else {
            0.0
        };
        self.emit(|| TraceEvent::Message {
            round,
            kind,
            src: u,
            dst: Some(v),
            power,
            energy: e,
        });
    }

    /// [`RadioNet::unicast`] with the transmit energy precomputed by the
    /// caller — identical charges and trace event, but the (cacheable)
    /// path-loss evaluation is skipped. The energy must be exactly
    /// `loss().energy(&pos(u), &pos(v))`; protocols use this to memoise
    /// tree-edge energies that are charged once per phase.
    pub fn unicast_with_energy(&mut self, u: usize, v: usize, kind: &'static str, e: f64) {
        assert!(u != v, "node {u} cannot unicast to itself");
        debug_assert!(
            self.awake_now(u),
            "unicast {u}→{v} from a sleeping transmitter"
        );
        debug_assert_eq!(
            e.to_bits(),
            self.config
                .loss
                .energy(&self.points[u], &self.points[v])
                .to_bits(),
            "prepaid unicast energy must match the live path-loss value"
        );
        self.ledger.charge(kind, e);
        if self.config.rx > 0.0 {
            self.ledger.charge_rx(1, self.config.rx);
        }
        let round = self.clock.now();
        let power = if self.sink.is_some() {
            self.points[u].dist(&self.points[v])
        } else {
            0.0
        };
        self.emit(|| TraceEvent::Message {
            round,
            kind,
            src: u,
            dst: Some(v),
            power,
            energy: e,
        });
    }

    /// A request/reply exchange between `u` and `v`: two messages, total
    /// energy `2·a·d^α` (§II's bidirectional cost).
    pub fn exchange(&mut self, u: usize, v: usize, kind: &'static str) {
        self.unicast(u, v, kind);
        self.unicast(v, u, kind);
    }

    /// Local broadcast: `u` transmits once at power `radius`, reaching every
    /// node within `radius`. Charges `a·radius^α` for the single
    /// transmission and returns the receivers (excluding `u`).
    pub fn local_broadcast(
        &mut self,
        u: usize,
        radius: f64,
        kind: &'static str,
    ) -> Vec<(usize, f64)> {
        let mut receivers = Vec::new();
        self.local_broadcast_into(u, radius, kind, &mut receivers);
        receivers
    }

    /// [`RadioNet::local_broadcast`] into a caller-owned scratch buffer:
    /// identical charges, receivers, and trace event, but no per-call
    /// allocation once the buffer has warmed up. The receiver list is
    /// served from the cached topology when one matches `radius`.
    pub fn local_broadcast_into(
        &mut self,
        u: usize,
        radius: f64,
        kind: &'static str,
        receivers: &mut Vec<(usize, f64)>,
    ) {
        assert!(radius >= 0.0, "negative broadcast radius");
        debug_assert!(self.awake_now(u), "broadcast from sleeping transmitter {u}");
        let e = self.config.loss.energy_for_distance(radius);
        self.ledger.charge(kind, e);
        receivers.clear();
        if let Some(t) = self.topology_at(radius) {
            t.extend_row_into(u, receivers);
        } else {
            self.grid.neighbors_within_into(u, radius, receivers);
        }
        // Dead nodes are not delivered to: the transmission still radiates
        // (and is charged) at full power, but only live nodes hear it.
        if let Some(m) = &self.members {
            receivers.retain(|&(v, _)| m.is_live(v));
        }
        let round = self.clock.now();
        // Sleeping nodes hear nothing either — but unlike dead nodes they
        // come back. The `any_asleep_at` pre-check keeps the all-awake
        // case on the identical path (no retain call at all).
        if let Some(aw) = &self.awake {
            if aw.any_asleep_at(round) {
                receivers.retain(|&(v, _)| aw.is_awake(v, round));
            }
        }
        if self.config.rx > 0.0 {
            self.ledger
                .charge_rx(receivers.len() as u64, self.config.rx);
        }
        self.emit(|| TraceEvent::Message {
            round,
            kind,
            src: u,
            dst: None,
            power: radius,
            energy: e,
        });
    }

    /// Charges a broadcast without materialising the receiver list (for
    /// protocols that already know their neighbourhood).
    /// NOTE: under a non-zero rx cost this still charges receivers (via a
    /// degree query) so the two broadcast flavours stay energy-equivalent.
    pub fn local_broadcast_silent(&mut self, u: usize, radius: f64, kind: &'static str) {
        assert!(radius >= 0.0, "negative broadcast radius");
        debug_assert!(self.awake_now(u), "broadcast from sleeping transmitter {u}");
        let e = self.config.loss.energy_for_distance(radius);
        self.ledger.charge(kind, e);
        if self.config.rx > 0.0 {
            let deg = self.hearing_degree(u, radius) as u64;
            self.ledger.charge_rx(deg, self.config.rx);
        }
        let round = self.clock.now();
        self.emit(|| TraceEvent::Message {
            round,
            kind,
            src: u,
            dst: None,
            power: radius,
            energy: e,
        });
    }

    /// Advances the round clock by one, charging idle energy for every
    /// node under the extended model. All protocol code advances time
    /// through this (or [`RadioNet::advance_rounds`]) so idle accounting
    /// cannot be bypassed.
    pub fn tick_round(&mut self) {
        self.advance_rounds(1);
    }

    /// Advances the round clock by `k`, charging `k·n·idle_per_round`
    /// (awake live nodes only: dead nodes draw no idle power, and a node
    /// inside a sleep window pays nothing for the rounds it sleeps).
    /// With an awake schedule installed this is also where awake-round
    /// accounting happens — every clock movement goes through here, so
    /// protocols cannot bypass it.
    pub fn advance_rounds(&mut self, k: u64) {
        if k == 0 {
            return;
        }
        let from = self.clock.now();
        self.clock.advance(k);
        let to = self.clock.now();
        let mut awake_node_rounds: Option<u64> = None;
        if let Some(aw) = self.awake.as_mut() {
            let members = self.members.as_ref();
            awake_node_rounds =
                Some(aw.on_advance(from, to, |u| members.is_none_or(|m| m.is_live(u))));
        }
        if self.config.idle_per_round > 0.0 {
            match awake_node_rounds {
                // Dead nodes draw no idle power: only the live set listens.
                None => {
                    let awake = self.members.as_ref().map_or(self.n(), |m| m.live_count());
                    self.ledger
                        .charge_idle(k as f64 * awake as f64 * self.config.idle_per_round);
                }
                // `k·count` and the schedule's node-round total are exact
                // integers below 2^53, so the all-awake case multiplies
                // out bit-identically to the untracked branch above.
                Some(node_rounds) => self
                    .ledger
                    .charge_idle(node_rounds as f64 * self.config.idle_per_round),
            }
        }
        self.emit(|| TraceEvent::Rounds { from, to });
    }

    /// Charges one transmission attempt by `src` at an explicit power and
    /// energy — used by the contention layer to account ALOHA retries
    /// (each retry radiates the full transmit energy again).
    pub fn charge_attempt(&mut self, kind: &'static str, src: usize, power: f64, energy: f64) {
        self.charge_tx(kind, src, None, power, energy);
    }

    /// [`RadioNet::charge_attempt`] with an explicit destination: one
    /// transmit charge (no reception accounting — the caller decides which
    /// receivers actually hear it). The reliability layer uses this so
    /// retried unicasts keep their `dst` in the trace.
    pub fn charge_tx(
        &mut self,
        kind: &'static str,
        src: usize,
        dst: Option<usize>,
        power: f64,
        energy: f64,
    ) {
        self.ledger.charge(kind, energy);
        let round = self.clock.now();
        self.emit(|| TraceEvent::Message {
            round,
            kind,
            src,
            dst,
            power,
            energy,
        });
    }

    /// Reports a protocol phase transition to the trace sink (no energy or
    /// clock effect). `scope` namespaces the protocol (`"ghs"`, `"eopt1"`,
    /// …), `index` counts phases within it, `stage` labels the step.
    pub fn note_phase(&mut self, scope: &'static str, index: u64, stage: &'static str) {
        let round = self.clock.now();
        self.emit(|| TraceEvent::Phase {
            round,
            scope,
            index,
            stage,
        });
    }

    /// Reports a fragment merge to the trace sink (no energy or clock
    /// effect): `absorbed` fragments joined the fragment led by `leader`,
    /// which now has `size` members.
    pub fn note_merge(&mut self, leader: usize, absorbed: usize, size: usize) {
        let round = self.clock.now();
        self.emit(|| TraceEvent::Merge {
            round,
            leader,
            absorbed,
            size,
        });
    }

    /// Publishes a completed stage's resource deltas to the sink (pure
    /// telemetry: no ledger or clock effect). Called by the stage runtime
    /// at every stage boundary.
    pub fn note_stage(&mut self, mark: crate::trace::StageMark) {
        self.emit(|| TraceEvent::Stage(mark));
    }

    /// Charges `count` successful receptions under the extended model
    /// (no-op when the rx cost is zero).
    pub fn charge_receptions(&mut self, count: u64) {
        if self.config.rx > 0.0 {
            self.ledger.charge_rx(count, self.config.rx);
        }
    }

    /// Takes the ledger out (e.g. to merge into a parent protocol's stats),
    /// leaving an empty one.
    pub fn take_ledger(&mut self) -> EnergyLedger {
        std::mem::take(&mut self.ledger)
    }
}

/// Whether a cached-topology radius matches a query radius.
///
/// Bitwise equality plus a two-ulp tolerance: operating radii are always
/// recomputed through closed-form expressions (`paper_phase2_radius` and
/// friends), so a mismatch of one or two ulps means "the same radius via a
/// different floating-point expression", not a different operating radius.
/// Serving the cache there is sound — a node whose distance falls strictly
/// between two radii a couple of ulps apart would change the neighbourhood,
/// but positions are continuous samples and such coincidences do not occur
/// at f64 resolution. Genuinely different radii (protocol phase changes)
/// differ by many orders of magnitude more and still rebuild/fall through.
fn radius_close(cached: f64, query: f64) -> bool {
    if cached.to_bits() == query.to_bits() {
        return true;
    }
    cached.is_finite()
        && query.is_finite()
        && cached > 0.0
        && query > 0.0
        && cached.to_bits().abs_diff(query.to_bits()) <= 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_geom::{trial_rng, uniform_points};

    #[test]
    fn clock_advances() {
        let mut c = Clock::default();
        assert_eq!(c.now(), 0);
        c.tick();
        c.advance(4);
        assert_eq!(c.now(), 5);
    }

    #[test]
    fn unicast_charges_squared_distance() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.3, 0.4)];
        let mut net = RadioNet::new(&pts, 1.0);
        net.unicast(0, 1, "t");
        assert!((net.ledger().total_energy() - 0.25).abs() < 1e-15);
        assert_eq!(net.ledger().total_messages(), 1);
    }

    #[test]
    fn exchange_is_twice_unicast() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.3, 0.4)];
        let mut net = RadioNet::new(&pts, 1.0);
        net.exchange(0, 1, "t");
        assert!((net.ledger().total_energy() - 0.5).abs() < 1e-15);
        assert_eq!(net.ledger().total_messages(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot unicast to itself")]
    fn self_unicast_rejected() {
        let pts = vec![Point::new(0.0, 0.0)];
        let mut net = RadioNet::new(&pts, 1.0);
        net.unicast(0, 0, "t");
    }

    #[test]
    fn broadcast_charges_radius_power_and_reaches_disk() {
        let pts = vec![
            Point::new(0.5, 0.5),
            Point::new(0.55, 0.5),
            Point::new(0.9, 0.9),
        ];
        let mut net = RadioNet::new(&pts, 1.0);
        let rcv = net.local_broadcast(0, 0.1, "b");
        assert_eq!(rcv.len(), 1);
        assert_eq!(rcv[0].0, 1);
        assert!((net.ledger().total_energy() - 0.01).abs() < 1e-15);
        assert_eq!(net.ledger().total_messages(), 1);
    }

    #[test]
    fn broadcast_silent_charges_same_energy() {
        let pts = vec![Point::new(0.5, 0.5), Point::new(0.6, 0.5)];
        let mut a = RadioNet::new(&pts, 1.0);
        let mut b = RadioNet::new(&pts, 1.0);
        a.local_broadcast(0, 0.2, "b");
        b.local_broadcast_silent(0, 0.2, "b");
        assert_eq!(a.ledger().total_energy(), b.ledger().total_energy());
    }

    #[test]
    fn neighbors_respect_radius() {
        let pts = uniform_points(300, &mut trial_rng(71, 0));
        let net = RadioNet::new(&pts, 0.1);
        for u in [0usize, 100, 299] {
            let nb = net.neighbors(u, 0.1);
            for &(v, d) in &nb {
                assert!(d <= 0.1 + 1e-12);
                assert!((net.dist(u, v) - d).abs() < 1e-12);
            }
            assert_eq!(net.degree(u, 0.1), nb.len());
            let brute = (0..300)
                .filter(|&v| v != u && pts[u].dist(&pts[v]) <= 0.1)
                .count();
            assert_eq!(nb.len(), brute);
        }
    }

    #[test]
    fn queries_beyond_grid_radius_are_correct() {
        // Grid sized for 0.05 but queried at 0.5 must still be exhaustive.
        let pts = uniform_points(200, &mut trial_rng(72, 0));
        let net = RadioNet::new(&pts, 0.05);
        let nb = net.neighbors(7, 0.5);
        let brute = (0..200)
            .filter(|&v| v != 7 && pts[7].dist(&pts[v]) <= 0.5)
            .count();
        assert_eq!(nb.len(), brute);
    }

    #[test]
    fn cached_topology_broadcasts_are_bit_identical() {
        // The same broadcast sequence, once against the grid and once
        // against the cached topology, must produce identical receiver
        // lists (content and order) and identical ledgers.
        let pts = uniform_points(200, &mut trial_rng(73, 0));
        let r = 0.09;
        let mut plain = RadioNet::new(&pts, r);
        let mut cached = RadioNet::new(&pts, r);
        cached.cache_topology(r);
        assert!(cached.topology_at(r).is_some());
        assert!(cached.topology_at(r * 0.5).is_none());
        let mut buf = Vec::new();
        for u in 0..200 {
            let a = plain.local_broadcast(u, r, "b");
            cached.local_broadcast_into(u, r, "b", &mut buf);
            assert_eq!(a.len(), buf.len(), "node {u}");
            for (x, y) in a.iter().zip(buf.iter()) {
                assert_eq!(x.0, y.0);
                assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
            assert_eq!(plain.degree(u, r), cached.degree(u, r));
        }
        assert_eq!(
            plain.ledger().total_energy().to_bits(),
            cached.ledger().total_energy().to_bits()
        );
        assert_eq!(
            plain.ledger().total_messages(),
            cached.ledger().total_messages()
        );
    }

    #[test]
    fn cache_topology_is_idempotent_and_radius_checked() {
        let pts = uniform_points(50, &mut trial_rng(74, 0));
        let mut net = RadioNet::new(&pts, 0.1);
        assert!(net.topology().is_none());
        net.cache_topology(0.1);
        let edges = net.topology().unwrap().directed_edges();
        net.cache_topology(0.1); // no-op rebuild
        assert_eq!(net.topology().unwrap().directed_edges(), edges);
        net.cache_topology(0.2); // different radius → rebuilt
        assert!(net.topology_at(0.2).is_some());
        assert!(net.topology_at(0.1).is_none());
        assert!(net.topology().unwrap().directed_edges() >= edges);
    }

    #[test]
    fn neighbors_into_matches_neighbors_under_cache_mismatch() {
        // A cached topology at a *different* radius must not poison
        // queries at other radii: they fall through to the grid.
        let pts = uniform_points(150, &mut trial_rng(75, 0));
        let mut net = RadioNet::new(&pts, 0.05);
        net.cache_topology(0.05);
        let mut buf = Vec::new();
        for u in [0usize, 70, 149] {
            for r in [0.02, 0.05, 0.3] {
                net.neighbors_into(u, r, &mut buf);
                assert_eq!(buf, net.neighbors(u, r), "u={u} r={r}");
            }
        }
    }

    #[test]
    fn topology_cache_tolerates_ulp_recomputed_radius() {
        // Regression: a caller recomputing the operating radius through a
        // different floating-point expression lands a few ulps off; the
        // bitwise compare used to miss the cache silently (a 4× slowdown),
        // and a second `cache_topology` call used to rebuild from scratch.
        let pts = uniform_points(120, &mut trial_rng(76, 0));
        let r = (9.0f64 * (120f64).ln() / 120.0).sqrt();
        let mut net = RadioNet::new(&pts, r);
        net.cache_topology(r);
        for ulps in [1u64, 2] {
            let r_off = f64::from_bits(r.to_bits() + ulps);
            assert!(
                net.topology_at(r_off).is_some(),
                "+{ulps} ulp must still hit the cache"
            );
            let r_off = f64::from_bits(r.to_bits() - ulps);
            assert!(
                net.topology_at(r_off).is_some(),
                "-{ulps} ulp must still hit the cache"
            );
        }
        // Genuinely different radii still miss (and rebuild on request).
        assert!(net.topology_at(r * 0.5).is_none());
        assert!(net.topology_at(r * 1.01).is_none());
        let r_near = f64::from_bits(r.to_bits() + 1);
        net.cache_topology(r_near); // must be a no-op, not a rebuild
        assert_eq!(net.topology().unwrap().radius().to_bits(), r.to_bits());
    }

    #[test]
    fn noop_fault_plan_is_discarded() {
        use crate::fault::FaultPlan;
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.3, 0.4)];
        let mut net = RadioNet::new(&pts, 1.0);
        net.set_faults(FaultPlan::none().seed(9).retries(7));
        assert!(net.faults().is_none(), "no-op plans must be elided");
        net.set_faults(FaultPlan::none().drop_probability(0.1));
        assert!(net.faults().is_some());
        assert!(net.fault_stats().is_clean());
    }

    #[test]
    fn all_live_membership_is_discarded() {
        use crate::membership::Membership;
        let pts = uniform_points(10, &mut trial_rng(77, 0));
        let mut net = RadioNet::new(&pts, 0.3);
        net.set_members(Membership::all_live(10));
        assert!(
            net.members().is_none(),
            "all-live memberships must be elided"
        );
        let mut m = Membership::all_live(10);
        m.leave(3);
        net.set_members(m);
        assert!(net.members().is_some());
        assert!(net.live(0) && !net.live(3));
    }

    #[test]
    fn membership_filters_delivery_and_reception() {
        use crate::membership::Membership;
        let pts = uniform_points(120, &mut trial_rng(78, 0));
        let r = 0.2;
        let mut m = Membership::all_live(120);
        for u in (0..120).step_by(3) {
            m.leave(u);
        }
        let mut net = RadioNet::with_config(
            &pts,
            r,
            EnergyConfig::extended(PathLoss::paper(), 0.001, 0.0),
        );
        net.cache_topology(r);
        net.set_members(m.clone());
        let mut plain = RadioNet::new(&pts, r);
        plain.cache_topology(r);
        let mut buf = Vec::new();
        for u in [1usize, 50, 119] {
            net.local_broadcast_into(u, r, "b", &mut buf);
            assert!(buf.iter().all(|&(v, _)| m.is_live(v)), "dead receiver");
            assert_eq!(buf.len(), net.live_degree(u, r));
            let full: Vec<_> = plain
                .local_broadcast(u, r, "b")
                .into_iter()
                .filter(|&(v, _)| m.is_live(v))
                .collect();
            assert_eq!(buf, full, "live sublist must keep grid visit order");
        }
        // Silent broadcasts charge receptions for live neighbours only.
        let before = net.ledger().rx_count();
        net.local_broadcast_silent(1, r, "b");
        assert_eq!(
            net.ledger().rx_count() - before,
            net.live_degree(1, r) as u64
        );
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn membership_and_faults_are_mutually_exclusive() {
        use crate::fault::FaultPlan;
        use crate::membership::Membership;
        let pts = uniform_points(6, &mut trial_rng(79, 0));
        let mut net = RadioNet::new(&pts, 0.3);
        net.set_faults(FaultPlan::none().drop_probability(0.1));
        let mut m = Membership::all_live(6);
        m.leave(0);
        net.set_members(m);
    }

    #[test]
    fn note_fault_counts_and_traces() {
        use crate::fault::FaultKind;
        use crate::trace::MetricsSink;
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.3, 0.4)];
        let mut sink = MetricsSink::new();
        {
            let mut net = RadioNet::new(&pts, 1.0);
            net.set_sink(&mut sink);
            net.note_fault(FaultKind::Drop, "t", 0, Some(1));
            net.note_fault(FaultKind::Retry, "t", 0, Some(1));
            net.note_fault(FaultKind::Retry, "t", 0, None);
            net.note_fault(FaultKind::Timeout, "t", 1, None);
            let fs = net.fault_stats();
            assert_eq!((fs.drops, fs.retries, fs.timeouts), (1, 2, 1));
        }
        assert_eq!(sink.fault_drops(), 1);
        assert_eq!(sink.fault_retries(), 2);
        assert_eq!(sink.fault_timeouts(), 1);
    }

    #[test]
    fn charge_tx_keeps_destination_in_trace() {
        use crate::trace::{TraceEvent, TraceSink};
        #[derive(Default)]
        struct Last(Option<TraceEvent>);
        impl TraceSink for Last {
            fn record(&mut self, e: &TraceEvent) {
                self.0 = Some(e.clone());
            }
        }
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.3, 0.4)];
        let mut sink = Last::default();
        {
            let mut net = RadioNet::new(&pts, 1.0);
            net.set_sink(&mut sink);
            net.charge_tx("t", 0, Some(1), 0.5, 0.25);
            assert!((net.ledger().total_energy() - 0.25).abs() < 1e-15);
        }
        match sink.0 {
            Some(TraceEvent::Message { dst, power, .. }) => {
                assert_eq!(dst, Some(1));
                assert!((power - 0.5).abs() < 1e-15);
            }
            other => panic!("expected a message event, got {other:?}"),
        }
    }

    #[test]
    fn take_ledger_resets() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let mut net = RadioNet::new(&pts, 1.5);
        net.unicast(0, 1, "t");
        let l = net.take_ledger();
        assert_eq!(l.total_messages(), 1);
        assert_eq!(net.ledger().total_messages(), 0);
    }

    #[test]
    fn custom_loss_model_applies() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)];
        let mut net = RadioNet::with_loss(&pts, 1.0, PathLoss::new(2.0, 1.0));
        net.unicast(0, 1, "t");
        assert!((net.ledger().total_energy() - 1.0).abs() < 1e-15); // 2·0.5¹
    }
}
