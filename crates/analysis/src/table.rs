//! Fixed-width table and CSV emitters for experiment binaries.
//!
//! The bench harness prints each paper table/figure as an aligned text
//! table (for eyeballing against the paper) and can emit the same rows as
//! CSV for replotting.

use std::fmt::Write as _;

/// A simple column-oriented table.
///
/// ```
/// let mut t = emst_analysis::Table::new(["n", "energy"]);
/// t.row(["50", "1.25"]);
/// assert!(t.render().contains("energy"));
/// assert!(t.to_csv().starts_with("n,energy"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned fixed-width table with a header separator.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                // Right-align numerics-ish cells, left-align the first col.
                if i == 0 {
                    let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                } else {
                    let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                }
            }
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float compactly for table cells: fixed decimals, trimmed.
pub fn fnum(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(["n", "energy"]);
        t.row(["50", "1.25"]).row(["5000", "123.456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n') && lines[0].contains("energy"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric column: both rows end aligned.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].ends_with("123.456"));
    }

    #[test]
    fn csv_round_trip_basics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "x,y"]).row(["2", "quote\"d"]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"quote\"\"d\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(3.0, 0), "3");
        assert_eq!(fnum(-0.5, 3), "-0.500");
    }
}
