//! Ordinary-least-squares line fitting.
//!
//! Figure 3(b) of the paper plots `log W` against `log log n` and reads the
//! exponent of the `log` in the energy complexity off the slope: writing
//! `W = c·logᵇ n` gives `log W = log c + b·log log n`, so GHS / EOPT /
//! Co-NNT should show slopes ≈ 2 / 1 / 0. [`fit_line`] computes `b`, the
//! intercept, and `R²` for that figure.

/// An OLS fit `y ≈ intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination (1 for a perfect fit; 0 when the model
    /// explains nothing; defined as 1 when the response is constant and
    /// perfectly fitted).
    pub r_squared: f64,
}

impl LineFit {
    /// Predicted response at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits a line by ordinary least squares. Panics when fewer than two
/// points are given or all `x` coincide (the slope is then undefined).
///
/// ```
/// let f = emst_analysis::fit_line(&[1.0, 2.0, 3.0], &[3.0, 5.0, 7.0]);
/// assert!((f.slope - 2.0).abs() < 1e-12);
/// assert!((f.intercept - 1.0).abs() < 1e-12);
/// assert_eq!(f.r_squared, 1.0);
/// ```
pub fn fit_line(xs: &[f64], ys: &[f64]) -> LineFit {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    assert!(xs.len() >= 2, "need at least two points to fit a line");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    assert!(sxx > 0.0, "all x values coincide; slope is undefined");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (intercept + slope * x);
            e * e
        })
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LineFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Convenience for Fig 3(b): fits `log y = log c + b·log log x` over the
/// pairs with `x > e` (so `log log x > 0`) and `y > 0`; returns the fit in
/// that transformed space.
pub fn fit_loglog_exponent(ns: &[f64], ys: &[f64]) -> LineFit {
    let pts: (Vec<f64>, Vec<f64>) = ns
        .iter()
        .zip(ys)
        .filter(|(&n, &y)| n > std::f64::consts::E && y > 0.0)
        .map(|(&n, &y)| (n.ln().ln(), y.ln()))
        .unzip();
    fit_line(&pts.0, &pts.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let f = fit_line(&xs, &ys);
        assert!((f.slope - 2.5).abs() < 1e-12);
        assert!((f.intercept + 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert!((f.predict(10.0) - 24.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_reasonable_r2() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 3.0 * x + 5.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let f = fit_line(&xs, &ys);
        assert!((f.slope - 3.0).abs() < 0.01);
        assert!(f.r_squared > 0.99);
    }

    #[test]
    fn constant_response_gives_zero_slope_perfect_fit() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [4.0, 4.0, 4.0];
        let f = fit_line(&xs, &ys);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 4.0);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_rejected() {
        let _ = fit_line(&[1.0], &[2.0]);
    }

    #[test]
    #[should_panic(expected = "coincide")]
    fn vertical_line_rejected() {
        let _ = fit_line(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn loglog_exponent_recovers_power_of_log() {
        // y = 7·(ln n)³ → slope 3 in (log log n, log y) space.
        let ns: Vec<f64> = (1..=12).map(|k| (50 * k * k) as f64).collect();
        let ys: Vec<f64> = ns.iter().map(|n| 7.0 * n.ln().powi(3)).collect();
        let f = fit_loglog_exponent(&ns, &ys);
        assert!((f.slope - 3.0).abs() < 1e-9, "slope {}", f.slope);
        assert!((f.intercept - 7f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn loglog_exponent_flat_for_constant_energy() {
        let ns: Vec<f64> = vec![50.0, 100.0, 500.0, 1000.0, 5000.0];
        let ys: Vec<f64> = vec![2.0; 5];
        let f = fit_loglog_exponent(&ns, &ys);
        assert!(f.slope.abs() < 1e-9);
    }

    #[test]
    fn loglog_exponent_skips_degenerate_points() {
        // n ≤ e and y ≤ 0 rows are dropped rather than poisoning the fit.
        let ns = [2.0, 50.0, 100.0, 500.0, 1000.0];
        let ys = [0.0, 3.0_f64.ln().exp(), 3.0, 3.0, 3.0];
        let f = fit_loglog_exponent(&ns, &ys);
        assert!(f.slope.abs() < 0.2);
    }
}
