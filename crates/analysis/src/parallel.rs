//! Scoped-thread parallel map for trial fan-out.
//!
//! Experiment sweeps run many independent seeded trials; this helper
//! spreads them over the machine's cores with `std::thread::scope` — no
//! extra dependencies, deterministic output order, panics propagated.
//! Work is distributed by atomic index-stealing so unevenly sized trials
//! (e.g. different `n` per item) balance naturally.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Explicit worker-thread override (0 = unset). Set programmatically via
/// [`set_thread_override`] (the bench binaries' `--threads` flag) or, when
/// unset, read from the `EMST_THREADS` environment variable.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker-thread count used by [`parallel_map`]. `None` (or
/// `Some(0)`) clears the override, falling back to `EMST_THREADS` and then
/// `available_parallelism()`. Thread count never affects results — output
/// order and per-item computation are identical at any setting.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// The worker-thread count [`parallel_map`] will use: the programmatic
/// override if set, else `EMST_THREADS` (when parseable and non-zero),
/// else `available_parallelism()`.
pub fn effective_parallelism() -> usize {
    let explicit = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("EMST_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` in parallel, preserving order. `f` runs on up to
/// [`effective_parallelism`] worker threads; each item is processed exactly
/// once. Panics in `f` propagate to the caller.
pub fn parallel_map<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = effective_parallelism().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<O>> = (0..items.len()).map(|_| None).collect();
    {
        // Hand each worker a disjoint set of result slots via raw indexing
        // guarded by the index-stealing counter: no two workers ever
        // receive the same index, so the unsafe writes are disjoint.
        let slots_ptr = SendPtr(slots.as_mut_ptr());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let out = f(&items[i]);
                    // SAFETY: `i` is unique to this worker (fetch_add), in
                    // bounds, and the scope outlives all writes.
                    unsafe {
                        *slots_ptr.get().add(i) = Some(out);
                    }
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index was processed"))
        .collect()
}

/// A `Send`/`Copy` raw-pointer wrapper for the disjoint-slot pattern above.
/// Accessed through [`SendPtr::get`] so closures capture the whole wrapper
/// (edition-2021 disjoint capture would otherwise capture the bare pointer
/// field, which is `!Send`).
struct SendPtr<T>(*mut T);

// Manual impls: `derive` would add a spurious `T: Copy` bound.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[42u32], |&x| x + 1), vec![43]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs must all complete.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn results_can_be_heavy_types() {
        let items: Vec<usize> = (0..50).collect();
        let out = parallel_map(&items, |&n| vec![n; n]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.len(), i);
            assert!(v.iter().all(|&x| x == i));
        }
    }

    #[test]
    fn thread_override_preserves_results() {
        let items: Vec<u64> = (0..257).collect();
        let serial = {
            set_thread_override(Some(1));
            parallel_map(&items, |&x| x.wrapping_mul(0x9E37_79B9).rotate_left(7))
        };
        let wide = {
            set_thread_override(Some(8));
            parallel_map(&items, |&x| x.wrapping_mul(0x9E37_79B9).rotate_left(7))
        };
        set_thread_override(None);
        assert_eq!(serial, wide);
        assert!(effective_parallelism() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        let _ = parallel_map(&items, |&x| {
            if x == 7 {
                panic!("boom");
            }
            x
        });
    }
}
