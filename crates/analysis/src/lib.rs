//! # emst-analysis — experiment harness substrate
//!
//! Dependency-free statistics and sweep machinery used by the bench
//! binaries that regenerate the paper's tables and figures:
//!
//! * [`Summary`] — mean/σ/median/CI of trial samples;
//! * [`fit_line`] / [`fit_loglog_exponent`] — OLS fits, including the
//!   Fig 3(b) `log W` vs `log log n` slope extraction;
//! * [`sweep()`] / [`sweep_multi`] — parameter sweeps with independent
//!   seeded trials, fanned out over cores;
//! * [`parallel_map`] — scoped-thread, order-preserving parallel map;
//! * [`Table`] — fixed-width and CSV table emission;
//! * [`metrics`] — table renderers over a run's
//!   [`MetricsSink`](emst_radio::MetricsSink) aggregates.

pub mod metrics;
pub mod parallel;
pub mod regression;
pub mod summary;
pub mod svg;
pub mod sweep;
pub mod table;

pub use metrics::{kind_table, phase_table, round_bucket_table, summary_line};
pub use parallel::{effective_parallelism, parallel_map, set_thread_override};
pub use regression::{fit_line, fit_loglog_exponent, LineFit};
pub use summary::{quantile, Summary};
pub use svg::{LineChart, Scale, Series, UnitSquarePlot};
pub use sweep::{sweep, sweep_multi, SweepPoint};
pub use table::{fnum, Table};
