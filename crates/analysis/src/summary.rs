//! Descriptive statistics over trial samples.

/// Summary statistics of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean (0 for empty samples).
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for size < 2).
    pub std_dev: f64,
    /// Minimum (+∞ for empty samples).
    pub min: f64,
    /// Maximum (−∞ for empty samples).
    pub max: f64,
    /// Median (0 for empty samples).
    pub median: f64,
}

impl Summary {
    /// Computes summary statistics of `xs`.
    pub fn of(xs: &[f64]) -> Self {
        let count = xs.len();
        if count == 0 {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                median: 0.0,
            };
        }
        let mean = xs.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = xs.to_vec();
        sorted.sort_unstable_by(|a, b| a.total_cmp(b));
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median,
        }
    }

    /// Standard error of the mean (0 for size < 2).
    pub fn sem(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.std_dev / (self.count as f64).sqrt()
        }
    }

    /// Half-width of a ~95 % normal confidence interval on the mean.
    pub fn ci95(&self) -> f64 {
        1.96 * self.sem()
    }
}

/// Quantile of a sample at `q ∈ [0, 1]` by nearest-rank with linear
/// interpolation; panics on empty input or out-of-range `q`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_unstable_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let t = pos - lo as f64;
        sorted[lo] * (1.0 - t) + sorted[hi] * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn even_sample_median_interpolates() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 10.0]);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let e = Summary::of(&[]);
        assert_eq!(e.count, 0);
        assert_eq!(e.mean, 0.0);
        assert_eq!(e.sem(), 0.0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn sem_shrinks_with_sample_size() {
        let small = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let xs: Vec<f64> = (0..400).map(|i| 1.0 + (i % 4) as f64).collect();
        let large = Summary::of(&xs);
        assert!(large.sem() < small.sem());
    }

    #[test]
    fn quantiles() {
        let xs = [4.0, 1.0, 3.0, 2.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert!((quantile(&xs, 0.25) - 2.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.125) - 1.5).abs() < 1e-12); // interpolated
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quantile_rejects_empty() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    fn summary_handles_unsorted_negatives() {
        let s = Summary::of(&[-3.0, 5.0, -10.0, 2.0]);
        assert_eq!(s.min, -10.0);
        assert_eq!(s.max, 5.0);
    }
}
