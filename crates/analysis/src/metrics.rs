//! Table emitters over a [`MetricsSink`] — turn the trace-derived
//! aggregates of a run into the same aligned/CSV tables the experiment
//! binaries use for everything else.
//!
//! Used by the `emst run --metrics` CLI and the `phase_breakdown`
//! experiment binary; kept here so every consumer renders identically.

use crate::{fnum, Table};
use emst_radio::{MetricsSink, PhaseKey};

/// Per-message-kind breakdown: kind, messages, energy, share of total.
pub fn kind_table(m: &MetricsSink) -> Table {
    let total = m.total_energy();
    let mut t = Table::new(["kind", "messages", "energy", "% energy"]);
    for (kind, tally) in m.kinds() {
        t.row([
            kind.to_string(),
            tally.messages.to_string(),
            fnum(tally.energy, 6),
            fnum(100.0 * tally.energy / total.max(f64::MIN_POSITIVE), 1),
        ]);
    }
    t
}

/// Chronological per-phase breakdown: one row per phase transition seen
/// in the trace (scope, phase index, stage, start round) with the
/// messages/energy attributed to that phase. A leading `setup` row
/// collects traffic sent before the first phase marker (e.g. reactive
/// protocols, which have no orchestrated phases, put everything there).
pub fn phase_table(m: &MetricsSink) -> Table {
    let mut t = Table::new([
        "scope", "phase", "stage", "round", "messages", "energy", "% energy",
    ]);
    let total = m.total_energy().max(f64::MIN_POSITIVE);
    let mut emit = |start: Option<u64>, key: &PhaseKey| {
        let tally = m
            .phases()
            .find(|(k, _)| *k == key)
            .map(|(_, t)| *t)
            .unwrap_or_default();
        t.row([
            if key.scope.is_empty() {
                "-".to_string()
            } else {
                key.scope.to_string()
            },
            key.index.to_string(),
            key.stage.to_string(),
            start.map_or("-".to_string(), |r| r.to_string()),
            tally.messages.to_string(),
            fnum(tally.energy, 6),
            fnum(100.0 * tally.energy / total, 1),
        ]);
    };
    if m.phases().any(|(k, _)| *k == PhaseKey::SETUP) {
        emit(None, &PhaseKey::SETUP);
    }
    for (start, key) in m.phase_log() {
        emit(Some(*start), key);
    }
    t
}

/// Buckets the per-round histogram into fixed-width windows of
/// `rounds_per_bucket` rounds: bucket index, round range, messages,
/// energy. With `rounds_per_bucket = 3` this recovers, for a
/// collision-free Co-NNT run, the probe-escalation ladder (probe phase
/// `i` occupies rounds `3(i−1) .. 3i`).
pub fn round_bucket_table(m: &MetricsSink, rounds_per_bucket: u64) -> Table {
    assert!(rounds_per_bucket > 0, "bucket width must be positive");
    let mut t = Table::new(["bucket", "rounds", "messages", "energy"]);
    let mut bucket: Option<(u64, u64, f64)> = None; // (index, msgs, energy)
    let flush = |b: Option<(u64, u64, f64)>, t: &mut Table| {
        if let Some((i, msgs, energy)) = b {
            t.row([
                (i + 1).to_string(),
                format!("{}..{}", i * rounds_per_bucket, (i + 1) * rounds_per_bucket),
                msgs.to_string(),
                fnum(energy, 6),
            ]);
        }
    };
    for ((round, _), tally) in m.round_kinds() {
        let i = round / rounds_per_bucket;
        match bucket {
            Some((cur, msgs, energy)) if cur == i => {
                bucket = Some((cur, msgs + tally.messages, energy + tally.energy));
            }
            other => {
                flush(other, &mut t);
                bucket = Some((i, tally.messages, tally.energy));
            }
        }
    }
    flush(bucket, &mut t);
    t
}

/// One-line headline numbers of a run's metrics: totals, rounds, power
/// watermark and the worst single-node battery draw.
pub fn summary_line(m: &MetricsSink) -> String {
    let watermark = match m.max_power_at() {
        Some((node, round)) => format!(
            "max power {:.5} (node {node}, round {round})",
            m.max_power()
        ),
        None => "no transmissions".to_string(),
    };
    format!(
        "energy {:.6}, {} messages, {} rounds, {watermark}, max node energy {:.6}",
        m.total_energy(),
        m.total_messages(),
        m.rounds(),
        m.max_node_energy()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_radio::{TraceEvent, TraceSink};

    fn sink_with_traffic() -> MetricsSink {
        let mut m = MetricsSink::new();
        m.record(&TraceEvent::Phase {
            round: 0,
            scope: "ghs",
            index: 1,
            stage: "initiate",
        });
        m.record(&TraceEvent::Message {
            round: 0,
            kind: "ghs/initiate",
            src: 0,
            dst: Some(1),
            power: 0.1,
            energy: 0.01,
        });
        m.record(&TraceEvent::Message {
            round: 4,
            kind: "ghs/report",
            src: 1,
            dst: Some(0),
            power: 0.2,
            energy: 0.04,
        });
        m
    }

    #[test]
    fn kind_table_lists_each_kind_once() {
        let t = kind_table(&sink_with_traffic());
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert!(csv.contains("ghs/initiate,1,"));
        assert!(csv.contains("ghs/report,1,"));
    }

    #[test]
    fn phase_table_follows_the_log() {
        let t = phase_table(&sink_with_traffic());
        assert_eq!(t.len(), 1); // no setup traffic, one phase marker
        let csv = t.to_csv();
        assert!(csv.contains("ghs,1,initiate,0,2,"));
    }

    #[test]
    fn round_buckets_cover_all_traffic() {
        let t = round_bucket_table(&sink_with_traffic(), 3);
        let csv = t.to_csv();
        // Rounds 0 and 4 fall into buckets 1 (0..3) and 2 (3..6).
        assert!(csv.contains("1,0..3,1,"));
        assert!(csv.contains("2,3..6,1,"));
    }

    #[test]
    fn summary_line_mentions_watermark() {
        let s = summary_line(&sink_with_traffic());
        assert!(s.contains("2 messages"));
        assert!(s.contains("node 1, round 4"));
    }
}
