//! Minimal, dependency-free SVG chart rendering.
//!
//! The experiment binaries regenerate the paper's figures as actual
//! vector images (`--svg` flag): Fig 3(a)/(b) as multi-series line charts
//! and Fig 1 as a point/edge scatter. The renderer is intentionally
//! small — axes, ticks, legend, polylines, circles — with deterministic
//! output (stable float formatting) so the SVGs diff cleanly across runs.

use std::fmt::Write as _;

/// Colour palette for series (colour-blind-safe Okabe–Ito subset).
const PALETTE: [&str; 6] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9",
];

/// Axis scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Base-10 logarithmic axis (positive data only).
    Log,
}

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` samples in plotting order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Convenience constructor.
    pub fn new<S: Into<String>>(label: S, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// A multi-series line chart.
#[derive(Debug, Clone)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// X-axis scale.
    pub x_scale: Scale,
    /// Y-axis scale.
    pub y_scale: Scale,
    /// The series to draw.
    pub series: Vec<Series>,
}

const W: f64 = 640.0;
const H: f64 = 420.0;
const ML: f64 = 64.0; // left margin
const MR: f64 = 24.0;
const MT: f64 = 36.0;
const MB: f64 = 48.0;

fn fmt_num(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    let a = x.abs();
    if !(0.01..1000.0).contains(&a) {
        format!("{x:.1e}")
    } else if a >= 10.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

fn transform(v: f64, scale: Scale) -> f64 {
    match scale {
        Scale::Linear => v,
        Scale::Log => v.max(f64::MIN_POSITIVE).log10(),
    }
}

impl LineChart {
    /// Creates an empty linear-scale chart.
    pub fn new<S: Into<String>>(title: S, x_label: S, y_label: S) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Renders the chart as an SVG document. Panics when no finite data
    /// points exist (empty charts are a caller bug, not a rendering case).
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| {
                x.is_finite()
                    && y.is_finite()
                    && (self.x_scale == Scale::Linear || *x > 0.0)
                    && (self.y_scale == Scale::Linear || *y > 0.0)
            })
            .collect();
        assert!(!pts.is_empty(), "cannot render a chart with no data");
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            let (tx, ty) = (transform(x, self.x_scale), transform(y, self.y_scale));
            x0 = x0.min(tx);
            x1 = x1.max(tx);
            y0 = y0.min(ty);
            y1 = y1.max(ty);
        }
        if (x1 - x0).abs() < 1e-12 {
            x0 -= 0.5;
            x1 += 0.5;
        }
        if (y1 - y0).abs() < 1e-12 {
            y0 -= 0.5;
            y1 += 0.5;
        }
        // 5% padding on y.
        let pad = (y1 - y0) * 0.05;
        y0 -= pad;
        y1 += pad;

        let px = |x: f64| ML + (transform(x, self.x_scale) - x0) / (x1 - x0) * (W - ML - MR);
        let py = |y: f64| H - MB - (transform(y, self.y_scale) - y0) / (y1 - y0) * (H - MT - MB);

        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif" font-size="11">"#
        );
        let _ = writeln!(
            svg,
            r#"<rect width="{W}" height="{H}" fill="white"/>
<text x="{:.1}" y="20" text-anchor="middle" font-size="14">{}</text>"#,
            W / 2.0,
            esc(&self.title)
        );
        // Axes.
        let _ = writeln!(
            svg,
            r#"<line x1="{ML}" y1="{MT}" x2="{ML}" y2="{:.1}" stroke="black"/>
<line x1="{ML}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="black"/>"#,
            H - MB,
            H - MB,
            W - MR,
            H - MB
        );
        // Ticks: 5 per axis in transformed space.
        for i in 0..=4 {
            let t = i as f64 / 4.0;
            let tx = x0 + t * (x1 - x0);
            let ty = y0 + t * (y1 - y0);
            let (vx, vy) = match (self.x_scale, self.y_scale) {
                (Scale::Linear, Scale::Linear) => (tx, ty),
                (Scale::Log, Scale::Linear) => (10f64.powf(tx), ty),
                (Scale::Linear, Scale::Log) => (tx, 10f64.powf(ty)),
                (Scale::Log, Scale::Log) => (10f64.powf(tx), 10f64.powf(ty)),
            };
            let x_px = ML + t * (W - ML - MR);
            let y_px = H - MB - t * (H - MT - MB);
            let _ = writeln!(
                svg,
                r#"<line x1="{x_px:.1}" y1="{:.1}" x2="{x_px:.1}" y2="{:.1}" stroke="black"/>
<text x="{x_px:.1}" y="{:.1}" text-anchor="middle">{}</text>
<line x1="{:.1}" y1="{y_px:.1}" x2="{ML}" y2="{y_px:.1}" stroke="black"/>
<text x="{:.1}" y="{y_px:.1}" text-anchor="end" dominant-baseline="middle">{}</text>"#,
                H - MB,
                H - MB + 5.0,
                H - MB + 18.0,
                fmt_num(vx),
                ML - 5.0,
                ML - 8.0,
                fmt_num(vy),
            );
        }
        // Axis labels.
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">{}</text>
<text x="14" y="{:.1}" text-anchor="middle" transform="rotate(-90 14 {:.1})">{}</text>"#,
            (ML + W - MR) / 2.0,
            H - 8.0,
            esc(&self.x_label),
            (MT + H - MB) / 2.0,
            (MT + H - MB) / 2.0,
            esc(&self.y_label),
        );
        // Series.
        for (si, s) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            let mut path = String::new();
            for (i, &(x, y)) in s
                .points
                .iter()
                .filter(|(x, y)| {
                    x.is_finite()
                        && y.is_finite()
                        && (self.x_scale == Scale::Linear || *x > 0.0)
                        && (self.y_scale == Scale::Linear || *y > 0.0)
                })
                .enumerate()
            {
                let _ = write!(
                    path,
                    "{}{:.1},{:.1} ",
                    if i == 0 { "M" } else { "L" },
                    px(x),
                    py(y)
                );
            }
            let _ = writeln!(
                svg,
                r#"<path d="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                path.trim_end()
            );
            for &(x, y) in &s.points {
                if x.is_finite() && y.is_finite() {
                    let _ = writeln!(
                        svg,
                        r#"<circle cx="{:.1}" cy="{:.1}" r="2.6" fill="{color}"/>"#,
                        px(x),
                        py(y)
                    );
                }
            }
            // Legend entry.
            let ly = MT + 8.0 + si as f64 * 16.0;
            let _ = writeln!(
                svg,
                r#"<line x1="{:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>
<text x="{:.1}" y="{:.1}">{}</text>"#,
                ML + 10.0,
                ML + 34.0,
                ML + 40.0,
                ly + 4.0,
                esc(&s.label)
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

/// A scatter/graph plot over the unit square (Fig 1-style maps: points
/// coloured by class, optional edges).
#[derive(Debug, Clone, Default)]
pub struct UnitSquarePlot {
    /// Plot title.
    pub title: String,
    /// `(x, y, class)` points; class selects the palette colour.
    pub points: Vec<(f64, f64, usize)>,
    /// Edges as coordinate pairs.
    pub edges: Vec<((f64, f64), (f64, f64))>,
}

impl UnitSquarePlot {
    /// Creates an empty plot.
    pub fn new<S: Into<String>>(title: S) -> Self {
        UnitSquarePlot {
            title: title.into(),
            ..Default::default()
        }
    }

    /// Renders as a square SVG.
    pub fn render(&self) -> String {
        let side = 560.0;
        let m = 30.0;
        let px = |x: f64| m + x * (side - 2.0 * m);
        let py = |y: f64| side - m - y * (side - 2.0 * m);
        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{side}" height="{side}" viewBox="0 0 {side} {side}" font-family="sans-serif" font-size="12">"#
        );
        let _ = writeln!(
            svg,
            r#"<rect width="{side}" height="{side}" fill="white"/>
<rect x="{m}" y="{m}" width="{:.1}" height="{:.1}" fill="none" stroke="black"/>
<text x="{:.1}" y="20" text-anchor="middle" font-size="14">{}</text>"#,
            side - 2.0 * m,
            side - 2.0 * m,
            side / 2.0,
            esc(&self.title)
        );
        for &((x1, y1), (x2, y2)) in &self.edges {
            let _ = writeln!(
                svg,
                r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#999" stroke-width="0.7"/>"##,
                px(x1),
                py(y1),
                px(x2),
                py(y2)
            );
        }
        for &(x, y, class) in &self.points {
            let _ = writeln!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="2.0" fill="{}"/>"#,
                px(x),
                py(y),
                PALETTE[class % PALETTE.len()]
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_chart() -> LineChart {
        let mut c = LineChart::new("Energy vs n", "n", "energy");
        c.add(Series::new(
            "GHS",
            vec![(50.0, 100.0), (500.0, 400.0), (5000.0, 800.0)],
        ));
        c.add(Series::new(
            "EOPT",
            vec![(50.0, 25.0), (500.0, 35.0), (5000.0, 45.0)],
        ));
        c
    }

    #[test]
    fn renders_wellformed_svg() {
        let svg = demo_chart().render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Balanced: every element we emit is self-closed or closed.
        assert_eq!(svg.matches("<svg").count(), 1);
        assert_eq!(svg.matches("</svg>").count(), 1);
        // Two series → two polylines, legend labels present.
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains("GHS"));
        assert!(svg.contains("EOPT"));
        // One circle per data point.
        assert_eq!(svg.matches("<circle").count(), 6);
    }

    #[test]
    fn log_scale_positions_differ_from_linear() {
        let mut lin = demo_chart();
        lin.x_scale = Scale::Linear;
        let mut log = demo_chart();
        log.x_scale = Scale::Log;
        assert_ne!(lin.render(), log.render());
    }

    #[test]
    fn deterministic_output() {
        assert_eq!(demo_chart().render(), demo_chart().render());
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_chart_panics() {
        let c = LineChart::new("t", "x", "y");
        let _ = c.render();
    }

    #[test]
    fn log_scale_drops_nonpositive_points() {
        let mut c = LineChart::new("t", "x", "y");
        c.y_scale = Scale::Log;
        c.add(Series::new(
            "s",
            vec![(1.0, 0.0), (2.0, 10.0), (3.0, 100.0)],
        ));
        let svg = c.render();
        // The zero-y point is filtered: only two markers on the path...
        // markers are drawn for finite points regardless; the path has two
        // segments worth of coordinates (M + L).
        assert!(svg.contains("M") && svg.contains("L"));
    }

    #[test]
    fn title_is_escaped() {
        let mut c = LineChart::new("a < b & c", "x", "y");
        c.add(Series::new("s", vec![(0.0, 1.0), (1.0, 2.0)]));
        let svg = c.render();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn unit_square_plot_renders_points_and_edges() {
        let mut p = UnitSquarePlot::new("map");
        p.points.push((0.5, 0.5, 0));
        p.points.push((0.9, 0.1, 1));
        p.edges.push(((0.5, 0.5), (0.9, 0.1)));
        let svg = p.render();
        assert_eq!(svg.matches("<circle").count(), 2);
        assert!(svg.matches("<line").count() >= 1);
        assert!(svg.contains("map"));
    }

    #[test]
    fn fmt_num_ranges() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(12345.0), "1.2e4");
        assert_eq!(fmt_num(42.0), "42");
        assert_eq!(fmt_num(4.56789), "4.57");
        assert_eq!(fmt_num(0.001), "1.0e-3");
    }
}
