//! Parameter sweeps with independent seeded trials.
//!
//! Every paper figure is a sweep: for each parameter value (usually `n`),
//! run `trials` independent instances and aggregate. [`sweep`] and
//! [`sweep_multi`] wire the per-trial closure to
//! [`crate::parallel::parallel_map`] and [`crate::summary::Summary`].

use crate::parallel::parallel_map;
use crate::summary::Summary;

/// One aggregated sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint<P> {
    /// The swept parameter value.
    pub param: P,
    /// Summary over trials.
    pub summary: Summary,
    /// The raw per-trial values (trial order).
    pub values: Vec<f64>,
}

/// Runs `trials` independent evaluations of `f(param, trial)` for each
/// parameter, in parallel across all (param, trial) pairs, and aggregates
/// per parameter. Trial indices are stable, so a seeded `f` makes the
/// whole sweep reproducible.
pub fn sweep<P, F>(params: &[P], trials: usize, f: F) -> Vec<SweepPoint<P>>
where
    P: Clone + Sync,
    F: Fn(&P, u64) -> f64 + Sync,
{
    assert!(trials > 0, "need at least one trial");
    let jobs: Vec<(usize, u64)> = (0..params.len())
        .flat_map(|p| (0..trials as u64).map(move |t| (p, t)))
        .collect();
    let results = parallel_map(&jobs, |&(p, t)| f(&params[p], t));
    params
        .iter()
        .enumerate()
        .map(|(p, param)| {
            let values: Vec<f64> = (0..trials).map(|t| results[p * trials + t]).collect();
            SweepPoint {
                param: param.clone(),
                summary: Summary::of(&values),
                values,
            }
        })
        .collect()
}

/// A multi-series sweep: evaluates several labelled measurements per trial
/// (e.g. GHS / EOPT / Co-NNT energy on the *same instance*) and aggregates
/// each series separately. Sharing the instance across series removes
/// between-series sampling noise, mirroring how §VII compares algorithms.
pub fn sweep_multi<P, F, const K: usize>(
    params: &[P],
    trials: usize,
    f: F,
) -> Vec<(P, [Summary; K])>
where
    P: Clone + Sync,
    F: Fn(&P, u64) -> [f64; K] + Sync,
{
    assert!(trials > 0, "need at least one trial");
    let jobs: Vec<(usize, u64)> = (0..params.len())
        .flat_map(|p| (0..trials as u64).map(move |t| (p, t)))
        .collect();
    let results = parallel_map(&jobs, |&(p, t)| f(&params[p], t));
    params
        .iter()
        .enumerate()
        .map(|(p, param)| {
            let summaries: [Summary; K] = std::array::from_fn(|k| {
                let vals: Vec<f64> = (0..trials).map(|t| results[p * trials + t][k]).collect();
                Summary::of(&vals)
            });
            (param.clone(), summaries)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_aggregates_per_param() {
        let params = [1.0f64, 2.0, 3.0];
        let pts = sweep(&params, 4, |&p, t| p * 10.0 + t as f64);
        assert_eq!(pts.len(), 3);
        for (i, pt) in pts.iter().enumerate() {
            assert_eq!(pt.param, params[i]);
            assert_eq!(pt.values.len(), 4);
            // values are p·10 + {0,1,2,3} → mean p·10 + 1.5
            assert!((pt.summary.mean - (params[i] * 10.0 + 1.5)).abs() < 1e-12);
            assert_eq!(pt.values[2], params[i] * 10.0 + 2.0);
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let params: Vec<usize> = (0..5).collect();
        let f = |&p: &usize, t: u64| (p as f64) * 7.0 + (t as f64) * 0.5;
        let a = sweep(&params, 8, f);
        let b = sweep(&params, 8, f);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.values, y.values);
        }
    }

    #[test]
    fn sweep_multi_separates_series() {
        let params = [10usize, 20];
        let pts = sweep_multi(&params, 3, |&p, t| [p as f64, p as f64 * 2.0 + t as f64]);
        assert_eq!(pts.len(), 2);
        let (p0, s0) = &pts[0];
        assert_eq!(*p0, 10);
        assert!((s0[0].mean - 10.0).abs() < 1e-12);
        assert!((s0[1].mean - 21.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = sweep(&[1.0], 0, |&p, _| p);
    }
}
