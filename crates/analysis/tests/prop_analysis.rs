//! Property-based tests for the analysis substrate.

use emst_analysis::{fit_line, parallel_map, quantile, sweep, Summary};
use proptest::prelude::*;

proptest! {
    /// OLS recovers exact lines regardless of sampling.
    #[test]
    fn fit_line_recovers_exact_lines(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        xs in proptest::collection::vec(-1000.0f64..1000.0, 2..50),
    ) {
        // Need at least two distinct x values.
        prop_assume!(xs.iter().any(|&x| (x - xs[0]).abs() > 1e-6));
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let f = fit_line(&xs, &ys);
        prop_assert!((f.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((f.intercept - intercept).abs() < 1e-4 * (1.0 + intercept.abs()));
        prop_assert!(f.r_squared > 1.0 - 1e-9);
    }

    /// Summary invariants: min ≤ median ≤ max, mean within [min, max],
    /// σ ≥ 0, and the mean matches a direct computation.
    #[test]
    fn summary_invariants(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&xs);
        prop_assert_eq!(s.count, xs.len());
        prop_assert!(s.min <= s.median + 1e-9 && s.median <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean + 1e-6 && s.mean <= s.max + 1e-6);
        prop_assert!(s.std_dev >= 0.0);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean - mean).abs() < 1e-6 * (1.0 + mean.abs()));
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantile_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
                         qa in 0.0f64..1.0, qb in 0.0f64..1.0) {
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-12);
        let s = Summary::of(&xs);
        prop_assert!(quantile(&xs, 0.0) == s.min);
        prop_assert!(quantile(&xs, 1.0) == s.max);
    }

    /// parallel_map is exactly serial map.
    #[test]
    fn parallel_map_equals_serial(xs in proptest::collection::vec(0u64..1_000_000, 0..300)) {
        let f = |&x: &u64| x.wrapping_mul(2654435761).rotate_left(13);
        let par = parallel_map(&xs, f);
        let ser: Vec<u64> = xs.iter().map(f).collect();
        prop_assert_eq!(par, ser);
    }

    /// sweep's per-trial values land at stable (param, trial) positions.
    #[test]
    fn sweep_is_positionally_stable(nparams in 1usize..6, trials in 1usize..6) {
        let params: Vec<usize> = (0..nparams).collect();
        let pts = sweep(&params, trials, |&p, t| (p * 1000 + t as usize) as f64);
        for (i, pt) in pts.iter().enumerate() {
            for t in 0..trials {
                prop_assert_eq!(pt.values[t], (i * 1000 + t) as f64);
            }
        }
    }
}
