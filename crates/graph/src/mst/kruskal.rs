//! Kruskal's algorithm: sort edges, add any edge that joins two components.
//!
//! `O(m log m)`; the canonical correctness oracle in this workspace because
//! its proof (cut + cycle property) is the same argument that establishes
//! EOPT's exactness in §V.

use crate::adjacency::{Edge, Graph};
use crate::tree::SpanningTree;
use crate::union_find::UnionFind;

/// Minimum spanning tree of a connected graph; `None` if `g` is
/// disconnected (n ≤ 1 yields the empty tree).
pub fn kruskal_mst(g: &Graph) -> Option<SpanningTree> {
    let forest = kruskal_forest(g);
    let t = SpanningTree::new(g.n(), forest);
    if t.is_valid() {
        Some(t)
    } else {
        None
    }
}

/// Minimum spanning *forest* of an arbitrary graph: the union of MSTs of
/// its connected components. Always succeeds; the edge count is
/// `n − #components`.
pub fn kruskal_forest(g: &Graph) -> Vec<Edge> {
    let mut edges: Vec<Edge> = g.edges().to_vec();
    edges.sort_unstable_by(|a, b| {
        a.w.total_cmp(&b.w)
            .then_with(|| (a.u, a.v).cmp(&(b.u, b.v)))
    });
    let mut uf = UnionFind::new(g.n());
    let mut out = Vec::with_capacity(g.n().saturating_sub(1));
    for e in edges {
        if uf.union(e.u as usize, e.v as usize) {
            out.push(e);
            if out.len() + 1 == g.n() {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: usize, pairs: &[(usize, usize, f64)]) -> Graph {
        Graph::from_edges(
            n,
            pairs.iter().map(|&(u, v, w)| Edge::new(u, v, w)).collect(),
        )
    }

    #[test]
    fn textbook_example() {
        // Classic 4-cycle with a diagonal.
        let graph = g(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 3.0),
                (3, 0, 4.0),
                (0, 2, 5.0),
            ],
        );
        let t = kruskal_mst(&graph).unwrap();
        assert_eq!(t.cost(1.0), 6.0);
        assert_eq!(t.edge_pairs_sorted(), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn disconnected_returns_none_but_forest_succeeds() {
        let graph = g(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(kruskal_mst(&graph).is_none());
        let forest = kruskal_forest(&graph);
        assert_eq!(forest.len(), 2);
    }

    #[test]
    fn picks_lighter_parallel_route() {
        let graph = g(3, &[(0, 1, 10.0), (0, 2, 1.0), (1, 2, 1.5)]);
        let t = kruskal_mst(&graph).unwrap();
        assert_eq!(t.cost(1.0), 2.5);
        assert_eq!(t.edge_pairs_sorted(), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn single_vertex_and_empty() {
        assert!(kruskal_mst(&g(1, &[])).unwrap().is_valid());
        assert!(kruskal_mst(&g(0, &[])).unwrap().is_valid());
    }

    #[test]
    fn forest_respects_components() {
        let graph = g(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (0, 2, 3.0),
                (3, 4, 1.0),
                (4, 5, 2.0),
                (3, 5, 0.5),
            ],
        );
        let forest = kruskal_forest(&graph);
        assert_eq!(forest.len(), 4); // 6 vertices − 2 components
        let total: f64 = forest.iter().map(|e| e.w).sum();
        assert_eq!(total, 1.0 + 2.0 + 1.0 + 0.5);
    }

    #[test]
    fn deterministic_under_equal_weights() {
        // Tie-break by endpoints keeps output deterministic.
        let graph = g(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let a = kruskal_mst(&graph).unwrap();
        let b = kruskal_mst(&graph).unwrap();
        assert!(a.same_edges(&b));
        assert_eq!(a.edge_pairs_sorted(), vec![(0, 1), (0, 2)]);
    }
}
