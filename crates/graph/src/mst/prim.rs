//! Prim's algorithm with a lazy binary heap.
//!
//! `O(m log m)` over CSR adjacency. Included as an independent oracle: a
//! vertex-growing algorithm whose failure modes are disjoint from
//! Kruskal's edge-sorting ones, so agreement between the two is strong
//! evidence both are right.

use crate::adjacency::{Edge, Graph};
use crate::tree::SpanningTree;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ordered heap entry; `total_cmp` via a wrapper because `f64: !Ord`.
#[derive(Debug, PartialEq)]
struct HeapKey(f64, usize, usize); // (weight, from, to)

impl Eq for HeapKey {}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .total_cmp(&other.0)
            .then_with(|| (self.1, self.2).cmp(&(other.1, other.2)))
    }
}

/// Minimum spanning tree of a connected graph; `None` if disconnected.
pub fn prim_mst(g: &Graph) -> Option<SpanningTree> {
    let n = g.n();
    if n <= 1 {
        return Some(SpanningTree::new(n, Vec::new()));
    }
    let mut in_tree = vec![false; n];
    let mut heap: BinaryHeap<Reverse<HeapKey>> = BinaryHeap::new();
    let mut edges = Vec::with_capacity(n - 1);
    in_tree[0] = true;
    for (v, w) in g.neighbors(0) {
        heap.push(Reverse(HeapKey(w, 0, v)));
    }
    while let Some(Reverse(HeapKey(w, from, to))) = heap.pop() {
        if in_tree[to] {
            continue; // stale entry
        }
        in_tree[to] = true;
        edges.push(Edge::new(from, to, w));
        for (v, vw) in g.neighbors(to) {
            if !in_tree[v] {
                heap.push(Reverse(HeapKey(vw, to, v)));
            }
        }
        if edges.len() == n - 1 {
            break;
        }
    }
    if edges.len() == n - 1 {
        Some(SpanningTree::new(n, edges))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: usize, pairs: &[(usize, usize, f64)]) -> Graph {
        Graph::from_edges(
            n,
            pairs.iter().map(|&(u, v, w)| Edge::new(u, v, w)).collect(),
        )
    }

    #[test]
    fn matches_known_mst() {
        let graph = g(
            5,
            &[
                (0, 1, 2.0),
                (0, 3, 6.0),
                (1, 2, 3.0),
                (1, 3, 8.0),
                (1, 4, 5.0),
                (2, 4, 7.0),
                (3, 4, 9.0),
            ],
        );
        let t = prim_mst(&graph).unwrap();
        assert!(t.is_valid());
        assert_eq!(t.cost(1.0), 16.0); // 2 + 3 + 5 + 6
    }

    #[test]
    fn disconnected_returns_none() {
        let graph = g(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(prim_mst(&graph).is_none());
    }

    #[test]
    fn trivial_graphs() {
        assert!(prim_mst(&g(0, &[])).unwrap().is_valid());
        assert!(prim_mst(&g(1, &[])).unwrap().is_valid());
        let two = prim_mst(&g(2, &[(0, 1, 0.5)])).unwrap();
        assert_eq!(two.cost(1.0), 0.5);
    }

    #[test]
    fn agrees_with_kruskal_on_random_geometric_graphs() {
        use emst_geom::{trial_rng, uniform_points};
        for seed in 0..5 {
            let pts = uniform_points(200, &mut trial_rng(51, seed));
            let graph = Graph::geometric(&pts, 0.25);
            let p = prim_mst(&graph);
            let k = super::super::kruskal_mst(&graph);
            match (p, k) {
                (Some(p), Some(k)) => {
                    assert!(p.same_edges(&k), "seed {seed}");
                }
                (None, None) => {}
                (p, k) => panic!(
                    "seed {seed}: prim {:?} kruskal {:?}",
                    p.is_some(),
                    k.is_some()
                ),
            }
        }
    }

    #[test]
    fn stale_heap_entries_are_skipped() {
        // Triangle where vertex 2 is reachable via two edges; the heavier
        // must be discarded as stale.
        let graph = g(3, &[(0, 1, 1.0), (0, 2, 5.0), (1, 2, 1.0)]);
        let t = prim_mst(&graph).unwrap();
        assert_eq!(t.cost(1.0), 2.0);
    }
}
