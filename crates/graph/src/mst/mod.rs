//! Sequential minimum-spanning-tree baselines.
//!
//! Three classical algorithms over explicit graphs — Kruskal, Prim and
//! Borůvka — plus the exact Euclidean MST of a point set. They serve as
//! correctness oracles for the distributed protocols (EOPT must output the
//! exact MST, Theorem 5.3) and as the quality baseline for the §VII
//! Co-NNT-vs-MST comparison.
//!
//! With generic-position inputs (all edge weights distinct, which holds with
//! probability 1 for random points) the MST is unique, so all algorithms
//! return the same edge set; a property test asserts exactly that.

mod boruvka;
mod kruskal;
mod prim;

pub use boruvka::{boruvka_mst, boruvka_run, BoruvkaRun};
pub use kruskal::{kruskal_forest, kruskal_mst};
pub use prim::prim_mst;

use crate::adjacency::Graph;
use crate::components::Components;
use crate::tree::SpanningTree;
use emst_geom::Point;

/// Exact Euclidean MST of a point set.
///
/// ```
/// use emst_geom::Point;
/// let pts = [
///     Point::new(0.1, 0.1),
///     Point::new(0.2, 0.1),
///     Point::new(0.9, 0.9),
/// ];
/// let t = emst_graph::euclidean_mst(&pts);
/// assert!(t.is_valid());
/// assert_eq!(t.edges().len(), 2);
/// // Cost under any exponent α (§II): the same tree minimises them all.
/// assert!(t.cost(2.0) < t.cost(1.0));
/// ```
///
/// Strategy: build the RGG at a radius that is connected whp
/// (`2·√(ln n / n)`), take its MST — by the cut property, if the RGG is
/// connected its MST equals the MST of the complete Euclidean graph — and
/// double the radius until connectivity is reached (at `r ≥ √2` the RGG is
/// complete, so termination is guaranteed). Runs in `O(n log n)` expected
/// time instead of the `O(n²)` of Prim on the complete graph.
pub fn euclidean_mst(points: &[Point]) -> SpanningTree {
    let n = points.len();
    if n <= 1 {
        return SpanningTree::new(n, Vec::new());
    }
    let mut r = (2.0 * (n as f64).ln().max(1.0) / n as f64).sqrt();
    loop {
        let g = Graph::geometric(points, r);
        if Components::of(&g).is_connected() {
            return kruskal_mst(&g).expect("connected graph has an MST");
        }
        r *= 2.0;
        if r > 2.0 {
            // Complete graph fallback; cannot fail for distinct points.
            let g = Graph::geometric(points, 2.0);
            return kruskal_mst(&g).expect("complete graph has an MST");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::Edge;
    use emst_geom::{trial_rng, uniform_points};

    /// O(n²) Prim over the complete Euclidean graph, as an oracle.
    fn brute_euclidean_mst(points: &[Point]) -> SpanningTree {
        let n = points.len();
        if n <= 1 {
            return SpanningTree::new(n, Vec::new());
        }
        let mut in_tree = vec![false; n];
        let mut best = vec![f64::INFINITY; n];
        let mut best_from = vec![0usize; n];
        in_tree[0] = true;
        for j in 1..n {
            best[j] = points[0].dist(&points[j]);
        }
        let mut edges = Vec::with_capacity(n - 1);
        for _ in 1..n {
            let u = (0..n)
                .filter(|&j| !in_tree[j])
                .min_by(|&a, &b| best[a].total_cmp(&best[b]))
                .unwrap();
            edges.push(Edge::new(best_from[u], u, best[u]));
            in_tree[u] = true;
            for j in 0..n {
                if !in_tree[j] {
                    let d = points[u].dist(&points[j]);
                    if d < best[j] {
                        best[j] = d;
                        best_from[j] = u;
                    }
                }
            }
        }
        SpanningTree::new(n, edges)
    }

    #[test]
    fn euclidean_mst_matches_brute_force() {
        for seed in 0..5 {
            let pts = uniform_points(120, &mut trial_rng(41, seed));
            let fast = euclidean_mst(&pts);
            let brute = brute_euclidean_mst(&pts);
            assert!(fast.is_valid());
            assert!(
                fast.same_edges(&brute),
                "seed {seed}: cost fast {} vs brute {}",
                fast.cost(1.0),
                brute.cost(1.0)
            );
        }
    }

    #[test]
    fn euclidean_mst_tiny_instances() {
        assert!(euclidean_mst(&[]).is_valid());
        assert!(euclidean_mst(&[Point::new(0.5, 0.5)]).is_valid());
        let two = euclidean_mst(&[Point::new(0.1, 0.1), Point::new(0.9, 0.9)]);
        assert!(two.is_valid());
        assert_eq!(two.edges().len(), 1);
    }

    #[test]
    fn euclidean_mst_handles_clustered_points() {
        // Two tight clusters far apart force the radius-doubling fallback.
        let mut rng = trial_rng(42, 0);
        let mut pts =
            emst_geom::sampler::uniform_points_in_rect(30, (0.0, 0.0), (0.01, 0.01), &mut rng);
        pts.extend(emst_geom::sampler::uniform_points_in_rect(
            30,
            (0.99, 0.99),
            (1.0, 1.0),
            &mut rng,
        ));
        let t = euclidean_mst(&pts);
        assert!(t.is_valid());
        // Exactly one long bridge edge between the clusters.
        let long = t.edges().iter().filter(|e| e.w > 0.5).count();
        assert_eq!(long, 1);
        assert!(t.same_edges(&brute_euclidean_mst(&pts)));
    }

    #[test]
    fn mst_cost_known_small_case() {
        // Unit-square corners: MST is any 3 sides; total length 3, and with
        // distinct perturbation the cost is near 3.
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
        ];
        let t = euclidean_mst(&pts);
        assert!(t.is_valid());
        assert!((t.cost(1.0) - 3.0).abs() < 1e-9);
    }
}
