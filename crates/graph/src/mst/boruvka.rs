//! Borůvka's algorithm: repeated minimum-outgoing-edge contraction.
//!
//! This is the sequential skeleton of GHS — each "phase" every component
//! selects its minimum-weight outgoing edge (MOE) and all selected edges are
//! added simultaneously. `O(m log n)` total. Having it here lets the test
//! suite cross-check the *phase structure* of the distributed GHS (number of
//! phases, fragment sizes per phase) against an implementation with no
//! message-passing machinery at all.

use crate::adjacency::{Edge, Graph};
use crate::tree::SpanningTree;
use crate::union_find::UnionFind;

/// Outcome of a Borůvka run: the tree plus per-phase fragment counts
/// (including the initial `n` singletons), exposed for phase-structure
/// comparisons with distributed GHS.
#[derive(Debug, Clone)]
pub struct BoruvkaRun {
    /// The spanning tree (or forest edges if the graph is disconnected).
    pub edges: Vec<Edge>,
    /// `fragments[p]` = number of fragments at the start of phase `p`;
    /// the run stops when no fragment has an outgoing edge.
    pub fragments: Vec<usize>,
}

/// Minimum spanning tree of a connected graph; `None` if disconnected.
pub fn boruvka_mst(g: &Graph) -> Option<SpanningTree> {
    let run = boruvka_run(g);
    let t = SpanningTree::new(g.n(), run.edges);
    if t.is_valid() {
        Some(t)
    } else {
        None
    }
}

/// Full Borůvka execution with phase statistics. Works on disconnected
/// graphs (produces the minimum spanning forest).
///
/// Ties are broken by `(w, u, v)` lexicographic order, which makes the MOE
/// choice a strict total order on edges and guarantees the simultaneous
/// additions are acyclic even with duplicate weights.
pub fn boruvka_run(g: &Graph) -> BoruvkaRun {
    let n = g.n();
    let mut uf = UnionFind::new(n);
    let mut out: Vec<Edge> = Vec::with_capacity(n.saturating_sub(1));
    let mut fragments = Vec::new();
    loop {
        fragments.push(uf.set_count());
        // MOE per fragment root.
        let mut moe: Vec<Option<Edge>> = vec![None; n];
        let mut any = false;
        for e in g.edges() {
            let (ru, rv) = (uf.find(e.u as usize), uf.find(e.v as usize));
            if ru == rv {
                continue;
            }
            any = true;
            for r in [ru, rv] {
                let better = match &moe[r] {
                    None => true,
                    Some(cur) => {
                        (e.w, e.u, e.v) < (cur.w, cur.u, cur.v)
                            || (e.w == cur.w && (e.u, e.v) < (cur.u, cur.v))
                    }
                };
                if better {
                    moe[r] = Some(*e);
                }
            }
        }
        if !any {
            break;
        }
        for e in moe.iter().flatten() {
            if uf.union(e.u as usize, e.v as usize) {
                out.push(*e);
            }
        }
    }
    BoruvkaRun {
        edges: out,
        fragments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: usize, pairs: &[(usize, usize, f64)]) -> Graph {
        Graph::from_edges(
            n,
            pairs.iter().map(|&(u, v, w)| Edge::new(u, v, w)).collect(),
        )
    }

    #[test]
    fn simple_square_with_diagonal() {
        let graph = g(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 3.0),
                (3, 0, 4.0),
                (0, 2, 5.0),
            ],
        );
        let t = boruvka_mst(&graph).unwrap();
        assert_eq!(t.cost(1.0), 6.0);
    }

    #[test]
    fn phase_count_is_logarithmic() {
        // A path of 64 unit edges with distinct weights halves the number
        // of fragments each phase: ≤ log2(64) + 1 phases.
        let n = 64;
        let pairs: Vec<(usize, usize, f64)> =
            (1..n).map(|i| (i - 1, i, 1.0 + i as f64 * 1e-3)).collect();
        let run = boruvka_run(&g(n, &pairs));
        assert_eq!(run.edges.len(), n - 1);
        assert_eq!(run.fragments[0], n);
        assert!(
            run.fragments.len() <= 8,
            "too many phases: {:?}",
            run.fragments
        );
        // Fragment counts at least halve every phase.
        for w in run.fragments.windows(2) {
            assert!(w[1] <= w[0].div_ceil(2) || w[1] == 1, "{:?}", run.fragments);
        }
    }

    #[test]
    fn disconnected_gives_forest() {
        let graph = g(5, &[(0, 1, 1.0), (1, 2, 2.0), (3, 4, 1.0)]);
        assert!(boruvka_mst(&graph).is_none());
        let run = boruvka_run(&graph);
        assert_eq!(run.edges.len(), 3);
    }

    #[test]
    fn handles_duplicate_weights_without_cycles() {
        // Complete graph on 4 vertices, all weights equal: tie-breaking by
        // endpoint order must keep the simultaneous additions acyclic.
        let mut pairs = Vec::new();
        for u in 0..4usize {
            for v in (u + 1)..4 {
                pairs.push((u, v, 1.0));
            }
        }
        let t = boruvka_mst(&g(4, &pairs)).unwrap();
        assert!(t.is_valid());
    }

    #[test]
    fn agrees_with_kruskal_and_prim_on_random_graphs() {
        use emst_geom::BucketGrid;
        use emst_geom::{trial_rng, uniform_points};
        for seed in 0..5 {
            let pts = uniform_points(150, &mut trial_rng(61, seed));
            let grid = BucketGrid::for_radius(&pts, 0.3);
            let mut edges = Vec::new();
            grid.for_each_edge_within(0.3, |u, v, d| edges.push(Edge::new(u, v, d)));
            let graph = Graph::from_edges(pts.len(), edges);
            let b = boruvka_mst(&graph);
            let k = super::super::kruskal_mst(&graph);
            let p = super::super::prim_mst(&graph);
            match (b, k, p) {
                (Some(b), Some(k), Some(p)) => {
                    assert!(b.same_edges(&k), "seed {seed}");
                    assert!(b.same_edges(&p), "seed {seed}");
                }
                (None, None, None) => {}
                other => panic!("seed {seed}: inconsistent {other:?}"),
            }
        }
    }

    #[test]
    fn empty_graph_run() {
        let run = boruvka_run(&g(0, &[]));
        assert!(run.edges.is_empty());
        assert_eq!(run.fragments, vec![0]);
    }
}
