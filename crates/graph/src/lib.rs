//! # emst-graph — graph substrate
//!
//! Graphs, union–find, connected components, spanning-tree validation and
//! the sequential MST baselines (Kruskal, Prim, Borůvka) that serve as
//! correctness oracles for the distributed protocols in `emst-core`.
//!
//! The central objects:
//!
//! * [`Graph`] — CSR adjacency with a canonical undirected edge list; the
//!   random geometric graph `G(n, r)` of §II is built with
//!   [`Graph::geometric`].
//! * [`UnionFind`] — disjoint-set forest used across the workspace.
//! * [`Components`] — BFS component labelling (Theorems 5.1/5.2 experiments).
//! * [`SpanningTree`] — validated tree with the generalised cost
//!   `Σ d^α` of §II.
//! * [`mst`] — sequential baselines and the exact Euclidean MST.

pub mod adjacency;
pub mod components;
pub mod delaunay;
pub mod mst;
pub mod proximity;
pub mod tree;
pub mod union_find;

pub use adjacency::{Edge, Graph};
pub use components::{is_connected, Components};
pub use delaunay::{delaunay_edges, euclidean_mst_delaunay};
pub use mst::{
    boruvka_mst, boruvka_run, euclidean_mst, kruskal_forest, kruskal_mst, prim_mst, BoruvkaRun,
};
pub use proximity::{gabriel_graph, rng_graph};
pub use tree::{SpanningTree, TreeError};
pub use union_find::UnionFind;
