//! Disjoint-set forest (union–find) with union by rank and path halving.
//!
//! Used by Kruskal's algorithm, Borůvka's algorithm, connected-component
//! labelling, percolation cluster labelling, and by tests that validate the
//! fragment-merging behaviour of the distributed protocols. Operations are
//! amortised `O(α(n))`.

/// A disjoint-set forest over elements `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    /// Parent pointers; `parent[i] == i` for roots.
    parent: Vec<u32>,
    /// Rank upper bounds for roots.
    rank: Vec<u8>,
    /// Number of elements in each root's set (valid for roots only).
    size: Vec<u32>,
    /// Current number of disjoint sets.
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "too many elements for u32 indices");
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            size: vec![1; n],
            sets: n,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    #[inline]
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of `x`'s set, with path halving.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x as usize
    }

    /// Representative of `x`'s set without mutation (no compression); useful
    /// for read-only contexts.
    pub fn find_const(&self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`. Returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        self.size[hi] += self.size[lo];
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Canonical labelling: `labels[i]` is a dense id in `0..set_count()`
    /// shared by exactly the members of `i`'s set. Also returns per-label
    /// set sizes.
    pub fn labels(&mut self) -> (Vec<usize>, Vec<usize>) {
        let n = self.len();
        let mut label_of_root = vec![usize::MAX; n];
        let mut labels = vec![0usize; n];
        let mut sizes = Vec::new();
        for i in 0..n {
            let r = self.find(i);
            if label_of_root[r] == usize::MAX {
                label_of_root[r] = sizes.len();
                sizes.push(0);
            }
            labels[i] = label_of_root[r];
            sizes[labels[i]] += 1;
        }
        (labels, sizes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_distinct() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        assert_eq!(uf.len(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.set_size(i), 1);
        }
        assert!(!uf.same(0, 4));
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0), "repeat union must be a no-op");
        assert_eq!(uf.set_count(), 4);
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        assert!(uf.union(0, 2));
        assert!(uf.same(1, 3));
        assert_eq!(uf.set_size(3), 4);
        assert_eq!(uf.set_count(), 3);
    }

    #[test]
    fn chain_unions_collapse_to_one_set() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.set_count(), 1);
        assert_eq!(uf.set_size(0), n);
        let root = uf.find(0);
        for i in 0..n {
            assert_eq!(uf.find(i), root);
        }
    }

    #[test]
    fn find_const_agrees_with_find() {
        let mut uf = UnionFind::new(10);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(5, 6);
        for i in 0..10 {
            assert_eq!(uf.find_const(i), {
                let mut c = uf.clone();
                c.find(i)
            });
        }
    }

    #[test]
    fn labels_are_dense_and_consistent() {
        let mut uf = UnionFind::new(7);
        uf.union(0, 3);
        uf.union(3, 5);
        uf.union(1, 2);
        let (labels, sizes) = uf.labels();
        assert_eq!(sizes.len(), uf.set_count());
        assert_eq!(sizes.iter().sum::<usize>(), 7);
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[0], labels[5]);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[4]);
        // Labels are a prefix of the naturals.
        let max = *labels.iter().max().unwrap();
        assert_eq!(max + 1, sizes.len());
        assert_eq!(sizes[labels[0]], 3);
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
        let (labels, sizes) = uf.labels();
        assert!(labels.is_empty());
        assert!(sizes.is_empty());
    }

    #[test]
    fn random_unions_match_reference_partition() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let n = 200;
        let mut uf = UnionFind::new(n);
        // Reference: naive partition via repeated relabeling.
        let mut label: Vec<usize> = (0..n).collect();
        for _ in 0..300 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            let merged = uf.union(a, b);
            let (la, lb) = (label[a], label[b]);
            assert_eq!(merged, la != lb);
            if la != lb {
                for l in label.iter_mut() {
                    if *l == lb {
                        *l = la;
                    }
                }
            }
        }
        for a in 0..n {
            for b in (a + 1)..n {
                assert_eq!(uf.same(a, b), label[a] == label[b], "pair ({a},{b})");
            }
        }
    }
}
