//! Weighted undirected graphs in compressed-sparse-row form.
//!
//! The simulator and the sequential MST baselines both consume the random
//! geometric graph `G(n, r)` as an explicit edge list / CSR adjacency. CSR
//! keeps neighbour iteration allocation-free and cache-friendly, which
//! matters when sweeping n up to 5000 over many seeded trials.

use emst_geom::{BucketGrid, Point};

/// An undirected weighted edge. `u < v` is maintained by the constructors
/// so that edges compare and dedupe canonically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Lower endpoint.
    pub u: u32,
    /// Higher endpoint.
    pub v: u32,
    /// Weight (Euclidean length for geometric graphs).
    pub w: f64,
}

impl Edge {
    /// Creates an edge, normalising endpoint order.
    pub fn new(u: usize, v: usize, w: f64) -> Self {
        assert!(u != v, "self-loop ({u},{u}) is not a valid edge");
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        Edge {
            u: a as u32,
            v: b as u32,
            w,
        }
    }

    /// The endpoint of this edge that is not `x`; panics if `x` is not an
    /// endpoint.
    pub fn other(&self, x: usize) -> usize {
        if x == self.u as usize {
            self.v as usize
        } else if x == self.v as usize {
            self.u as usize
        } else {
            panic!("vertex {x} is not an endpoint of {self:?}")
        }
    }

    /// Endpoints as a `(usize, usize)` pair.
    #[inline]
    pub fn endpoints(&self) -> (usize, usize) {
        (self.u as usize, self.v as usize)
    }
}

/// A weighted undirected graph in CSR form.
#[derive(Debug, Clone)]
pub struct Graph {
    n: usize,
    /// CSR offsets of length `n + 1`.
    offsets: Vec<u32>,
    /// Neighbour vertex ids, grouped per vertex.
    targets: Vec<u32>,
    /// Weight of the corresponding `targets` entry.
    weights: Vec<f64>,
    /// The defining edge list (each undirected edge once, `u < v`).
    edges: Vec<Edge>,
}

impl Graph {
    /// Builds a graph on `n` vertices from an undirected edge list. Each
    /// edge appears once in `edges`; the CSR stores both directions.
    pub fn from_edges(n: usize, edges: Vec<Edge>) -> Self {
        let mut offsets = vec![0u32; n + 1];
        for e in &edges {
            assert!((e.v as usize) < n, "edge endpoint {} out of range", e.v);
            offsets[e.u as usize + 1] += 1;
            offsets[e.v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; edges.len() * 2];
        let mut weights = vec![0f64; edges.len() * 2];
        for e in &edges {
            let (u, v) = (e.u as usize, e.v as usize);
            targets[cursor[u] as usize] = e.v;
            weights[cursor[u] as usize] = e.w;
            cursor[u] += 1;
            targets[cursor[v] as usize] = e.u;
            weights[cursor[v] as usize] = e.w;
            cursor[v] += 1;
        }
        Graph {
            n,
            offsets,
            targets,
            weights,
            edges,
        }
    }

    /// The random geometric graph `G(points, radius)`: vertices are point
    /// indices, edges join pairs at Euclidean distance ≤ `radius`, weighted
    /// by that distance (§II).
    pub fn geometric(points: &[Point], radius: f64) -> Self {
        let grid = BucketGrid::for_radius(points, radius);
        let mut edges = Vec::new();
        grid.for_each_edge_within(radius, |u, v, d| edges.push(Edge::new(u, v, d)));
        Graph::from_edges(points.len(), edges)
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The canonical undirected edge list.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Degree of vertex `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Iterates over `(neighbour, weight)` pairs of `u`.
    #[inline]
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .zip(&self.weights[lo..hi])
            .map(|(&t, &w)| (t as usize, w))
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Average degree (`2m/n`), 0 for the empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n as f64
        }
    }

    /// Total edge weight.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_geom::{trial_rng, uniform_points};

    fn path_graph(n: usize) -> Graph {
        let edges = (1..n).map(|i| Edge::new(i - 1, i, 1.0)).collect();
        Graph::from_edges(n, edges)
    }

    #[test]
    fn edge_normalises_endpoint_order() {
        let e = Edge::new(5, 2, 0.3);
        assert_eq!(e.endpoints(), (2, 5));
        assert_eq!(e.other(2), 5);
        assert_eq!(e.other(5), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(3, 3, 1.0);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_rejects_non_endpoint() {
        let e = Edge::new(0, 1, 1.0);
        let _ = e.other(2);
    }

    #[test]
    fn path_graph_degrees() {
        let g = path_graph(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.degree(4), 1);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = Graph::from_edges(
            4,
            vec![
                Edge::new(0, 1, 0.5),
                Edge::new(1, 2, 0.25),
                Edge::new(0, 3, 1.0),
            ],
        );
        for u in 0..4 {
            for (v, w) in g.neighbors(u) {
                assert!(
                    g.neighbors(v).any(|(x, xw)| x == u && xw == w),
                    "missing reverse of ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = Graph::from_edges(0, vec![]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        let g = Graph::from_edges(3, vec![]);
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.neighbors(1).count(), 0);
    }

    #[test]
    fn geometric_graph_edges_respect_radius() {
        let mut rng = trial_rng(21, 0);
        let pts = uniform_points(300, &mut rng);
        let r = 0.1;
        let g = Graph::geometric(&pts, r);
        assert_eq!(g.n(), 300);
        for e in g.edges() {
            let d = pts[e.u as usize].dist(&pts[e.v as usize]);
            assert!(d <= r + 1e-12);
            assert!((d - e.w).abs() < 1e-12, "weight must equal distance");
        }
        // Count matches brute force.
        let brute = (0..300)
            .flat_map(|u| ((u + 1)..300).map(move |v| (u, v)))
            .filter(|&(u, v)| pts[u].dist(&pts[v]) <= r)
            .count();
        assert_eq!(g.m(), brute);
    }

    #[test]
    fn geometric_graph_density_scales_with_radius() {
        let mut rng = trial_rng(22, 0);
        let pts = uniform_points(500, &mut rng);
        let sparse = Graph::geometric(&pts, 0.03);
        let dense = Graph::geometric(&pts, 0.12);
        assert!(dense.m() > sparse.m());
        // Expected edge count ~ n²πr²/2 away from the boundary; just check
        // the ratio is in the right ballpark (area ratio is 16).
        let ratio = dense.m() as f64 / sparse.m().max(1) as f64;
        assert!(ratio > 6.0 && ratio < 30.0, "ratio {ratio}");
    }

    #[test]
    fn total_weight_sums_edges() {
        let g = Graph::from_edges(3, vec![Edge::new(0, 1, 0.25), Edge::new(1, 2, 0.5)]);
        assert!((g.total_weight() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_out_of_range() {
        let _ = Graph::from_edges(2, vec![Edge::new(0, 5, 1.0)]);
    }
}
