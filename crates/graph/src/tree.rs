//! Spanning trees: representation, validation, and cost functionals.
//!
//! The paper evaluates trees under the generalised cost
//! `Σ_{(u,v)∈T} d(u,v)^α` (§II): `α = 1` is the Euclidean MST objective,
//! `α = 2` the energy objective. Kruskal's exchange argument shows one tree
//! minimises all of them simultaneously; the A4 ablation verifies this
//! empirically.

use crate::adjacency::Edge;
use crate::union_find::UnionFind;

/// Why a candidate edge set fails to be a spanning tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// Wrong edge count: a spanning tree on `n ≥ 1` vertices has `n − 1`
    /// edges.
    WrongEdgeCount { expected: usize, actual: usize },
    /// The edges contain a cycle (some union was redundant).
    HasCycle,
    /// The edges do not connect all vertices.
    Disconnected { components: usize },
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::WrongEdgeCount { expected, actual } => {
                write!(f, "expected {expected} edges, found {actual}")
            }
            TreeError::HasCycle => write!(f, "edge set contains a cycle"),
            TreeError::Disconnected { components } => {
                write!(f, "edge set leaves {components} components")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// A candidate spanning tree on vertices `0..n`.
#[derive(Debug, Clone)]
pub struct SpanningTree {
    n: usize,
    edges: Vec<Edge>,
}

impl SpanningTree {
    /// Wraps an edge set; call [`SpanningTree::validate`] to check it.
    pub fn new(n: usize, edges: Vec<Edge>) -> Self {
        SpanningTree { n, edges }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The edge set.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Verifies the spanning-tree invariants: `n − 1` edges, acyclic,
    /// connected. The empty tree on 0 or 1 vertices is valid.
    pub fn validate(&self) -> Result<(), TreeError> {
        let expected = self.n.saturating_sub(1);
        if self.edges.len() != expected {
            return Err(TreeError::WrongEdgeCount {
                expected,
                actual: self.edges.len(),
            });
        }
        let mut uf = UnionFind::new(self.n);
        for e in &self.edges {
            if !uf.union(e.u as usize, e.v as usize) {
                return Err(TreeError::HasCycle);
            }
        }
        if self.n > 0 && uf.set_count() != 1 {
            return Err(TreeError::Disconnected {
                components: uf.set_count(),
            });
        }
        Ok(())
    }

    /// True if the invariants hold.
    pub fn is_valid(&self) -> bool {
        self.validate().is_ok()
    }

    /// Verifies the weaker *forest* invariant — acyclicity (no edge count
    /// or connectivity requirement). Partial results from degraded
    /// fault-injected runs are forests with `n − |edges|` components.
    pub fn validate_forest(&self) -> Result<(), TreeError> {
        let mut uf = UnionFind::new(self.n);
        for e in &self.edges {
            if !uf.union(e.u as usize, e.v as usize) {
                return Err(TreeError::HasCycle);
            }
        }
        Ok(())
    }

    /// True if the edge set is acyclic.
    pub fn is_forest(&self) -> bool {
        self.validate_forest().is_ok()
    }

    /// Generalised tree cost `Σ w(e)^α`. Edge weights are Euclidean
    /// lengths for geometric instances, so `alpha = 1.0` is the total edge
    /// length and `alpha = 2.0` the sum of squared lengths reported in
    /// §VII.
    pub fn cost(&self, alpha: f64) -> f64 {
        if alpha == 1.0 {
            self.edges.iter().map(|e| e.w).sum()
        } else if alpha == 2.0 {
            self.edges.iter().map(|e| e.w * e.w).sum()
        } else {
            self.edges.iter().map(|e| e.w.powf(alpha)).sum()
        }
    }

    /// Length of the longest edge (0 for trees with no edges). Bounded by
    /// the operating radius for trees built by radius-constrained
    /// algorithms; Lemma 6.3 bounds it by `Θ(√(log n / n))` whp for the
    /// diagonal-rank NNT.
    pub fn max_edge_len(&self) -> f64 {
        self.edges.iter().map(|e| e.w).fold(0.0, f64::max)
    }

    /// Vertex degrees within the tree.
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n];
        for e in &self.edges {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        deg
    }

    /// Canonical sorted list of endpoint pairs, for edge-set comparison.
    pub fn edge_pairs_sorted(&self) -> Vec<(u32, u32)> {
        let mut v: Vec<(u32, u32)> = self.edges.iter().map(|e| (e.u, e.v)).collect();
        v.sort_unstable();
        v
    }

    /// True if `self` and `other` span the same vertices with the same edge
    /// set (weights not compared — endpoints determine weights in geometric
    /// instances).
    pub fn same_edges(&self, other: &SpanningTree) -> bool {
        self.n == other.n && self.edge_pairs_sorted() == other.edge_pairs_sorted()
    }

    /// Adjacency lists of the tree (`n` small vectors).
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n];
        for e in &self.edges {
            adj[e.u as usize].push(e.v as usize);
            adj[e.v as usize].push(e.u as usize);
        }
        adj
    }

    /// BFS depth of the tree rooted at `root` (number of levels below the
    /// root on the deepest path). Used for round-complexity accounting of
    /// broadcast/convergecast along fragment trees.
    pub fn depth_from(&self, root: usize) -> usize {
        assert!(root < self.n.max(1), "root out of range");
        if self.n <= 1 {
            return 0;
        }
        let adj = self.adjacency();
        let mut depth = vec![usize::MAX; self.n];
        depth[root] = 0;
        let mut q = std::collections::VecDeque::from([root]);
        let mut max_d = 0;
        while let Some(u) = q.pop_front() {
            for &v in &adj[u] {
                if depth[v] == usize::MAX {
                    depth[v] = depth[u] + 1;
                    max_d = max_d.max(depth[v]);
                    q.push_back(v);
                }
            }
        }
        max_d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(n: usize, pairs: &[(usize, usize, f64)]) -> SpanningTree {
        SpanningTree::new(
            n,
            pairs.iter().map(|&(u, v, w)| Edge::new(u, v, w)).collect(),
        )
    }

    #[test]
    fn valid_path_tree() {
        let t = tree(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]);
        assert!(t.is_valid());
        assert_eq!(t.cost(1.0), 6.0);
        assert_eq!(t.cost(2.0), 14.0);
        assert_eq!(t.max_edge_len(), 3.0);
        assert_eq!(t.degrees(), vec![1, 2, 2, 1]);
        assert_eq!(t.depth_from(0), 3);
        assert_eq!(t.depth_from(1), 2);
    }

    #[test]
    fn wrong_edge_count_detected() {
        let t = tree(4, &[(0, 1, 1.0), (1, 2, 1.0)]);
        assert_eq!(
            t.validate(),
            Err(TreeError::WrongEdgeCount {
                expected: 3,
                actual: 2
            })
        );
    }

    #[test]
    fn cycle_detected() {
        let t = tree(4, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        assert_eq!(t.validate(), Err(TreeError::HasCycle));
    }

    #[test]
    fn disconnection_detected() {
        // Correct count, acyclic... impossible: n-1 acyclic edges on n
        // vertices always connect. Force the disconnect branch with a
        // 5-vertex set where an edge repeats → cycle fires first; so build
        // count mismatch instead and assert HasCycle is not spuriously hit.
        let t = tree(5, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]);
        assert!(matches!(
            t.validate(),
            Err(TreeError::WrongEdgeCount { .. })
        ));
    }

    #[test]
    fn empty_and_singleton_trees_valid() {
        assert!(tree(0, &[]).is_valid());
        assert!(tree(1, &[]).is_valid());
        assert_eq!(tree(1, &[]).cost(2.0), 0.0);
        assert_eq!(tree(1, &[]).max_edge_len(), 0.0);
        assert_eq!(tree(1, &[]).depth_from(0), 0);
    }

    #[test]
    fn cost_alpha_generalises() {
        let t = tree(3, &[(0, 1, 2.0), (1, 2, 3.0)]);
        assert!((t.cost(3.0) - (8.0 + 27.0)).abs() < 1e-12);
        assert!((t.cost(0.5) - (2f64.sqrt() + 3f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn same_edges_ignores_order_and_weights() {
        let a = tree(3, &[(0, 1, 1.0), (1, 2, 2.0)]);
        let b = tree(3, &[(2, 1, 9.0), (1, 0, 9.0)]);
        assert!(a.same_edges(&b));
        let c = tree(3, &[(0, 1, 1.0), (0, 2, 2.0)]);
        assert!(!a.same_edges(&c));
    }

    #[test]
    fn star_tree_depth() {
        let t = tree(5, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (0, 4, 1.0)]);
        assert_eq!(t.depth_from(0), 1);
        assert_eq!(t.depth_from(3), 2);
        assert_eq!(t.degrees()[0], 4);
    }

    #[test]
    fn display_of_errors() {
        let e = TreeError::Disconnected { components: 3 };
        assert!(format!("{e}").contains("3 components"));
        let e = TreeError::WrongEdgeCount {
            expected: 4,
            actual: 2,
        };
        assert!(format!("{e}").contains("expected 4"));
        assert!(format!("{}", TreeError::HasCycle).contains("cycle"));
    }
}
