//! Proximity graphs: the Gabriel graph and the relative neighbourhood
//! graph (RNG).
//!
//! Topology control — one of the paper's motivating applications (§I,
//! citing Santi \[24\]) — keeps a sparse subgraph over which routing and
//! broadcast stay cheap. The classical hierarchy
//!
//! ```text
//! MST ⊆ RNG ⊆ Gabriel ⊆ Delaunay
//! ```
//!
//! makes these graphs natural companions to the MST algorithms here: all
//! four are connected, planar, locally computable to different degrees,
//! and trade edge count against path quality. The implementations filter
//! the Delaunay edge set (every Gabriel/RNG edge is Delaunay), giving
//! `O(n)`-edge candidate sets and near-linear total work; the definitions
//! are checked pairwise in tests against brute force.
//!
//! * **Gabriel**: `(u,v)` is kept iff the disk with diameter `uv` contains
//!   no other point: `∀w: d²(u,w) + d²(w,v) > d²(u,v)`.
//! * **RNG**: `(u,v)` is kept iff no point is simultaneously closer to
//!   both ends: `∀w: max(d(u,w), d(w,v)) ≥ d(u,v)` ("lune" emptiness).

use crate::adjacency::{Edge, Graph};
use crate::delaunay::delaunay_edges;
use emst_geom::{BucketGrid, Point};

/// The Gabriel graph over `points`.
pub fn gabriel_graph(points: &[Point]) -> Graph {
    let candidates = delaunay_edges(points);
    let grid = BucketGrid::for_radius(points, 0.05_f64.max(typical_spacing(points.len())));
    let edges: Vec<Edge> = candidates
        .into_iter()
        .filter(|e| {
            let (u, v) = e.endpoints();
            gabriel_ok(points, &grid, u, v)
        })
        .collect();
    Graph::from_edges(points.len(), edges)
}

/// The relative neighbourhood graph over `points`.
pub fn rng_graph(points: &[Point]) -> Graph {
    let candidates = delaunay_edges(points);
    let grid = BucketGrid::for_radius(points, 0.05_f64.max(typical_spacing(points.len())));
    let edges: Vec<Edge> = candidates
        .into_iter()
        .filter(|e| {
            let (u, v) = e.endpoints();
            rng_ok(points, &grid, u, v)
        })
        .collect();
    Graph::from_edges(points.len(), edges)
}

fn typical_spacing(n: usize) -> f64 {
    (1.0 / (n.max(1) as f64)).sqrt()
}

/// Diametral-disk emptiness: no third point inside the circle with
/// diameter `uv` (boundary points do not disqualify — consistent with the
/// strict-interior definition and distinct random inputs).
fn gabriel_ok(points: &[Point], grid: &BucketGrid<'_>, u: usize, v: usize) -> bool {
    let mid = points[u].midpoint(&points[v]);
    let r2 = points[u].dist_sq(&points[v]) / 4.0;
    let mut ok = true;
    grid.for_each_in_disk(&mid, r2.sqrt(), |w, _| {
        if w != u && w != v && mid.dist_sq(&points[w]) < r2 - 1e-15 {
            ok = false;
        }
    });
    ok
}

/// Lune emptiness: no third point strictly closer to both endpoints than
/// they are to each other.
fn rng_ok(points: &[Point], grid: &BucketGrid<'_>, u: usize, v: usize) -> bool {
    let d = points[u].dist(&points[v]);
    let mut ok = true;
    // The lune is contained in the disk of radius d around the midpoint.
    let mid = points[u].midpoint(&points[v]);
    grid.for_each_in_disk(&mid, d, |w, _| {
        if w != u
            && w != v
            && points[u].dist(&points[w]) < d - 1e-15
            && points[v].dist(&points[w]) < d - 1e-15
        {
            ok = false;
        }
    });
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;
    use crate::mst::euclidean_mst;
    use emst_geom::{trial_rng, uniform_points};
    use std::collections::HashSet;

    fn edge_set(g: &Graph) -> HashSet<(u32, u32)> {
        g.edges().iter().map(|e| (e.u, e.v)).collect()
    }

    fn brute_gabriel(points: &[Point]) -> HashSet<(u32, u32)> {
        let n = points.len();
        let mut out = HashSet::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let mid = points[u].midpoint(&points[v]);
                let r2 = points[u].dist_sq(&points[v]) / 4.0;
                if (0..n)
                    .filter(|&w| w != u && w != v)
                    .all(|w| mid.dist_sq(&points[w]) >= r2 - 1e-15)
                {
                    out.insert((u as u32, v as u32));
                }
            }
        }
        out
    }

    fn brute_rng(points: &[Point]) -> HashSet<(u32, u32)> {
        let n = points.len();
        let mut out = HashSet::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let d = points[u].dist(&points[v]);
                if (0..n).filter(|&w| w != u && w != v).all(|w| {
                    points[u].dist(&points[w]) >= d - 1e-15
                        || points[v].dist(&points[w]) >= d - 1e-15
                }) {
                    out.insert((u as u32, v as u32));
                }
            }
        }
        out
    }

    #[test]
    fn gabriel_matches_brute_force() {
        for seed in 0..4 {
            let pts = uniform_points(120, &mut trial_rng(901, seed));
            assert_eq!(
                edge_set(&gabriel_graph(&pts)),
                brute_gabriel(&pts),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn rng_matches_brute_force() {
        for seed in 0..4 {
            let pts = uniform_points(120, &mut trial_rng(902, seed));
            assert_eq!(edge_set(&rng_graph(&pts)), brute_rng(&pts), "seed {seed}");
        }
    }

    #[test]
    fn hierarchy_mst_rng_gabriel_delaunay() {
        let pts = uniform_points(250, &mut trial_rng(903, 0));
        let mst: HashSet<(u32, u32)> = euclidean_mst(&pts)
            .edges()
            .iter()
            .map(|e| (e.u, e.v))
            .collect();
        let rng = edge_set(&rng_graph(&pts));
        let gg = edge_set(&gabriel_graph(&pts));
        let dt: HashSet<(u32, u32)> = delaunay_edges(&pts).iter().map(|e| (e.u, e.v)).collect();
        assert!(mst.is_subset(&rng), "MST ⊄ RNG");
        assert!(rng.is_subset(&gg), "RNG ⊄ Gabriel");
        assert!(gg.is_subset(&dt), "Gabriel ⊄ Delaunay");
        // And the containments are strict at this size.
        assert!(mst.len() < rng.len());
        assert!(rng.len() < gg.len());
        assert!(gg.len() < dt.len());
    }

    #[test]
    fn proximity_graphs_are_connected_and_sparse() {
        let pts = uniform_points(300, &mut trial_rng(904, 0));
        let gg = gabriel_graph(&pts);
        let rng = rng_graph(&pts);
        assert!(is_connected(&gg));
        assert!(is_connected(&rng));
        // Planar bounds.
        assert!(gg.m() <= 3 * pts.len() - 6);
        assert!(rng.m() <= 3 * pts.len() - 6);
        // Known expected densities for uniform points: RNG ≈ 1.27·n edges,
        // Gabriel ≈ 2·n edges; assert loose brackets.
        let rng_density = rng.m() as f64 / pts.len() as f64;
        let gg_density = gg.m() as f64 / pts.len() as f64;
        assert!(
            rng_density > 1.0 && rng_density < 1.6,
            "RNG density {rng_density}"
        );
        assert!(
            gg_density > 1.6 && gg_density < 2.4,
            "Gabriel density {gg_density}"
        );
    }

    #[test]
    fn tiny_inputs() {
        let empty: Vec<Point> = vec![];
        assert_eq!(gabriel_graph(&empty).m(), 0);
        assert_eq!(rng_graph(&empty).m(), 0);
        let two = vec![Point::new(0.2, 0.2), Point::new(0.8, 0.8)];
        assert_eq!(gabriel_graph(&two).m(), 1);
        assert_eq!(rng_graph(&two).m(), 1);
        // Three points: the longest edge of an obtuse-ish triangle drops
        // from the Gabriel graph when the opposite vertex is inside its
        // diametral disk.
        let tri = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 0.1),
        ];
        let gg = gabriel_graph(&tri);
        assert!(edge_set(&gg).contains(&(0, 2)));
        assert!(edge_set(&gg).contains(&(1, 2)));
        assert!(!edge_set(&gg).contains(&(0, 1)), "long edge must drop");
    }
}
