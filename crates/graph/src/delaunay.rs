//! Delaunay triangulation (Bowyer–Watson) and the Delaunay-based exact
//! Euclidean MST.
//!
//! The Euclidean MST is a subgraph of the Delaunay triangulation, so
//! `MST(points) = MST(Delaunay edges)` — a classical `O(n log n)`-class
//! route to the exact EMST that does not depend on a connectivity radius.
//! In this workspace it serves two roles:
//!
//! * a third, structurally independent EMST oracle (grid-Kruskal, brute
//!   Prim and Delaunay-Kruskal agree ⇒ very strong correctness evidence
//!   for the baseline the §VII quality table is measured against);
//! * a planar `O(n)`-edge backbone some topology-control schemes prefer
//!   over the `Θ(n log n)`-edge RGG (see the `topology_control` example).
//!
//! The implementation is the textbook incremental Bowyer–Watson with a
//! super-triangle, straightforward `f64` in-circumcircle tests and a small
//! safety margin. Random (generic-position) inputs — the paper's setting —
//! are handled exactly; degenerate inputs (many collinear/cocircular
//! points) may produce a triangulation that misses Delaunay edges, so
//! [`euclidean_mst_delaunay`] verifies its output spans and falls back to
//! the radius-growing method otherwise.

use crate::adjacency::Edge;
use crate::mst;
use crate::tree::SpanningTree;
use crate::union_find::UnionFind;
use emst_geom::Point;

/// A triangle by vertex indices into an internal point array (the last
/// three points are the super-triangle's vertices).
#[derive(Debug, Clone, Copy)]
struct Tri {
    v: [u32; 3],
    /// Circumcenter.
    cx: f64,
    cy: f64,
    /// Squared circumradius.
    r2: f64,
}

/// Circumcircle of three points; `None` when (near-)collinear.
fn circumcircle(a: &Point, b: &Point, c: &Point) -> Option<(f64, f64, f64)> {
    let d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
    if d.abs() < 1e-12 {
        return None;
    }
    let a2 = a.x * a.x + a.y * a.y;
    let b2 = b.x * b.x + b.y * b.y;
    let c2 = c.x * c.x + c.y * c.y;
    let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
    let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
    let dx = a.x - ux;
    let dy = a.y - uy;
    Some((ux, uy, dx * dx + dy * dy))
}

/// The Delaunay triangulation's undirected edge set over `points`
/// (indices into `points`), weighted by Euclidean length.
///
/// For fewer than 2 points the result is empty; for exactly 2 it is the
/// single connecting edge. Degenerate inputs may yield a subset of the
/// true Delaunay edges (see module docs).
pub fn delaunay_edges(points: &[Point]) -> Vec<Edge> {
    let n = points.len();
    if n < 2 {
        return Vec::new();
    }
    if n == 2 {
        return vec![Edge::new(0, 1, points[0].dist(&points[1]))];
    }
    // Working point array with the super-triangle appended. The unit
    // square is covered comfortably by this giant triangle.
    let mut pts: Vec<Point> = points.to_vec();
    let s0 = n as u32;
    let (s1, s2) = (n as u32 + 1, n as u32 + 2);
    pts.push(Point::new(-10.0, -10.0));
    pts.push(Point::new(30.0, -10.0));
    pts.push(Point::new(-10.0, 30.0));

    let make = |v: [u32; 3], pts: &[Point]| -> Option<Tri> {
        circumcircle(
            &pts[v[0] as usize],
            &pts[v[1] as usize],
            &pts[v[2] as usize],
        )
        .map(|(cx, cy, r2)| Tri { v, cx, cy, r2 })
    };
    let mut tris: Vec<Tri> =
        vec![make([s0, s1, s2], &pts).expect("super-triangle is non-degenerate")];

    let mut bad: Vec<usize> = Vec::new();
    let mut boundary: Vec<(u32, u32)> = Vec::new();
    for p in 0..n {
        let pt = pts[p];
        // Triangles whose circumcircle contains the new point. The small
        // epsilon biases towards re-triangulation, which is safe (it can
        // only produce extra candidate edges for the MST step).
        bad.clear();
        for (i, t) in tris.iter().enumerate() {
            let dx = pt.x - t.cx;
            let dy = pt.y - t.cy;
            if dx * dx + dy * dy <= t.r2 * (1.0 + 1e-12) + 1e-18 {
                bad.push(i);
            }
        }
        // Boundary of the cavity: edges appearing in exactly one bad
        // triangle.
        boundary.clear();
        for &i in &bad {
            let v = tris[i].v;
            for (a, b) in [(v[0], v[1]), (v[1], v[2]), (v[2], v[0])] {
                let key = (a.min(b), a.max(b));
                if let Some(pos) = boundary.iter().position(|&e| e == key) {
                    boundary.swap_remove(pos);
                } else {
                    boundary.push(key);
                }
            }
        }
        // Remove bad triangles (descending indices keep swap_remove sane).
        for &i in bad.iter().rev() {
            tris.swap_remove(i);
        }
        // Re-triangulate the cavity as a fan from the new point.
        for &(a, b) in &boundary {
            if let Some(t) = make([a, b, p as u32], &pts) {
                tris.push(t);
            }
        }
    }

    // Collect edges of triangles not touching the super-triangle.
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::new();
    for t in &tris {
        if t.v.iter().any(|&v| v >= n as u32) {
            continue;
        }
        for (a, b) in [(t.v[0], t.v[1]), (t.v[1], t.v[2]), (t.v[2], t.v[0])] {
            let key = (a.min(b), a.max(b));
            if seen.insert(key) {
                edges.push(Edge::new(
                    key.0 as usize,
                    key.1 as usize,
                    points[key.0 as usize].dist(&points[key.1 as usize]),
                ));
            }
        }
    }
    edges
}

/// Exact Euclidean MST via the Delaunay triangulation: Kruskal over the
/// `O(n)` Delaunay edges. Falls back to the radius-growing method
/// ([`mst::euclidean_mst`]) if the triangulation fails to span (degenerate
/// input), so the result is always a valid spanning tree for `n ≥ 1`.
pub fn euclidean_mst_delaunay(points: &[Point]) -> SpanningTree {
    let n = points.len();
    if n <= 1 {
        return SpanningTree::new(n, Vec::new());
    }
    let edges = delaunay_edges(points);
    let mut sorted = edges;
    sorted.sort_unstable_by(|a, b| {
        a.w.total_cmp(&b.w)
            .then_with(|| (a.u, a.v).cmp(&(b.u, b.v)))
    });
    let mut uf = UnionFind::new(n);
    let mut out = Vec::with_capacity(n - 1);
    for e in sorted {
        if uf.union(e.u as usize, e.v as usize) {
            out.push(e);
        }
    }
    let t = SpanningTree::new(n, out);
    if t.is_valid() {
        t
    } else {
        mst::euclidean_mst(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emst_geom::{trial_rng, uniform_points};

    /// Brute-force Delaunay check: an edge (u, v) is Delaunay iff some
    /// circle through u and v contains no other point — for testing we use
    /// the stronger triangle criterion on the produced triangulation
    /// indirectly, via the MST property and edge-count bounds.
    #[test]
    fn triangulation_edge_count_bounds() {
        // Planar graph: |E| ≤ 3n − 6; Delaunay of generic points is a
        // triangulation of the convex hull: |E| ≥ 2n − 3 for n ≥ 3... use
        // the safe lower bound n − 1 (spanning) plus planarity.
        for seed in 0..5 {
            let pts = uniform_points(200, &mut trial_rng(601, seed));
            let edges = delaunay_edges(&pts);
            assert!(edges.len() <= 3 * pts.len() - 6, "planarity violated");
            assert!(edges.len() >= pts.len() - 1, "not spanning");
        }
    }

    #[test]
    fn triangulation_spans_random_points() {
        let pts = uniform_points(300, &mut trial_rng(602, 0));
        let edges = delaunay_edges(&pts);
        let mut uf = UnionFind::new(pts.len());
        for e in &edges {
            uf.union(e.u as usize, e.v as usize);
        }
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn contains_all_nearest_neighbor_edges() {
        // The nearest-neighbour graph is a subgraph of Delaunay.
        let pts = uniform_points(150, &mut trial_rng(603, 0));
        let edges = delaunay_edges(&pts);
        let has = |u: usize, v: usize| edges.iter().any(|e| e.endpoints() == (u.min(v), u.max(v)));
        for u in 0..pts.len() {
            let nn = (0..pts.len())
                .filter(|&v| v != u)
                .min_by(|&a, &b| pts[u].dist(&pts[a]).total_cmp(&pts[u].dist(&pts[b])))
                .unwrap();
            assert!(has(u, nn), "nearest-neighbour edge ({u},{nn}) missing");
        }
    }

    #[test]
    fn delaunay_mst_matches_grid_mst() {
        for seed in 0..8 {
            let pts = uniform_points(250, &mut trial_rng(604, seed));
            let a = euclidean_mst_delaunay(&pts);
            let b = mst::euclidean_mst(&pts);
            assert!(a.is_valid());
            assert!(
                a.same_edges(&b),
                "seed {seed}: Delaunay MST {} vs grid MST {}",
                a.cost(1.0),
                b.cost(1.0)
            );
        }
    }

    #[test]
    fn empty_circumcircle_property_small() {
        // Direct Delaunay check on a small instance: for every produced
        // triangle, no input point lies strictly inside its circumcircle.
        let pts = uniform_points(60, &mut trial_rng(605, 0));
        // Re-run the internals: easiest is to re-derive triangles from the
        // edge set via the MST property — instead check pairwise: every
        // Delaunay edge admits an empty circle (the circumcircle of its
        // diametral circle shrunk): weaker but meaningful — the *diametral*
        // test characterises Gabriel edges, a subset; so check that all
        // Gabriel edges are present.
        let edges = delaunay_edges(&pts);
        let has = |u: usize, v: usize| edges.iter().any(|e| e.endpoints() == (u.min(v), u.max(v)));
        for u in 0..pts.len() {
            for v in (u + 1)..pts.len() {
                let mid = pts[u].midpoint(&pts[v]);
                let r2 = pts[u].dist_sq(&pts[v]) / 4.0;
                let gabriel = (0..pts.len())
                    .filter(|&w| w != u && w != v)
                    .all(|w| mid.dist_sq(&pts[w]) > r2 + 1e-15);
                if gabriel {
                    assert!(has(u, v), "Gabriel edge ({u},{v}) missing from Delaunay");
                }
            }
        }
    }

    #[test]
    fn tiny_inputs() {
        assert!(delaunay_edges(&[]).is_empty());
        assert!(delaunay_edges(&[Point::new(0.5, 0.5)]).is_empty());
        let two = delaunay_edges(&[Point::new(0.2, 0.2), Point::new(0.8, 0.8)]);
        assert_eq!(two.len(), 1);
        let t = euclidean_mst_delaunay(&[Point::new(0.2, 0.2), Point::new(0.8, 0.8)]);
        assert!(t.is_valid());
        assert_eq!(t.edges().len(), 1);
    }

    #[test]
    fn three_points_form_one_triangle() {
        let pts = [
            Point::new(0.1, 0.1),
            Point::new(0.9, 0.2),
            Point::new(0.5, 0.8),
        ];
        let edges = delaunay_edges(&pts);
        assert_eq!(edges.len(), 3);
    }

    #[test]
    fn collinear_input_still_yields_spanning_mst() {
        // Perfectly collinear points degenerate the triangulation; the MST
        // wrapper must fall back and still span.
        let pts: Vec<Point> = (0..20)
            .map(|i| Point::new(0.05 + 0.045 * i as f64, 0.5))
            .collect();
        let t = euclidean_mst_delaunay(&pts);
        assert!(t.is_valid(), "{:?}", t.validate());
        // The MST of collinear points is the path; cost = span length.
        assert!((t.cost(1.0) - 0.045 * 19.0).abs() < 1e-9);
    }

    #[test]
    fn clustered_points_are_handled() {
        let mut rng = trial_rng(606, 0);
        let mut pts =
            emst_geom::sampler::uniform_points_in_rect(50, (0.0, 0.0), (0.05, 0.05), &mut rng);
        pts.extend(emst_geom::sampler::uniform_points_in_rect(
            50,
            (0.95, 0.95),
            (1.0, 1.0),
            &mut rng,
        ));
        let a = euclidean_mst_delaunay(&pts);
        let b = mst::euclidean_mst(&pts);
        assert!(a.same_edges(&b));
    }
}
