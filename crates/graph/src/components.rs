//! Connected components of undirected graphs.
//!
//! Theorem 5.1/5.2 experiments need component structure of the RGG at both
//! radius regimes: connectivity testing at `r₂ = √(c₂ ln n/n)` and the
//! giant-component/small-component decomposition at `r₁ = √(c₁/n)`.

use crate::adjacency::Graph;

/// Connected-component decomposition.
#[derive(Debug, Clone)]
pub struct Components {
    /// Dense component label per vertex, in `0..count`.
    pub label: Vec<usize>,
    /// Component sizes, indexed by label.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Labels components by iterative BFS (no recursion: instances can be
    /// large and degenerate).
    pub fn of(g: &Graph) -> Self {
        let n = g.n();
        let mut label = vec![usize::MAX; n];
        let mut sizes = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        for s in 0..n {
            if label[s] != usize::MAX {
                continue;
            }
            let c = sizes.len();
            sizes.push(0);
            label[s] = c;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                sizes[c] += 1;
                for (v, _) in g.neighbors(u) {
                    if label[v] == usize::MAX {
                        label[v] = c;
                        queue.push_back(v);
                    }
                }
            }
        }
        Components { label, sizes }
    }

    /// Number of components.
    #[inline]
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// True if the graph is connected (vacuously true for the empty graph).
    #[inline]
    pub fn is_connected(&self) -> bool {
        self.count() <= 1
    }

    /// Label of the largest component, or `None` for the empty graph.
    pub fn largest(&self) -> Option<usize> {
        (0..self.sizes.len()).max_by_key(|&c| self.sizes[c])
    }

    /// Size of the largest component (0 for the empty graph).
    pub fn largest_size(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Size of the largest component as a fraction of all vertices.
    pub fn giant_fraction(&self) -> f64 {
        let n: usize = self.sizes.iter().sum();
        if n == 0 {
            0.0
        } else {
            self.largest_size() as f64 / n as f64
        }
    }

    /// Sizes of all components except the largest, descending. These are
    /// the "small components" of Theorem 5.2.
    pub fn small_component_sizes(&self) -> Vec<usize> {
        let giant = match self.largest() {
            Some(g) => g,
            None => return Vec::new(),
        };
        let mut v: Vec<usize> = (0..self.sizes.len())
            .filter(|&c| c != giant)
            .map(|c| self.sizes[c])
            .collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Vertices of component `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        (0..self.label.len())
            .filter(|&v| self.label[v] == c)
            .collect()
    }
}

/// Convenience: is the graph connected?
pub fn is_connected(g: &Graph) -> bool {
    Components::of(g).is_connected()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::Edge;

    fn graph(n: usize, pairs: &[(usize, usize)]) -> Graph {
        Graph::from_edges(
            n,
            pairs.iter().map(|&(u, v)| Edge::new(u, v, 1.0)).collect(),
        )
    }

    #[test]
    fn single_component_path() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = Components::of(&g);
        assert_eq!(c.count(), 1);
        assert!(c.is_connected());
        assert_eq!(c.largest_size(), 4);
        assert_eq!(c.giant_fraction(), 1.0);
        assert!(c.small_component_sizes().is_empty());
    }

    #[test]
    fn two_components() {
        let g = graph(5, &[(0, 1), (2, 3), (3, 4)]);
        let c = Components::of(&g);
        assert_eq!(c.count(), 2);
        assert!(!c.is_connected());
        assert_eq!(c.largest_size(), 3);
        assert_eq!(c.small_component_sizes(), vec![2]);
        assert_eq!(c.label[0], c.label[1]);
        assert_eq!(c.label[2], c.label[4]);
        assert_ne!(c.label[0], c.label[2]);
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let g = graph(4, &[(1, 2)]);
        let c = Components::of(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.largest_size(), 2);
        let mut small = c.small_component_sizes();
        small.sort_unstable();
        assert_eq!(small, vec![1, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = graph(0, &[]);
        let c = Components::of(&g);
        assert_eq!(c.count(), 0);
        assert!(c.is_connected());
        assert_eq!(c.largest(), None);
        assert_eq!(c.giant_fraction(), 0.0);
    }

    #[test]
    fn members_returns_component_vertices() {
        let g = graph(5, &[(0, 1), (2, 3), (3, 4)]);
        let c = Components::of(&g);
        let mut m = c.members(c.label[2]);
        m.sort_unstable();
        assert_eq!(m, vec![2, 3, 4]);
    }

    #[test]
    fn sizes_sum_to_n() {
        let g = graph(7, &[(0, 1), (1, 2), (4, 5)]);
        let c = Components::of(&g);
        assert_eq!(c.sizes.iter().sum::<usize>(), 7);
    }

    #[test]
    fn geometric_connectivity_at_large_radius() {
        use emst_geom::{trial_rng, uniform_points};
        let pts = uniform_points(200, &mut trial_rng(31, 0));
        // Radius √2 connects everything in the unit square.
        let g = Graph::geometric(&pts, 1.5);
        assert!(is_connected(&g));
    }

    #[test]
    fn geometric_disconnection_at_tiny_radius() {
        use emst_geom::{trial_rng, uniform_points};
        let pts = uniform_points(200, &mut trial_rng(32, 0));
        let g = Graph::geometric(&pts, 1e-6);
        let c = Components::of(&g);
        assert_eq!(c.count(), 200, "tiny radius must isolate every node");
    }
}
