//! Property-based tests for the graph substrate: the three MST algorithms
//! agree, MST optimality invariants (cut/cycle properties), and union-find
//! consistency with component labelling.

use emst_graph::{
    boruvka_mst, euclidean_mst, kruskal_mst, prim_mst, Components, Edge, Graph, SpanningTree,
    UnionFind,
};
use proptest::prelude::*;

/// Random weighted graph on `n` vertices: a random spanning-ish backbone
/// plus random extra edges, with distinct weights (perturbed).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let extra = proptest::collection::vec((0..n, 0..n, 0.0f64..1.0), 0..80);
        let backbone = proptest::collection::vec(0.0f64..1.0, n - 1);
        (Just(n), backbone, extra).prop_map(|(n, backbone, extra)| {
            let mut edges = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for (i, w) in backbone.into_iter().enumerate() {
                // chain keeps the graph connected
                let (u, v) = (i, i + 1);
                seen.insert((u, v));
                edges.push(Edge::new(u, v, w + (i as f64) * 1e-9));
            }
            for (k, (u, v, w)) in extra.into_iter().enumerate() {
                if u == v {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                if seen.insert(key) {
                    edges.push(Edge::new(u, v, w + (k as f64) * 1e-9 + 1e-7));
                }
            }
            Graph::from_edges(n, edges)
        })
    })
}

fn unit_points(max: usize) -> impl Strategy<Value = Vec<emst_geom::Point>> {
    proptest::collection::vec(
        (0.0f64..=1.0, 0.0f64..=1.0).prop_map(|(x, y)| emst_geom::Point::new(x, y)),
        2..max,
    )
}

proptest! {
    /// All three MST algorithms produce identical trees on connected graphs
    /// with distinct weights.
    #[test]
    fn mst_algorithms_agree(g in arb_graph()) {
        let k = kruskal_mst(&g).expect("backbone keeps g connected");
        let p = prim_mst(&g).expect("connected");
        let b = boruvka_mst(&g).expect("connected");
        prop_assert!(k.is_valid());
        prop_assert!(k.same_edges(&p), "kruskal != prim");
        prop_assert!(k.same_edges(&b), "kruskal != boruvka");
    }

    /// Cycle property: for every non-tree edge, every tree edge on the path
    /// between its endpoints is no heavier.
    #[test]
    fn mst_cycle_property(g in arb_graph()) {
        let t = kruskal_mst(&g).unwrap();
        let adj = t.adjacency();
        // Map tree edges to weights for path lookup.
        let mut wmap = std::collections::HashMap::new();
        for e in t.edges() {
            wmap.insert((e.u.min(e.v), e.u.max(e.v)), e.w);
        }
        let in_tree: std::collections::HashSet<(u32, u32)> =
            t.edges().iter().map(|e| (e.u, e.v)).collect();
        for e in g.edges() {
            if in_tree.contains(&(e.u, e.v)) {
                continue;
            }
            // BFS path from e.u to e.v in the tree.
            let n = g.n();
            let mut prev = vec![usize::MAX; n];
            let (src, dst) = (e.u as usize, e.v as usize);
            prev[src] = src;
            let mut q = std::collections::VecDeque::from([src]);
            while let Some(u) = q.pop_front() {
                if u == dst { break; }
                for &v in &adj[u] {
                    if prev[v] == usize::MAX {
                        prev[v] = u;
                        q.push_back(v);
                    }
                }
            }
            let mut cur = dst;
            while cur != src {
                let p = prev[cur];
                let key = ((p.min(cur)) as u32, (p.max(cur)) as u32);
                let tw = wmap[&key];
                prop_assert!(
                    tw <= e.w + 1e-12,
                    "tree edge {:?} ({}) heavier than non-tree edge ({},{}) ({})",
                    key, tw, e.u, e.v, e.w
                );
                cur = p;
            }
        }
    }

    /// The MST cost lower-bounds every other spanning tree we can build by
    /// perturbing it (swap one non-tree edge in, drop the heaviest cycle
    /// edge — the classic exchange must never reduce cost).
    #[test]
    fn mst_cost_is_minimal_among_component_trees(g in arb_graph()) {
        let t = kruskal_mst(&g).unwrap();
        let cost = t.cost(1.0);
        // Any spanning tree found by a different edge order (shuffled
        // Kruskal-by-index) costs at least as much.
        let mut uf = UnionFind::new(g.n());
        let mut alt = Vec::new();
        for e in g.edges() {  // insertion order, not weight order
            if uf.union(e.u as usize, e.v as usize) {
                alt.push(*e);
            }
        }
        let alt = SpanningTree::new(g.n(), alt);
        prop_assert!(alt.is_valid());
        prop_assert!(cost <= alt.cost(1.0) + 1e-9);
    }

    /// Components labelling agrees with union-find over the same edges.
    #[test]
    fn components_match_union_find(g in arb_graph()) {
        let c = Components::of(&g);
        let mut uf = UnionFind::new(g.n());
        for e in g.edges() {
            uf.union(e.u as usize, e.v as usize);
        }
        prop_assert_eq!(c.count(), uf.set_count());
        for u in 0..g.n() {
            for v in (u + 1)..g.n() {
                prop_assert_eq!(c.label[u] == c.label[v], uf.same(u, v));
            }
        }
    }

    /// Euclidean MST on random points is a valid tree whose edges shrink as
    /// points multiply (sanity of the Steele Θ(√n) total-length regime:
    /// cost(1.0) stays below the trivial bound n·√2).
    #[test]
    fn euclidean_mst_valid_on_random_points(pts in unit_points(60)) {
        let t = euclidean_mst(&pts);
        prop_assert!(t.is_valid());
        prop_assert!(t.cost(1.0) <= (pts.len() as f64) * std::f64::consts::SQRT_2);
        // Degree bound for Euclidean MSTs: max degree ≤ 6.
        let max_deg = t.degrees().into_iter().max().unwrap_or(0);
        prop_assert!(max_deg <= 6, "Euclidean MST degree {} > 6", max_deg);
    }

    /// Sum of squared MST edges is bounded by a constant in expectation
    /// (§III cites Θ(1)); assert the much weaker deterministic bound that
    /// it never exceeds the total length times the max edge.
    #[test]
    fn mst_squared_cost_bound(pts in unit_points(60)) {
        let t = euclidean_mst(&pts);
        let c1 = t.cost(1.0);
        let c2 = t.cost(2.0);
        prop_assert!(c2 <= c1 * t.max_edge_len() + 1e-12);
    }
}
