//! Property-based tests for the geometry substrate.

use emst_geom::{diag_rank_less, nnt_probe_phases, nnt_probe_radius, BucketGrid, PathLoss, Point};
use proptest::prelude::*;

fn unit_point() -> impl Strategy<Value = Point> {
    (0.0f64..=1.0, 0.0f64..=1.0).prop_map(|(x, y)| Point::new(x, y))
}

fn point_cloud(max: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(unit_point(), 1..max)
}

proptest! {
    /// Metric axioms for the Euclidean distance.
    #[test]
    fn euclidean_triangle_inequality(a in unit_point(), b in unit_point(), c in unit_point()) {
        prop_assert!(a.dist(&c) <= a.dist(&b) + b.dist(&c) + 1e-12);
    }

    #[test]
    fn euclidean_symmetry(a in unit_point(), b in unit_point()) {
        prop_assert!((a.dist(&b) - b.dist(&a)).abs() < 1e-15);
    }

    /// L∞ ≤ L2 ≤ √2·L∞ in the plane.
    #[test]
    fn metric_equivalence(a in unit_point(), b in unit_point()) {
        let l2 = a.dist(&b);
        let linf = a.dist_linf(&b);
        prop_assert!(linf <= l2 + 1e-15);
        prop_assert!(l2 <= linf * std::f64::consts::SQRT_2 + 1e-15);
    }

    /// The diagonal rank is a strict total order on distinct points.
    #[test]
    fn diag_rank_total_order(a in unit_point(), b in unit_point()) {
        if a != b {
            prop_assert!(diag_rank_less(&a, &b) ^ diag_rank_less(&b, &a));
        } else {
            prop_assert!(!diag_rank_less(&a, &b));
        }
    }

    #[test]
    fn diag_rank_transitive(a in unit_point(), b in unit_point(), c in unit_point()) {
        if diag_rank_less(&a, &b) && diag_rank_less(&b, &c) {
            prop_assert!(diag_rank_less(&a, &c));
        }
    }

    /// Energy model: monotone in distance, scales as d^α.
    #[test]
    fn energy_monotone_in_distance(d1 in 0.0f64..1.0, d2 in 0.0f64..1.0,
                                   alpha in 0.5f64..4.0) {
        let m = PathLoss::new(1.0, alpha);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(m.energy_for_distance(lo) <= m.energy_for_distance(hi) + 1e-15);
    }

    /// Grid disk queries agree with brute force on random clouds and radii.
    #[test]
    fn grid_disk_matches_brute_force(pts in point_cloud(120), r in 0.0f64..0.7,
                                     qraw in 0usize..1000) {
        let q = qraw % pts.len();
        let grid = BucketGrid::for_radius(&pts, r.max(1e-3));
        let mut got: Vec<usize> = Vec::new();
        grid.for_each_in_disk(&pts[q], r, |j, _| got.push(j));
        got.sort_unstable();
        let mut brute: Vec<usize> = (0..pts.len())
            .filter(|&j| pts[q].dist(&pts[j]) <= r)
            .collect();
        brute.sort_unstable();
        prop_assert_eq!(got, brute);
    }

    /// Edge enumeration yields each qualifying unordered pair exactly once.
    #[test]
    fn grid_edges_match_brute_force(pts in point_cloud(80), r in 0.01f64..0.8) {
        let grid = BucketGrid::for_radius(&pts, r);
        let mut got = Vec::new();
        grid.for_each_edge_within(r, |u, v, _| got.push((u, v)));
        got.sort_unstable();
        let mut brute = Vec::new();
        for u in 0..pts.len() {
            for v in (u + 1)..pts.len() {
                if pts[u].dist(&pts[v]) <= r {
                    brute.push((u, v));
                }
            }
        }
        prop_assert_eq!(got, brute);
    }

    /// Predicate-filtered nearest neighbour agrees with brute force.
    #[test]
    fn grid_nearest_matching_is_correct(pts in point_cloud(100), qraw in 0usize..1000) {
        let q = qraw % pts.len();
        let grid = BucketGrid::for_radius(&pts, 0.05);
        let got = grid.nearest_matching(&pts[q], q, |j| diag_rank_less(&pts[q], &pts[j]));
        let brute = (0..pts.len())
            .filter(|&j| j != q && diag_rank_less(&pts[q], &pts[j]))
            .map(|j| (j, pts[q].dist(&pts[j])))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        match (got, brute) {
            (Some((_, gd)), Some((_, bd))) => prop_assert!((gd - bd).abs() < 1e-12),
            (None, None) => {}
            (g, b) => prop_assert!(false, "mismatch {:?} vs {:?}", g, b),
        }
    }

    /// k-NN distances agree with brute force for all k.
    #[test]
    fn grid_k_nearest_is_correct(pts in point_cloud(60), qraw in 0usize..1000,
                                 k in 1usize..60) {
        let q = qraw % pts.len();
        let grid = BucketGrid::for_radius(&pts, 0.08);
        let got = grid.k_nearest(q, k);
        let mut brute: Vec<f64> = (0..pts.len())
            .filter(|&j| j != q)
            .map(|j| pts[q].dist(&pts[j]))
            .collect();
        brute.sort_unstable_by(|a, b| a.total_cmp(b));
        brute.truncate(k);
        prop_assert_eq!(got.len(), brute.len());
        for (g, b) in got.iter().zip(brute.iter()) {
            prop_assert!((g.1 - b).abs() < 1e-12);
        }
    }

    /// The three neighbour-query forms (visitor, `_into` scratch buffer,
    /// legacy `Vec`) agree with each other in content *and order*, and agree
    /// with the brute-force O(n²) scan as a set. The grid cell size is drawn
    /// independently of the query radius, so this exercises query radii both
    /// smaller and (much) larger than one cell.
    #[test]
    fn neighbor_query_forms_agree_with_brute_force(
        pts in point_cloud(100),
        cell in 0.01f64..0.3,
        r in 0.0f64..1.2,
        qraw in 0usize..1000,
    ) {
        let q = qraw % pts.len();
        let grid = BucketGrid::for_radius(&pts, cell);

        let legacy = grid.neighbors_within(q, r);
        let mut visited: Vec<(usize, f64)> = Vec::new();
        grid.for_neighbors_within(q, r, |j, d| visited.push((j, d)));
        let mut scratch = vec![(usize::MAX, f64::NAN)]; // must be cleared
        grid.neighbors_within_into(q, r, &mut scratch);

        // Exact agreement, including visit order and float bit patterns.
        prop_assert_eq!(legacy.len(), visited.len());
        prop_assert_eq!(legacy.len(), scratch.len());
        for ((a, b), c) in legacy.iter().zip(visited.iter()).zip(scratch.iter()) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.0, c.0);
            prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            prop_assert_eq!(a.1.to_bits(), c.1.to_bits());
        }

        // Set agreement with the brute-force scan.
        let mut got: Vec<usize> = legacy.iter().map(|&(j, _)| j).collect();
        got.sort_unstable();
        let mut brute: Vec<usize> = (0..pts.len())
            .filter(|&j| j != q && pts[q].dist(&pts[j]) <= r)
            .collect();
        brute.sort_unstable();
        prop_assert_eq!(got, brute);
        for &(j, d) in &legacy {
            prop_assert!((d - pts[q].dist(&pts[j])).abs() < 1e-15);
        }
    }

    /// NNT probe schedule: the last probe radius always covers l, and the
    /// penultimate one does not overshoot by more than the doubling factor.
    #[test]
    fn nnt_probe_schedule_covers(l in 0.001f64..1.5, n in 2usize..100_000) {
        let m = nnt_probe_phases(l, n);
        prop_assert!(nnt_probe_radius(m, n) >= l - 1e-12);
        if m > 1 {
            prop_assert!(nnt_probe_radius(m - 1, n) < l + 1e-9);
        }
    }
}
