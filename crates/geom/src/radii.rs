//! The paper's canonical transmission radii.
//!
//! Three radius regimes matter in the paper:
//!
//! * **Percolation radius** `r₁ = √(c₁/n)` (Theorem 5.2): above the site
//!   percolation threshold there is whp a unique giant component and every
//!   other component is trapped in a small region of ≤ β·log² n nodes.
//!   The experiments (§VII) use `r₁ = 1.4·√(1/n)`, i.e. `c₁ = 1.96`.
//! * **Connectivity radius** `r₂ = √(c₂·ln n / n)` (Theorem 5.1, after
//!   Gupta–Kumar): for `c₂ > 4`(paper's sufficient constant) the random
//!   geometric graph is connected whp. The experiments use
//!   `r₂ = 1.6·√(ln n / n)`, i.e. `c₂ = 2.56` — smaller than the sufficient
//!   constant but empirically connected at the simulated sizes.
//! * **Co-NNT probe radii** `rᵢ = √(2ⁱ/n)` (§VI): doubling-area escalation.

/// Multiplier used by §VII for the percolation radius: `r₁ = 1.4·√(1/n)`.
pub const PAPER_PHASE1_MULTIPLIER: f64 = 1.4;

/// Multiplier used by §VII for the connectivity radius:
/// `r₂ = 1.6·√(ln n / n)`.
pub const PAPER_PHASE2_MULTIPLIER: f64 = 1.6;

/// Percolation-regime radius `√(c₁/n)`.
///
/// Panics if `n == 0` or `c1 <= 0`.
#[inline]
pub fn percolation_radius(c1: f64, n: usize) -> f64 {
    assert!(n > 0, "need at least one node");
    assert!(c1 > 0.0, "c1 must be positive, got {c1}");
    (c1 / n as f64).sqrt()
}

/// Connectivity-regime radius `√(c₂·ln n / n)`.
///
/// For `n = 1` (where `ln n = 0`) this returns 0; callers should treat a
/// single node as trivially connected.
#[inline]
pub fn connectivity_radius(c2: f64, n: usize) -> f64 {
    assert!(n > 0, "need at least one node");
    assert!(c2 > 0.0, "c2 must be positive, got {c2}");
    (c2 * (n as f64).ln() / n as f64).sqrt()
}

/// The §VII phase-1 radius `1.4·√(1/n)`.
#[inline]
pub fn paper_phase1_radius(n: usize) -> f64 {
    percolation_radius(PAPER_PHASE1_MULTIPLIER * PAPER_PHASE1_MULTIPLIER, n)
}

/// The §VII phase-2 / GHS radius `1.6·√(ln n / n)`.
///
/// ```
/// let r = emst_geom::paper_phase2_radius(1000);
/// assert!((r - 1.6 * (1000f64.ln() / 1000.0).sqrt()).abs() < 1e-12);
/// ```
#[inline]
pub fn paper_phase2_radius(n: usize) -> f64 {
    connectivity_radius(PAPER_PHASE2_MULTIPLIER * PAPER_PHASE2_MULTIPLIER, n)
}

/// Co-NNT probe radius for phase `i ≥ 1`: `rᵢ = √(2ⁱ/n)` (§VI). The probed
/// disk area doubles each phase, so the expected number of higher-ranked
/// nodes heard doubles too.
#[inline]
pub fn nnt_probe_radius(i: u32, n: usize) -> f64 {
    assert!(n > 0, "need at least one node");
    assert!(i >= 1, "probe phases are 1-indexed");
    (2f64.powi(i as i32) / n as f64).sqrt()
}

/// Number of Co-NNT probe phases needed to cover a potential distance `l`:
/// `m = ⌈log₂(n·l²)⌉`, clamped to at least 1 (§VI uses `m = ⌈lg n·Lᵤ²⌉`).
#[inline]
pub fn nnt_probe_phases(l: f64, n: usize) -> u32 {
    assert!(n > 0, "need at least one node");
    if l <= 0.0 {
        return 1;
    }
    let m = (n as f64 * l * l).log2().ceil();
    if m < 1.0 {
        1
    } else {
        m as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percolation_radius_scales_as_inverse_sqrt_n() {
        let r100 = percolation_radius(1.96, 100);
        let r400 = percolation_radius(1.96, 400);
        assert!((r100 / r400 - 2.0).abs() < 1e-12);
        assert!((r100 - 0.14).abs() < 1e-12);
    }

    #[test]
    fn connectivity_radius_matches_formula() {
        let n = 1000;
        let r = connectivity_radius(2.56, n);
        let expect = (2.56 * (n as f64).ln() / n as f64).sqrt();
        assert_eq!(r, expect);
    }

    #[test]
    fn paper_radii_match_section_vii() {
        let n = 1000;
        let r1 = paper_phase1_radius(n);
        assert!((r1 - 1.4 * (1.0 / n as f64).sqrt()).abs() < 1e-12);
        let r2 = paper_phase2_radius(n);
        assert!((r2 - 1.6 * ((n as f64).ln() / n as f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn phase2_radius_exceeds_phase1_for_n_ge_3() {
        // ln n > (1.4/1.6)² ≈ 0.766 for all n ≥ 3, so the phase-2 radius is
        // strictly larger — the EOPT radius increase in Step 2 is real.
        for n in [3usize, 10, 100, 5000] {
            assert!(paper_phase2_radius(n) > paper_phase1_radius(n), "n = {n}");
        }
    }

    #[test]
    fn nnt_probe_radii_double_in_area() {
        let n = 500;
        for i in 1..10 {
            let a_i = nnt_probe_radius(i, n).powi(2);
            let a_next = nnt_probe_radius(i + 1, n).powi(2);
            assert!((a_next / a_i - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn nnt_probe_phase_count_covers_potential_distance() {
        let n = 1000;
        // The final probe radius must reach the potential distance l.
        for &l in &[0.05, 0.3, 1.0, std::f64::consts::SQRT_2] {
            let m = nnt_probe_phases(l, n);
            assert!(
                nnt_probe_radius(m, n) >= l - 1e-12,
                "l = {l}, m = {m}, r_m = {}",
                nnt_probe_radius(m, n)
            );
        }
    }

    #[test]
    fn nnt_probe_phases_at_least_one() {
        assert_eq!(nnt_probe_phases(0.0, 100), 1);
        assert_eq!(nnt_probe_phases(1e-9, 100), 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = percolation_radius(1.0, 0);
    }
}
