//! Plain-text point-set serialisation.
//!
//! Format: one `x y` pair per line (full `f64` round-trip precision),
//! `#`-prefixed comment lines and blank lines ignored. Lets experiments be
//! re-run on pinned instances and lets the `emst` CLI exchange node fields
//! with external tools.

use crate::point::Point;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Errors from point-set parsing / file handling.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line that is not two floats, with its 1-based line number.
    Parse { line: usize, content: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "line {line}: expected `x y`, found {content:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Serialises points to a writer (one `x y` per line, round-trip exact via
/// the shortest-representation float formatting).
pub fn write_points<W: Write>(mut w: W, points: &[Point]) -> Result<(), IoError> {
    writeln!(
        w,
        "# energy-mst point set: {} nodes in the unit square",
        points.len()
    )?;
    for p in points {
        writeln!(w, "{} {}", p.x, p.y)?;
    }
    Ok(())
}

/// Parses points from a reader.
pub fn read_points<R: BufRead>(r: R) -> Result<Vec<Point>, IoError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>| -> Option<f64> { s.and_then(|v| v.parse().ok()) };
        match (parse(it.next()), parse(it.next()), it.next()) {
            (Some(x), Some(y), None) => out.push(Point::new(x, y)),
            _ => {
                return Err(IoError::Parse {
                    line: i + 1,
                    content: t.to_string(),
                })
            }
        }
    }
    Ok(out)
}

/// Writes points to a file path.
pub fn save_points<P: AsRef<Path>>(path: P, points: &[Point]) -> Result<(), IoError> {
    let f = std::fs::File::create(path)?;
    write_points(BufWriter::new(f), points)
}

/// Reads points from a file path.
pub fn load_points<P: AsRef<Path>>(path: P) -> Result<Vec<Point>, IoError> {
    let f = std::fs::File::open(path)?;
    read_points(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{trial_rng, uniform_points};

    #[test]
    fn round_trip_is_bit_exact() {
        let pts = uniform_points(200, &mut trial_rng(801, 0));
        let mut buf = Vec::new();
        write_points(&mut buf, &pts).unwrap();
        let back = read_points(buf.as_slice()).unwrap();
        assert_eq!(pts, back);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# header\n\n0.25 0.75\n  # indented comment\n0.5 0.5\n\n";
        let pts = read_points(text.as_bytes()).unwrap();
        assert_eq!(pts, vec![Point::new(0.25, 0.75), Point::new(0.5, 0.5)]);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "0.1 0.2\nnot a point\n";
        let err = read_points(text.as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "not a point");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn extra_columns_are_rejected() {
        let err = read_points("0.1 0.2 0.3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
        assert!(format!("{err}").contains("line 1"));
    }

    #[test]
    fn file_round_trip() {
        let pts = uniform_points(50, &mut trial_rng(802, 0));
        let path = std::env::temp_dir().join("emst_io_test_points.txt");
        save_points(&path, &pts).unwrap();
        let back = load_points(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(pts, back);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_points("/nonexistent/emst/points.txt").unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
        assert!(format!("{err}").contains("i/o error"));
    }

    #[test]
    fn empty_input_gives_empty_set() {
        assert!(read_points("".as_bytes()).unwrap().is_empty());
        assert!(read_points("# only comments\n".as_bytes())
            .unwrap()
            .is_empty());
    }
}
