//! Bucket-grid spatial index over points in the unit square.
//!
//! Random-geometric-graph construction, nearest-neighbour queries (Co-NNT),
//! k-nearest-neighbour distances (the Lemma 4.1 lower-bound experiment) and
//! percolation cell statistics all reduce to local queries on a uniform
//! grid. With cell size `Θ(r)` and `n` uniform points, a disk query of
//! radius `r` touches `O(1)` cells and `O(n r²)` points in expectation, so
//! building the whole RGG edge list costs `O(n + |E|)`.
//!
//! Point indices are stored as `u32` internally (the simulations run at
//! `n ≤ 10⁶`, far below `u32::MAX`), halving the index memory versus
//! `usize` — see the type-size guidance in the Rust Performance Book.

use crate::point::Point;

/// A uniform bucket grid over `[0,1]²`.
///
/// The grid borrows the point slice; it is cheap to rebuild whenever the
/// operating radius changes (EOPT rebuilds between its two phases).
///
/// ```
/// use emst_geom::{BucketGrid, Point};
/// let pts = vec![
///     Point::new(0.50, 0.50),
///     Point::new(0.52, 0.50),
///     Point::new(0.90, 0.90),
/// ];
/// let grid = BucketGrid::for_radius(&pts, 0.1);
/// let nb = grid.neighbors_within(0, 0.1);
/// assert_eq!(nb.len(), 1);           // only the point 0.02 away
/// assert_eq!(nb[0].0, 1);
/// assert_eq!(grid.k_nearest(0, 2).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BucketGrid<'a> {
    points: &'a [Point],
    cell_size: f64,
    side: usize,
    /// CSR offsets: points of cell `c` are `order[cell_start[c]..cell_start[c+1]]`.
    cell_start: Vec<u32>,
    order: Vec<u32>,
}

impl<'a> BucketGrid<'a> {
    /// Builds a grid with the given cell size (must be positive). Points are
    /// expected in the unit square; out-of-range coordinates are clamped to
    /// the boundary cells so queries remain correct for points *on* the
    /// border (x = 1.0 or y = 1.0).
    pub fn new(points: &'a [Point], cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive and finite, got {cell_size}"
        );
        assert!(
            points.len() < u32::MAX as usize,
            "too many points for u32 indices"
        );
        let side = ((1.0 / cell_size).ceil() as usize).max(1);
        let ncells = side * side;
        let mut counts = vec![0u32; ncells + 1];
        let cell_idx = |p: &Point| -> usize {
            let cx = ((p.x / cell_size) as usize).min(side - 1);
            let cy = ((p.y / cell_size) as usize).min(side - 1);
            cy * side + cx
        };
        for p in points {
            counts[cell_idx(p) + 1] += 1;
        }
        for c in 0..ncells {
            counts[c + 1] += counts[c];
        }
        let cell_start = counts.clone();
        let mut cursor = counts;
        let mut order = vec![0u32; points.len()];
        for (i, p) in points.iter().enumerate() {
            let c = cell_idx(p);
            order[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        BucketGrid {
            points,
            cell_size,
            side,
            cell_start,
            order,
        }
    }

    /// Convenience constructor sizing cells to the query radius (one ring of
    /// neighbouring cells covers a disk of that radius).
    pub fn for_radius(points: &'a [Point], radius: f64) -> Self {
        // Cap the cell count: for very small radii a cell per radius would
        // allocate quadratically many empty cells. n cells per side keeps
        // build cost O(n) while still bounding points per cell.
        let n = points.len().max(1);
        let min_cell = 1.0 / (n as f64).sqrt().ceil().max(1.0) / 4.0;
        BucketGrid::new(points, radius.max(min_cell))
    }

    /// The points this grid indexes.
    #[inline]
    pub fn points(&self) -> &'a [Point] {
        self.points
    }

    /// Grid cell size.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Cells per side.
    #[inline]
    pub fn side(&self) -> usize {
        self.side
    }

    /// The global visit order: point indices grouped by ascending
    /// row-major cell index, insertion order within each cell. Every
    /// [`BucketGrid::for_each_in_disk`] visit sequence is a subsequence
    /// of this array — consumers of cached adjacency rows rely on that
    /// to pair mutual edges with per-node cursors instead of searches.
    #[inline]
    pub fn visit_order(&self) -> &[u32] {
        &self.order
    }

    /// Number of points in grid cell `(cx, cy)`.
    pub fn cell_population(&self, cx: usize, cy: usize) -> usize {
        assert!(cx < self.side && cy < self.side, "cell out of range");
        let c = cy * self.side + cx;
        (self.cell_start[c + 1] - self.cell_start[c]) as usize
    }

    /// Grid coordinates of the cell containing `p`.
    #[inline]
    pub fn cell_of(&self, p: &Point) -> (usize, usize) {
        let cx = ((p.x / self.cell_size) as usize).min(self.side - 1);
        let cy = ((p.y / self.cell_size) as usize).min(self.side - 1);
        (cx, cy)
    }

    #[inline]
    fn cell_points(&self, cx: usize, cy: usize) -> &[u32] {
        let c = cy * self.side + cx;
        &self.order[self.cell_start[c] as usize..self.cell_start[c + 1] as usize]
    }

    /// Calls `f(index, distance)` for every point within Euclidean distance
    /// `radius` of `center` (inclusive), including any point coincident with
    /// `center` itself; callers filter self-indices as needed.
    pub fn for_each_in_disk<F: FnMut(usize, f64)>(&self, center: &Point, radius: f64, mut f: F) {
        if radius < 0.0 {
            return;
        }
        let (ccx, ccy) = self.cell_of(center);
        let reach = (radius / self.cell_size).ceil() as usize + 1;
        let x0 = ccx.saturating_sub(reach);
        let x1 = (ccx + reach).min(self.side - 1);
        let y0 = ccy.saturating_sub(reach);
        let y1 = (ccy + reach).min(self.side - 1);
        let r_sq = radius * radius;
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                for &i in self.cell_points(cx, cy) {
                    let d_sq = center.dist_sq(&self.points[i as usize]);
                    if d_sq <= r_sq {
                        f(i as usize, d_sq.sqrt());
                    }
                }
            }
        }
    }

    /// Calls `f(j, dist)` for every point within `radius` of point `i`,
    /// excluding `i` itself — the zero-allocation form of
    /// [`BucketGrid::neighbors_within`].
    ///
    /// Visit order is deterministic and part of this type's contract:
    /// cells row-major (`cy` outer, `cx` inner), then insertion (CSR)
    /// order within each cell — identical to the order of the `Vec`
    /// returned by `neighbors_within`. Simulation layers replay this
    /// order when charging energy, so it must never change silently.
    pub fn for_neighbors_within<F: FnMut(usize, f64)>(&self, i: usize, radius: f64, mut f: F) {
        self.for_each_in_disk(&self.points[i], radius, |j, d| {
            if j != i {
                f(j, d);
            }
        });
    }

    /// Fills `out` with the neighbours of `i` within `radius` (excluding
    /// `i`), clearing it first — the scratch-buffer form of
    /// [`BucketGrid::neighbors_within`] for callers that query in a loop
    /// and want to reuse one allocation. Same deterministic visit order
    /// as [`BucketGrid::for_neighbors_within`].
    pub fn neighbors_within_into(&self, i: usize, radius: f64, out: &mut Vec<(usize, f64)>) {
        out.clear();
        self.for_neighbors_within(i, radius, |j, d| out.push((j, d)));
    }

    /// Indices and distances of all points within `radius` of point `i`,
    /// excluding `i` itself. Thin wrapper over
    /// [`BucketGrid::neighbors_within_into`] that allocates a fresh `Vec`.
    pub fn neighbors_within(&self, i: usize, radius: f64) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        self.neighbors_within_into(i, radius, &mut out);
        out
    }

    /// Number of points within `radius` of point `i`, excluding `i`.
    pub fn degree_within(&self, i: usize, radius: f64) -> usize {
        let mut deg = 0usize;
        self.for_each_in_disk(&self.points[i], radius, |j, _| {
            if j != i {
                deg += 1;
            }
        });
        deg
    }

    /// Calls `f(u, v, dist)` once per unordered pair `{u, v}` (with `u < v`)
    /// at Euclidean distance ≤ `radius` — the edge set of the RGG `G(n, r)`.
    pub fn for_each_edge_within<F: FnMut(usize, usize, f64)>(&self, radius: f64, mut f: F) {
        if radius < 0.0 {
            return;
        }
        let r_sq = radius * radius;
        for u in 0..self.points.len() {
            let pu = &self.points[u];
            let (ccx, ccy) = self.cell_of(pu);
            let reach = (radius / self.cell_size).ceil() as usize + 1;
            let x0 = ccx.saturating_sub(reach);
            let x1 = (ccx + reach).min(self.side - 1);
            let y0 = ccy.saturating_sub(reach);
            let y1 = (ccy + reach).min(self.side - 1);
            for cy in y0..=y1 {
                for cx in x0..=x1 {
                    for &vi in self.cell_points(cx, cy) {
                        let v = vi as usize;
                        if v <= u {
                            continue;
                        }
                        let d_sq = pu.dist_sq(&self.points[v]);
                        if d_sq <= r_sq {
                            f(u, v, d_sq.sqrt());
                        }
                    }
                }
            }
        }
    }

    /// Nearest point to `center` (excluding index `exclude`, pass
    /// `usize::MAX` to exclude nothing) among points satisfying `pred`.
    /// Expanding-ring search: after scanning all cells within Chebyshev cell
    /// distance `l`, any unscanned point is at Euclidean distance
    /// ≥ `l·cell_size`, so the current best is confirmed once it is within
    /// that bound.
    pub fn nearest_matching<P: FnMut(usize) -> bool>(
        &self,
        center: &Point,
        exclude: usize,
        mut pred: P,
    ) -> Option<(usize, f64)> {
        let (ccx, ccy) = self.cell_of(center);
        let mut best: Option<(usize, f64)> = None;
        let max_ring = self.side; // covers the whole square from any cell
        for ring in 0..=max_ring {
            // Confirmed: no unscanned point can beat the current best.
            if let Some((_, d)) = best {
                if d <= (ring as f64 - 1.0).max(0.0) * self.cell_size {
                    break;
                }
            }
            let mut visit = |cx: usize, cy: usize| {
                for &i in self.cell_points(cx, cy) {
                    let i = i as usize;
                    if i == exclude || !pred(i) {
                        continue;
                    }
                    let d = center.dist(&self.points[i]);
                    if best.is_none() || d < best.unwrap().1 {
                        best = Some((i, d));
                    }
                }
            };
            if ring == 0 {
                visit(ccx, ccy);
                continue;
            }
            let x0 = ccx as isize - ring as isize;
            let x1 = ccx as isize + ring as isize;
            let y0 = ccy as isize - ring as isize;
            let y1 = ccy as isize + ring as isize;
            let in_range = |v: isize| v >= 0 && (v as usize) < self.side;
            // Top and bottom rows of the ring.
            for cx in x0..=x1 {
                if in_range(cx) {
                    if in_range(y0) {
                        visit(cx as usize, y0 as usize);
                    }
                    if in_range(y1) {
                        visit(cx as usize, y1 as usize);
                    }
                }
            }
            // Left and right columns, excluding corners already visited.
            for cy in (y0 + 1)..y1 {
                if in_range(cy) {
                    if in_range(x0) {
                        visit(x0 as usize, cy as usize);
                    }
                    if in_range(x1) {
                        visit(x1 as usize, cy as usize);
                    }
                }
            }
        }
        best
    }

    /// The `k` nearest points to point `i` (excluding `i`), sorted by
    /// ascending distance. Returns fewer than `k` entries if the instance
    /// has fewer than `k + 1` points. Thin wrapper over
    /// [`BucketGrid::k_nearest_into`].
    pub fn k_nearest(&self, i: usize, k: usize) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        self.k_nearest_into(i, k, &mut out);
        out
    }

    /// [`BucketGrid::k_nearest`] into a caller-supplied scratch buffer
    /// (cleared first). The ring expansion accumulates candidates in `out`
    /// itself, so a buffer reused across calls reaches a steady-state
    /// capacity and the query becomes allocation-free — the k-NN distance
    /// experiments call this once per node.
    pub fn k_nearest_into(&self, i: usize, k: usize, out: &mut Vec<(usize, f64)>) {
        out.clear();
        if k == 0 {
            return;
        }
        let center = &self.points[i];
        let (ccx, ccy) = self.cell_of(center);
        out.reserve(k + 8);
        let found = out;
        let max_ring = self.side;
        for ring in 0..=max_ring {
            // Stop once the k-th best is confirmed against unscanned rings.
            if found.len() >= k {
                found.sort_unstable_by(|a, b| a.1.total_cmp(&b.1));
                found.truncate(k.max(found.len().min(4 * k)));
                let kth = found[k - 1].1;
                if kth <= (ring as f64 - 1.0).max(0.0) * self.cell_size {
                    found.truncate(k);
                    return;
                }
            }
            let mut visit = |cx: usize, cy: usize| {
                for &j in self.cell_points(cx, cy) {
                    let j = j as usize;
                    if j != i {
                        found.push((j, center.dist(&self.points[j])));
                    }
                }
            };
            if ring == 0 {
                visit(ccx, ccy);
                continue;
            }
            let x0 = ccx as isize - ring as isize;
            let x1 = ccx as isize + ring as isize;
            let y0 = ccy as isize - ring as isize;
            let y1 = ccy as isize + ring as isize;
            let in_range = |v: isize| v >= 0 && (v as usize) < self.side;
            for cx in x0..=x1 {
                if in_range(cx) {
                    if in_range(y0) {
                        visit(cx as usize, y0 as usize);
                    }
                    if in_range(y1) {
                        visit(cx as usize, y1 as usize);
                    }
                }
            }
            for cy in (y0 + 1)..y1 {
                if in_range(cy) {
                    if in_range(x0) {
                        visit(x0 as usize, cy as usize);
                    }
                    if in_range(x1) {
                        visit(x1 as usize, cy as usize);
                    }
                }
            }
        }
        found.sort_unstable_by(|a, b| a.1.total_cmp(&b.1));
        found.truncate(k);
    }

    /// Distance from point `i` to its `k`-th nearest neighbour (1-indexed:
    /// `k = 1` is the nearest). `None` if fewer than `k` other points exist.
    pub fn kth_nearest_distance(&self, i: usize, k: usize) -> Option<f64> {
        let nn = self.k_nearest(i, k);
        if nn.len() == k {
            Some(nn[k - 1].1)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{trial_rng, uniform_points};

    /// Brute-force disk query for cross-checking.
    fn brute_within(points: &[Point], center: &Point, radius: f64) -> Vec<usize> {
        let mut v: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| center.dist(p) <= radius)
            .map(|(i, _)| i)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn disk_query_matches_brute_force() {
        let mut rng = trial_rng(11, 0);
        let pts = uniform_points(400, &mut rng);
        let grid = BucketGrid::for_radius(&pts, 0.1);
        for qi in [0usize, 17, 200, 399] {
            let mut got = Vec::new();
            grid.for_each_in_disk(&pts[qi], 0.1, |j, _| got.push(j));
            got.sort_unstable();
            assert_eq!(got, brute_within(&pts, &pts[qi], 0.1), "query {qi}");
        }
    }

    #[test]
    fn disk_visits_are_subsequences_of_visit_order() {
        // The contract consumers of `visit_order` rely on: every disk
        // query visits points in the same relative order as the global
        // `visit_order` array, at any radius (including radii larger than
        // the cell size, where many rings are scanned).
        let mut rng = trial_rng(12, 0);
        let pts = uniform_points(300, &mut rng);
        let grid = BucketGrid::for_radius(&pts, 0.08);
        let rank: std::collections::HashMap<usize, usize> = grid
            .visit_order()
            .iter()
            .enumerate()
            .map(|(pos, &i)| (i as usize, pos))
            .collect();
        for qi in [0usize, 33, 150, 299] {
            for r in [0.03, 0.08, 0.4, 2.0] {
                let mut prev = None;
                grid.for_each_in_disk(&pts[qi], r, |j, _| {
                    let pos = rank[&j];
                    if let Some(p) = prev {
                        assert!(p < pos, "query {qi} radius {r}: visit order diverged");
                    }
                    prev = Some(pos);
                });
            }
        }
        // And the order itself is a permutation of all indices.
        let mut all: Vec<u32> = grid.visit_order().to_vec();
        all.sort_unstable();
        assert_eq!(all, (0..pts.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn disk_query_includes_center_point() {
        let pts = vec![Point::new(0.5, 0.5), Point::new(0.9, 0.9)];
        let grid = BucketGrid::new(&pts, 0.25);
        let mut got = Vec::new();
        grid.for_each_in_disk(&pts[0], 0.01, |j, _| got.push(j));
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn neighbors_within_excludes_self() {
        let pts = vec![
            Point::new(0.5, 0.5),
            Point::new(0.52, 0.5),
            Point::new(0.9, 0.9),
        ];
        let grid = BucketGrid::new(&pts, 0.1);
        let nb = grid.neighbors_within(0, 0.05);
        assert_eq!(nb.len(), 1);
        assert_eq!(nb[0].0, 1);
        assert!((nb[0].1 - 0.02).abs() < 1e-12);
        assert_eq!(grid.degree_within(0, 0.05), 1);
    }

    #[test]
    fn edge_enumeration_matches_brute_force() {
        let mut rng = trial_rng(12, 0);
        let pts = uniform_points(200, &mut rng);
        let r = 0.12;
        let grid = BucketGrid::for_radius(&pts, r);
        let mut edges = Vec::new();
        grid.for_each_edge_within(r, |u, v, d| {
            assert!(u < v);
            assert!((pts[u].dist(&pts[v]) - d).abs() < 1e-12);
            edges.push((u, v));
        });
        edges.sort_unstable();
        let mut brute = Vec::new();
        for u in 0..pts.len() {
            for v in (u + 1)..pts.len() {
                if pts[u].dist(&pts[v]) <= r {
                    brute.push((u, v));
                }
            }
        }
        assert_eq!(edges, brute);
    }

    #[test]
    fn edges_have_no_duplicates() {
        let mut rng = trial_rng(13, 0);
        let pts = uniform_points(300, &mut rng);
        let grid = BucketGrid::for_radius(&pts, 0.2);
        let mut seen = std::collections::HashSet::new();
        grid.for_each_edge_within(0.2, |u, v, _| {
            assert!(seen.insert((u, v)), "duplicate edge ({u},{v})");
        });
    }

    #[test]
    fn nearest_matching_finds_global_nearest() {
        let mut rng = trial_rng(14, 0);
        let pts = uniform_points(300, &mut rng);
        let grid = BucketGrid::for_radius(&pts, 0.05);
        for qi in [0usize, 50, 299] {
            let got = grid.nearest_matching(&pts[qi], qi, |_| true).unwrap();
            let brute = (0..pts.len())
                .filter(|&j| j != qi)
                .map(|j| (j, pts[qi].dist(&pts[j])))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            assert_eq!(got.0, brute.0, "query {qi}");
            assert!((got.1 - brute.1).abs() < 1e-12);
        }
    }

    #[test]
    fn nearest_matching_respects_predicate() {
        // Nearest point with a *higher diagonal rank* — the Co-NNT query.
        let mut rng = trial_rng(15, 0);
        let pts = uniform_points(250, &mut rng);
        let grid = BucketGrid::for_radius(&pts, 0.05);
        use crate::point::diag_rank_less;
        for qi in 0..pts.len() {
            let got = grid.nearest_matching(&pts[qi], qi, |j| diag_rank_less(&pts[qi], &pts[j]));
            let brute = (0..pts.len())
                .filter(|&j| j != qi && diag_rank_less(&pts[qi], &pts[j]))
                .map(|j| (j, pts[qi].dist(&pts[j])))
                .min_by(|a, b| a.1.total_cmp(&b.1));
            match (got, brute) {
                (Some((gi, gd)), Some((bi, bd))) => {
                    assert_eq!(gi, bi, "query {qi}");
                    assert!((gd - bd).abs() < 1e-12);
                }
                (None, None) => {} // highest-ranked node has no successor
                (g, b) => panic!("mismatch at {qi}: {g:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn nearest_matching_none_when_no_match() {
        let pts = vec![Point::new(0.5, 0.5), Point::new(0.6, 0.6)];
        let grid = BucketGrid::new(&pts, 0.25);
        assert!(grid.nearest_matching(&pts[0], 0, |_| false).is_none());
    }

    #[test]
    fn k_nearest_matches_brute_force() {
        let mut rng = trial_rng(16, 0);
        let pts = uniform_points(150, &mut rng);
        let grid = BucketGrid::for_radius(&pts, 0.08);
        for qi in [3usize, 75, 149] {
            for k in [1usize, 5, 20, 149] {
                let got = grid.k_nearest(qi, k);
                let mut brute: Vec<(usize, f64)> = (0..pts.len())
                    .filter(|&j| j != qi)
                    .map(|j| (j, pts[qi].dist(&pts[j])))
                    .collect();
                brute.sort_unstable_by(|a, b| a.1.total_cmp(&b.1));
                brute.truncate(k);
                assert_eq!(got.len(), brute.len());
                for (g, b) in got.iter().zip(brute.iter()) {
                    assert!((g.1 - b.1).abs() < 1e-12, "q={qi} k={k}");
                }
            }
        }
    }

    #[test]
    fn k_nearest_handles_small_instances() {
        let pts = vec![Point::new(0.1, 0.1), Point::new(0.2, 0.2)];
        let grid = BucketGrid::new(&pts, 0.5);
        assert_eq!(grid.k_nearest(0, 0).len(), 0);
        assert_eq!(grid.k_nearest(0, 1).len(), 1);
        assert_eq!(grid.k_nearest(0, 5).len(), 1); // only one other point
        assert!(grid.kth_nearest_distance(0, 2).is_none());
        assert!(grid.kth_nearest_distance(0, 1).is_some());
    }

    #[test]
    fn k_nearest_with_k_at_least_n_returns_everyone() {
        // k ≥ n must return all n−1 other points, sorted, without the ring
        // confirmation ever firing (it can't: there is no k-th candidate).
        let pts = uniform_points(40, &mut trial_rng(18, 0));
        let grid = BucketGrid::for_radius(&pts, 0.05);
        for k in [40usize, 41, 1000] {
            let got = grid.k_nearest(7, k);
            assert_eq!(got.len(), 39, "k={k}");
            for w in got.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
        }
    }

    #[test]
    fn k_nearest_into_reuses_buffer_and_matches() {
        let pts = uniform_points(200, &mut trial_rng(19, 0));
        let grid = BucketGrid::for_radius(&pts, 0.08);
        let mut buf = Vec::new();
        for qi in 0..pts.len() {
            grid.k_nearest_into(qi, 10, &mut buf);
            let fresh = grid.k_nearest(qi, 10);
            assert_eq!(buf.len(), fresh.len(), "query {qi}");
            for (a, b) in buf.iter().zip(fresh.iter()) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
        grid.k_nearest_into(0, 0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn visitor_and_into_match_vec_api_exactly() {
        // All three query forms must agree element-for-element, in the
        // same visit order (the determinism contract).
        let pts = uniform_points(300, &mut trial_rng(20, 0));
        let grid = BucketGrid::for_radius(&pts, 0.07);
        let mut buf = Vec::new();
        for qi in [0usize, 9, 150, 299] {
            for r in [0.0, 0.03, 0.07, 0.4] {
                let legacy = grid.neighbors_within(qi, r);
                let mut visited = Vec::new();
                grid.for_neighbors_within(qi, r, |j, d| visited.push((j, d)));
                grid.neighbors_within_into(qi, r, &mut buf);
                assert_eq!(legacy, visited, "q={qi} r={r}");
                assert_eq!(legacy, buf, "q={qi} r={r}");
            }
        }
    }

    #[test]
    fn boundary_points_are_indexed() {
        // x = 1.0 and y = 1.0 must clamp into the last cell, not overflow.
        let pts = vec![Point::new(1.0, 1.0), Point::new(0.99, 0.99)];
        let grid = BucketGrid::new(&pts, 0.1);
        let nb = grid.neighbors_within(0, 0.05);
        assert_eq!(nb.len(), 1);
    }

    #[test]
    fn cell_population_counts_points() {
        let pts = vec![
            Point::new(0.05, 0.05),
            Point::new(0.06, 0.07),
            Point::new(0.95, 0.95),
        ];
        let grid = BucketGrid::new(&pts, 0.1);
        assert_eq!(grid.cell_population(0, 0), 2);
        assert_eq!(grid.cell_population(grid.side() - 1, grid.side() - 1), 1);
        let total: usize = (0..grid.side())
            .flat_map(|cy| (0..grid.side()).map(move |cx| (cx, cy)))
            .map(|(cx, cy)| grid.cell_population(cx, cy))
            .sum();
        assert_eq!(total, pts.len());
    }

    #[test]
    fn for_radius_caps_cell_count() {
        let pts = uniform_points(10, &mut trial_rng(17, 0));
        // Tiny radius must not allocate a huge grid.
        let grid = BucketGrid::for_radius(&pts, 1e-9);
        assert!(grid.side() <= 4 * 4 * 10); // bounded by ~4·sqrt(n) per side
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_size_rejected() {
        let pts = vec![Point::new(0.5, 0.5)];
        let _ = BucketGrid::new(&pts, 0.0);
    }

    #[test]
    fn empty_point_set_is_fine() {
        let pts: Vec<Point> = vec![];
        let grid = BucketGrid::new(&pts, 0.1);
        let mut called = false;
        grid.for_each_edge_within(0.5, |_, _, _| called = true);
        assert!(!called);
    }
}
