//! Two-dimensional points in the unit square.
//!
//! The paper's model (§II) places `n` nodes uniformly at random in the unit
//! square `[0,1]²`. Every geometric quantity in the reproduction — edge
//! weights, transmission radii, percolation cells — is derived from these
//! points, so [`Point`] is deliberately a plain `f64` pair with value
//! semantics and no hidden state.

use std::fmt;

/// A point in the plane.
///
/// Coordinates are finite `f64`s; samplers in this crate only ever produce
/// points inside `[0,1]²` but the type itself places no such restriction so
/// that tests can probe boundary behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Squared Euclidean distance to `other`.
    ///
    /// This is the paper's default message energy (`α = 2`, `a = 1`):
    /// transmitting one message over the edge `(u, v)` costs
    /// `d(u,v)²` (§II, "energy complexity").
    ///
    /// ```
    /// use emst_geom::Point;
    /// let u = Point::new(0.0, 0.0);
    /// let v = Point::new(0.3, 0.4);
    /// assert_eq!(u.dist_sq(&v), 0.25); // one message costs 0.25
    /// assert_eq!(u.dist(&v), 0.5);
    /// ```
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Chebyshev (L∞) distance to `other`.
    ///
    /// The percolation proof of Theorem 5.2 replaces Euclidean distance by
    /// `max(|x₁−x₂|, |y₁−y₂|)` "to simplify the analysis"; we expose it so
    /// the percolation crate can follow the proof exactly.
    #[inline]
    pub fn dist_linf(&self, other: &Point) -> f64 {
        let dx = (self.x - other.x).abs();
        let dy = (self.y - other.y).abs();
        dx.max(dy)
    }

    /// Euclidean distance raised to the power `alpha`.
    ///
    /// Generalised path-loss cost `d^α` (§II allows any small positive α;
    /// the paper focuses on α ∈ {1, 2}).
    #[inline]
    pub fn dist_pow(&self, other: &Point, alpha: f64) -> f64 {
        if alpha == 2.0 {
            self.dist_sq(other)
        } else if alpha == 1.0 {
            self.dist(other)
        } else {
            self.dist(other).powf(alpha)
        }
    }

    /// The diagonal rank key used by Co-NNT (§VI): nodes are ordered by
    /// `x + y`, ties broken by `y`. Returns the primary key.
    #[inline]
    pub fn diag_sum(&self) -> f64 {
        self.x + self.y
    }

    /// True if the point lies in the closed unit square.
    #[inline]
    pub fn in_unit_square(&self) -> bool {
        (0.0..=1.0).contains(&self.x) && (0.0..=1.0).contains(&self.y)
    }

    /// Component-wise midpoint, used by test helpers.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

/// Total order on points by the Co-NNT diagonal rank (§VI):
/// `rank(u) < rank(v)` iff `xᵤ+yᵤ < xᵥ+yᵥ`, or the sums are equal and
/// `yᵤ < yᵥ`. Distinct random points are totally ordered with probability 1.
#[inline]
pub fn diag_rank_less(u: &Point, v: &Point) -> bool {
    let (su, sv) = (u.diag_sum(), v.diag_sum());
    su < sv || (su == sv && u.y < v.y)
}

/// Total order on points by the x-rank of Khan et al. \[15\]:
/// `rank(u) < rank(v)` iff `xᵤ < xᵥ`, ties broken by `y`. Kept for the A3
/// ablation comparing ranking schemes.
#[inline]
pub fn x_rank_less(u: &Point, v: &Point) -> bool {
    u.x < v.x || (u.x == v.x && u.y < v.y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_sq_matches_hand_computed() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Point::new(0.2, 0.9);
        let b = Point::new(0.7, 0.1);
        assert_eq!(a.dist(&b), b.dist(&a));
        assert_eq!(a.dist_linf(&b), b.dist_linf(&a));
    }

    #[test]
    fn dist_to_self_is_zero() {
        let p = Point::new(0.42, 0.17);
        assert_eq!(p.dist(&p), 0.0);
        assert_eq!(p.dist_sq(&p), 0.0);
        assert_eq!(p.dist_linf(&p), 0.0);
    }

    #[test]
    fn linf_le_euclidean_le_sqrt2_linf() {
        let a = Point::new(0.11, 0.53);
        let b = Point::new(0.87, 0.22);
        let l2 = a.dist(&b);
        let linf = a.dist_linf(&b);
        assert!(linf <= l2 + 1e-15);
        assert!(l2 <= linf * std::f64::consts::SQRT_2 + 1e-15);
    }

    #[test]
    fn dist_pow_special_cases_agree_with_generic() {
        let a = Point::new(0.1, 0.2);
        let b = Point::new(0.9, 0.5);
        assert!((a.dist_pow(&b, 2.0) - a.dist(&b).powf(2.0)).abs() < 1e-12);
        assert!((a.dist_pow(&b, 1.0) - a.dist(&b)).abs() < 1e-12);
        assert!((a.dist_pow(&b, 3.5) - a.dist(&b).powf(3.5)).abs() < 1e-12);
    }

    #[test]
    fn diag_rank_orders_by_sum_then_y() {
        let lo = Point::new(0.1, 0.1); // sum 0.2
        let hi = Point::new(0.9, 0.9); // sum 1.8
        assert!(diag_rank_less(&lo, &hi));
        assert!(!diag_rank_less(&hi, &lo));
        // Equal sums: tie broken by y.
        let a = Point::new(0.6, 0.2); // sum 0.8, y = 0.2
        let b = Point::new(0.3, 0.5); // sum 0.8, y = 0.5
        assert!(diag_rank_less(&a, &b));
        assert!(!diag_rank_less(&b, &a));
    }

    #[test]
    fn diag_rank_is_irreflexive() {
        let p = Point::new(0.5, 0.5);
        assert!(!diag_rank_less(&p, &p));
    }

    #[test]
    fn x_rank_orders_by_x_then_y() {
        let a = Point::new(0.2, 0.9);
        let b = Point::new(0.3, 0.0);
        assert!(x_rank_less(&a, &b));
        let c = Point::new(0.2, 0.95);
        assert!(x_rank_less(&a, &c));
        assert!(!x_rank_less(&c, &a));
    }

    #[test]
    fn in_unit_square_boundaries() {
        assert!(Point::new(0.0, 0.0).in_unit_square());
        assert!(Point::new(1.0, 1.0).in_unit_square());
        assert!(!Point::new(1.0 + 1e-12, 0.5).in_unit_square());
        assert!(!Point::new(0.5, -1e-12).in_unit_square());
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.5);
        let m = a.midpoint(&b);
        assert_eq!(m, Point::new(0.5, 0.25));
        assert!((a.dist(&m) - b.dist(&m)).abs() < 1e-15);
    }

    #[test]
    fn display_formats_with_six_decimals() {
        let p = Point::new(0.5, 0.25);
        assert_eq!(format!("{p}"), "(0.500000, 0.250000)");
    }

    #[test]
    fn from_tuple_roundtrip() {
        let p: Point = (0.25, 0.75).into();
        assert_eq!(p, Point::new(0.25, 0.75));
    }
}
