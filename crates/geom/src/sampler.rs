//! Random instance generation.
//!
//! All experiments draw node positions uniformly at random in the unit
//! square (§II). The Theorem 5.2 proof machinery additionally uses Poisson
//! point processes (for spatial independence), so we provide an exact
//! Poisson sampler as well. Everything is seeded: a table or figure is
//! reproducible bit-for-bit from `(seed, parameters)`.

use crate::point::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws `n` points uniformly at random in the unit square.
pub fn uniform_points<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
        .collect()
}

/// Draws `n` points uniformly in the axis-aligned rectangle
/// `[x0, x1] × [y0, y1]`.
pub fn uniform_points_in_rect<R: Rng + ?Sized>(
    n: usize,
    (x0, y0): (f64, f64),
    (x1, y1): (f64, f64),
    rng: &mut R,
) -> Vec<Point> {
    assert!(x0 <= x1 && y0 <= y1, "degenerate rectangle");
    (0..n)
        .map(|_| {
            Point::new(
                x0 + (x1 - x0) * rng.gen::<f64>(),
                y0 + (y1 - y0) * rng.gen::<f64>(),
            )
        })
        .collect()
}

/// Samples `N ~ Poisson(mu)` exactly.
///
/// Knuth's product-of-uniforms method for small means; for large means the
/// thinning identity `Poisson(μ) = Poisson(μ/2) + Poisson(μ/2)` is applied
/// recursively, which stays exact (unlike a normal approximation) at the
/// cost of O(μ) uniforms.
pub fn poisson_count<R: Rng + ?Sized>(mu: f64, rng: &mut R) -> usize {
    assert!(mu >= 0.0, "Poisson mean must be non-negative, got {mu}");
    if mu == 0.0 {
        return 0;
    }
    if mu <= 30.0 {
        // Knuth: count multiplications of uniforms until product < e^-mu.
        let limit = (-mu).exp();
        let mut k = 0usize;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen::<f64>();
            if p < limit {
                return k;
            }
            k += 1;
        }
    }
    poisson_count(mu / 2.0, rng) + poisson_count(mu / 2.0, rng)
}

/// A homogeneous Poisson point process with intensity `intensity` on the
/// unit square: draws `N ~ Poisson(intensity)` and then `N` uniform points.
pub fn poisson_points<R: Rng + ?Sized>(intensity: f64, rng: &mut R) -> Vec<Point> {
    let n = poisson_count(intensity, rng);
    uniform_points(n, rng)
}

/// A deterministic RNG for trial `trial` of an experiment with base seed
/// `base`. Trials get well-separated streams via SplitMix64 mixing of the
/// pair, so adding trials never perturbs earlier ones.
pub fn trial_rng(base: u64, trial: u64) -> StdRng {
    StdRng::seed_from_u64(mix_seed(base, trial))
}

/// SplitMix64 finaliser over `(base, trial)`; public so that experiment
/// binaries can log the effective per-trial seed.
pub fn mix_seed(base: u64, trial: u64) -> u64 {
    let mut z = base
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(trial)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_points_stay_in_unit_square() {
        let mut rng = trial_rng(1, 0);
        for p in uniform_points(1000, &mut rng) {
            assert!(p.in_unit_square(), "{p} escaped the unit square");
        }
    }

    #[test]
    fn uniform_points_count() {
        let mut rng = trial_rng(2, 0);
        assert_eq!(uniform_points(0, &mut rng).len(), 0);
        assert_eq!(uniform_points(17, &mut rng).len(), 17);
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let a = uniform_points(50, &mut trial_rng(7, 3));
        let b = uniform_points(50, &mut trial_rng(7, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn different_trials_differ() {
        let a = uniform_points(50, &mut trial_rng(7, 3));
        let b = uniform_points(50, &mut trial_rng(7, 4));
        assert_ne!(a, b);
    }

    #[test]
    fn rect_sampling_respects_bounds() {
        let mut rng = trial_rng(3, 0);
        let pts = uniform_points_in_rect(500, (0.25, 0.5), (0.5, 0.75), &mut rng);
        for p in pts {
            assert!((0.25..=0.5).contains(&p.x));
            assert!((0.5..=0.75).contains(&p.y));
        }
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = trial_rng(4, 0);
        assert_eq!(poisson_count(0.0, &mut rng), 0);
    }

    #[test]
    fn poisson_small_mean_statistics() {
        let mut rng = trial_rng(5, 0);
        let mu = 4.0;
        let trials = 20_000;
        let total: usize = (0..trials).map(|_| poisson_count(mu, &mut rng)).sum();
        let mean = total as f64 / trials as f64;
        // SE ≈ sqrt(mu/trials) ≈ 0.014; allow 5σ.
        assert!(
            (mean - mu).abs() < 0.08,
            "empirical mean {mean} too far from {mu}"
        );
    }

    #[test]
    fn poisson_large_mean_statistics() {
        let mut rng = trial_rng(6, 0);
        let mu = 500.0;
        let trials = 500;
        let samples: Vec<usize> = (0..trials).map(|_| poisson_count(mu, &mut rng)).collect();
        let mean = samples.iter().sum::<usize>() as f64 / trials as f64;
        // SE ≈ sqrt(500/500) = 1; allow 5σ.
        assert!(
            (mean - mu).abs() < 5.0,
            "empirical mean {mean} too far from {mu}"
        );
        // Variance should also be ≈ mu for a Poisson (sanity against a
        // broken splitting recursion, which would change the variance).
        let var = samples
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / (trials - 1) as f64;
        assert!(
            (var / mu - 1.0).abs() < 0.35,
            "empirical variance {var} too far from {mu}"
        );
    }

    #[test]
    fn poisson_points_land_in_square() {
        let mut rng = trial_rng(8, 0);
        for p in poisson_points(200.0, &mut rng) {
            assert!(p.in_unit_square());
        }
    }

    #[test]
    fn mix_seed_spreads_nearby_inputs() {
        let s1 = mix_seed(42, 0);
        let s2 = mix_seed(42, 1);
        let s3 = mix_seed(43, 0);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        // Hamming distance between adjacent trials should be substantial.
        assert!((s1 ^ s2).count_ones() > 10);
    }
}
