//! # emst-geom — geometry substrate
//!
//! Geometric foundations for the reproduction of *Energy-Optimal Distributed
//! Algorithms for Minimum Spanning Trees* (Choi, Khan, Kumar, Pandurangan;
//! SPAA'08 / IEEE JSAC'09):
//!
//! * [`Point`] — 2-D points with Euclidean / Chebyshev / power-law distances;
//! * [`PathLoss`] — the radiated-energy model `w(u,v) = a·d(u,v)^α` of §II;
//! * [`sampler`] — seeded uniform and Poisson instance generation;
//! * [`BucketGrid`] — a bucket-grid spatial index supporting disk queries,
//!   RGG edge enumeration, predicate-filtered nearest-neighbour search
//!   (Co-NNT's "nearest node of higher rank") and k-NN distances
//!   (the Lemma 4.1 lower-bound experiment);
//! * [`radii`] — the paper's canonical transmission radii.
//!
//! All heavier machinery (graphs, the radio simulator, the distributed
//! protocols) builds on this crate.

pub mod grid;
pub mod io;
pub mod metric;
pub mod point;
pub mod radii;
pub mod sampler;

pub use grid::BucketGrid;
pub use io::{load_points, read_points, save_points, write_points, IoError};
pub use metric::{Chebyshev, Euclidean, Metric, PathLoss};
pub use point::{diag_rank_less, x_rank_less, Point};
pub use radii::{
    connectivity_radius, nnt_probe_phases, nnt_probe_radius, paper_phase1_radius,
    paper_phase2_radius, percolation_radius, PAPER_PHASE1_MULTIPLIER, PAPER_PHASE2_MULTIPLIER,
};
pub use sampler::{mix_seed, poisson_count, poisson_points, trial_rng, uniform_points};
