//! Distance metrics and the radiated-energy cost model.
//!
//! The paper assumes the radiation energy to transmit one message from `u`
//! to `v` is `w(u,v) = a · d(u,v)^α` for constants `a` and the path-loss
//! exponent `α` (§II); `α = 2` is used throughout for energy accounting,
//! while tree *quality* is evaluated under both `α = 1` (Euclidean MST) and
//! `α = 2`.

use crate::point::Point;

/// A metric on points. Implementations must satisfy symmetry and identity
/// of indiscernibles; the triangle inequality is exercised by property tests
/// but not relied upon by the algorithms.
pub trait Metric {
    /// Distance between two points under this metric.
    fn dist(&self, a: &Point, b: &Point) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Standard Euclidean (L2) metric — the paper's default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

impl Metric for Euclidean {
    #[inline]
    fn dist(&self, a: &Point, b: &Point) -> f64 {
        a.dist(b)
    }
    fn name(&self) -> &'static str {
        "euclidean"
    }
}

/// Chebyshev (L∞) metric used in the Theorem 5.2 percolation argument.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl Metric for Chebyshev {
    #[inline]
    fn dist(&self, a: &Point, b: &Point) -> f64 {
        a.dist_linf(b)
    }
    fn name(&self) -> &'static str {
        "chebyshev"
    }
}

/// The radiated-energy model `w(u,v) = a · d(u,v)^α` of §II.
///
/// `PathLoss::paper()` gives the concrete instance used for all energy
/// accounting in the reproduction: `a = 1`, `α = 2`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathLoss {
    /// Multiplicative constant `a`.
    pub a: f64,
    /// Path-loss exponent `α` (≥ 1 for physical plausibility; the paper
    /// calls for a "small positive number").
    pub alpha: f64,
}

impl PathLoss {
    /// Constructs a path-loss model; panics on non-positive parameters so
    /// configuration errors surface at setup time rather than as NaN energy.
    pub fn new(a: f64, alpha: f64) -> Self {
        assert!(a > 0.0, "path-loss constant a must be positive, got {a}");
        assert!(
            alpha > 0.0,
            "path-loss exponent alpha must be positive, got {alpha}"
        );
        PathLoss { a, alpha }
    }

    /// The paper's energy model: `w(u,v) = d(u,v)²`.
    pub fn paper() -> Self {
        PathLoss { a: 1.0, alpha: 2.0 }
    }

    /// Energy to transmit one message over distance `d`.
    #[inline]
    pub fn energy_for_distance(&self, d: f64) -> f64 {
        debug_assert!(d >= 0.0, "negative distance {d}");
        if self.alpha == 2.0 {
            self.a * d * d
        } else {
            self.a * d.powf(self.alpha)
        }
    }

    /// Energy to transmit one message from `u` to `v`.
    #[inline]
    pub fn energy(&self, u: &Point, v: &Point) -> f64 {
        self.energy_for_distance(u.dist(v))
    }

    /// Energy of a bidirectional exchange (request + reply) between `u`
    /// and `v`. §II: "if u wants to send a message to v and v replies back
    /// to u then the cost associated with this bi-directional communication
    /// is 2·w(u,v)".
    #[inline]
    pub fn energy_bidirectional(&self, u: &Point, v: &Point) -> f64 {
        2.0 * self.energy(u, v)
    }
}

impl Default for PathLoss {
    fn default() -> Self {
        PathLoss::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_point_dist() {
        let a = Point::new(0.1, 0.4);
        let b = Point::new(0.6, 0.8);
        assert_eq!(Euclidean.dist(&a, &b), a.dist(&b));
        assert_eq!(Euclidean.name(), "euclidean");
    }

    #[test]
    fn chebyshev_matches_point_linf() {
        let a = Point::new(0.1, 0.4);
        let b = Point::new(0.6, 0.8);
        assert_eq!(Chebyshev.dist(&a, &b), a.dist_linf(&b));
    }

    #[test]
    fn paper_model_is_squared_distance() {
        let m = PathLoss::paper();
        let a = Point::new(0.0, 0.0);
        let b = Point::new(0.3, 0.4);
        assert!((m.energy(&a, &b) - 0.25).abs() < 1e-15);
        assert!((m.energy_bidirectional(&a, &b) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn energy_scales_with_a() {
        let m = PathLoss::new(3.0, 2.0);
        assert!((m.energy_for_distance(2.0) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn non_quadratic_alpha_uses_powf() {
        let m = PathLoss::new(1.0, 4.0);
        assert!((m.energy_for_distance(0.5) - 0.0625).abs() < 1e-15);
        let m1 = PathLoss::new(1.0, 1.0);
        assert!((m1.energy_for_distance(0.5) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn zero_distance_costs_nothing() {
        let m = PathLoss::paper();
        assert_eq!(m.energy_for_distance(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_non_positive_alpha() {
        let _ = PathLoss::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "a must be positive")]
    fn rejects_non_positive_a() {
        let _ = PathLoss::new(0.0, 2.0);
    }

    #[test]
    fn default_is_paper_model() {
        assert_eq!(PathLoss::default(), PathLoss::paper());
    }
}
