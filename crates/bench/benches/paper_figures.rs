//! Criterion benches, one group per paper table/figure (E1–E7 in
//! DESIGN.md). These measure the *runtime* of regenerating each artefact
//! at a reduced size — the artefacts themselves (energy numbers, slopes,
//! quality ratios) are printed by the `src/bin/*` binaries; `cargo bench`
//! exists to keep the reproduction pipeline itself fast and regression-
//! checked.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emst_bench::{
    connectivity_trial, exactness_trial, fig3_energies, giant_row, knn_energy_ratio, quality_row,
    BASE_SEED,
};
use std::hint::black_box;

/// E1/E2 — the Figure 3 kernel (GHS + EOPT + Co-NNT on one instance).
fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_energy");
    g.sample_size(10);
    for n in [200usize, 800] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(fig3_energies(BASE_SEED, n, 0)))
        });
    }
    g.finish();
}

/// E3 — the §VII quality comparison kernel.
fn bench_quality(c: &mut Criterion) {
    let mut g = c.benchmark_group("quality_table");
    g.sample_size(10);
    for n in [500usize, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(quality_row(BASE_SEED, n, 0)))
        });
    }
    g.finish();
}

/// E4 — the Theorem 5.2 giant-component measurement.
fn bench_giant(c: &mut Criterion) {
    let mut g = c.benchmark_group("giant_component");
    g.sample_size(10);
    for n in [1000usize, 4000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(giant_row(BASE_SEED, n, 1.96, 0)))
        });
    }
    g.finish();
}

/// E5 — the Theorem 5.1 connectivity trial.
fn bench_connectivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("connectivity");
    g.sample_size(10);
    for n in [1000usize, 4000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(connectivity_trial(BASE_SEED, n, 1.6, 0)))
        });
    }
    g.finish();
}

/// E6 — the Lemma 4.1 k-NN energy kernel.
fn bench_lower_bound(c: &mut Criterion) {
    let mut g = c.benchmark_group("lower_bound");
    g.sample_size(10);
    for k in [4usize, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(knn_energy_ratio(BASE_SEED, 2000, k, 0)))
        });
    }
    g.finish();
}

/// E7 — the exactness check (EOPT vs sequential MST).
fn bench_exactness(c: &mut Criterion) {
    let mut g = c.benchmark_group("exactness");
    g.sample_size(10);
    g.bench_function("n=500", |b| {
        b.iter(|| black_box(exactness_trial(BASE_SEED, 500, 0)))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig3,
    bench_quality,
    bench_giant,
    bench_connectivity,
    bench_lower_bound,
    bench_exactness
);
criterion_main!(figures);
