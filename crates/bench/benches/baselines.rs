//! Criterion benches for the substrate algorithms: sequential MST
//! baselines, RGG construction, spatial queries, and the three distributed
//! protocols individually. Useful for catching performance regressions in
//! the simulator itself (the experiment sweeps run thousands of these).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emst_bench::{instance, BASE_SEED};
use emst_core::{EoptConfig, GhsVariant, Protocol, RankScheme, Sim};
use emst_geom::{paper_phase2_radius, BucketGrid};
use emst_graph::{
    boruvka_mst, euclidean_mst, euclidean_mst_delaunay, kruskal_mst, prim_mst, Graph,
};
use emst_radio::ContentionConfig;
use std::hint::black_box;

fn bench_sequential_mst(c: &mut Criterion) {
    let pts = instance(BASE_SEED, 2000, 0);
    let g = Graph::geometric(&pts, paper_phase2_radius(2000));
    let mut group = c.benchmark_group("sequential_mst_n2000");
    group.bench_function("kruskal", |b| b.iter(|| black_box(kruskal_mst(&g))));
    group.bench_function("prim", |b| b.iter(|| black_box(prim_mst(&g))));
    group.bench_function("boruvka", |b| b.iter(|| black_box(boruvka_mst(&g))));
    group.bench_function("euclidean_mst", |b| {
        b.iter(|| black_box(euclidean_mst(&pts)))
    });
    group.bench_function("euclidean_mst_delaunay", |b| {
        b.iter(|| black_box(euclidean_mst_delaunay(&pts)))
    });
    group.finish();
}

fn bench_delaunay(c: &mut Criterion) {
    let mut group = c.benchmark_group("delaunay_edges");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let pts = instance(BASE_SEED, n, 0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(emst_graph::delaunay_edges(&pts)))
        });
    }
    group.finish();
}

fn bench_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("contention_nnt_n300");
    group.sample_size(10);
    let pts = instance(BASE_SEED, 300, 0);
    group.bench_function("collision_free", |b| {
        b.iter(|| black_box(Sim::new(&pts).run(Protocol::Nnt(RankScheme::Diagonal))))
    });
    group.bench_function("slotted_aloha", |b| {
        b.iter(|| {
            black_box(
                Sim::new(&pts)
                    .contention(ContentionConfig::default())
                    .run(Protocol::Nnt(RankScheme::Diagonal)),
            )
        })
    });
    group.finish();
}

fn bench_rgg_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("rgg_build");
    for n in [1000usize, 5000] {
        let pts = instance(BASE_SEED, n, 0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(Graph::geometric(&pts, paper_phase2_radius(n))))
        });
    }
    group.finish();
}

fn bench_grid_queries(c: &mut Criterion) {
    let pts = instance(BASE_SEED, 5000, 0);
    let grid = BucketGrid::for_radius(&pts, 0.05);
    let mut group = c.benchmark_group("grid_queries_n5000");
    group.bench_function("k_nearest_32", |b| {
        b.iter(|| black_box(grid.k_nearest(1234, 32)))
    });
    group.bench_function("neighbors_within", |b| {
        b.iter(|| black_box(grid.neighbors_within(1234, 0.05)))
    });
    group.finish();
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols_n1000");
    group.sample_size(10);
    let pts = instance(BASE_SEED, 1000, 0);
    let r = paper_phase2_radius(1000);
    group.bench_function("ghs_original", |b| {
        b.iter(|| {
            black_box(
                Sim::new(&pts)
                    .radius(r)
                    .run(Protocol::Ghs(GhsVariant::Original)),
            )
        })
    });
    group.bench_function("ghs_modified", |b| {
        b.iter(|| {
            black_box(
                Sim::new(&pts)
                    .radius(r)
                    .run(Protocol::Ghs(GhsVariant::Modified)),
            )
        })
    });
    group.bench_function("eopt", |b| {
        b.iter(|| black_box(Sim::new(&pts).run(Protocol::Eopt(EoptConfig::default()))))
    });
    group.bench_function("co_nnt", |b| {
        b.iter(|| black_box(Sim::new(&pts).run(Protocol::Nnt(RankScheme::Diagonal))))
    });
    group.finish();
}

fn bench_ghs_5000(c: &mut Criterion) {
    // The hot-protocol scaling target: GHS at the paper's largest
    // experiment size. The topology-cache refactor is judged against this
    // group (see BENCH_core.json for the tracked trajectory).
    let mut group = c.benchmark_group("ghs_n5000");
    group.sample_size(10);
    let pts = instance(BASE_SEED, 5000, 0);
    let r = paper_phase2_radius(5000);
    group.bench_function("ghs_original", |b| {
        b.iter(|| {
            black_box(
                Sim::new(&pts)
                    .radius(r)
                    .run(Protocol::Ghs(GhsVariant::Original)),
            )
        })
    });
    group.bench_function("ghs_modified", |b| {
        b.iter(|| {
            black_box(
                Sim::new(&pts)
                    .radius(r)
                    .run(Protocol::Ghs(GhsVariant::Modified)),
            )
        })
    });
    group.finish();
}

criterion_group!(
    baselines,
    bench_sequential_mst,
    bench_rgg_construction,
    bench_grid_queries,
    bench_protocols,
    bench_ghs_5000,
    bench_delaunay,
    bench_contention
);
criterion_main!(baselines);
