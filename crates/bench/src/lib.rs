//! # emst-bench — experiment harness
//!
//! Shared machinery for the experiment binaries (`src/bin/*`) and Criterion
//! benches (`benches/*`) that regenerate every table and figure of the
//! paper's evaluation (§VII) plus the theorem-validation and ablation
//! experiments indexed in DESIGN.md.
//!
//! Everything is seeded: instance `(n, trial)` is produced by
//! `trial_rng(mix_seed(BASE_SEED, n), trial)`, so any row of any table
//! can be regenerated in isolation.

pub mod chaos;
pub mod cli;
pub mod fanout;
pub mod report;
pub mod runner;

pub use chaos::{
    churn_violations, random_plan, random_timeline, rate_timeline, run_chaos, run_churn_chaos,
    shrink, shrink_timeline, violations, ChaosReport, ChaosViolation, ChurnChaosReport,
    ChurnViolation,
};
pub use cli::Options;
pub use fanout::{apply_thread_override, run_sweep, run_sweep_multi, run_trials};
pub use report::{
    first_row, last_row, row_at, ReportError, CONNECTIVITY_MULTIPLIERS, CONNECTIVITY_PAPER_INDEX,
    EOPT_ABLATION_MULTIPLIERS, EOPT_ABLATION_PAPER_INDEX,
};
pub use runner::*;

/// Base seed for all experiments.
pub const BASE_SEED: u64 = 0xE0E7_2008;

/// Writes an SVG next to the experiment's other outputs when `--svg DIR`
/// was given; creates the directory as needed.
pub fn save_svg(opts: &Options, name: &str, svg: &str) {
    if let Some(dir) = &opts.svg_dir {
        let path = std::path::Path::new(dir);
        if let Err(e) = std::fs::create_dir_all(path) {
            eprintln!("cannot create {dir}: {e}");
            return;
        }
        let file = path.join(format!("{name}.svg"));
        match std::fs::write(&file, svg) {
            Ok(()) => eprintln!("wrote {}", file.display()),
            Err(e) => eprintln!("cannot write {}: {e}", file.display()),
        }
    }
}
