//! **E10 — Lemmas 5.4 / 5.5:** the tail laws behind Theorem 5.2.
//!
//! The theorem's `β·log² n` bound on small-region occupancy rests on two
//! tail estimates in the supercritical phase of the site-percolation
//! reduction:
//!
//! * Lemma 5.4: `P(|S| = k) ≤ e^(−γ√k)` for the number of *cells* in a
//!   small region;
//! * Lemma 5.5: `P(Σ_{i∈S} Zᵢ > h) ≤ e^(−γ√h)` for the number of *nodes*.
//!
//! This experiment samples many instances at a supercritical constant,
//! collects every small region, and fits `ln P(size ≥ k)` against `√k`:
//! a good linear fit with negative slope is the empirical signature of the
//! `e^(−γ√k)` law (the paper's γ is not computable from the proof, so the
//! fitted slope *is* the measured γ).
//!
//! Run: `cargo run --release -p emst-bench --bin region_tails [-- --trials N --csv]`

use emst_analysis::{fit_line, fnum, Table};
use emst_bench::{instance, run_trials, Options};
use emst_percolation::giant_stats;

/// Empirical survival function ln P(X ≥ k) over the pooled sample, at the
/// distinct observed values.
fn survival_points(sizes: &[usize]) -> Vec<(f64, f64)> {
    if sizes.is_empty() {
        return Vec::new();
    }
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let mut out = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let k = sorted[i];
        let ge = sorted.len() - i;
        out.push(((k as f64).sqrt(), ((ge as f64) / n).ln()));
        while i < sorted.len() && sorted[i] == k {
            i += 1;
        }
    }
    out
}

fn main() {
    let mut opts = Options::from_env();
    if opts.trials == Options::default().trials {
        opts.trials = if opts.quick { 8 } else { 30 };
    }
    let n = if opts.quick { 2000 } else { 6000 };
    // Supercritical cell constant (see EXPERIMENTS.md E4 note: the cell
    // reduction needs c ≳ 9; Theorem 5.2 is stated for suitable constants).
    let c = 9.0;
    eprintln!(
        "region_tails: Lemma 5.4/5.5 tail laws at n = {n}, c = {c} ({} trials, seed {:#x})",
        opts.trials, opts.seed
    );

    let per_trial: Vec<(Vec<usize>, Vec<usize>)> = run_trials(&opts, |t| {
        let pts = instance(opts.seed, n, t);
        let s = giant_stats(&pts, (c / n as f64).sqrt());
        (s.regions.cells.clone(), s.regions.nodes.clone())
    });
    let mut cell_sizes: Vec<usize> = Vec::new();
    let mut node_sizes: Vec<usize> = Vec::new();
    for (cells, nodes) in per_trial {
        cell_sizes.extend(cells);
        node_sizes.extend(nodes.into_iter().filter(|&x| x > 0));
    }
    println!(
        "pooled {} small regions over {} instances",
        cell_sizes.len(),
        opts.trials
    );

    for (label, sizes, lemma) in [
        ("cells |S|", &cell_sizes, "Lemma 5.4"),
        ("nodes Σ Z_i", &node_sizes, "Lemma 5.5"),
    ] {
        let pts = survival_points(sizes);
        if pts.len() < 3 {
            println!(
                "{label}: too few distinct sizes to fit ({} points)",
                pts.len()
            );
            continue;
        }
        let (xs, ys): (Vec<f64>, Vec<f64>) = pts.iter().copied().unzip();
        let fit = fit_line(&xs, &ys);
        let mut table = Table::new(["sqrt(k)", "ln P(X >= k)", "fit"]);
        for (x, y) in &pts {
            table.row([fnum(*x, 3), fnum(*y, 3), fnum(fit.predict(*x), 3)]);
        }
        println!("-- {lemma}: survival tail of small-region {label} --");
        println!("{}", table.render());
        if opts.csv {
            println!("{}", table.to_csv());
        }
        println!(
            "  fitted ln P = {:.3} − {:.3}·√k (γ̂ = {:.3}), R² = {:.4} — {}\n",
            fit.intercept,
            -fit.slope,
            -fit.slope,
            fit.r_squared,
            if fit.slope < 0.0 && fit.r_squared > 0.8 {
                "consistent with the e^(−γ√k) law"
            } else {
                "tail law NOT confirmed at this scale"
            }
        );
    }
}
