//! **A1 — ablation (§V-A):** original GHS vs modified GHS at the
//! connectivity radius.
//!
//! The modification replaces test/accept/reject probing with a cached
//! neighbour fragment table maintained by announcements. Message
//! complexity drops from `O(n log n + |E|)` to `O(n·φ)` (φ = phases);
//! at the connectivity radius `|E| = Θ(n log n)`, so both variants remain
//! `Θ(log² n)` in *energy* — the asymptotic gain materialises only inside
//! EOPT's percolation-radius phase. This ablation shows exactly that:
//! a solid message/energy win here, but the same growth exponent.
//!
//! Run: `cargo run --release -p emst-bench --bin ablation_ghs [-- --trials N --csv]`

use emst_analysis::{fit_loglog_exponent, fnum, Table};
use emst_bench::{ghs_variant_row, run_sweep_multi, Options};

fn main() {
    let opts = Options::from_env();
    let sizes: Vec<usize> = if opts.quick {
        vec![100, 200, 400]
    } else {
        vec![100, 250, 500, 1000, 2000, 4000]
    };
    eprintln!(
        "ablation_ghs: original vs modified GHS ({} trials per point, seed {:#x})",
        opts.trials, opts.seed
    );

    let rows = run_sweep_multi(&opts, &sizes, |&n, t| ghs_variant_row(opts.seed, n, t));
    let mut table = Table::new([
        "n",
        "orig msgs",
        "orig energy",
        "mod msgs",
        "mod energy",
        "msg save",
        "energy save",
    ]);
    for (n, [om, oe, mm, me]) in &rows {
        table.row([
            n.to_string(),
            fnum(om.mean, 0),
            fnum(oe.mean, 2),
            fnum(mm.mean, 0),
            fnum(me.mean, 2),
            format!("{:.1}%", (1.0 - mm.mean / om.mean) * 100.0),
            format!("{:.1}%", (1.0 - me.mean / oe.mean) * 100.0),
        ]);
    }
    println!("{}", table.render());
    if opts.csv {
        println!("{}", table.to_csv());
    }

    let ns: Vec<f64> = rows.iter().map(|(n, _)| *n as f64).collect();
    let oe: Vec<f64> = rows.iter().map(|(_, s)| s[1].mean).collect();
    let me: Vec<f64> = rows.iter().map(|(_, s)| s[3].mean).collect();
    let fo = fit_loglog_exponent(&ns, &oe);
    let fm = fit_loglog_exponent(&ns, &me);
    println!("shape checks:");
    println!(
        "  both variants grow like log^2 n at the connectivity radius: slopes {:.2} (orig) vs {:.2} (mod)",
        fo.slope, fm.slope
    );
    println!(
        "  modified wins on constants, not exponents — the asymptotic win needs EOPT's phase 1"
    );
}
