//! **E2 — Figure 3(b):** the same energy data in `(log log n, log W)`
//! space. Writing `W = c·logᵇ n` gives `log W = log c + b·log log n`, so
//! the fitted slope is the exponent of the `log`: the paper reads off
//! slopes of about **2 (GHS), 1 (EOPT), 0 (Co-NNT)**, matching the
//! `O(log² n)` / `O(log n)` / `O(1)` analysis.
//!
//! Run: `cargo run --release -p emst-bench --bin fig3b [-- --trials N --csv --quick]`

use emst_analysis::{fit_loglog_exponent, fnum, LineChart, Series, Table};
use emst_bench::{fig3_energies, run_sweep_multi, save_svg, Options};

fn main() {
    let opts = Options::from_env();
    let sizes = opts.paper_sizes();
    eprintln!(
        "fig3b: log(energy) vs loglog(n) slope fits ({} trials per point, seed {:#x})",
        opts.trials, opts.seed
    );

    let rows = run_sweep_multi(&opts, &sizes, |&n, t| fig3_energies(opts.seed, n, t));

    // The transformed series, printed like the paper's plot.
    let mut table = Table::new(["n", "loglog n", "log GHS", "log EOPT", "log Co-NNT"]);
    for (n, [ghs, eopt, nnt]) in &rows {
        table.row([
            n.to_string(),
            fnum((*n as f64).ln().ln(), 4),
            fnum(ghs.mean.ln(), 4),
            fnum(eopt.mean.ln(), 4),
            fnum(nnt.mean.ln(), 4),
        ]);
    }
    println!("{}", table.render());
    if opts.csv {
        println!("{}", table.to_csv());
    }

    // Optional SVG: the transformed plot the paper shows.
    let mut chart = LineChart::new(
        "Figure 3(b): log(energy) vs loglog(n)".to_string(),
        "loglog n".to_string(),
        "log energy".to_string(),
    );
    for (k, label) in ["GHS", "EOPT", "Co-NNT"].iter().enumerate() {
        chart.add(Series::new(
            *label,
            rows.iter()
                .map(|(n, s)| ((*n as f64).ln().ln(), s[k].mean.ln()))
                .collect(),
        ));
    }
    save_svg(&opts, "fig3b", &chart.render());

    let ns: Vec<f64> = rows.iter().map(|(n, _)| *n as f64).collect();
    let mut fits = Table::new(["series", "slope b", "intercept", "R²", "paper slope"]);
    for (k, (label, paper)) in [("GHS", 2.0), ("EOPT", 1.0), ("Co-NNT", 0.0)]
        .iter()
        .enumerate()
    {
        let ys: Vec<f64> = rows.iter().map(|(_, s)| s[k].mean).collect();
        let fit = fit_loglog_exponent(&ns, &ys);
        fits.row([
            label.to_string(),
            fnum(fit.slope, 3),
            fnum(fit.intercept, 3),
            fnum(fit.r_squared, 4),
            fnum(*paper, 0),
        ]);
    }
    println!("{}", fits.render());
    if opts.csv {
        println!("{}", fits.to_csv());
    }

    // Complementary evidence: fit each series directly against its claimed
    // complexity form — W_GHS ~ ln² n, W_EOPT ~ ln n, W_NNT ~ const. A high
    // R² on the linear fit against the right regressor is a sharper test
    // than the loglog slope on this narrow loglog-range.
    let mut forms = Table::new(["series", "model", "coef", "intercept", "R²"]);
    let ghs_y: Vec<f64> = rows.iter().map(|(_, s)| s[0].mean).collect();
    let eopt_y: Vec<f64> = rows.iter().map(|(_, s)| s[1].mean).collect();
    let nnt_y: Vec<f64> = rows.iter().map(|(_, s)| s[2].mean).collect();
    let ln2: Vec<f64> = ns.iter().map(|n| n.ln() * n.ln()).collect();
    let ln1: Vec<f64> = ns.iter().map(|n| n.ln()).collect();
    let f_ghs = emst_analysis::fit_line(&ln2, &ghs_y);
    let f_eopt = emst_analysis::fit_line(&ln1, &eopt_y);
    let f_nnt = emst_analysis::fit_line(&ln1, &nnt_y);
    forms.row([
        "GHS".to_string(),
        "a + b·ln²n".to_string(),
        fnum(f_ghs.slope, 3),
        fnum(f_ghs.intercept, 2),
        fnum(f_ghs.r_squared, 4),
    ]);
    forms.row([
        "EOPT".to_string(),
        "a + b·ln n".to_string(),
        fnum(f_eopt.slope, 3),
        fnum(f_eopt.intercept, 2),
        fnum(f_eopt.r_squared, 4),
    ]);
    forms.row([
        "Co-NNT".to_string(),
        "a + b·ln n".to_string(),
        fnum(f_nnt.slope, 3),
        fnum(f_nnt.intercept, 2),
        fnum(f_nnt.r_squared, 4),
    ]);
    println!("{}", forms.render());
    if opts.csv {
        println!("{}", forms.to_csv());
    }
    println!("shape checks:");
    println!(
        "  GHS fits Θ(log² n):  R² = {:.4} with positive coefficient ({})",
        f_ghs.r_squared,
        f_ghs.slope > 0.0
    );
    println!(
        "  EOPT fits Θ(log n):  R² = {:.4} with positive coefficient ({})",
        f_eopt.r_squared,
        f_eopt.slope > 0.0
    );
    println!("  Co-NNT is Θ(1): ln-n coefficient {:.4} ≈ 0", f_nnt.slope);
}
