//! **R4 — churn sweep:** incremental maintenance vs per-epoch
//! recomputation under sustained membership churn.
//!
//! A deployed network does not rebuild its MST from scratch every time a
//! node crashes, sleeps, wakes, joins or moves — it maintains the forest
//! it has. This experiment drives the churn-maintenance loop
//! ([`emst_core::maintain()`]) through seeded [`rate_timeline`] schedules
//! (6 epochs, `n · rate` events per epoch from the deployment mix) under
//! both strategies and compares their maintenance cost. Reported per
//! `(n, churn rate, strategy)`:
//!
//! * **energy** — total maintenance energy across the timeline (the
//!   bootstrap construction is identical under both strategies and
//!   excluded);
//! * **energy/round** — the headline metric, energy per maintained
//!   round;
//! * raw message/round counters and the forest churn (edges added and
//!   removed across all epochs);
//! * **inc/rec** — on the incremental rows, the incremental-to-recompute
//!   energy ratio for that `(n, rate)` point.
//!
//! Every trial also runs the full churn invariant battery
//! ([`churn_violations`]: epoch monotonicity, bitwise ledger
//! conservation, forest validity, strategy/Kruskal agreement, bitwise
//! determinism) and the sweep **aborts** on any violation — the sweep
//! doubles as the CI churn smoke. Results land in `BENCH_churn.json`
//! (`bench_churn/v1`, validated by `bench_summary --churn-schema`).
//!
//! Run: `cargo run --release -p emst-bench --bin churn_sweep [-- --trials N --quick --csv]`

use emst_analysis::{fnum, Table};
use emst_bench::{churn_violations, instance, rate_timeline, Options};
use emst_core::{maintain, MaintainReport, MaintainStrategy};
use emst_geom::{mix_seed, paper_phase2_radius};

const EPOCHS: usize = 6;

/// Per-`(n, rate, strategy)` aggregates over the trial fan-out.
#[derive(Default)]
struct Row {
    bootstrap_energy: f64,
    energy: f64,
    messages: f64,
    rounds: f64,
    energy_per_round: f64,
    edges_added: f64,
    edges_removed: f64,
}

fn accumulate(row: &mut Row, rep: &MaintainReport, trials: f64) {
    row.bootstrap_energy += rep.bootstrap_energy / trials;
    row.energy += rep.maintenance_energy() / trials;
    row.messages += rep.maintenance_messages() as f64 / trials;
    row.rounds += rep.maintenance_rounds() as f64 / trials;
    row.energy_per_round += rep.energy_per_maintained_round() / trials;
    let (added, removed) = rep.epochs.iter().fold((0usize, 0usize), |(a, r), e| {
        (a + e.edges_added, r + e.edges_removed)
    });
    row.edges_added += added as f64 / trials;
    row.edges_removed += removed as f64 / trials;
}

fn main() {
    let opts = Options::from_env();
    let sizes: Vec<usize> = if opts.quick {
        vec![300]
    } else {
        vec![500, 2000]
    };
    let rates = [0.01, 0.02, 0.05];
    eprintln!(
        "churn_sweep: incremental vs recompute maintenance, rate ∈ {rates:?}, {EPOCHS} epochs \
         ({} trials per point, seed {:#x})",
        opts.trials, opts.seed
    );

    let mut json_rows: Vec<String> = Vec::new();
    let mut wins: Vec<(usize, f64, f64, f64)> = Vec::new();
    let mut violation_count = 0usize;
    for &n in &sizes {
        let radius = paper_phase2_radius(n);
        let mut table = Table::new([
            "rate",
            "strategy",
            "energy",
            "energy/round",
            "messages",
            "rounds",
            "edges +",
            "edges -",
            "inc/rec",
        ]);
        for &rate in &rates {
            let trials = opts.trials as f64;
            let mut inc_row = Row::default();
            let mut rec_row = Row::default();
            for t in 0..opts.trials as u64 {
                let pts = instance(opts.seed, n, t);
                let tl = rate_timeline(mix_seed(opts.seed, n as u64), t, n, EPOCHS, rate);
                let violations = churn_violations(&pts, radius, &tl);
                assert!(
                    violations.is_empty(),
                    "churn invariants violated at n={n} rate={rate} trial={t}: {violations:?}\n\
                     repro: {}",
                    tl.to_source()
                );
                violation_count += violations.len();
                accumulate(
                    &mut inc_row,
                    &maintain(&pts, radius, &tl, MaintainStrategy::Incremental),
                    trials,
                );
                accumulate(
                    &mut rec_row,
                    &maintain(&pts, radius, &tl, MaintainStrategy::Recompute),
                    trials,
                );
            }
            let ratio = inc_row.energy / rec_row.energy;
            wins.push((n, rate, inc_row.energy, rec_row.energy));
            for (name, row, ratio_cell) in [
                ("incremental", &inc_row, fnum(ratio, 3)),
                ("recompute", &rec_row, "-".into()),
            ] {
                table.row([
                    fnum(rate, 2),
                    name.into(),
                    fnum(row.energy, 3),
                    fnum(row.energy_per_round, 4),
                    fnum(row.messages, 0),
                    fnum(row.rounds, 1),
                    fnum(row.edges_added, 1),
                    fnum(row.edges_removed, 1),
                    ratio_cell,
                ]);
                json_rows.push(format!(
                    "    {{\"n\": {n}, \"rate\": {rate}, \"strategy\": \"{name}\", \
                     \"epochs\": {EPOCHS}, \"bootstrap_energy\": {:.4}, \
                     \"maintenance_energy\": {:.4}, \"energy_per_round\": {:.5}, \
                     \"messages\": {:.1}, \"rounds\": {:.1}, \"edges_added\": {:.1}, \
                     \"edges_removed\": {:.1}, \"violations\": 0}}",
                    row.bootstrap_energy,
                    row.energy,
                    row.energy_per_round,
                    row.messages,
                    row.rounds,
                    row.edges_added,
                    row.edges_removed,
                ));
            }
        }
        println!("-- maintenance cost under churn (n = {n}, {EPOCHS} epochs) --");
        println!("{}", table.render());
        if opts.csv {
            println!("{}", table.to_csv());
        }
    }

    // The point of incremental maintenance: at scale it must beat
    // per-epoch recomputation on energy. Enforced at the largest
    // measured size (n = 2000 in a full run).
    let largest = *sizes.iter().max().expect("sizes is non-empty");
    let win = wins
        .iter()
        .any(|&(n, _, inc, rec)| n == largest && inc < rec);
    for &(n, rate, inc, rec) in &wins {
        eprintln!(
            "win check: n={n} rate={rate}: incremental {inc:.3} vs recompute {rec:.3} -> {}",
            if inc < rec {
                "incremental wins"
            } else {
                "recompute wins"
            }
        );
    }
    assert!(
        win,
        "incremental maintenance never beat recomputation at n={largest}"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"bench_churn/v1\",\n");
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"trials\": {},\n", opts.trials));
    json.push_str(&format!("  \"epochs\": {EPOCHS},\n"));
    json.push_str(&format!("  \"violations\": {violation_count},\n"));
    json.push_str(&format!(
        "  \"incremental_win\": {{\"n\": {largest}, \"pass\": {win}}},\n"
    ));
    json.push_str("  \"rows\": [\n");
    json.push_str(&json_rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    let path = "BENCH_churn.json";
    std::fs::write(path, &json).expect("cannot write BENCH_churn.json");
    eprintln!("wrote {path}");
}
