//! **E3 — §VII in-text quality numbers:** Co-NNT versus the exact MST.
//!
//! The paper reports, for 1000 and 5000 nodes: total edge length
//! `Σ|e|` of **22.9 / 50.5** for Co-NNT against **20.8 / 46.3** for MST,
//! and sums of squared edges of **0.68** (Co-NNT) vs **0.52** (MST),
//! constants independent of `n`.
//!
//! Run: `cargo run --release -p emst-bench --bin quality_table [-- --trials N --csv]`

use emst_analysis::{fnum, Table};
use emst_bench::{quality_row, run_sweep_multi, Options};

/// Paper-reported values keyed by n: `(nnt_len, mst_len)`.
const PAPER_LEN: [(usize, f64, f64); 2] = [(1000, 22.9, 20.8), (5000, 50.5, 46.3)];

fn main() {
    let opts = Options::from_env();
    let sizes: Vec<usize> = if opts.quick {
        vec![500, 1000]
    } else {
        vec![1000, 5000]
    };
    eprintln!(
        "quality_table: Co-NNT vs MST tree cost ({} trials per point, seed {:#x})",
        opts.trials, opts.seed
    );

    let rows = run_sweep_multi(&opts, &sizes, |&n, t| quality_row(opts.seed, n, t));

    let mut table = Table::new([
        "n",
        "Σ|e| NNT",
        "Σ|e| MST",
        "paper NNT",
        "paper MST",
        "Σ|e|² NNT",
        "Σ|e|² MST",
        "len ratio",
        "sq ratio",
    ]);
    for (n, [nl, ml, ns, ms]) in &rows {
        let paper = PAPER_LEN.iter().find(|p| p.0 == *n);
        table.row([
            n.to_string(),
            fnum(nl.mean, 2),
            fnum(ml.mean, 2),
            paper.map_or("-".into(), |p| fnum(p.1, 1)),
            paper.map_or("-".into(), |p| fnum(p.2, 1)),
            fnum(ns.mean, 3),
            fnum(ms.mean, 3),
            fnum(nl.mean / ml.mean, 3),
            fnum(ns.mean / ms.mean, 3),
        ]);
    }
    println!("{}", table.render());
    if opts.csv {
        println!("{}", table.to_csv());
    }

    println!("shape checks:");
    for (n, [nl, ml, ns, ms]) in &rows {
        println!(
            "  n={n}: NNT within {:.1}% of MST length; Σ|e|² constants {:.2} vs {:.2} (paper 0.68 vs 0.52)",
            (nl.mean / ml.mean - 1.0) * 100.0,
            ns.mean,
            ms.mean
        );
    }
    if rows.len() == 2 {
        // Σ|e| grows like √n (Steele): ratio between sizes ≈ √(n₂/n₁).
        let growth = rows[1].1[1].mean / rows[0].1[1].mean;
        let expect = (rows[1].0 as f64 / rows[0].0 as f64).sqrt();
        println!(
            "  MST Σ|e| growth {:.2} vs √(n₂/n₁) = {:.2} (Steele Θ(√n) regime)",
            growth, expect
        );
    }
}
