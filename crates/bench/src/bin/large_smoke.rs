//! Large-n scale smoke: one modified-GHS run at n = 50 000, time-bounded.
//!
//! CI runs this to catch superlinear regressions that the wall-time guard
//! (pinned at n = 5000) cannot see. Each size runs twice through a shared
//! [`emst_core::Instance`]: the first rep pays topology construction, the second
//! must not — both reps must finish under [`TIME_BOUND_S`] seconds and
//! produce a spanning forest, and per-size throughput is printed so a
//! human can eyeball the curve.
//!
//! Flags: `--quick` shrinks the run to n = 10 000; `--large` extends it
//! to n = 100 000 (same per-rep bound).

use emst_bench::{sim_instance, Options};
use emst_core::{GhsVariant, Protocol, Sim};
use emst_geom::paper_phase2_radius;
use std::time::Instant;

/// Wall-time budget per rep (generous: the run takes well under half of
/// this on a warm laptop core; CI runners get slack).
const TIME_BOUND_S: f64 = 120.0;

fn main() {
    let opts = Options::from_env();
    let mut sizes: Vec<usize> = vec![if opts.quick { 10_000 } else { 50_000 }];
    if opts.large {
        sizes.push(100_000);
    }
    for n in sizes {
        let inst = sim_instance(opts.seed, n, 0);
        let r = paper_phase2_radius(n);
        let mut warm_msgs = None;
        for rep in ["cold", "warm"] {
            let start = Instant::now();
            let out = Sim::from_instance(&inst)
                .radius(r)
                .run(Protocol::Ghs(GhsVariant::Modified));
            let secs = start.elapsed().as_secs_f64();
            let phases = out.detail.as_ghs().expect("GHS run").phases;
            println!(
                "ghs_modified n={n} ({rep}): {:.3} s, {} fragments, {} phases, {} msgs, \
                 {:.0} nodes/s",
                secs,
                out.fragments,
                phases,
                out.stats.messages,
                n as f64 / secs
            );
            assert!(out.tree.is_valid(), "invalid forest");
            assert_eq!(
                *warm_msgs.get_or_insert(out.stats.messages),
                out.stats.messages,
                "instance reuse changed the run"
            );
            assert!(
                secs < TIME_BOUND_S,
                "large-n smoke exceeded its time bound: {secs:.1} s > {TIME_BOUND_S} s"
            );
        }
    }
}
