//! **A4 — generalised cost exponent (§II):** one tree minimises
//! `Σ_{(u,v)∈T} d(u,v)^α` for every `α > 0` simultaneously.
//!
//! §II notes (via Kruskal's construction) that the Euclidean MST minimises
//! the generalised objective for all α. Verified here two ways:
//!
//! 1. For each α, rebuild the MST with edge weights `d^α` — the edge set
//!    must be identical to the α = 1 tree.
//! 2. Report the cost of MST vs Co-NNT vs a deliberately bad (greedy
//!    max-weight) spanning tree under each α — the MST must dominate, and
//!    the gap must widen with α (longer edges are punished harder).
//!
//! Run: `cargo run --release -p emst-bench --bin alpha_sweep [-- --trials N --csv]`

use emst_analysis::{fnum, Table};
use emst_bench::{instance, Options};
use emst_core::{Protocol, RankScheme, Sim};
use emst_graph::{kruskal_mst, Edge, Graph, SpanningTree, UnionFind};

/// Max-weight spanning tree (anti-Kruskal): a valid but poor tree.
fn worst_tree(g: &Graph) -> SpanningTree {
    let mut edges: Vec<Edge> = g.edges().to_vec();
    edges.sort_unstable_by(|a, b| b.w.total_cmp(&a.w));
    let mut uf = UnionFind::new(g.n());
    let mut out = Vec::new();
    for e in edges {
        if uf.union(e.u as usize, e.v as usize) {
            out.push(e);
        }
    }
    SpanningTree::new(g.n(), out)
}

fn main() {
    let opts = Options::from_env();
    let n = if opts.quick { 300 } else { 1000 };
    let alphas = [0.5, 1.0, 2.0, 3.0, 4.0];
    eprintln!(
        "alpha_sweep: Σ d^α invariance of the MST at n = {n} (seed {:#x})",
        opts.seed
    );

    let pts = instance(opts.seed, n, 0);
    let r = 2.0 * emst_geom::paper_phase2_radius(n);
    let g = Graph::geometric(&pts, r);
    let mst = kruskal_mst(&g).expect("connected at twice the §VII radius");
    let nnt = Sim::new(&pts).run(Protocol::Nnt(RankScheme::Diagonal));
    let bad = worst_tree(&g);

    // Check 1: the α-weighted MST has the same edge set for every α.
    let mut invariant = true;
    for &alpha in &alphas {
        let edges_alpha: Vec<Edge> = g
            .edges()
            .iter()
            .map(|e| Edge::new(e.u as usize, e.v as usize, e.w.powf(alpha)))
            .collect();
        let g_alpha = Graph::from_edges(g.n(), edges_alpha);
        let mst_alpha = kruskal_mst(&g_alpha).expect("same connectivity");
        if !mst_alpha.same_edges(&mst) {
            invariant = false;
            println!("  !! alpha = {alpha}: MST edge set changed");
        }
    }
    println!(
        "check 1: MST edge set invariant across α ∈ {alphas:?}: {}",
        if invariant {
            "YES (as §II claims)"
        } else {
            "NO"
        }
    );

    // Check 2: cost dominance table.
    let mut table = Table::new([
        "alpha",
        "MST cost",
        "Co-NNT cost",
        "worst-tree cost",
        "NNT/MST",
        "worst/MST",
    ]);
    for &alpha in &alphas {
        let (cm, cn, cw) = (mst.cost(alpha), nnt.tree.cost(alpha), bad.cost(alpha));
        table.row([
            fnum(alpha, 1),
            fnum(cm, 4),
            fnum(cn, 4),
            fnum(cw, 4),
            fnum(cn / cm, 3),
            fnum(cw / cm, 1),
        ]);
    }
    println!("{}", table.render());
    if opts.csv {
        println!("{}", table.to_csv());
    }
    assert!(invariant, "MST α-invariance violated");
}
