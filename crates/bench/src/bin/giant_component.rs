//! **E4 — Theorem 5.2 / Figure 1:** the giant-component structure of the
//! random geometric graph at the percolation radius `r = √(c₁/n)`.
//!
//! The theorem claims a unique giant component of `Θ(n)` nodes whp, with
//! all other components trapped in small regions of at most `β·log² n`
//! nodes. This binary sweeps both `n` (at the §VII constant
//! `c₁ = 1.4² = 1.96`) and `c₁` (at fixed `n`), reporting the giant
//! fraction, the component count, the largest non-giant component and the
//! empirical `β̂ = max-region-nodes / ln² n`.
//!
//! Run: `cargo run --release -p emst-bench --bin giant_component [-- --trials N --csv]`

use emst_analysis::{fnum, Table, UnitSquarePlot};
use emst_bench::{
    giant_row, instance, last_row, row_at, run_sweep_multi, save_svg, Options, ReportError,
};

fn main() {
    if let Err(e) = run() {
        eprintln!("giant_component: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), ReportError> {
    let opts = Options::from_env();
    eprintln!(
        "giant_component: Theorem 5.2 structure ({} trials per point, seed {:#x})",
        opts.trials, opts.seed
    );

    // Sweep n at the paper's constant.
    let sizes: Vec<usize> = if opts.quick {
        vec![500, 1000, 2000]
    } else {
        vec![500, 1000, 2000, 4000, 8000, 16000]
    };
    let c_paper = 1.96;
    let rows = run_sweep_multi(&opts, &sizes, |&n, t| giant_row(opts.seed, n, c_paper, t));
    let mut t1 = Table::new([
        "n",
        "giant frac",
        "components",
        "2nd comp nodes",
        "ln^2 n",
        "beta_hat",
    ]);
    for (n, [gf, comps, second, beta]) in &rows {
        let l = (*n as f64).ln();
        t1.row([
            n.to_string(),
            fnum(gf.mean, 3),
            fnum(comps.mean, 1),
            fnum(second.mean, 1),
            fnum(l * l, 1),
            fnum(beta.mean, 3),
        ]);
    }
    println!("-- n sweep at c1 = {c_paper} (the §VII constant) --");
    println!("{}", t1.render());
    if opts.csv {
        println!("{}", t1.to_csv());
    }

    // Sweep c1 at fixed n: the percolation transition.
    let n_fixed = if opts.quick { 2000 } else { 8000 };
    let cs = [0.25, 0.5, 1.0, 1.44, 1.96, 2.56, 4.0, 9.0, 16.0];
    let rows = run_sweep_multi(&opts, &cs, |&c, t| {
        giant_row(opts.seed ^ 0x9999, n_fixed, c, t)
    });
    let mut t2 = Table::new([
        "c1",
        "giant frac",
        "components",
        "2nd comp nodes",
        "beta_hat",
    ]);
    for (c, [gf, comps, second, beta]) in &rows {
        t2.row([
            fnum(*c, 2),
            fnum(gf.mean, 3),
            fnum(comps.mean, 1),
            fnum(second.mean, 1),
            fnum(beta.mean, 3),
        ]);
    }
    println!("-- c1 sweep at n = {n_fixed} (percolation transition) --");
    println!("{}", t2.render());
    if opts.csv {
        println!("{}", t2.to_csv());
    }

    // Optional SVG: a Figure-1-style map of one instance at the paper's
    // radius — giant component in one colour, small components in another,
    // RGG edges in grey.
    if opts.svg_dir.is_some() {
        let n_map = 2000;
        let pts = instance(opts.seed, n_map, 0);
        let r = (c_paper / n_map as f64).sqrt();
        let g = emst_graph::Graph::geometric(&pts, r);
        let comps = emst_graph::Components::of(&g);
        let giant = comps.largest().ok_or(ReportError::Missing {
            what: "giant component",
        })?;
        let mut plot = UnitSquarePlot::new(format!(
            "Figure 1: giant component at r = sqrt({c_paper}/n), n = {n_map}"
        ));
        for (i, p) in pts.iter().enumerate() {
            plot.points
                .push((p.x, p.y, if comps.label[i] == giant { 0 } else { 1 }));
        }
        for e in g.edges() {
            let (u, v) = e.endpoints();
            plot.edges
                .push(((pts[u].x, pts[u].y), (pts[v].x, pts[v].y)));
        }
        save_svg(&opts, "fig1_giant_map", &plot.render());
    }

    println!("shape checks:");
    let sub = row_at(&rows, 0, "percolation constant")?;
    let paper = row_at(&rows, 4, "percolation constant")?;
    let (gf_lo, gf_paper) = (sub.1[0].mean, paper.1[0].mean);
    println!(
        "  subcritical c1 = {} → giant frac {:.3}; paper c1 = {} → {:.3} (transition visible: {})",
        sub.0,
        gf_lo,
        paper.0,
        gf_paper,
        gf_paper > 5.0 * gf_lo
    );
    let last_beta = last_row(&rows, "percolation constant")?.1[3].mean;
    println!("  beta_hat stays O(1) in the supercritical regime: {last_beta:.3}");
    Ok(())
}
