//! **E1 — Figure 3(a):** total energy consumed by GHS, EOPT and Co-NNT as
//! a function of `n` (50 … 5000, uniform random nodes in the unit square).
//!
//! Paper setup (§VII): GHS and EOPT's second phase use radius
//! `1.6·√(ln n/n)`; EOPT's first phase uses `1.4·√(1/n)`. The paper's
//! Figure 3(a) shows GHS growing far faster than EOPT, with Co-NNT nearly
//! flat near the bottom.
//!
//! Run: `cargo run --release -p emst-bench --bin fig3a [-- --trials N --csv --quick]`

use emst_analysis::{fnum, LineChart, Series, Table};
use emst_bench::{fig3_energies, run_sweep_multi, save_svg, Options};

fn main() {
    let opts = Options::from_env();
    let sizes = opts.paper_sizes();
    eprintln!(
        "fig3a: energy vs n for GHS / EOPT / Co-NNT ({} trials per point, seed {:#x})",
        opts.trials, opts.seed
    );

    let rows = run_sweep_multi(&opts, &sizes, |&n, t| fig3_energies(opts.seed, n, t));

    let mut table = Table::new([
        "n",
        "GHS energy",
        "±95%",
        "EOPT energy",
        "±95%",
        "Co-NNT energy",
        "±95%",
        "GHS/EOPT",
        "EOPT/NNT",
    ]);
    for (n, [ghs, eopt, nnt]) in &rows {
        table.row([
            n.to_string(),
            fnum(ghs.mean, 3),
            fnum(ghs.ci95(), 3),
            fnum(eopt.mean, 3),
            fnum(eopt.ci95(), 3),
            fnum(nnt.mean, 3),
            fnum(nnt.ci95(), 3),
            fnum(ghs.mean / eopt.mean, 2),
            fnum(eopt.mean / nnt.mean, 2),
        ]);
    }
    println!("{}", table.render());
    if opts.csv {
        println!("{}", table.to_csv());
    }

    // Optional SVG rendition of the figure.
    let mut chart = LineChart::new(
        "Figure 3(a): energy consumed vs n".to_string(),
        "n (number of nodes)".to_string(),
        "total energy".to_string(),
    );
    for (k, label) in ["GHS", "EOPT", "Co-NNT"].iter().enumerate() {
        chart.add(Series::new(
            *label,
            rows.iter().map(|(n, s)| (*n as f64, s[k].mean)).collect(),
        ));
    }
    save_svg(&opts, "fig3a", &chart.render());

    // Shape verdicts matching the paper's qualitative claims.
    let last = rows.last().expect("non-empty sweep");
    let (n, [ghs, eopt, nnt]) = last;
    println!("shape checks at n = {n}:");
    println!(
        "  GHS > EOPT:   {} ({:.1} vs {:.1})",
        ghs.mean > eopt.mean,
        ghs.mean,
        eopt.mean
    );
    println!(
        "  EOPT > Co-NNT: {} ({:.1} vs {:.1})",
        eopt.mean > nnt.mean,
        eopt.mean,
        nnt.mean
    );
    let first = &rows[0];
    println!(
        "  Co-NNT flat:  {} (energy x{:.2} while n x{})",
        nnt.mean < first.1[2].mean * 4.0 + 10.0,
        nnt.mean / first.1[2].mean.max(1e-9),
        n / first.0
    );
}
