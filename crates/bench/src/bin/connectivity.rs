//! **E5 — Theorem 5.1 (Gupta–Kumar):** the connectivity threshold of the
//! random geometric graph at radius `r = m·√(ln n/n)`.
//!
//! The theorem guarantees connectivity whp for `c₂ = m² > 4` (`m > 2`);
//! the §VII experiments use `m = 1.6` and rely on empirical connectivity.
//! This binary sweeps `m` at several sizes and reports the empirical
//! probability of connectivity, exhibiting the sharp threshold and
//! justifying the paper's choice.
//!
//! Run: `cargo run --release -p emst-bench --bin connectivity [-- --trials N --csv]`

use emst_analysis::{fnum, Table};
use emst_bench::{
    connectivity_trial, first_row, last_row, row_at, run_sweep, Options, ReportError,
    CONNECTIVITY_MULTIPLIERS, CONNECTIVITY_PAPER_INDEX,
};

fn main() {
    if let Err(e) = run() {
        eprintln!("connectivity: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), ReportError> {
    let mut opts = Options::from_env();
    // Probabilities need more trials than energy means.
    if opts.trials == Options::default().trials {
        opts.trials = if opts.quick { 10 } else { 40 };
    }
    eprintln!(
        "connectivity: P(connected) vs radius multiplier ({} trials per point, seed {:#x})",
        opts.trials, opts.seed
    );

    let sizes: Vec<usize> = if opts.quick {
        vec![200, 1000]
    } else {
        vec![200, 1000, 5000]
    };
    let multipliers = CONNECTIVITY_MULTIPLIERS;

    let mut table = Table::new([
        "m (r = m·sqrt(ln n/n))",
        "c2 = m^2",
        "n=200",
        "n=1000",
        "n=5000",
    ]);
    let mut results: Vec<Vec<f64>> = Vec::new();
    for &m in &multipliers {
        let mut row = Vec::new();
        for &n in &sizes {
            let pts = run_sweep(&opts, &[n], |&n, t| connectivity_trial(opts.seed, n, m, t));
            row.push(pts[0].summary.mean);
        }
        results.push(row);
    }
    for (i, &m) in multipliers.iter().enumerate() {
        let mut cells = vec![fnum(m, 2), fnum(m * m, 2)];
        for j in 0..3 {
            cells.push(match results[i].get(j) {
                Some(&v) => fnum(v, 2),
                None => "-".to_string(),
            });
        }
        table.row(cells);
    }
    println!("{}", table.render());
    if opts.csv {
        println!("{}", table.to_csv());
    }

    println!("shape checks:");
    let first = first_row(&results, "connectivity multiplier")?;
    let last = last_row(&results, "connectivity multiplier")?;
    println!(
        "  monotone threshold: P at m=0.6 → {:.2}, P at m=2.4 → {:.2}",
        first[0], last[0]
    );
    // §VII's operating point is addressed by its declared index, not by
    // an exact-`f64` scan of the multiplier list.
    let at16 = row_at(
        &results,
        CONNECTIVITY_PAPER_INDEX,
        "connectivity multiplier",
    )?;
    println!(
        "  §VII's m = 1.6 is empirically connected: {}",
        at16.iter()
            .take(sizes.len())
            .map(|p| fnum(*p, 2))
            .collect::<Vec<_>>()
            .join(" / ")
    );
    Ok(())
}
