//! **R1/R2 — fault sweep:** reliability of the MST protocols under lossy
//! links, before and after the recovery runtime.
//!
//! The paper's analysis assumes every transmission is delivered; this
//! experiment measures what each protocol actually does when the radio
//! layer drops each (sender, receiver) delivery independently with
//! probability `p` and senders retry a bounded number of times
//! (acknowledgement/timeout model, default 3 retries). Each trial runs
//! twice on identical fault coins — once bare (R1) and once with the
//! repair stage enabled (R2) — so the `repaired` column isolates exactly
//! what the recovery runtime buys. Reported per `(protocol, n, p)`:
//!
//! * **completed** — fraction of bare trials whose output forest spans
//!   (a single fragment);
//! * **repaired** — same fraction with repair enabled (the tree builders
//!   recover the p = 0.2 cliff to ~1.0);
//! * **weight/MST** — `Σ|e|` of the produced forest over the clean
//!   Euclidean MST weight (partial forests weigh less, distorted trees
//!   more);
//! * **energy x** — energy inflation over the same protocol's fault-free
//!   run (retry surcharge; expected a small constant factor at small `p`);
//! * the raw drop/retry/timeout counters;
//! * **degraded stage** — for trials that degraded, the stage that
//!   exhausted its retry budget (modal label across trials, from the
//!   per-stage fault deltas on the stage marks).
//!
//! Co-NNT has no repair path (no salvageable fragment forest — its
//! partial structures are per-node parent pointers), so its `repaired`
//! column equals `completed`.
//!
//! Run: `cargo run --release -p emst-bench --bin fault_sweep [-- --trials N --quick --csv]`

use emst_analysis::{fnum, Table};
use emst_bench::{repair_trial, run_trials, Options, RepairTrial};
use emst_core::{EoptConfig, GhsVariant, Protocol, RankScheme};
use std::collections::BTreeMap;

fn protocols() -> Vec<(&'static str, Protocol)> {
    vec![
        ("ghs_modified", Protocol::Ghs(GhsVariant::Modified)),
        ("eopt", Protocol::Eopt(EoptConfig::default())),
        ("co_nnt", Protocol::Nnt(RankScheme::Diagonal)),
    ]
}

/// Per-`(protocol, n, p)` aggregates over the trial fan-out.
struct Row {
    completed: f64,
    repaired: f64,
    weight_ratio: f64,
    energy: f64,
    repaired_energy: f64,
    drops: f64,
    retries: f64,
    timeouts: f64,
    attempts: f64,
    /// Modal degraded-stage label, as `"scope/name (count/degraded)"`.
    degraded_stage: Option<(String, usize, usize)>,
}

fn aggregate(trials: &[RepairTrial]) -> Row {
    let n = trials.len() as f64;
    let mean = |f: &dyn Fn(&RepairTrial) -> f64| trials.iter().map(f).sum::<f64>() / n;
    let mut stages: BTreeMap<&str, usize> = BTreeMap::new();
    for t in trials {
        if let Some(stage) = &t.degraded_stage {
            *stages.entry(stage.as_str()).or_default() += 1;
        }
    }
    let degraded: usize = stages.values().sum();
    // Modal label; BTreeMap iteration makes the tie-break lexicographic
    // and therefore deterministic.
    let degraded_stage = stages
        .iter()
        .max_by_key(|&(_, &count)| count)
        .map(|(stage, &count)| (stage.to_string(), count, degraded));
    Row {
        completed: mean(&|t| f64::from(u8::from(t.base.completed))),
        repaired: mean(&|t| f64::from(u8::from(t.repaired_completed))),
        weight_ratio: mean(&|t| t.base.weight / t.base.mst_weight),
        energy: mean(&|t| t.base.energy),
        repaired_energy: mean(&|t| t.repaired_energy),
        drops: mean(&|t| t.base.drops as f64),
        retries: mean(&|t| t.base.retries as f64),
        timeouts: mean(&|t| t.base.timeouts as f64),
        attempts: mean(&|t| f64::from(t.repair_attempts)),
        degraded_stage,
    }
}

fn main() {
    let opts = Options::from_env();
    let sizes: Vec<usize> = if opts.quick {
        vec![500]
    } else {
        vec![500, 2000]
    };
    let ps = [0.0, 0.01, 0.05, 0.1, 0.2];
    eprintln!(
        "fault_sweep: link-drop reliability ± repair, p ∈ {ps:?} ({} trials per point, seed {:#x})",
        opts.trials, opts.seed
    );

    let mut json_rows: Vec<String> = Vec::new();
    for (name, proto) in protocols() {
        for &n in &sizes {
            let rows: Vec<(f64, Row)> = ps
                .iter()
                .map(|&p| {
                    let trials = run_trials(&opts, |t| repair_trial(opts.seed, n, p, proto, t));
                    (p, aggregate(&trials))
                })
                .collect();
            // The p = 0.0 row is the protocol's own fault-free baseline.
            let base_energy = rows[0].1.energy;
            let mut table = Table::new([
                "drop p",
                "completed",
                "repaired",
                "weight/MST",
                "energy x",
                "repair x",
                "drops",
                "retries",
                "timeouts",
                "degraded stage",
            ]);
            for (p, row) in &rows {
                let stage_cell = match &row.degraded_stage {
                    Some((stage, count, total)) => format!("{stage} ({count}/{total})"),
                    None => "-".into(),
                };
                table.row([
                    fnum(*p, 2),
                    fnum(row.completed, 2),
                    fnum(row.repaired, 2),
                    fnum(row.weight_ratio, 3),
                    fnum(row.energy / base_energy, 2),
                    fnum(row.repaired_energy / base_energy, 2),
                    fnum(row.drops, 1),
                    fnum(row.retries, 1),
                    fnum(row.timeouts, 1),
                    stage_cell.clone(),
                ]);
                let stage_json = match &row.degraded_stage {
                    Some((stage, _, _)) => format!("\"{stage}\""),
                    None => "null".into(),
                };
                json_rows.push(format!(
                    "    {{\"protocol\": \"{name}\", \"n\": {n}, \"p\": {p}, \
                     \"completed\": {:.3}, \"repaired\": {:.3}, \"weight_ratio\": {:.4}, \
                     \"energy\": {:.3}, \"energy_x\": {:.3}, \"repaired_energy\": {:.3}, \
                     \"repair_attempts\": {:.2}, \"drops\": {:.1}, \"retries\": {:.1}, \
                     \"timeouts\": {:.1}, \"degraded_stage\": {stage_json}}}",
                    row.completed,
                    row.repaired,
                    row.weight_ratio,
                    row.energy,
                    row.energy / base_energy,
                    row.repaired_energy,
                    row.attempts,
                    row.drops,
                    row.retries,
                    row.timeouts,
                ));
            }
            println!("-- {name} under link faults (n = {n}) --");
            println!("{}", table.render());
            if opts.csv {
                println!("{}", table.to_csv());
            }
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"fault_sweep/v2\",\n");
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"trials\": {},\n", opts.trials));
    json.push_str("  \"rows\": [\n");
    json.push_str(&json_rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    let path = "BENCH_faults.json";
    std::fs::write(path, &json).expect("cannot write BENCH_faults.json");
    eprintln!("wrote {path}");
}
