//! **R1 — fault sweep:** reliability of the MST protocols under lossy
//! links.
//!
//! The paper's analysis assumes every transmission is delivered; this
//! experiment measures what each protocol actually does when the radio
//! layer drops each (sender, receiver) delivery independently with
//! probability `p` and senders retry a bounded number of times
//! (acknowledgement/timeout model, default 3 retries). Reported per
//! `(protocol, n, p)`:
//!
//! * **completed** — fraction of trials whose output forest spans
//!   (a single fragment);
//! * **weight/MST** — `Σ|e|` of the produced forest over the clean
//!   Euclidean MST weight (partial forests weigh less, distorted trees
//!   more);
//! * **energy x** — energy inflation over the same protocol's fault-free
//!   run (retry surcharge; expected a small constant factor at small `p`);
//! * the raw drop/retry/timeout counters.
//!
//! Run: `cargo run --release -p emst-bench --bin fault_sweep [-- --trials N --quick --csv]`

use emst_analysis::{fnum, Table};
use emst_bench::{fault_trial, run_sweep_multi, Options};
use emst_core::{EoptConfig, GhsVariant, Protocol, RankScheme};

fn protocols() -> Vec<(&'static str, Protocol)> {
    vec![
        ("ghs_modified", Protocol::Ghs(GhsVariant::Modified)),
        ("eopt", Protocol::Eopt(EoptConfig::default())),
        ("co_nnt", Protocol::Nnt(RankScheme::Diagonal)),
    ]
}

fn main() {
    let opts = Options::from_env();
    let sizes: Vec<usize> = if opts.quick {
        vec![500]
    } else {
        vec![500, 2000]
    };
    let ps = [0.0, 0.01, 0.05, 0.1, 0.2];
    eprintln!(
        "fault_sweep: link-drop reliability, p ∈ {ps:?} ({} trials per point, seed {:#x})",
        opts.trials, opts.seed
    );

    let mut json_rows: Vec<String> = Vec::new();
    for (name, proto) in protocols() {
        for &n in &sizes {
            let rows = run_sweep_multi(&opts, &ps, |&p, t| {
                let ft = fault_trial(opts.seed, n, p, proto, t);
                [
                    if ft.completed { 1.0 } else { 0.0 },
                    ft.weight / ft.mst_weight,
                    ft.energy,
                    ft.drops as f64,
                    ft.retries as f64,
                    ft.timeouts as f64,
                ]
            });
            // The p = 0.0 row is the protocol's own fault-free baseline.
            let base_energy = rows[0].1[2].mean;
            let mut table = Table::new([
                "drop p",
                "completed",
                "weight/MST",
                "energy",
                "energy x",
                "drops",
                "retries",
                "timeouts",
            ]);
            for (p, [c, w, e, d, r, to]) in &rows {
                table.row([
                    fnum(*p, 2),
                    fnum(c.mean, 2),
                    fnum(w.mean, 3),
                    fnum(e.mean, 2),
                    fnum(e.mean / base_energy, 2),
                    fnum(d.mean, 1),
                    fnum(r.mean, 1),
                    fnum(to.mean, 1),
                ]);
                json_rows.push(format!(
                    "    {{\"protocol\": \"{name}\", \"n\": {n}, \"p\": {p}, \
                     \"completed\": {:.3}, \"weight_ratio\": {:.4}, \"energy\": {:.3}, \
                     \"energy_x\": {:.3}, \"drops\": {:.1}, \"retries\": {:.1}, \
                     \"timeouts\": {:.1}}}",
                    c.mean,
                    w.mean,
                    e.mean,
                    e.mean / base_energy,
                    d.mean,
                    r.mean,
                    to.mean
                ));
            }
            println!("-- {name} under link faults (n = {n}) --");
            println!("{}", table.render());
            if opts.csv {
                println!("{}", table.to_csv());
            }
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"fault_sweep/v1\",\n");
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"trials\": {},\n", opts.trials));
    json.push_str("  \"rows\": [\n");
    json.push_str(&json_rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    let path = "BENCH_faults.json";
    std::fs::write(path, &json).expect("cannot write BENCH_faults.json");
    eprintln!("wrote {path}");
}
