//! **O1 — per-phase energy breakdown:** where each protocol's energy
//! actually goes, from the trace layer rather than from protocol-specific
//! plumbing.
//!
//! Attaches a `MetricsSink` to one run of each algorithm and prints:
//!
//! * **GHS (modified)** — energy per Borůvka phase and per stage
//!   (initiate / test / report / change-root / connect / announce),
//!   exposing the paper's `Θ(log n)`-phases × `Θ(log n)`-energy-per-phase
//!   structure behind the `Θ(log² n)` total;
//! * **EOPT** — step 1 (percolation radius) vs step 2 (connectivity
//!   radius) vs the beyond-paper recovery pass, the empirical face of
//!   §V's claim that step 1's `O(n log n)` messages are energetically
//!   free and the total is dominated by `O(n)` messages at `r₂`;
//! * **Co-NNT** — the probe-escalation ladder: each 3-round window is one
//!   probe phase at doubling area `2ⁱ/n`, and §VI's geometric argument
//!   predicts participation (and thus energy) decaying fast enough for an
//!   `O(1)` total.
//!
//! Every table is cross-checked against the run's own ledger: the sink's
//! running total must equal `RunStats::energy` bitwise (same float
//! accumulation order), and the phase / ladder partition sums must agree
//! to 1e-9 (re-summing buckets reassociates the additions).
//!
//! Run: `cargo run --release -p emst-bench --bin phase_breakdown [-- --csv]`

use emst_analysis::{fnum, phase_table, round_bucket_table, summary_line, Table};
use emst_bench::{instance, Options};
use emst_core::{EoptConfig, GhsVariant, Protocol, RankScheme, Sim};
use emst_geom::{nnt_probe_radius, paper_phase2_radius};
use emst_radio::MetricsSink;

fn main() {
    let opts = Options::from_env();
    let n = if opts.quick { 300 } else { 1000 };
    eprintln!(
        "phase_breakdown: per-phase energy attribution at n = {n} (seed {:#x})",
        opts.seed
    );
    let pts = instance(opts.seed, n, 0);
    let r = paper_phase2_radius(n);

    // --- GHS (modified): Borůvka phase × stage table. ---
    let mut m = MetricsSink::new();
    let ghs = Sim::new(&pts)
        .radius(r)
        .sink(&mut m)
        .run(Protocol::Ghs(GhsVariant::Modified));
    println!("== GHS (modified) at the connectivity radius ==");
    println!("{}", summary_line(&m));
    println!("{}", phase_table(&m).render());
    if opts.csv {
        println!("{}", phase_table(&m).to_csv());
    }
    // The sink's running total is bitwise-exact (same accumulation order
    // as the ledger); re-summing the per-stage partition rounds
    // differently, so that check is tolerance-tight instead.
    assert_eq!(m.total_energy(), ghs.stats.energy, "GHS sink drifted");
    let phase_sum: f64 = m.phases().map(|(_, t)| t.energy).sum();
    let ghs_phases = ghs.detail.as_ghs().expect("GHS detail").phases;
    println!(
        "phases: {ghs_phases}; sink total == run total exactly: {}; stage sums within 1e-9: {}\n",
        m.total_energy() == ghs.stats.energy,
        (phase_sum - ghs.stats.energy).abs() < 1e-9
    );

    // --- EOPT: step attribution. ---
    let mut m = MetricsSink::new();
    let eopt = Sim::new(&pts)
        .sink(&mut m)
        .run(Protocol::Eopt(EoptConfig::default()));
    assert_eq!(m.total_energy(), eopt.stats.energy, "EOPT sink drifted");
    let d = eopt.detail.as_eopt().expect("EOPT detail");
    println!("== EOPT ==");
    println!("{}", summary_line(&m));
    // The stage runtime records one mark per protocol stage; the stage
    // scopes partition the run into step 1 (`eopt1`), step 2 (`eopt2`)
    // and the beyond-paper recovery pass (`eopt2/recover`).
    let mut stage_table = Table::new(["stage", "messages", "rounds", "energy"]);
    let mut sums = [(0u64, 0.0f64); 3]; // step1, step2 (non-recovery), recovery
    for s in &eopt.stages {
        stage_table.row([
            format!("{}/{}", s.scope, s.name),
            s.messages.to_string(),
            s.rounds.to_string(),
            fnum(s.energy, 6),
        ]);
        let slot = match s.scope {
            "eopt1" => 0,
            "eopt2/recover" => 2,
            _ => 1,
        };
        sums[slot].0 += s.messages;
        sums[slot].1 += s.energy;
    }
    println!("{}", stage_table.render());
    let mut steps = Table::new(["step", "messages", "energy", "% energy"]);
    for (label, (msgs, energy)) in [
        ("step 1 (percolation r1)", sums[0]),
        ("step 2 (connectivity r2)", sums[1]),
        ("recovery pass", sums[2]),
    ] {
        steps.row([
            label.to_string(),
            msgs.to_string(),
            fnum(energy, 6),
            fnum(100.0 * energy / eopt.stats.energy, 1),
        ]);
    }
    println!("{}", steps.render());
    if opts.csv {
        println!("{}", steps.to_csv());
    }
    // Cross-check: the stage-delta attribution must agree with the
    // ledger's kind-prefix partition (`eopt1/`, `eopt2/`, with
    // `eopt2/recover/` isolated) — two independent accounting paths.
    let mut ledger_sums = [(0u64, 0.0f64); 3];
    for (kind, t) in m.kinds() {
        let slot = if kind.starts_with("eopt2/recover/") {
            2
        } else if kind.starts_with("eopt2/") {
            1
        } else {
            0
        };
        ledger_sums[slot].0 += t.messages;
        ledger_sums[slot].1 += t.energy;
    }
    for (slot, (stage, ledger)) in sums.iter().zip(ledger_sums.iter()).enumerate() {
        assert_eq!(stage.0, ledger.0, "EOPT step {slot} message split drifted");
        assert!(
            (stage.1 - ledger.1).abs() < 1e-9,
            "EOPT step {slot} energy split drifted"
        );
    }
    assert_eq!(d.messages_step1, sums[0].0, "detail vs stage marks");
    assert_eq!(
        d.messages_step2,
        sums[1].0 + sums[2].0,
        "detail vs stage marks"
    );
    println!(
        "step-1 phases {}, step-2 phases {}, recovery used: {}; per-phase stage log has {} entries",
        d.phases_step1,
        d.phases_step2,
        d.recovery_used,
        m.phase_log().len()
    );
    println!(
        "step 1 carries {:.0}% of the messages but {:.0}% of the energy (cheap percolation radius)\n",
        100.0 * sums[0].0 as f64 / eopt.stats.messages as f64,
        100.0 * sums[0].1 / eopt.stats.energy
    );

    // --- Co-NNT: the probe-escalation ladder from the round histogram. ---
    let mut m = MetricsSink::new();
    let nnt = Sim::new(&pts)
        .sink(&mut m)
        .run(Protocol::Nnt(RankScheme::Diagonal));
    println!("== Co-NNT (diagonal rank) ==");
    println!("{}", summary_line(&m));
    // Collision-free probe phase i occupies rounds 3(i−1)..3i, so the
    // 3-round buckets of the histogram ARE the escalation ladder.
    let ladder = round_bucket_table(&m, 3);
    println!("{}", ladder.render());
    if opts.csv {
        println!("{}", ladder.to_csv());
    }
    let mut probe_info = Table::new(["probe phase", "radius", "area x n"]);
    let max_phase = nnt.detail.as_nnt().expect("NNT detail").max_phases_used;
    for i in 1..=max_phase {
        let pr = nnt_probe_radius(i, n);
        probe_info.row([
            i.to_string(),
            fnum(pr, 5),
            fnum(std::f64::consts::PI * pr * pr * n as f64, 1),
        ]);
    }
    println!("{}", probe_info.render());
    let bucket_sum: f64 = m.round_kinds().map(|(_, t)| t.energy).sum();
    println!(
        "sink total == run total exactly: {}; ladder sums within 1e-9: {}",
        m.total_energy() == nnt.stats.energy,
        (bucket_sum - nnt.stats.energy).abs() < 1e-9
    );

    assert!(
        (phase_sum - ghs.stats.energy).abs() < 1e-9,
        "GHS stage sums drifted"
    );
    assert!(
        (bucket_sum - nnt.stats.energy).abs() < 1e-9,
        "NNT ladder sums drifted"
    );
    assert_eq!(m.total_energy(), nnt.stats.energy, "NNT sink drifted");
}
