//! **R6 — awake sweep:** awake complexity (total and max-per-node awake
//! rounds) next to energy across the MST protocols.
//!
//! The paper's charging model bills every node for every round; the
//! awake-complexity lens (Augustine–Moses–Pandurangan) instead counts
//! only the rounds a node spends listening or transmitting, treating
//! sleep as free. This sweep runs each protocol under an installed
//! [`emst_core::Sim::awake`] schedule and reports, per `(n, protocol)`:
//!
//! * **awake total** — awake node-rounds summed over all nodes;
//! * **awake max** — the worst single node's awake rounds (the metric
//!   the low-awake literature optimises);
//! * **max/rounds** — awake max as a fraction of the run's rounds (1.0
//!   for an all-awake protocol, lower when nodes genuinely sleep);
//! * the usual energy / messages / rounds triple for context.
//!
//! `ghs_lowawake` is the modified GHS with stage-tail sleeping: identical
//! forest, messages and rounds, but members sleep once their own
//! fragment's stage work is done and exhausted fragments sleep whole
//! stages. The sweep **asserts** it beats plain `ghs_modified` on awake
//! max at the largest measured size — the same pin `bench_summary
//! --awake-schema` re-checks on the committed `BENCH_awake.json`
//! (`bench_awake/v1`).
//!
//! Run: `cargo run --release -p emst-bench --bin awake_sweep [-- --trials N --quick --csv]`

use emst_analysis::{fnum, Table};
use emst_bench::{instance, run_trials, Options};
use emst_core::{GhsVariant, Protocol, RankScheme, Sim};
use emst_geom::paper_phase2_radius;

/// Per-`(n, protocol)` aggregates over the trial fan-out.
#[derive(Default, Clone, Copy)]
struct Row {
    awake_total: f64,
    awake_max: f64,
    energy: f64,
    messages: f64,
    rounds: f64,
}

fn protocols() -> [(&'static str, Protocol, bool); 4] {
    [
        (
            "ghs_modified",
            Protocol::Ghs(GhsVariant::Modified),
            true, // needs a radius
        ),
        ("ghs_lowawake", Protocol::Ghs(GhsVariant::LowAwake), true),
        ("eopt", Protocol::Eopt(Default::default()), false),
        ("co_nnt", Protocol::Nnt(RankScheme::Diagonal), false),
    ]
}

fn main() {
    let opts = Options::from_env();
    let sizes: Vec<usize> = if opts.quick {
        vec![300]
    } else {
        vec![500, 2000]
    };
    eprintln!(
        "awake_sweep: awake rounds vs energy across protocols \
         ({} trials per point, seed {:#x})",
        opts.trials, opts.seed
    );

    let mut json_rows: Vec<String> = Vec::new();
    let mut wins: Vec<(usize, f64, f64)> = Vec::new();
    for &n in &sizes {
        let radius = paper_phase2_radius(n);
        let mut table = Table::new([
            "protocol",
            "awake total",
            "awake max",
            "max/rounds",
            "energy",
            "messages",
            "rounds",
        ]);
        let mut ghs_max = None;
        let mut low_max = None;
        for (name, protocol, needs_radius) in protocols() {
            let trials = opts.trials as f64;
            let samples = run_trials(&opts, |t| {
                let pts = instance(opts.seed, n, t);
                let mut sim = Sim::new(&pts).awake(true);
                if needs_radius {
                    sim = sim.radius(radius);
                }
                let out = sim.run(protocol);
                let awake = out.awake().expect("awake tracking was requested");
                (
                    awake.total,
                    awake.max_per_node,
                    out.stats.energy,
                    out.stats.messages,
                    out.stats.rounds,
                )
            });
            let mut row = Row::default();
            for (total, max, energy, messages, rounds) in samples {
                row.awake_total += total as f64 / trials;
                row.awake_max += max as f64 / trials;
                row.energy += energy / trials;
                row.messages += messages as f64 / trials;
                row.rounds += rounds as f64 / trials;
            }
            match name {
                "ghs_modified" => ghs_max = Some(row.awake_max),
                "ghs_lowawake" => low_max = Some(row.awake_max),
                _ => {}
            }
            table.row([
                name.into(),
                fnum(row.awake_total, 0),
                fnum(row.awake_max, 1),
                fnum(row.awake_max / row.rounds, 3),
                fnum(row.energy, 3),
                fnum(row.messages, 0),
                fnum(row.rounds, 1),
            ]);
            json_rows.push(format!(
                "    {{\"n\": {n}, \"protocol\": \"{name}\", \"awake_total\": {:.1}, \
                 \"awake_max\": {:.1}, \"energy\": {:.4}, \"messages\": {:.1}, \
                 \"rounds\": {:.1}}}",
                row.awake_total, row.awake_max, row.energy, row.messages, row.rounds,
            ));
        }
        wins.push((
            n,
            low_max.expect("lowawake row present"),
            ghs_max.expect("ghs row present"),
        ));
        println!("-- awake complexity (n = {n}) --");
        println!("{}", table.render());
        if opts.csv {
            println!("{}", table.to_csv());
        }
    }

    // The point of the low-awake variant: at scale its worst node must be
    // awake for strictly fewer rounds than under plain GHS (whose every
    // node is up for the whole run). Enforced at the largest measured
    // size (n = 2000 in a full run).
    let largest = *sizes.iter().max().expect("sizes is non-empty");
    let win = wins.iter().any(|&(n, low, ghs)| n == largest && low < ghs);
    for &(n, low, ghs) in &wins {
        eprintln!(
            "win check: n={n}: lowawake max {low:.1} vs ghs max {ghs:.1} -> {}",
            if low < ghs {
                "lowawake wins"
            } else {
                "ghs wins"
            }
        );
    }
    assert!(
        win,
        "ghs_lowawake never beat ghs_modified on max awake rounds at n={largest}"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"bench_awake/v1\",\n");
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"trials\": {},\n", opts.trials));
    json.push_str(&format!(
        "  \"lowawake_win\": {{\"n\": {largest}, \"pass\": {win}}},\n"
    ));
    json.push_str("  \"rows\": [\n");
    json.push_str(&json_rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    let path = "BENCH_awake.json";
    std::fs::write(path, &json).expect("cannot write BENCH_awake.json");
    eprintln!("wrote {path}");
}
