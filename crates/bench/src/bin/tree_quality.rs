//! **T1 — build-energy vs use-cost:** the full trade-off across every
//! spanning-tree construction in the workspace.
//!
//! The paper's motivation (§I–II) is that a tree is built once and used
//! many times (data aggregation epochs, broadcasts), so both the
//! construction energy *and* the tree's per-use cost `Σ d²` matter. This
//! table lines up all five constructions:
//!
//! | construction | build energy | tree quality |
//! |---|---|---|
//! | GHS (orig/mod) | Θ(log² n) | exact MST |
//! | EOPT           | Θ(log n)  | exact MST |
//! | Co-NNT         | Θ(1)      | O(1)-approx |
//! | id-rank NNT    | —         | O(log n)-approx |
//! | BFS flood      | Θ(log n)  | Θ(log n)-factor worse |
//!
//! and derives the break-even number of aggregation epochs at which a
//! cheaper-to-build but worse tree loses to EOPT's exact MST.
//!
//! Run: `cargo run --release -p emst-bench --bin tree_quality [-- --trials N --csv]`

use emst_analysis::{fnum, Table};
use emst_bench::{instance, run_sweep_multi, Options};
use emst_core::{EoptConfig, GhsVariant, Protocol, RankScheme, Sim};
use emst_geom::paper_phase2_radius;
use emst_graph::euclidean_mst;

/// Rows: per algorithm `(build energy, Σ|e|² of tree)` + MST Σ|e|².
fn measure(seed: u64, n: usize, trial: u64) -> [f64; 13] {
    let pts = instance(seed, n, trial);
    let r = paper_phase2_radius(n);
    let ghs_o = Sim::new(&pts)
        .radius(r)
        .run(Protocol::Ghs(GhsVariant::Original));
    let ghs_m = Sim::new(&pts)
        .radius(r)
        .run(Protocol::Ghs(GhsVariant::Modified));
    let eopt = Sim::new(&pts).run(Protocol::Eopt(EoptConfig::default()));
    let nnt = Sim::new(&pts).run(Protocol::Nnt(RankScheme::Diagonal));
    let nnt_id = Sim::new(&pts).run(Protocol::Nnt(RankScheme::NodeId));
    let bfs = Sim::new(&pts).radius(r).run(Protocol::Bfs { root: 0 });
    let mst_sq = euclidean_mst(&pts).cost(2.0);
    [
        ghs_o.stats.energy,
        ghs_o.tree.cost(2.0),
        ghs_m.stats.energy,
        ghs_m.tree.cost(2.0),
        eopt.stats.energy,
        eopt.tree.cost(2.0),
        nnt.stats.energy,
        nnt.tree.cost(2.0),
        nnt_id.stats.energy,
        nnt_id.tree.cost(2.0),
        bfs.stats.energy,
        bfs.tree.cost(2.0),
        mst_sq,
    ]
}

fn main() {
    let opts = Options::from_env();
    let n = if opts.quick { 400 } else { 2000 };
    eprintln!(
        "tree_quality: build energy vs per-use tree cost at n = {n} ({} trials, seed {:#x})",
        opts.trials, opts.seed
    );

    let rows = run_sweep_multi(&opts, &[n], |&n, t| measure(opts.seed, n, t));
    let (_, s) = &rows[0];
    let mst_sq = s[12].mean;

    let algos = [
        ("GHS (original)", 0, true),
        ("GHS (modified)", 2, true),
        ("EOPT", 4, true),
        ("Co-NNT (diagonal)", 6, false),
        ("NNT (id-rank)", 8, false),
        ("BFS flood", 10, false),
    ];
    let eopt_build = s[4].mean;
    let eopt_use = s[5].mean;
    let mut table = Table::new([
        "construction",
        "build energy",
        "tree Σ|e|²",
        "quality vs MST",
        "break-even epochs vs EOPT",
    ]);
    for (name, i, exact) in algos {
        let build = s[i].mean;
        let use_cost = s[i + 1].mean;
        // Epochs at which (build + k·use) crosses EOPT's line; exact trees
        // never lose on use, so break-even is driven by build alone.
        let breakeven = if use_cost > eopt_use + 1e-12 {
            let k = (eopt_build - build) / (use_cost - eopt_use);
            if k <= 0.0 {
                "never ahead".to_string()
            } else {
                format!("{k:.1}")
            }
        } else if build > eopt_build {
            "never ahead".to_string()
        } else {
            "-".to_string()
        };
        table.row([
            name.to_string(),
            fnum(build, 2),
            fnum(use_cost, 4),
            if exact {
                "exact".to_string()
            } else {
                format!("x{:.3}", use_cost / mst_sq)
            },
            breakeven,
        ]);
    }
    println!("{}", table.render());
    if opts.csv {
        println!("{}", table.to_csv());
    }

    println!("shape checks:");
    println!(
        "  exact constructions really are exact: GHS/EOPT Σ|e|² == MST Σ|e|² ({})",
        (s[1].mean - mst_sq).abs() < 1e-9 && (s[5].mean - mst_sq).abs() < 1e-9
    );
    println!(
        "  BFS tree is ~{}x worse to use despite Θ(log n) build energy",
        fnum(s[11].mean / mst_sq, 1)
    );
    println!(
        "  Co-NNT: {:.0}% of EOPT's build energy at {:.0}% quality penalty",
        100.0 * s[6].mean / eopt_build,
        100.0 * (s[7].mean / mst_sq - 1.0)
    );
}
