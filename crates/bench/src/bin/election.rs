//! **E12 — leader election (Section IV context):** the energy cost of the
//! problem behind the paper's lower bound.
//!
//! The `Ω(log n)` bound of Theorem 4.1 comes from the Korach–Moran–Zaks
//! message bound for leader election / spanning-tree construction. Two
//! elections over the radio model:
//!
//! * max-id **flooding** — every improvement is re-broadcast; expected
//!   `Θ(log n)` announcements per node → `Θ(log² n)` energy;
//! * **tree-based** — BFS tree + convergecast + winner broadcast; exactly
//!   `3n − 2` messages → `Θ(log n)` energy, matching the lower bound.
//!
//! The measured growth exponents (in `(log log n, log W)` space, as in
//! Fig 3(b)) separate the two classes.
//!
//! Run: `cargo run --release -p emst-bench --bin election [-- --trials N --csv]`

use emst_analysis::{fit_loglog_exponent, fnum, Table};
use emst_bench::{instance, run_sweep_multi, Options};
use emst_core::{Protocol, Sim};
use emst_geom::paper_phase2_radius;

fn main() {
    let opts = Options::from_env();
    let sizes: Vec<usize> = if opts.quick {
        vec![100, 200, 400]
    } else {
        vec![100, 250, 500, 1000, 2000, 4000]
    };
    eprintln!(
        "election: flood vs tree-based leader election ({} trials per point, seed {:#x})",
        opts.trials, opts.seed
    );

    let rows = run_sweep_multi(&opts, &sizes, |&n, t| {
        let pts = instance(opts.seed, n, t);
        let r = paper_phase2_radius(n);
        let flood = Sim::new(&pts).radius(r).run(Protocol::ElectionFlood);
        let tree = Sim::new(&pts).radius(r).run(Protocol::ElectionTree);
        assert_eq!(
            flood.detail.as_election().unwrap().leader,
            tree.detail.as_election().unwrap().leader,
            "elections disagree"
        );
        [
            flood.stats.energy,
            tree.stats.energy,
            flood.stats.messages as f64,
            tree.stats.messages as f64,
        ]
    });

    let mut table = Table::new([
        "n",
        "flood energy",
        "tree energy",
        "flood msgs",
        "tree msgs",
        "flood/tree",
    ]);
    for (n, [fe, te, fm, tm]) in &rows {
        table.row([
            n.to_string(),
            fnum(fe.mean, 3),
            fnum(te.mean, 3),
            fnum(fm.mean, 0),
            fnum(tm.mean, 0),
            fnum(fe.mean / te.mean, 2),
        ]);
    }
    println!("{}", table.render());
    if opts.csv {
        println!("{}", table.to_csv());
    }

    let ns: Vec<f64> = rows.iter().map(|(n, _)| *n as f64).collect();
    let flood_fit = fit_loglog_exponent(
        &ns,
        &rows.iter().map(|(_, s)| s[0].mean).collect::<Vec<_>>(),
    );
    let tree_fit = fit_loglog_exponent(
        &ns,
        &rows.iter().map(|(_, s)| s[1].mean).collect::<Vec<_>>(),
    );
    println!("shape checks:");
    println!(
        "  flood loglog slope {:.2} (log²n class) vs tree {:.2} (log n class — the Theorem 4.1 optimum)",
        flood_fit.slope, tree_fit.slope
    );
    println!(
        "  tree election messages are exactly 3n−2: {}",
        rows.iter()
            .all(|(n, s)| (s[3].mean - (3 * n - 2) as f64).abs() < 1e-9)
    );
}
