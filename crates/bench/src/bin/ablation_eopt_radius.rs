//! **A2 — ablation (§V):** EOPT's phase-1 radius constant.
//!
//! Phase 1 must be *supercritical* (so a giant fragment emerges and most
//! merging happens at `O(1/n)` energy per message) but not *too large* (or
//! phase 1 itself becomes expensive — in the limit it degenerates to plain
//! GHS at the connectivity radius). This sweep varies the multiplier `m₁`
//! in `r₁ = m₁·√(1/n)` around the paper's 1.4 and reports total energy,
//! the fragment structure after phase 1, and how often the beyond-paper
//! recovery pass fired.
//!
//! Run: `cargo run --release -p emst-bench --bin ablation_eopt_radius [-- --trials N --csv]`

use emst_analysis::{fnum, Table};
use emst_bench::{
    eopt_radius_row, first_row, row_at, run_sweep_multi, Options, ReportError,
    EOPT_ABLATION_MULTIPLIERS, EOPT_ABLATION_PAPER_INDEX,
};

fn main() {
    if let Err(e) = run() {
        eprintln!("ablation_eopt_radius: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), ReportError> {
    let opts = Options::from_env();
    let n = if opts.quick { 1000 } else { 4000 };
    let multipliers = EOPT_ABLATION_MULTIPLIERS;
    eprintln!(
        "ablation_eopt_radius: phase-1 multiplier sweep at n = {n} ({} trials, seed {:#x})",
        opts.trials, opts.seed
    );

    let rows = run_sweep_multi(&opts, &multipliers, |&m, t| {
        eopt_radius_row(opts.seed, n, m, t)
    });
    let mut table = Table::new([
        "m1 (r1 = m1/sqrt(n))",
        "energy",
        "frags after p1",
        "largest frag",
        "recovery rate",
    ]);
    for (m, [e, frags, largest, rec]) in &rows {
        table.row([
            fnum(*m, 2),
            fnum(e.mean, 2),
            fnum(frags.mean, 1),
            fnum(largest.mean, 0),
            fnum(rec.mean, 2),
        ]);
    }
    println!("{}", table.render());
    if opts.csv {
        println!("{}", table.to_csv());
    }

    let best = rows
        .iter()
        .min_by(|a, b| a.1[0].mean.total_cmp(&b.1[0].mean))
        .ok_or(ReportError::EmptySweep {
            what: "phase-1 multiplier",
        })?;
    println!("shape checks:");
    println!(
        "  energy-minimising multiplier ≈ {:.2} (paper uses 1.40)",
        best.0
    );
    // The paper's row is selected by its declared index into the
    // multiplier list, not by re-finding 1.4 with a float comparison.
    let sub = first_row(&rows, "phase-1 multiplier")?; // m = 0.6, subcritical
    let paper = row_at(&rows, EOPT_ABLATION_PAPER_INDEX, "phase-1 multiplier")?;
    println!(
        "  subcritical m = {:.1}: largest fragment {:.0} of {n}; paper m = {:.1}: {:.0} — giant emerges",
        sub.0, sub.1[2].mean, paper.0, paper.1[2].mean
    );
    Ok(())
}
