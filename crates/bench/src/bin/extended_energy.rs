//! **E8 — extended energy model (§VIII):** how the GHS/EOPT/Co-NNT
//! comparison changes when reception and idle listening cost energy.
//!
//! §VIII concedes that the paper's transmit-only metric "does not fully
//! capture the energy needed, as it ignores the energy requirements for
//! receiving and staying awake" (citing Min & Chandrakasan's "top five
//! myths"). This experiment re-runs the Fig 3(a) comparison under an
//! extended model where every reception costs `ρ` and every node pays
//! `ι` per round awake, and reports the *full-radio* energy
//! (tx + rx + idle).
//!
//! Shape findings: with rx cost counted, protocols pay in proportion to
//! their *reception* counts, which penalises local broadcasts (one
//! transmission, `Θ(local density)` receptions): the GHS/EOPT gap narrows
//! because EOPT's id announcements are broadcasts heard by `Θ(log n)`
//! neighbours each, while GHS's test traffic is unicast. Co-NNT stays
//! cheapest throughout. With idle cost counted, *time* matters: Co-NNT's
//! `O(1)`-phase execution shines, and slow protocols bleed idle energy.
//!
//! Run: `cargo run --release -p emst-bench --bin extended_energy [-- --trials N --csv]`

use emst_analysis::{fnum, Table};
use emst_bench::{first_row, instance, last_row, run_sweep_multi, Options, ReportError};
use emst_core::{EoptConfig, GhsVariant, Protocol, RankScheme, Sim};
use emst_geom::{paper_phase2_radius, PathLoss};
use emst_radio::EnergyConfig;

/// Full-radio energy of the three algorithms on one instance under `cfg`.
fn full_energies(seed: u64, n: usize, cfg: EnergyConfig, trial: u64) -> [f64; 3] {
    let pts = instance(seed, n, trial);
    let ghs = Sim::new(&pts)
        .radius(paper_phase2_radius(n))
        .energy(cfg)
        .run(Protocol::Ghs(GhsVariant::Original));
    let eopt = Sim::new(&pts)
        .energy(cfg)
        .run(Protocol::Eopt(EoptConfig::default()));
    let nnt = Sim::new(&pts)
        .energy(cfg)
        .run(Protocol::Nnt(RankScheme::Diagonal));
    [
        ghs.stats.full_energy(),
        eopt.stats.full_energy(),
        nnt.stats.full_energy(),
    ]
}

fn main() {
    if let Err(e) = run() {
        eprintln!("extended_energy: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), ReportError> {
    let opts = Options::from_env();
    let n = if opts.quick { 500 } else { 2000 };
    eprintln!(
        "extended_energy: rx/idle-aware comparison at n = {n} ({} trials, seed {:#x})",
        opts.trials, opts.seed
    );

    // Reference scale: at the connectivity radius one tx costs
    // r² ≈ c₂·ln n/n; rx electronics in real radios cost the same order as
    // tx electronics, so sweep ρ from 0 to a few multiples of r².
    let r2 = paper_phase2_radius(n);
    let tx_unit = r2 * r2;
    let rho_factors = [0.0, 0.1, 0.3, 1.0, 3.0];

    let mut table = Table::new([
        "rx cost (x tx unit)",
        "GHS full",
        "EOPT full",
        "Co-NNT full",
        "GHS/EOPT",
        "EOPT/NNT",
    ]);
    let rows = run_sweep_multi(&opts, &rho_factors, |&f, t| {
        let cfg = EnergyConfig::extended(PathLoss::paper(), f * tx_unit, 0.0);
        full_energies(opts.seed, n, cfg, t)
    });
    for (f, [ghs, eopt, nnt]) in &rows {
        table.row([
            fnum(*f, 1),
            fnum(ghs.mean, 2),
            fnum(eopt.mean, 2),
            fnum(nnt.mean, 2),
            fnum(ghs.mean / eopt.mean, 2),
            fnum(eopt.mean / nnt.mean, 2),
        ]);
    }
    println!("-- reception-cost sweep (idle = 0) --");
    println!("{}", table.render());
    if opts.csv {
        println!("{}", table.to_csv());
    }

    // Idle sweep: per-node per-round cost as a fraction of the tx unit.
    let iota_factors = [0.0, 1e-4, 1e-3, 1e-2];
    let rows_idle = run_sweep_multi(&opts, &iota_factors, |&f, t| {
        let cfg = EnergyConfig::extended(PathLoss::paper(), 0.0, f * tx_unit);
        full_energies(opts.seed ^ 0x88, n, cfg, t)
    });
    let mut t2 = Table::new([
        "idle/round (x tx unit)",
        "GHS full",
        "EOPT full",
        "Co-NNT full",
        "winner",
    ]);
    for (f, [ghs, eopt, nnt]) in &rows_idle {
        let winner = if nnt.mean <= eopt.mean && nnt.mean <= ghs.mean {
            "Co-NNT"
        } else if eopt.mean <= ghs.mean {
            "EOPT"
        } else {
            "GHS"
        };
        t2.row([
            format!("{f:.0e}"),
            fnum(ghs.mean, 2),
            fnum(eopt.mean, 2),
            fnum(nnt.mean, 2),
            winner.to_string(),
        ]);
    }
    println!("-- idle-cost sweep (rx = 0) --");
    println!("{}", t2.render());
    if opts.csv {
        println!("{}", t2.to_csv());
    }

    println!("shape checks:");
    let base = &first_row(&rows, "rx-cost")?.1;
    let heavy = &last_row(&rows, "rx-cost")?.1;
    println!(
        "  ordering GHS > EOPT > Co-NNT preserved at every rx cost: {}",
        rows.iter()
            .all(|(_, [g, e, c])| g.mean > e.mean && e.mean > c.mean)
    );
    println!(
        "  GHS/EOPT gap NARROWS with rx cost: {:.1} → {:.1} — EOPT's id announcements are \
         local broadcasts heard by Θ(log n) neighbours each, so its reception count grows \
         faster than its transmission count; §VIII's warning that transmit-only accounting \
         flatters broadcast-heavy protocols is visible here",
        base[0].mean / base[1].mean,
        heavy[0].mean / heavy[1].mean
    );
    let idle_heavy = &last_row(&rows_idle, "idle-cost")?.1;
    println!(
        "  Co-NNT benefits most from idle costs (fewest rounds): winner at the highest idle rate = {}",
        if idle_heavy[2].mean <= idle_heavy[1].mean {
            "Co-NNT"
        } else {
            "EOPT"
        }
    );
    Ok(())
}
