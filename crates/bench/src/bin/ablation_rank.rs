//! **A3 — ablation (§VI):** the diagonal ranking of this paper vs the
//! x-ranking of Khan et al. \[15\] for NNT construction.
//!
//! §VI motivates the new ranking: under the x-rank "there are few nodes
//! that need to go far away to find the nearest node of higher rank", so
//! the construction does not fit a unit-disk radius of `Θ(√(log n/n))`.
//! Under the diagonal rank, Lemma 6.3 bounds every connection distance by
//! `Θ(√(log n/n))` whp. Measured here as the max tree edge normalised by
//! `√(ln n/n)` — flat for the diagonal rank, growing for the x-rank —
//! plus the energy of both runs.
//!
//! Run: `cargo run --release -p emst-bench --bin ablation_rank [-- --trials N --csv]`

use emst_analysis::{fnum, Table};
use emst_bench::{first_row, last_row, rank_scheme_row, run_sweep_multi, Options, ReportError};

fn main() {
    if let Err(e) = run() {
        eprintln!("ablation_rank: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), ReportError> {
    let opts = Options::from_env();
    let sizes: Vec<usize> = if opts.quick {
        vec![200, 800]
    } else {
        vec![200, 500, 1000, 2000, 5000]
    };
    eprintln!(
        "ablation_rank: diagonal vs x-rank NNT ({} trials per point, seed {:#x})",
        opts.trials, opts.seed
    );

    let rows = run_sweep_multi(&opts, &sizes, |&n, t| rank_scheme_row(opts.seed, n, t));
    let mut table = Table::new([
        "n",
        "max edge diag",
        "max edge x",
        "max edge id",
        "diag/unit",
        "x/unit",
        "energy diag",
        "energy x",
        "energy id",
        "len ratio diag",
        "len ratio id",
    ]);
    for (n, s) in &rows {
        let unit = ((*n as f64).ln() / *n as f64).sqrt();
        table.row([
            n.to_string(),
            fnum(s[0].mean, 4),
            fnum(s[3].mean, 4),
            fnum(s[6].mean, 4),
            fnum(s[0].mean / unit, 2),
            fnum(s[3].mean / unit, 2),
            fnum(s[1].mean, 3),
            fnum(s[4].mean, 3),
            fnum(s[7].mean, 3),
            fnum(s[2].mean, 3),
            fnum(s[8].mean, 3),
        ]);
    }
    println!("{}", table.render());
    if opts.csv {
        println!("{}", table.to_csv());
    }

    let first = first_row(&rows, "rank-scheme size")?;
    let last = last_row(&rows, "rank-scheme size")?;
    let unit = |n: usize| ((n as f64).ln() / n as f64).sqrt();
    println!("shape checks:");
    println!(
        "  diag normalised max edge: {:.2} → {:.2} (≈ flat, Lemma 6.3)",
        first.1[0].mean / unit(first.0),
        last.1[0].mean / unit(last.0)
    );
    println!(
        "  x-rank normalised max edge: {:.2} → {:.2} (grows — needs power beyond the unit disk)",
        first.1[3].mean / unit(first.0),
        last.1[3].mean / unit(last.0)
    );
    println!(
        "  id-rank (no coordinates, [15]) quality ratio: {:.3} → {:.3} (O(log n)-approx) vs diagonal {:.3} → {:.3} (O(1))",
        first.1[8].mean,
        last.1[8].mean,
        first.1[2].mean,
        last.1[2].mean
    );
    Ok(())
}
